package autocheck

import (
	"reflect"
	"strings"
	"testing"
)

const exampleSrc = `
int main() {
  float u[8];
  float resid = 0.0;
  for (int i = 0; i < 8; i++) {
    u[i] = i * i;
  }
  for (int step = 0; step < 4; step++) {
    resid = 0.0;
    for (int i = 1; i < 7; i++) {
      float nu = (u[i - 1] + u[i + 1]) * 0.5;
      resid += (nu - u[i]) * (nu - u[i]);
      u[i] = nu;
    }
  }
  print(u[3]);
  return 0;
}`

var exampleSpec = LoopSpec{Function: "main", StartLine: 8, EndLine: 15}

func TestPublicAPIEndToEnd(t *testing.T) {
	mod, err := CompileProgram(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\n") {
		t.Errorf("output = %q", out)
	}
	recs, tout, err := TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if tout != out {
		t.Errorf("traced output %q != plain output %q", tout, out)
	}
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, exampleSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Find("u"); c == nil || c.Type != WAR {
		t.Errorf("u = %+v, want WAR", c)
	}
	if c := res.Find("step"); c == nil || c.Type != Index {
		t.Errorf("step = %+v, want Index", c)
	}
}

func TestPublicAPITraceRoundtrip(t *testing.T) {
	mod, err := CompileProgram(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeTrace(recs)
	back, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("roundtrip lost records: %d vs %d", len(back), len(recs))
	}
	res, err := AnalyzeBytes(data, exampleSpec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Find("u") == nil {
		t.Errorf("AnalyzeBytes missed u: %v", res.CriticalNames())
	}
}

func TestPublicAPIOnline(t *testing.T) {
	mod, err := CompileProgram(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	onRes, out, err := AnalyzeProgramOnline(mod, exampleSpec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("online run lost program output")
	}
	recs, _, err := TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := Analyze(recs, exampleSpec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onRes.CriticalNames(), offRes.CriticalNames()) {
		t.Errorf("online %v != offline %v", onRes.CriticalNames(), offRes.CriticalNames())
	}
}

func TestPublicAPICollectorDirect(t *testing.T) {
	col, err := NewCollector(exampleSpec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := CompileProgram(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		col.Observe(&recs[i])
	}
	res, err := col.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Find("u") == nil {
		t.Errorf("collector missed u: %v", res.CriticalNames())
	}
}

func TestDependencyTypeStrings(t *testing.T) {
	for ty, want := range map[DependencyType]string{
		WAR: "WAR", Outcome: "Outcome", RAPO: "RAPO", Index: "Index",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}

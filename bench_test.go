// Benchmarks regenerating the paper's evaluation artifacts. One bench per
// table/figure (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable2_*              detection pipeline per benchmark (Table II)
//	BenchmarkTable3_*              phase costs, serial vs parallel (Table III)
//	BenchmarkTable4_Storage        checkpoint vs full-snapshot bytes (Table IV)
//	BenchmarkTable4_StorageBackends  storage-engine sweep: full snapshot vs
//	                               critical set vs critical set + incremental
//	BenchmarkValidation_*          fail-stop + restart protocol (§VI-B)
//	BenchmarkFig5_DDGContraction   complete-DDG build + Algorithm 1 (Fig. 5)
//	BenchmarkParallelTraceRead/*   §V-A worker sweep
//	BenchmarkRemoteStore/*         networked checkpoint service: concurrent
//	                               clients + cached vs uncached restarts
//	BenchmarkAblation_*            design-choice ablations from DESIGN.md
//
// Sizes are reported via b.ReportMetric, so `go test -bench=. -benchmem`
// prints the same series the paper's tables report (shape, not absolute
// numbers — the substrate is a simulator, not the authors' testbed).
package autocheck

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/harness"
	"autocheck/internal/interp"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
	"autocheck/internal/trace"
	"autocheck/internal/validate"
)

// prepared caches compiled+traced benchmarks across bench runs.
var prepared = map[string]*harness.Prepared{}

func prep(b *testing.B, name string) *harness.Prepared {
	b.Helper()
	if p, ok := prepared[name]; ok {
		return p
	}
	bench := progs.Get(name)
	if bench == nil {
		b.Fatalf("unknown benchmark %s", name)
	}
	p, err := harness.Prepare(bench, 0)
	if err != nil {
		b.Fatal(err)
	}
	prepared[name] = p
	return p
}

// BenchmarkTable2 runs the full AutoCheck pipeline (parse + three modules)
// once per iteration for each Table II benchmark.
func BenchmarkTable2(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			b.ReportAllocs()
			p := prep(b, bench.Name)
			b.SetBytes(int64(len(p.Data)))
			var critical int
			for i := 0; i < b.N; i++ {
				res, err := p.Analyze(0)
				if err != nil {
					b.Fatal(err)
				}
				critical = len(res.Critical)
			}
			b.ReportMetric(float64(critical), "critical-vars")
			b.ReportMetric(float64(len(p.Records)), "trace-records")
		})
	}
}

// BenchmarkTable3 isolates the three phases of Table III on the largest
// port (HACC) and compares serial against parallel pre-processing.
func BenchmarkTable3(b *testing.B) {
	p := prep(b, "HACC")
	spec := p.Spec
	b.Run("PreprocessSerial", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := trace.ParseBytes(p.Data); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8, 16, 48} {
		workers := workers
		b.Run(fmt.Sprintf("PreprocessParallel%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(p.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBytesParallel(p.Data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("DependencyAndIdentify", func(b *testing.B) {
		b.ReportAllocs()
		opts := core.DefaultOptions()
		opts.Module = p.Mod
		for i := 0; i < b.N; i++ {
			res, err := core.Analyze(p.Records, spec, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Timing.Dep.Seconds()*1000, "dep-ms")
			b.ReportMetric(res.Timing.Identify.Seconds()*1000, "identify-ms")
		}
	})
}

// BenchmarkTable4_Storage measures one AutoCheck variable checkpoint
// against one BLCR-like full snapshot per benchmark (Table IV shape: the
// variable checkpoint is orders of magnitude smaller).
func BenchmarkTable4_Storage(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			b.ReportAllocs()
			p := prep(b, bench.Name)
			res, err := p.Analyze(0)
			if err != nil {
				b.Fatal(err)
			}
			var ac, blcr int64
			for i := 0; i < b.N; i++ {
				ac, blcr, err = harness.MeasureStorage(p.Mod, res)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ac), "autocheck-B")
			b.ReportMetric(float64(blcr), "blcr-B")
			b.ReportMetric(float64(blcr)/float64(ac), "reduction-x")
		})
	}
}

// BenchmarkTable4_StorageBackends extends Table IV from single images to
// whole runs through the internal/store engine: per backend/decorator,
// checkpoint the critical set at every IS main-loop boundary and report
// bytes persisted and write latency. The FullSnapshot case is the
// BLCR-like baseline; CriticalSetIncremental persists less than
// CriticalSet because IS's key_array changes only two elements per
// iteration (delta chunks + skipped sections).
func BenchmarkTable4_StorageBackends(b *testing.B) {
	p := prep(b, "IS")
	res, err := p.Analyze(0)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  store.Config
	}{
		{"CriticalSet", store.Config{Kind: store.KindMemory}},
		{"CriticalSetSharded", store.Config{Kind: store.KindSharded, Workers: 4}},
		{"CriticalSetAsync", store.Config{Kind: store.KindMemory, Async: true}},
		{"CriticalSetIncremental", store.Config{Kind: store.KindMemory, Incremental: true, Keyframe: 8}},
	}
	b.Run("FullSnapshot", func(b *testing.B) {
		b.ReportAllocs()
		var run *harness.StorageRun
		for i := 0; i < b.N; i++ {
			var err error
			run, err = harness.MeasureStorageRun(p.Mod, res, store.Config{Kind: store.KindMemory}, checkpoint.L1, true)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(run.SnapshotBytes), "snapshot-B")
	})
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var run *harness.StorageRun
			for i := 0; i < b.N; i++ {
				cfg := c.cfg
				if cfg.Kind != store.KindMemory {
					cfg.Dir = b.TempDir()
				}
				var err error
				run, err = harness.MeasureStorageRun(p.Mod, res, cfg, checkpoint.L1, false)
				if err != nil {
					b.Fatal(err)
				}
				if run.RestartIter != int64(run.Checkpoints) {
					b.Fatalf("restart recovered iter %d, want %d", run.RestartIter, run.Checkpoints)
				}
			}
			b.ReportMetric(float64(run.LogicalBytes), "image-B")
			b.ReportMetric(float64(run.PersistedBytes), "persisted-B")
		})
	}
}

// BenchmarkValidation runs the §VI-B fail-stop/restart protocol on a
// representative subset (full sweep lives in the test suite).
func BenchmarkValidation(b *testing.B) {
	for _, name := range []string{"CG", "IS", "HACC"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := prep(b, name)
			res, err := p.Analyze(0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				v, err := validate.New(p.Mod, res, b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				rep, err := v.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Sufficient {
					b.Fatalf("restart failed: %s", rep.Mismatch)
				}
			}
		})
	}
}

// BenchmarkFig5_DDGContraction builds the complete DDG and contracts it
// (Algorithm 1) on the paper's example-code trace.
func BenchmarkFig5_DDGContraction(b *testing.B) {
	p := prep(b, "CG")
	opts := core.DefaultOptions()
	opts.Module = p.Mod
	opts.BuildDDG = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(p.Records, p.Spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Complete.Nodes())), "complete-nodes")
		b.ReportMetric(float64(len(res.Contracted.Nodes())), "contracted-nodes")
	}
}

// BenchmarkParallelTraceRead is the §V-A optimization sweep: parsing
// throughput versus worker count on the largest trace, plus the serial
// binary decode for reference (it needs no workers to beat the sweep).
func BenchmarkParallelTraceRead(b *testing.B) {
	p := prep(b, "HACC")
	for _, workers := range []int{1, 2, 4, 8, 16, 48} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(p.Data)))
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 1 {
					_, err = trace.ParseBytes(p.Data)
				} else {
					_, err = trace.ParseBytesParallel(p.Data, workers)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.BinData())))
		for i := 0; i < b.N; i++ {
			if _, err := trace.ParseBinary(p.BinData()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceBinaryVsText is the headline comparison of the trace
// hot-path overhaul on the largest Table III trace: parse speed and
// encoded size for the text format (serial and parallel) against the
// compact binary format, plus both encoders. size-B and binary/text-x
// metrics record the bytes-on-disk story.
func BenchmarkTraceBinaryVsText(b *testing.B) {
	p := prep(b, "HACC")
	sizeRatio := float64(len(p.BinData())) / float64(len(p.Data))
	cases := []struct {
		name string
		data []byte
		fn   func([]byte) ([]trace.Record, error)
	}{
		{"ParseText", p.Data, trace.ParseBytes},
		{"ParseTextParallel8", p.Data, func(d []byte) ([]trace.Record, error) { return trace.ParseBytesParallel(d, 8) }},
		{"ParseBinary", p.BinData(), trace.ParseBinary},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(c.data)))
			for i := 0; i < b.N; i++ {
				recs, err := c.fn(c.data)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != len(p.Records) {
					b.Fatalf("parsed %d records, want %d", len(recs), len(p.Records))
				}
			}
			b.ReportMetric(float64(len(c.data)), "size-B")
			b.ReportMetric(sizeRatio, "binary/text-x")
		})
	}
	b.Run("EncodeText", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Data)))
		for i := 0; i < b.N; i++ {
			trace.EncodeAll(p.Records)
		}
	})
	b.Run("EncodeBinary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.BinData())))
		for i := 0; i < b.N; i++ {
			trace.EncodeBinary(p.Records)
		}
	})
	b.Run("AnalyzeStreamText", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Data)))
		opts := core.DefaultOptions()
		opts.Module = p.Mod
		opts.Streaming = true
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeBytes(p.Data, p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AnalyzeStreamBinary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.BinData())))
		opts := core.DefaultOptions()
		opts.Module = p.Mod
		opts.Streaming = true
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeBytes(p.BinData(), p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineAdapters compares the engine's adapters on identical
// input: the materialized offline schedule, the streaming schedule over
// both encodings, and the single-sweep online engine on the largest port
// — then the cross-trace dimension, serial analysis of all 14 ports
// against core.AnalyzeMany pools of 1/4/8 engines (the §V-A parallelism
// turned across traces instead of within one).
func BenchmarkEngineAdapters(b *testing.B) {
	p := prep(b, "HACC")
	opts := core.DefaultOptions()
	opts.Module = p.Mod
	b.Run("Materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(p.Records, p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StreamingText", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeData(p.Data, 0, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StreamingBinary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.BinData())))
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeData(p.BinData(), 0, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeOnline(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cross-trace parallelism over the whole Table II suite.
	var inputs []core.Input
	for _, bench := range progs.All() {
		inputs = append(inputs, prep(b, bench.Name).Input())
	}
	b.Run("Suite14/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range inputs {
				if _, err := core.Analyze(inputs[j].Records, inputs[j].Spec, inputs[j].Opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("Suite14/many-workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeMany(inputs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_StreamingVsDDG compares the streaming classifier
// (production path) against additionally materializing the complete DDG
// (the paper's construct-then-contract formulation) — the DESIGN.md
// two-builders ablation.
func BenchmarkAblation_StreamingVsDDG(b *testing.B) {
	p := prep(b, "LU")
	base := core.DefaultOptions()
	base.Module = p.Mod
	b.Run("Streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(p.Records, p.Spec, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WithCompleteDDG", func(b *testing.B) {
		b.ReportAllocs()
		opts := base
		opts.BuildDDG = true
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(p.Records, p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_InductionDetection compares static loop analysis
// against the dynamic trace heuristic for Index identification.
func BenchmarkAblation_InductionDetection(b *testing.B) {
	p := prep(b, "MG")
	b.Run("StaticLoopAnalysis", func(b *testing.B) {
		b.ReportAllocs()
		opts := core.DefaultOptions()
		opts.Module = p.Mod
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(p.Records, p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DynamicHeuristic", func(b *testing.B) {
		b.ReportAllocs()
		opts := core.DefaultOptions()
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(p.Records, p.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceGeneration measures the tracing interpreter itself (the
// LLVM-Tracer role; Table II's trace-generation column).
func BenchmarkTraceGeneration(b *testing.B) {
	for _, name := range []string{"Himeno", "EP", "HACC"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := prep(b, name)
			for i := 0; i < b.N; i++ {
				recs, _, err := TraceProgram(p.Mod)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(recs)), "records")
			}
		})
	}
}

// BenchmarkAblation_OnlineVsTraceFile compares the offline pipeline
// (materialize trace -> parse -> analyze) against the §IX online mode
// (analysis inside the instrumentation callback, no trace file).
func BenchmarkAblation_OnlineVsTraceFile(b *testing.B) {
	p := prep(b, "AMG")
	b.Run("TraceFile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, _, err := TraceProgram(p.Mod)
			if err != nil {
				b.Fatal(err)
			}
			data := EncodeTrace(recs)
			if _, err := AnalyzeBytes(data, p.Spec, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := AnalyzeProgramOnline(p.Mod, p.Spec, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRemoteStore prices the networked checkpoint service end to
// end: N concurrent clients (each its own checkpoint.Context and service
// namespace) checkpointing IS through store.Remote against one
// in-process service, then the restart read path with and without the
// read-through cache tier — repeated restarts re-fetch the same newest
// checkpoint, which the cache turns from a network round trip into a
// local decode.
func BenchmarkRemoteStore(b *testing.B) {
	svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	for _, clients := range []int{1, 4, 8} {
		clients := clients
		b.Run(fmt.Sprintf("Put/clients-%d", clients), func(b *testing.B) {
			b.ReportAllocs()
			var run *harness.ManyClientsRun
			for i := 0; i < b.N; i++ {
				var err error
				run, err = harness.RunManyClients("IS", 0,
					store.Config{Kind: store.KindRemote, Addr: ts.URL, Dir: "bench"},
					checkpoint.L1, clients)
				if err != nil {
					b.Fatal(err)
				}
				if run.RestartsOK != clients {
					b.Fatalf("restarts %d/%d ok", run.RestartsOK, clients)
				}
			}
			b.ReportMetric(run.CkptsPerSec, "ckpt/s")
			b.ReportMetric(float64(run.BytesWritten), "written-B")
		})
	}

	// Restart path, cold vs cached. Both namespaces are seeded with the
	// same synthetic checkpoints (3 variables x 256 cells, 8 sequence
	// points) so the only difference is the cache tier.
	mod, err := CompileProgram(`int main() { return 0; }`)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		cacheMB int
	}{
		{"Restart/uncached", 0},
		{"Restart/cached-64mb", 64},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := store.Config{
				Kind: store.KindRemote, Addr: ts.URL,
				Dir: "bench-restart-" + tc.name, CacheMB: tc.cacheMB,
			}
			ctx, err := checkpoint.NewContextStore(cfg, checkpoint.L1)
			if err != nil {
				b.Fatal(err)
			}
			defer ctx.Close()
			m := interp.New(mod)
			cells := make([]trace.Value, 256)
			for _, base := range []uint64{0x1000, 0x2000, 0x3000} {
				for i := range cells {
					cells[i] = trace.IntValue(int64(base) + int64(i))
				}
				m.WriteRange(base, cells)
				ctx.Protect(fmt.Sprintf("v%x", base), base, int64(len(cells)*8))
			}
			for i := 1; i <= 8; i++ {
				if err := ctx.Checkpoint(m, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			m2 := interp.New(mod)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				iter, err := ctx.Restart(m2, nil)
				if err != nil || iter != 8 {
					b.Fatalf("restart: iter=%d err=%v", iter, err)
				}
			}
			b.StopTimer()
			st := ctx.StoreStats()
			b.ReportMetric(float64(st.CacheHits), "cache-hits")
		})
	}
}

// BenchmarkReplicatedStore prices the quorum tier over a 3-node
// in-process cluster: Put throughput at each write quorum (W=1 acks the
// fastest node, W=3 waits for every replica), then the read tail with
// one deterministically slow replica — hedged vs unhedged, with p99
// reported per sub-benchmark so the hedging win is visible, not averaged
// away.
func BenchmarkReplicatedStore(b *testing.B) {
	var addrs []string
	for i := 0; i < 3; i++ {
		svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
			return store.NewMemory(), nil
		})
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		defer svc.Shutdown(context.Background())
		addrs = append(addrs, ts.URL)
	}
	payload := []store.Section{{Name: "v", Data: make([]byte, 64<<10)}}
	for _, w := range []int{1, 2, 3} {
		w := w
		b.Run(fmt.Sprintf("Put/w-%d", w), func(b *testing.B) {
			rb, err := store.Open(store.Config{
				Kind: store.KindReplicated, Addrs: addrs,
				Namespace:   fmt.Sprintf("bench-w%d", w),
				WriteQuorum: w, HedgeAfter: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rb.Close()
			b.SetBytes(int64(len(payload[0].Data)))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := rb.Put("ckpt-bench", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Read tail: replica 0 is slowed by a client-side delay failpoint, and
	// the tier reads with R=1 so every read starts on the slow node. The
	// unhedged tier eats the delay each time; the hedged tier races a
	// second replica after its hedge timer.
	seed, err := store.Open(store.Config{
		Kind: store.KindReplicated, Addrs: addrs, Namespace: "bench-hedge",
		WriteQuorum: 3, HedgeAfter: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.Put("ckpt-hedge", payload); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	freg := faultinject.NewRegistry(1)
	if err := freg.ArmSchedule(store.SiteReplicaGet(0) + "=delay@every=1@delay=4ms"); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		hedge time.Duration
	}{
		{"Get/slow-replica-unhedged", -1},
		{"Get/slow-replica-hedged", 100 * time.Microsecond},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rb, err := store.Open(store.Config{
				Kind: store.KindReplicated, Addrs: addrs, Namespace: "bench-hedge",
				ReadQuorum: 1, HedgeAfter: tc.hedge, Faults: freg,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rb.Close()
			durs := make([]time.Duration, 0, b.N)
			b.SetBytes(int64(len(payload[0].Data)))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := rb.Get("ckpt-hedge"); err != nil {
					b.Fatal(err)
				}
				durs = append(durs, time.Since(start))
			}
			b.StopTimer()
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			b.ReportMetric(float64(durs[len(durs)*99/100].Nanoseconds()), "p99-ns")
			st := rb.Stats()
			b.ReportMetric(float64(st.HedgesWon), "hedges-won")
		})
	}
}

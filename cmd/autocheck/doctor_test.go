package main

import (
	"bytes"
	"errors"
	"testing"

	"autocheck/internal/store"
)

func TestDoctorLocalHealthy(t *testing.T) {
	if err := doctorLocal(store.Config{Kind: store.KindFile, Dir: t.TempDir()}); err != nil {
		t.Fatalf("doctorLocal on a fresh store = %v, want nil", err)
	}
}

// TestDoctorLocalBrokenChain deletes a keyframe out from under a delta
// chain and checks the integrity walk reports it with the typed exit
// code.
func TestDoctorLocalBrokenChain(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Incremental: true, Keyframe: 8}
	b, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b = store.Decorate(b, cfg)
	secs := func(fill byte) []store.Section {
		return []store.Section{{Name: "v", Data: bytes.Repeat([]byte{fill}, 64)}}
	}
	if err := b.Put("ckpt-000001", secs(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000002", secs(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the keyframe behind the decorator's back: the delta for
	// ckpt-000002 can no longer be reconstructed.
	inner, err := store.Open(store.Config{Kind: store.KindFile, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Delete("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}

	err = doctorLocal(cfg)
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != doctorIntegrity {
		t.Fatalf("doctorLocal over broken chain = %v, want exit code %d", err, doctorIntegrity)
	}
}

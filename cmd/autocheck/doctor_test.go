package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"

	"autocheck/internal/server"
	"autocheck/internal/store"
)

func TestDoctorLocalHealthy(t *testing.T) {
	if err := doctorLocal(store.Config{Kind: store.KindFile, Dir: t.TempDir()}); err != nil {
		t.Fatalf("doctorLocal on a fresh store = %v, want nil", err)
	}
}

// TestDoctorLocalBrokenChain deletes a keyframe out from under a delta
// chain and checks the integrity walk reports it with the typed exit
// code.
func TestDoctorLocalBrokenChain(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Incremental: true, Keyframe: 8}
	b, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b = store.Decorate(b, cfg)
	secs := func(fill byte) []store.Section {
		return []store.Section{{Name: "v", Data: bytes.Repeat([]byte{fill}, 64)}}
	}
	if err := b.Put("ckpt-000001", secs(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000002", secs(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the keyframe behind the decorator's back: the delta for
	// ckpt-000002 can no longer be reconstructed.
	inner, err := store.Open(store.Config{Kind: store.KindFile, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Delete("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}

	err = doctorLocal(cfg)
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != doctorIntegrity {
		t.Fatalf("doctorLocal over broken chain = %v, want exit code %d", err, doctorIntegrity)
	}
}

// TestShedBreakdownText pins the doctor's admission line: per-reason
// counters in fixed order, then tenants loudest-first, empty when
// nothing shed.
func TestShedBreakdownText(t *testing.T) {
	counters := map[string]int64{
		"server.shed":             5,
		"server.shed.inflight":    3,
		"server.shed.rate":        2,
		"server.shed.ns.tenant-a": 1,
		"server.shed.ns.tenant-b": 4,
	}
	got := shedBreakdownText(counters, "server")
	want := " (inflight=3 rate=2 tenant-b=4 tenant-a=1)"
	if got != want {
		t.Errorf("shedBreakdownText = %q, want %q", got, want)
	}
	if got := shedBreakdownText(map[string]int64{"server.shed.drain": 0}, "server"); got != "" {
		t.Errorf("shedBreakdownText with no sheds = %q, want empty", got)
	}
}

// startClusterNodes runs n in-process checkpoint services on kernel-picked
// ports and returns their addresses.
func startClusterNodes(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Store: store.Config{Kind: store.KindMemory}})
		if err != nil {
			t.Fatal(err)
		}
		ready := make(chan string, 1)
		go srv.ListenAndServe("127.0.0.1:0", ready)
		addrs[i] = <-ready
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
	}
	return addrs
}

// unboundAddr returns an address nothing listens on: dials are refused
// immediately rather than timing out.
func unboundAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestDoctorClusterHealthy(t *testing.T) {
	addrs := startClusterNodes(t, 3)
	if err := doctorCluster(addrs, "doctor-test", 0, 0); err != nil {
		t.Fatalf("doctorCluster on a healthy cluster = %v, want nil", err)
	}
}

// TestDoctorClusterDegraded kills one of three nodes: majority quorums
// still hold, so the doctor passes — but demanding W=3 makes the same
// cluster quorum-unavailable with the typed exit code.
func TestDoctorClusterDegraded(t *testing.T) {
	addrs := startClusterNodes(t, 2)
	addrs = append(addrs, unboundAddr(t))
	if err := doctorCluster(addrs, "doctor-test", 0, 0); err != nil {
		t.Fatalf("doctorCluster with 2/3 healthy and majority quorums = %v, want nil", err)
	}
	err := doctorCluster(addrs, "doctor-test", 3, 0)
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != doctorQuorum {
		t.Fatalf("doctorCluster with 2/3 healthy and W=3 = %v, want exit code %d", err, doctorQuorum)
	}
}

// TestDoctorClusterDivergence plants an object on one replica behind the
// tier's back: the divergence scan must detect (and repair) it, and the
// doctor reports the quorum class so operators investigate.
func TestDoctorClusterDivergence(t *testing.T) {
	addrs := startClusterNodes(t, 3)
	r, err := store.NewRemote(addrs[1], "doctor-test")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Put("ckpt-stray", []store.Section{{Name: "v", Data: bytes.Repeat([]byte{7}, 48)}}); err != nil {
		t.Fatal(err)
	}
	err = doctorCluster(addrs, "doctor-test", 0, 0)
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != doctorQuorum {
		t.Fatalf("doctorCluster over a diverged cluster = %v, want exit code %d", err, doctorQuorum)
	}
	// The scan read-repaired while detecting: a second run is clean.
	if err := doctorCluster(addrs, "doctor-test", 0, 0); err != nil {
		t.Fatalf("doctorCluster after the repairing scan = %v, want nil", err)
	}
}

package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"autocheck/internal/harness"
)

// cmdLoadgen drives the multi-tenant scaling harness against a running
// `autocheck serve`: thousands of concurrent simulated clients spread
// across tenant namespaces, with seeded arrival and failure
// distributions and the Put/Get priority mix, recording per-tenant
// throughput and latency percentiles into the BENCH trajectory as
// loadgen-* entries.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9473", "checkpoint service address to load")
	tenants := fs.Int("tenants", 4, "tenant namespaces (tenant-NN); clients are assigned round-robin")
	clients := fs.Int("clients", 64, "concurrent simulated clients")
	ops := fs.Int("ops", 200, "operations per client")
	seed := fs.Int64("seed", 1, "deterministic root for every client's key, mix, and fault stream")
	putMix := fs.Float64("put-mix", 0.7,
		"fraction of operations that are checkpoint Puts (interactive class); the rest are restart-path Gets")
	valueBytes := fs.Int("value-bytes", 4096, "checkpoint payload bytes per Put")
	think := fs.Duration("think", 0, "mean exponential pause between one client's operations (0 = closed loop)")
	schedule := fs.String("schedule", "",
		"faultinject schedule armed per client, seeded seed+client (e.g. store.remote.do=error@p=0.05)")
	quick := fs.Bool("quick", false, "CI smoke subset: caps clients at 16 and ops per client at 25")
	out := fs.String("o", "BENCH_trace.json", "JSON trajectory appended with loadgen-* entries (\"\" = skip)")
	strict := fs.Bool("strict", false,
		"exit nonzero unless every tenant recorded throughput and no operation failed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.LoadgenConfig{
		Addr: *addr, Tenants: *tenants, Clients: *clients, Ops: *ops,
		Seed: *seed, PutMix: *putMix, ValueBytes: *valueBytes,
		Think: *think, Schedule: *schedule, FailFast: true,
	}
	if *quick {
		if cfg.Clients > 16 {
			cfg.Clients = 16
		}
		if cfg.Ops > 25 {
			cfg.Ops = 25
		}
	}
	var history []benchReport
	if *out != "" {
		// Load up front so a corrupt trajectory fails before the run.
		var err error
		if history, err = loadTrajectory(*out); err != nil {
			return err
		}
	}
	fmt.Printf("loadgen: %d clients x %d ops across %d tenants against %s (seed %d)\n",
		cfg.Clients, cfg.Ops, cfg.Tenants, *addr, *seed)
	run, err := harness.RunLoadgen(cfg)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatLoadgen(run))

	if *out != "" {
		rep := benchReport{
			Date:      time.Now().UTC().Format(time.RFC3339),
			Benchmark: "loadgen",
			Records:   run.Ops,
		}
		for _, tl := range run.Tenants {
			e := benchEntry{
				Name:       "loadgen-" + tl.Tenant,
				NsPerOp:    tl.P50.Nanoseconds(),
				P99Ns:      tl.P99.Nanoseconds(),
				Workers:    tl.Clients,
				Gomaxprocs: runtime.GOMAXPROCS(0),
			}
			if secs := run.Elapsed.Seconds(); secs > 0 {
				e.MBPerSec = float64(tl.Bytes) / secs / 1e6
			}
			rep.Entries = append(rep.Entries, e)
		}
		if err := appendTrajectory(*out, history, rep); err != nil {
			return err
		}
	}
	if *strict {
		for _, tl := range run.Tenants {
			if tl.OpsPerSec <= 0 {
				return &exitError{code: 1, err: fmt.Errorf("loadgen: tenant %s recorded zero throughput", tl.Tenant)}
			}
		}
		if run.Failures > 0 {
			return &exitError{code: 1, err: fmt.Errorf("loadgen: %d/%d operations failed", run.Failures, run.Ops)}
		}
	}
	return nil
}

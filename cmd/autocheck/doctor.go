package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"autocheck/internal/server"
	"autocheck/internal/store"
)

// Doctor exit codes, one per failure class, so scripts and CI can branch
// without parsing output. Documented in DESIGN.md ("Observability").
const (
	doctorOK           = 0
	doctorConnectivity = 10 // service unreachable / store stack won't open
	doctorCanary       = 11 // write/read/delete round trip failed or returned wrong bytes
	doctorIntegrity    = 12 // broken dependency chain or unreadable checkpoint
	doctorMetrics      = 13 // metrics endpoint missing or malformed
	doctorQuorum       = 14 // replica quorum unavailable, or replicas diverged
)

// cmdDoctor probes a checkpoint deployment's health: a live service
// (-addr) or a local store stack (-dir/-store). Every check prints a
// line; the first failure aborts with its class's exit code.
func cmdDoctor(args []string) error {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	addr := fs.String("addr", "", "probe a live checkpoint service at this address")
	addrsFlag := fs.String("addrs", "", "probe a replicated cluster at these comma-separated addresses")
	writeQuorum := fs.Int("write-quorum", 0, "cluster mode: acks required per write (0 = majority)")
	readQuorum := fs.Int("read-quorum", 0, "cluster mode: replicas consulted per read (0 = majority)")
	ns := fs.String("ns", "doctor", "live mode: service namespace for the canary probe")
	storeKind := fs.String("store", "file", "local mode: backend kind (file, memory, sharded)")
	dir := fs.String("dir", "", "local mode: storage root to examine")
	cacheMB := fs.Int("cache-mb", 0, "local mode: read-through cache tier (MB, 0 = off)")
	async := fs.Bool("async", false, "local mode: async write decorator")
	incremental := fs.Bool("incremental", false, "local mode: incremental decorator")
	keyframe := fs.Int("keyframe", 8, "local mode: incremental keyframe interval")
	shardWorkers := fs.Int("shard-workers", store.DefaultShardWorkers, "local mode: sharded write pool size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitAddrs(*addrsFlag)
	if *addr != "" && len(addrs) > 0 {
		return fmt.Errorf("doctor takes -addr (one service) or -addrs (a cluster), not both")
	}
	if len(addrs) > 0 {
		return doctorCluster(addrs, *ns, *writeQuorum, *readQuorum)
	}
	if *addr != "" {
		return doctorLive(*addr, *ns)
	}
	kind, err := store.ParseKind(*storeKind)
	if err != nil {
		return err
	}
	if kind == store.KindRemote {
		return fmt.Errorf("doctor probes a live service with -addr, not -store remote")
	}
	if *dir == "" && kind != store.KindMemory {
		return fmt.Errorf("doctor needs -addr (live service) or -dir (local store)")
	}
	return doctorLocal(store.Config{
		Kind:        kind,
		Dir:         *dir,
		CacheMB:     *cacheMB,
		Workers:     *shardWorkers,
		Async:       *async,
		Incremental: *incremental,
		Keyframe:    *keyframe,
	})
}

// canarySections is the deterministic payload of the canary round trip.
// The CRC spot check is implicit: a Get only succeeds if every section's
// stored checksum still matches its bytes.
func canarySections() []store.Section {
	payload := bytes.Repeat([]byte("autocheck-doctor"), 16)
	return []store.Section{
		{Name: "canary", Data: payload},
		{Name: "stamp", Data: []byte("doctor")},
	}
}

const canaryKey = "doctor-canary"

// canaryRoundTrip writes, reads back, verifies, and deletes the canary
// key on any backend. The key carries no "ckpt-" prefix, so retention
// and restart logic never consider it.
func canaryRoundTrip(b store.Backend) error {
	want := canarySections()
	if err := b.Put(canaryKey, want); err != nil {
		return fmt.Errorf("canary put: %w", err)
	}
	if err := b.Flush(); err != nil {
		return fmt.Errorf("canary flush: %w", err)
	}
	got, err := b.Get(canaryKey)
	if err != nil {
		return fmt.Errorf("canary get: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("canary read back %d sections, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || !bytes.Equal(got[i].Data, want[i].Data) {
			return fmt.Errorf("canary section %q does not match what was written", want[i].Name)
		}
	}
	if err := b.Delete(canaryKey); err != nil {
		return fmt.Errorf("canary delete: %w", err)
	}
	return nil
}

// doctorLive probes a running checkpoint service: connectivity via
// /v1/stats, a canary round trip through a real client, and the metrics
// endpoint's health.
func doctorLive(addr, ns string) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	// Connectivity: the stats endpoint answers and decodes.
	var stats server.StatsReport
	if err := getJSON(client, base+"/v1/stats", &stats); err != nil {
		return &exitError{doctorConnectivity, fmt.Errorf("doctor: connectivity: %w", err)}
	}
	fmt.Printf("doctor: connectivity OK (addr=%s namespaces=%d requests=%d)\n",
		addr, stats.Namespaces, stats.Requests)

	// Canary: a full write/read/delete through the real client path,
	// CRC-verified on decode.
	r, err := store.NewRemote(addr, ns)
	if err != nil {
		return &exitError{doctorCanary, fmt.Errorf("doctor: canary client: %w", err)}
	}
	defer r.Close()
	r.MaxAttempts = 2
	r.Backoff = 50 * time.Millisecond
	if err := canaryRoundTrip(r); err != nil {
		return &exitError{doctorCanary, fmt.Errorf("doctor: %w", err)}
	}
	fmt.Printf("doctor: canary OK (namespace=%s key=%s)\n", ns, canaryKey)

	// Metrics: the endpoint answers, decodes, and covers the canary
	// traffic just generated.
	var rep server.MetricsReport
	if err := getJSON(client, base+"/v1/metrics", &rep); err != nil {
		return &exitError{doctorMetrics, fmt.Errorf("doctor: metrics: %w", err)}
	}
	if rep.Metrics.Histograms["server.put.ns"].Count == 0 {
		return &exitError{doctorMetrics, fmt.Errorf("doctor: metrics: no server.put.ns samples after canary write")}
	}
	fmt.Printf("doctor: metrics OK (put p95=%s get p95=%s%s)\n",
		time.Duration(rep.Metrics.Histograms["server.put.ns"].P95Ns),
		time.Duration(rep.Metrics.Histograms["server.get.ns"].P95Ns),
		cacheRateText(rep.Stats.Store))

	// Admission: the shed breakdown belongs in the health probe — a
	// shedding service is "up" to every other check here.
	if total := rep.Metrics.Counters["server.shed"]; total > 0 {
		fmt.Printf("doctor: admission shed=%d%s\n", total, shedBreakdownText(rep.Metrics.Counters, "server"))
	} else {
		fmt.Println("doctor: admission OK (no requests shed)")
	}
	fmt.Println("doctor: all checks passed")
	return nil
}

// shedBreakdownText renders the per-reason and per-tenant shed counters
// under <prefix>.shed as " (reason=N ... | tenant=N ...)", tenants
// sorted by count so the loudest neighbor leads.
func shedBreakdownText(counters map[string]int64, prefix string) string {
	var parts []string
	for _, reason := range []string{"inflight", "tenant_quota", "rate", "drain"} {
		if n := counters[prefix+".shed."+reason]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
		}
	}
	nsPrefix := prefix + ".shed.ns."
	type nsShed struct {
		tenant string
		n      int64
	}
	var tenants []nsShed
	for name, n := range counters {
		if strings.HasPrefix(name, nsPrefix) && n > 0 {
			tenants = append(tenants, nsShed{strings.TrimPrefix(name, nsPrefix), n})
		}
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].n != tenants[j].n {
			return tenants[i].n > tenants[j].n
		}
		return tenants[i].tenant < tenants[j].tenant
	})
	for _, t := range tenants {
		parts = append(parts, fmt.Sprintf("%s=%d", t.tenant, t.n))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// doctorCluster probes a replicated deployment: every node's health
// endpoint, then a canary round trip and a cross-replica divergence scan
// through the real quorum tier. Dead nodes are tolerated as long as the
// healthy count still covers both quorums; anything less — and any
// divergence the scan finds — exits with the quorum class (14).
func doctorCluster(addrs []string, ns string, writeQuorum, readQuorum int) error {
	n := len(addrs)
	client := &http.Client{Timeout: 10 * time.Second}
	healthy := 0
	for i, a := range addrs {
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		var stats server.StatsReport
		if err := getJSON(client, strings.TrimSuffix(base, "/")+"/v1/stats", &stats); err != nil {
			fmt.Printf("doctor: node %d DOWN (addr=%s: %v)\n", i, a, err)
			continue
		}
		healthy++
		fmt.Printf("doctor: node %d OK (addr=%s namespaces=%d requests=%d)\n",
			i, a, stats.Namespaces, stats.Requests)
	}
	w, r := writeQuorum, readQuorum
	if w <= 0 {
		w = n/2 + 1
	}
	if r <= 0 {
		r = n/2 + 1
	}
	need := max(w, r)
	if healthy < need {
		return &exitError{doctorQuorum,
			fmt.Errorf("doctor: quorum unavailable: %d/%d replicas healthy, W=%d R=%d needs %d", healthy, n, w, r, need)}
	}
	fmt.Printf("doctor: quorum OK (%d/%d replicas healthy, W=%d R=%d)\n", healthy, n, w, r)

	b, err := store.Open(store.Config{
		Kind: store.KindReplicated, Addrs: addrs, Namespace: ns,
		WriteQuorum: writeQuorum, ReadQuorum: readQuorum,
	})
	if err != nil {
		return &exitError{doctorQuorum, fmt.Errorf("doctor: cluster client: %w", err)}
	}
	defer b.Close()
	if err := canaryRoundTrip(b); err != nil {
		code := doctorCanary
		if errors.Is(err, store.ErrUnavailable) {
			code = doctorQuorum
		}
		return &exitError{code, fmt.Errorf("doctor: %w", err)}
	}
	fmt.Printf("doctor: quorum canary OK (namespace=%s key=%s)\n", ns, canaryKey)

	rep := b.(*store.Replicated)
	scanned, repaired, err := rep.ScrubOnce()
	if err != nil {
		code := doctorIntegrity
		if errors.Is(err, store.ErrUnavailable) {
			code = doctorQuorum
		}
		return &exitError{code, fmt.Errorf("doctor: divergence scan: %w", err)}
	}
	if repaired > 0 {
		return &exitError{doctorQuorum,
			fmt.Errorf("doctor: divergence: %d of %d keys disagreed across replicas (read-repair re-converged them; investigate what diverged the nodes)", repaired, scanned)}
	}
	fmt.Printf("doctor: divergence scan OK (%d keys, replicas agree)\n", scanned)
	fmt.Println("doctor: all checks passed")
	return nil
}

// doctorLocal opens a store stack and examines it in place: open,
// canary round trip, then an integrity walk over every stored key.
func doctorLocal(cfg store.Config) error {
	b, err := store.Open(cfg)
	if err != nil {
		return &exitError{doctorConnectivity, fmt.Errorf("doctor: open: %w", err)}
	}
	b = store.Decorate(b, cfg)
	defer b.Close()
	fmt.Printf("doctor: open OK (store=%s dir=%q async=%v incremental=%v)\n",
		cfg.Kind, cfg.Dir, cfg.Async, cfg.Incremental)

	if err := canaryRoundTrip(b); err != nil {
		return &exitError{doctorCanary, fmt.Errorf("doctor: %w", err)}
	}
	fmt.Printf("doctor: canary OK (key=%s)\n", canaryKey)

	// Integrity walk: every stored object's dependency chain must be
	// complete, and the newest checkpoint must read back CRC-clean.
	keys, err := b.List()
	if err != nil {
		return &exitError{doctorIntegrity, fmt.Errorf("doctor: list: %w", err)}
	}
	present := make(map[string]bool, len(keys))
	for _, k := range keys {
		present[k] = true
	}
	for _, k := range keys {
		deps, err := store.DependenciesOf(b, k)
		if err != nil {
			return &exitError{doctorIntegrity, fmt.Errorf("doctor: dependencies of %s: %w", k, err)}
		}
		for _, dep := range deps {
			if !present[dep] {
				return &exitError{doctorIntegrity,
					fmt.Errorf("doctor: %s depends on missing key %s (broken chain)", k, dep)}
			}
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		newest := keys[len(keys)-1]
		if _, err := b.Get(newest); err != nil {
			return &exitError{doctorIntegrity, fmt.Errorf("doctor: reading newest key %s: %w", newest, err)}
		}
		fmt.Printf("doctor: integrity OK (%d keys, chains complete, newest %s reads back)\n", len(keys), newest)
	} else {
		fmt.Println("doctor: integrity OK (store is empty)")
	}

	st := b.Stats()
	fmt.Printf("doctor: stats puts=%d gets=%d bytes-written=%d%s\n",
		st.Puts, st.Gets, st.BytesWritten, cacheRateText(st))
	fmt.Println("doctor: all checks passed")
	return nil
}

// cacheRateText renders the cache hit rate when a cache tier saw any
// traffic, and nothing otherwise.
func cacheRateText(st store.Stats) string {
	total := st.CacheHits + st.CacheFollowerHits + st.CacheMisses
	if total == 0 {
		return ""
	}
	rate := float64(st.CacheHits+st.CacheFollowerHits) / float64(total)
	return fmt.Sprintf(" cache-hit-rate=%.1f%%", 100*rate)
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

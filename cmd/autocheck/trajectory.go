package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// loadTrajectory reads an existing BENCH_trace.json history. A file
// that exists but does not parse is surfaced to the caller before any
// measuring happens, not silently overwritten — it is the accumulated
// history these commands exist to preserve. A missing file is an empty
// history.
func loadTrajectory(path string) ([]benchReport, error) {
	var history []benchReport
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &history); err != nil {
			return nil, fmt.Errorf("existing %s is not a valid trajectory (fix or remove it): %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return history, nil
}

// appendTrajectory appends one run to the history and writes it back.
func appendTrajectory(path string, history []benchReport, rep benchReport) error {
	history = append(history, rep)
	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(history), path)
	return nil
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autocheck/internal/harness"
)

// cmdChaos runs the deterministic fault-injection sweep: benchmark ×
// store stack × failpoint schedule, each run restarted after its
// injected failure and verified byte-for-byte against the failure-free
// execution. Failures print the seed and schedule that replay them.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "fault randomness root; a failure replays from its printed seed")
	quick := fs.Bool("quick", false, "CI smoke subset (1 benchmark, 3 stacks, core schedules)")
	benchmarks := fs.String("benchmark", "", "comma-separated ports to sweep (default: IS,EP,CG; quick: IS)")
	stacks := fs.String("stack", "", "comma-separated store stacks (default: all; see -list)")
	schedules := fs.String("schedule", "", "comma-separated schedule names (default: every applicable)")
	list := fs.Bool("list", false, "list stacks and failpoint schedules, then exit")
	verbose := fs.Bool("v", false, "print fired failpoints for passing runs too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("store stacks:")
		for _, s := range harness.ChaosStacks() {
			fmt.Printf("  %s\n", s)
		}
		fmt.Println("failpoint schedules:")
		for _, s := range harness.ChaosSchedules(false) {
			line := fmt.Sprintf("  %-20s write=%q", s.Name, s.Write)
			if s.Restart != "" {
				line += fmt.Sprintf(" restart=%q", s.Restart)
			}
			if s.Needs != "" {
				line += fmt.Sprintf(" (needs %s)", s.Needs)
			}
			fmt.Println(line)
		}
		return nil
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		var out []string
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
		return out
	}
	dir, err := os.MkdirTemp("", "autocheck-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := harness.RunChaosValidation(dir, harness.ChaosOptions{
		Seed:       *seed,
		Quick:      *quick,
		Benchmarks: split(*benchmarks),
		Stacks:     split(*stacks),
		Schedules:  split(*schedules),
	})
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatChaos(rep))
	if *verbose {
		for _, r := range rep.Runs {
			if r.OK && len(r.EventLog) > 0 {
				fmt.Printf("  %s/%s/%s fired: %s\n", r.Bench, r.Stack, r.Schedule, strings.Join(r.EventLog, ", "))
			}
		}
	}
	if rep.Failures > 0 {
		return fmt.Errorf("chaos: %d of %d runs failed (replay commands above)", rep.Failures, len(rep.Runs))
	}
	return nil
}

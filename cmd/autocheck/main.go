// Command autocheck is the command-line front end of the AutoCheck
// reproduction.
//
//	autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg]
//	autocheck trace    -file prog.mc [-o trace.txt]
//	autocheck table2 | table3 [-workers K] | table4
//	autocheck validate [-store file|memory|sharded] [-level L1..L4]
//	                   [-async] [-incremental] [-keyframe N] [-shard-workers K]
//	autocheck list
//
// `analyze` compiles a mini-C program, executes it under the tracing
// interpreter, and prints the critical variables to checkpoint for the
// given main-computation-loop range. The table subcommands regenerate the
// paper's evaluation tables over the 14 benchmark ports; `validate` runs
// the §VI-B fail-stop/restart protocol, optionally through any backend
// and write-path decorator of the internal/store checkpoint engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"autocheck"
	"autocheck/internal/checkpoint"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/store"
	"autocheck/internal/trace"
	"autocheck/internal/validate"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "table2":
		err = cmdTable2()
	case "table3":
		err = cmdTable3(os.Args[2:])
	case "table4":
		err = cmdTable4()
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "list":
		err = cmdList()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "autocheck: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "autocheck: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg]
      -file    mini-C source file (compiled and traced)
      -trace   pre-generated trace file (alternative to -file)
      -func    function containing the main computation loop (default main)
      -start   main loop start line
      -end     main loop end line
      -workers parallel pre-processing workers (0 = serial)
      -ddg     also print the contracted DDG
  autocheck trace    -file prog.mc [-o trace.txt]
      -o       output trace file (default stdout)
  autocheck table2              regenerate Table II  (critical variables)
  autocheck table3 [-workers K] regenerate Table III (analysis cost)
      -workers parallel pre-processing workers (default 48)
  autocheck table4              regenerate Table IV  (checkpoint storage)
  autocheck validate [storage flags]
                                run the fail-stop/restart validation (§VI-B)
      -store         checkpoint storage backend: file, memory, or sharded
                     (default file)
      -level         checkpoint reliability level 1-4 or L1-L4 (default L1:
                     L2 adds a partner copy, L3 XOR parity, L4 fsync)
      -async         double-buffered asynchronous checkpoint writes
      -incremental   delta checkpoints: re-write only changed variables,
                     with periodic full keyframes
      -keyframe N    incremental: full checkpoint every N writes (default 8)
      -shard-workers sharded backend write pool size (default 4)
  autocheck list                list the 14 benchmark ports`)
}

func compileFile(path string) (*autocheck.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return autocheck.CompileProgram(string(src))
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file (compiled and traced)")
	traceFile := fs.String("trace", "", "pre-generated trace file (alternative to -file)")
	fn := fs.String("func", "main", "function containing the main computation loop")
	start := fs.Int("start", 0, "main loop start line")
	end := fs.Int("end", 0, "main loop end line")
	workers := fs.Int("workers", 0, "parallel pre-processing workers (0 = serial)")
	ddg := fs.Bool("ddg", false, "also print the contracted DDG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "" && *traceFile == "") || *start == 0 || *end == 0 {
		return fmt.Errorf("analyze needs -file or -trace, plus -start and -end")
	}
	spec := autocheck.LoopSpec{Function: *fn, StartLine: *start, EndLine: *end}
	opts := autocheck.DefaultOptions()
	opts.Workers = *workers
	opts.BuildDDG = *ddg
	var res *autocheck.Result
	var err error
	if *traceFile != "" {
		// Trace-only mode: induction detection uses the dynamic heuristic.
		res, err = autocheck.AnalyzeFile(*traceFile, spec, opts)
	} else {
		var mod *autocheck.Module
		mod, err = compileFile(*file)
		if err != nil {
			return err
		}
		var recs []autocheck.Record
		recs, _, err = autocheck.TraceProgram(mod)
		if err != nil {
			return err
		}
		opts.Module = mod
		res, err = autocheck.Analyze(recs, spec, opts)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d records (A=%d B=%d C=%d)\n",
		res.Stats.Records, res.Stats.RegionA, res.Stats.RegionB, res.Stats.RegionC)
	fmt.Printf("MLI variables: ")
	for i, v := range res.MLI {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(v.Name)
	}
	fmt.Println()
	fmt.Println("critical variables to checkpoint:")
	for _, c := range res.Critical {
		where := c.Fn
		if where == "" {
			where = "global"
		}
		fmt.Printf("  %-24s %-8s %8d bytes  (%s)\n", c.Name, c.Type, c.SizeBytes, where)
	}
	if *ddg && res.Contracted != nil {
		fmt.Println("\ncontracted DDG (DOT):")
		fmt.Print(res.Contracted.DOT("contracted"))
	}
	fmt.Printf("timing: pre=%v dep=%v identify=%v total=%v\n",
		res.Timing.Pre, res.Timing.Dep, res.Timing.Identify, res.Timing.Total)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file")
	out := fs.String("o", "", "output trace file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("trace needs -file")
	}
	mod, err := compileFile(*file)
	if err != nil {
		return err
	}
	recs, progOut, err := autocheck.TraceProgram(mod)
	if err != nil {
		return err
	}
	data := trace.EncodeAll(recs)
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\nprogram output: %s",
		len(recs), len(data), *out, progOut)
	return nil
}

func cmdTable2() error {
	rows, err := harness.RunTable2()
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable2(rows))
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	workers := fs.Int("workers", 48, "parallel pre-processing workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := harness.RunTable3(*workers)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable3(rows, *workers))
	return nil
}

func cmdTable4() error {
	rows, err := harness.RunTable4()
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable4(rows))
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	storeKind := fs.String("store", "file", "checkpoint storage backend (file, memory, sharded)")
	level := fs.String("level", "L1", "checkpoint reliability level (1-4 or L1-L4)")
	async := fs.Bool("async", false, "double-buffered asynchronous checkpoint writes")
	incremental := fs.Bool("incremental", false, "delta checkpoints with periodic keyframes")
	keyframe := fs.Int("keyframe", 8, "incremental: full checkpoint every N writes")
	shardWorkers := fs.Int("shard-workers", store.DefaultShardWorkers, "sharded backend write pool size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := store.ParseKind(*storeKind)
	if err != nil {
		return err
	}
	lvl, err := checkpoint.ParseLevel(*level)
	if err != nil {
		return err
	}
	opts := validate.Options{
		Level: lvl,
		Store: store.Config{
			Kind:        kind,
			Workers:     *shardWorkers,
			Async:       *async,
			Incremental: *incremental,
			Keyframe:    *keyframe,
		},
	}
	dir, err := os.MkdirTemp("", "autocheck-validate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("storage: backend=%s level=%s async=%v incremental=%v\n",
		kind, lvl, *async, *incremental)
	rows, err := harness.RunValidationWith(dir, opts)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatValidation(rows))
	return nil
}

func cmdList() error {
	for _, b := range progs.All() {
		spec, err := b.Spec(0)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s LOC=%-4d MCLR=%d-%d  %s\n", b.Name, b.LOC(), spec.StartLine, spec.EndLine, b.Description)
	}
	return nil
}

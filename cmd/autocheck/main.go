// Command autocheck is the command-line front end of the AutoCheck
// reproduction.
//
//	autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg]
//	autocheck explain  -file prog.mc -start N -end M [-func main]
//	autocheck doctor   [-addr HOST:PORT | -addrs A,B,C | -dir DIR [-store KIND]]
//	autocheck trace    -file prog.mc [-o trace.txt]
//	autocheck table2 | table3 [-workers K] | table4
//	autocheck validate [-store file|memory|sharded|remote|replicated]
//	                   [-addr HOST:PORT] [-addrs A,B,C] [-write-quorum W] [-read-quorum R]
//	                   [-cache-mb N] [-benchmark NAME] [-level L1..L4]
//	                   [-async] [-incremental] [-keyframe N] [-shard-workers K]
//	autocheck chaos    [-seed N] [-quick] [-benchmark B,..] [-stack S,..] [-schedule X,..]
//	autocheck serve    -addr HOST:PORT [-cluster N] [-store file|memory|sharded] [-dir DIR]
//	autocheck loadgen  -addr HOST:PORT [-tenants N] [-clients N] [-seed N] [-quick] [-strict]
//	autocheck list
//
// `analyze` compiles a mini-C program, executes it under the tracing
// interpreter, and prints the critical variables to checkpoint for the
// given main-computation-loop range. The table subcommands regenerate the
// paper's evaluation tables over the 14 benchmark ports; `validate` runs
// the §VI-B fail-stop/restart protocol, optionally through any backend
// and write-path decorator of the internal/store checkpoint engine —
// including the networked checkpoint service started by `serve`, reached
// with `-store remote -addr` and optionally fronted by the read-through
// cache tier (`-cache-mb`), or a whole cluster of them (`serve -cluster
// 3`) behind the replicated quorum tier (`-store replicated -addrs`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"autocheck"
	"autocheck/internal/admission"
	"autocheck/internal/analysis"
	"autocheck/internal/checkpoint"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
	"autocheck/internal/trace"
	"autocheck/internal/validate"
)

// exitError carries a typed process exit code alongside the failure, so
// scripted callers (the doctor's CI smoke job, health probes) can branch
// on the failure class instead of parsing messages.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "doctor":
		err = cmdDoctor(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "table2":
		err = cmdTable2(os.Args[2:])
	case "table3":
		err = cmdTable3(os.Args[2:])
	case "table4":
		err = cmdTable4()
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "list":
		err = cmdList()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "autocheck: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "autocheck: %v\n", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg] [-stream] [-online]
      -file    mini-C source file (compiled and traced)
      -trace   pre-generated trace file, text or binary (alternative to -file)
      -func    function containing the main computation loop (default main)
      -start   main loop start line
      -end     main loop end line
      -workers parallel pre-processing workers (0 = serial; text format only)
      -stream  analyze the trace in bounded streaming passes
               (O(variables) memory instead of O(records))
      -online  feed the analysis engine straight from the tracer while the
               program runs: no trace bytes at all (requires -file)
      -ddg     also print the contracted DDG
      -addr    ship the trace to a "serve -ingest" service instead of
               analyzing locally (one-shot POST by default)
      -chunk-bytes with -addr: stream through a resumable session in
               chunks of this size; the client resumes across service
               restarts (0 = one-shot)
      -chunk-delay with -addr: pause between chunk uploads
      -ns      with -addr: tenant namespace for admission control
  autocheck trace    -file prog.mc [-o trace.out] [-trace-format text|binary]
      -o            output trace file (default stdout)
      -trace-format output encoding; binary is emitted directly by the
                    tracer without materializing records (default text)
  autocheck convert  -in trace.in -out trace.out [-to text|binary]
                                convert between the trace encodings
                                (input format auto-detected; default -to
                                is the opposite of the input)
  autocheck explain  -file prog.mc -start N -end M [-func main]
                                analyze and print the per-variable
                                provenance trail: the classification
                                listing (identical to analyze) plus, for
                                every MLI variable, the accumulated
                                signals and the rule that decided
  autocheck doctor   [-addr HOST:PORT | -addrs A,B,C | -dir DIR [-store KIND]]
                                probe a checkpoint deployment's health;
                                typed exit codes per failure class:
                                0 healthy, 10 connectivity, 11 canary
                                round trip, 12 chain/CRC integrity,
                                13 metrics endpoint, 14 replica quorum
                                unavailable or divergent
      -addr          live mode: service address (checks /v1/stats, a
                     canary write/read/delete, and /v1/metrics)
      -addrs         cluster mode: comma-separated replica addresses;
                     probes every node's health, then runs a quorum
                     canary and a cross-replica divergence scan through
                     the replicated tier
      -write-quorum, -read-quorum
                     cluster mode quorums (0 = majority)
      -ns            live mode: canary namespace (default doctor)
      -dir, -store   local mode: open the stack and walk every stored
                     key's dependency chain, plus the canary round trip
  autocheck table2 [-workers K] regenerate Table II  (critical variables)
      -workers analyze the 14 ports concurrently with K engines (0 = serial)
  autocheck table3 [-workers K] regenerate Table III (analysis cost)
      -workers parallel pre-processing workers (default 48)
  autocheck table4              regenerate Table IV  (checkpoint storage)
  autocheck validate [storage flags]
                                run the fail-stop/restart validation (§VI-B)
      -store         checkpoint storage backend: file, memory, sharded,
                     remote, or replicated (default file)
      -addr          remote backend: checkpoint service address
      -addrs         replicated backend: comma-separated replica service
                     addresses (one per node)
      -write-quorum  replicated: acks required per write (0 = majority)
      -read-quorum   replicated: replicas consulted per read (0 = majority)
      -hedge-after   replicated: hedge reads after this delay
                     (0 = adaptive p95, negative = off)
      -cache-mb N    read-through LRU cache over the base backend (MB)
      -benchmark     validate only this port (default: all 14)
      -level         checkpoint reliability level 1-4 or L1-L4 (default L1:
                     L2 adds a partner copy, L3 XOR parity, L4 fsync)
      -async         double-buffered asynchronous checkpoint writes
      -incremental   delta checkpoints: re-write only changed variables,
                     with periodic full keyframes
      -keyframe N    incremental: full checkpoint every N writes (default 8)
      -shard-workers sharded backend write pool size (default 4)
  autocheck chaos [-seed N] [-quick] [-benchmark B,...] [-stack S,...]
                  [-schedule NAME,...] [-list] [-v]
                                deterministic fault-injection sweep:
                                benchmark x store stack x failpoint
                                schedule, each run killed by its injected
                                fault, restarted, and verified
                                byte-for-byte against the failure-free
                                run; failures print the seed + schedule
                                that replay them exactly
      -seed          fault randomness root (default 1)
      -quick         CI smoke subset
      -list          list stacks and schedules
  autocheck serve    -addr HOST:PORT [-cluster N] [-store file|memory|sharded] [-dir DIR]
                                run the checkpoint storage service that
                                "-store remote" clients checkpoint into
      -addr          listen address (default 127.0.0.1:9473)
      -cluster       run N independent nodes in one process (ports count
                     up from -addr; a :0 base lets the kernel pick all of
                     them); prints the -addrs list replicated clients use
      -store         per-namespace backend kind (default file)
      -dir           storage root; one subdirectory per client namespace
                     (default: a fresh temp dir)
      -sync          fsync every write
      -shard-workers sharded backend write pool size (default 4)
      -max-inflight  bound on concurrently served requests; excess gets
                     503 + Retry-After, which clients absorb by retrying
      -tenant-slots  per-tenant (namespace) concurrent request cap
      -tenant-rate   per-tenant sustained requests/sec (token bucket)
      -tenant-burst  token-bucket burst (0 = rate rounded up)
      -queue-depth   per-tenant wait queue past -max-inflight, drained in
                     weighted priority order (restart > interactive >
                     ingest > scrub); overflow sheds carry a Retry-After
                     computed from queue depth and drain rate
      -ingest        also mount the trace-ingest service: one-shot
                     POST /v1/analyze/{ns} plus resumable chunked
                     sessions under /v1/sessions (single node only)
      -ingest-sessions per-namespace live session quota (default 8)
      -ingest-inflight per-namespace in-flight ingest cap (default 16)
      -ingest-ttl    idle session eviction TTL (default 2m); evicted
                     sessions recover from the store on the next request
  autocheck loadgen  -addr HOST:PORT [-tenants N] [-clients N] [-ops N]
                     [-seed N] [-put-mix F] [-value-bytes N] [-think D]
                     [-schedule SPEC] [-quick] [-strict] [-o FILE]
                                multi-tenant scaling harness: concurrent
                                simulated clients spread across tenant
                                namespaces drive seeded checkpoint
                                Put/Get mixes (interactive vs restart
                                admission classes) against a running
                                serve, then per-tenant throughput and
                                latency percentiles are appended to the
                                JSON perf trajectory as loadgen-* entries
      -schedule      client-side faultinject schedule, armed per client
                     with seed+client (e.g. store.remote.do=error@p=0.05)
      -quick         CI smoke subset (<=16 clients, <=25 ops each)
      -strict        exit nonzero on any failed op or silent tenant
  autocheck bench [-o BENCH_trace.json] [-benchmark HACC] [-scale N]
                                measure the trace hot path (text serial /
                                parallel / binary parse + sizes) and the
                                analysis engine adapters (materialized /
                                streaming / online, plus the AnalyzeMany
                                pool over all 14 ports) and write the
                                JSON perf trajectory
  autocheck list                list the 14 benchmark ports`)
}

func compileFile(path string) (*autocheck.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return autocheck.CompileProgram(string(src))
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file (compiled and traced)")
	traceFile := fs.String("trace", "", "pre-generated trace file (alternative to -file)")
	fn := fs.String("func", "main", "function containing the main computation loop")
	start := fs.Int("start", 0, "main loop start line")
	end := fs.Int("end", 0, "main loop end line")
	workers := fs.Int("workers", 0, "parallel pre-processing workers (0 = serial)")
	stream := fs.Bool("stream", false, "streaming analysis (bounded memory, multiple passes)")
	online := fs.Bool("online", false, "analyze inside the tracer while the program runs (no trace bytes)")
	ddg := fs.Bool("ddg", false, "also print the contracted DDG")
	addr := fs.String("addr", "", "ship the trace to the ingest service at HOST:PORT instead of analyzing locally")
	chunkBytes := fs.Int("chunk-bytes", 0, "with -addr: stream the trace through a resumable session in chunks of this size (0 = one-shot)")
	chunkDelay := fs.Duration("chunk-delay", 0, "with -addr: pause between chunk uploads (restart smoke tests)")
	namespace := fs.String("ns", "default", "with -addr: tenant namespace for admission control")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "" && *traceFile == "") || *start == 0 || *end == 0 {
		return fmt.Errorf("analyze needs -file or -trace, plus -start and -end")
	}
	spec := autocheck.LoopSpec{Function: *fn, StartLine: *start, EndLine: *end}
	if *addr != "" {
		if *online || *ddg || *stream || *workers != 0 {
			return fmt.Errorf("analyze -addr ships the trace to a service; -online, -ddg, -stream and -workers are local modes")
		}
		return analyzeRemote(*addr, *namespace, *file, *traceFile, spec, *chunkBytes, *chunkDelay)
	}
	opts := autocheck.DefaultOptions()
	opts.Workers = *workers
	opts.Streaming = *stream
	opts.BuildDDG = *ddg
	var res *autocheck.Result
	var err error
	switch {
	case *online:
		// Online mode: the engine observes records straight from the
		// tracer as the program executes — nothing is encoded or parsed.
		if *file == "" || *traceFile != "" {
			return fmt.Errorf("analyze -online runs the program with the engine attached and needs -file, not -trace (use -stream to analyze a pre-generated trace)")
		}
		if *ddg {
			return fmt.Errorf("-ddg requires offline analysis (drop -online)")
		}
		if *stream {
			return fmt.Errorf("-online and -stream are different modes: online analyzes while the program runs, -stream re-reads a trace in bounded passes")
		}
		if *workers != 0 {
			return fmt.Errorf("-workers only parallelizes text-trace decoding; online mode has no trace to decode (drop -workers)")
		}
		var mod *autocheck.Module
		mod, err = compileFile(*file)
		if err != nil {
			return err
		}
		opts.Module = mod
		res, _, err = autocheck.AnalyzeProgramOnline(mod, spec, opts)
	case *traceFile != "":
		// Trace-only mode: induction detection uses the dynamic heuristic.
		res, err = autocheck.AnalyzeFile(*traceFile, spec, opts)
	default:
		var mod *autocheck.Module
		mod, err = compileFile(*file)
		if err != nil {
			return err
		}
		opts.Module = mod
		if *stream {
			// Honor -stream in -file mode too: trace straight into the
			// compact binary encoding (no []Record materialized) and
			// analyze it in bounded passes.
			var data []byte
			data, _, err = autocheck.TraceProgramBinary(mod)
			if err != nil {
				return err
			}
			res, err = autocheck.AnalyzeBytes(data, spec, opts)
		} else {
			var recs []autocheck.Record
			recs, _, err = autocheck.TraceProgram(mod)
			if err != nil {
				return err
			}
			res, err = autocheck.Analyze(recs, spec, opts)
		}
	}
	if err != nil {
		return err
	}
	printAnalysis(res)
	if *ddg && res.Contracted != nil {
		fmt.Println("\ncontracted DDG (DOT):")
		fmt.Print(res.Contracted.DOT("contracted"))
	}
	fmt.Printf("timing: pre=%v dep=%v identify=%v total=%v\n",
		res.Timing.Pre, res.Timing.Dep, res.Timing.Identify, res.Timing.Total)
	return nil
}

// analyzeRemote ships a trace to the ingest service and prints the
// result through the same renderer as a local run, so the outputs are
// byte-identical (modulo the timing line, which reports the service's
// clock). With chunkBytes > 0 the trace streams through a resumable
// session — the client rides out service restarts mid-stream.
func analyzeRemote(addr, namespace, file, traceFile string, spec autocheck.LoopSpec, chunkBytes int, chunkDelay time.Duration) error {
	var data []byte
	var err error
	if traceFile != "" {
		if data, err = os.ReadFile(traceFile); err != nil {
			return err
		}
	} else {
		mod, merr := compileFile(file)
		if merr != nil {
			return merr
		}
		if data, _, err = autocheck.TraceProgramBinary(mod); err != nil {
			return err
		}
	}
	cli, err := analysis.NewClient(addr)
	if err != nil {
		return err
	}
	cli.Namespace = namespace
	cli.ChunkDelay = chunkDelay
	var res *autocheck.Result
	if chunkBytes > 0 {
		res, err = cli.AnalyzeChunked(data, spec, chunkBytes)
	} else {
		res, err = cli.Analyze(data, spec)
	}
	if err != nil {
		return err
	}
	printAnalysis(res)
	fmt.Printf("timing: pre=%v dep=%v identify=%v total=%v\n",
		res.Timing.Pre, res.Timing.Dep, res.Timing.Identify, res.Timing.Total)
	return nil
}

// printAnalysis renders the classification part of an analysis result.
// Both `analyze` and `explain` go through it, so an explain run's
// critical-variable listing is byte-identical to analyze's on the same
// trace.
func printAnalysis(res *autocheck.Result) {
	fmt.Printf("trace: %d records (A=%d B=%d C=%d)\n",
		res.Stats.Records, res.Stats.RegionA, res.Stats.RegionB, res.Stats.RegionC)
	fmt.Printf("MLI variables: ")
	for i, v := range res.MLI {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(v.Name)
	}
	fmt.Println()
	fmt.Println("critical variables to checkpoint:")
	for _, c := range res.Critical {
		where := c.Fn
		if where == "" {
			where = "global"
		}
		fmt.Printf("  %-24s %-8s %8d bytes  (%s)\n", c.Name, c.Type, c.SizeBytes, where)
	}
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file")
	out := fs.String("o", "", "output trace file (default stdout)")
	formatName := fs.String("trace-format", "text", "output encoding: text or binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("trace needs -file")
	}
	format, err := trace.ParseFormat(*formatName)
	if err != nil {
		return err
	}
	mod, err := compileFile(*file)
	if err != nil {
		return err
	}
	dst := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			return err
		}
		dst = f
	}
	// The tracer streams into the encoder; no []Record is materialized.
	w := trace.NewRecordWriter(dst, format)
	progOut, err := autocheck.TraceProgramTo(mod, w)
	if f != nil {
		// Close errors count: filesystems may defer write failures to
		// close, and reporting success over a truncated file would let a
		// later analyze run silently accept a partial trace.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			// Don't leave a well-formed-looking prefix of the trace behind.
			os.Remove(*out)
			return err
		}
		fmt.Printf("wrote %d records (%s format) to %s\nprogram output: %s",
			w.Count(), format, *out, progOut)
		return nil
	}
	return err
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (format auto-detected)")
	out := fs.String("out", "", "output trace file")
	to := fs.String("to", "", "target encoding: text or binary (default: the other one)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	from := trace.DetectFormat(data)
	target := trace.FormatText
	if from == trace.FormatText {
		target = trace.FormatBinary
	}
	if *to != "" {
		if target, err = trace.ParseFormat(*to); err != nil {
			return err
		}
	}
	recs, err := trace.ParseBytes(data)
	if err != nil {
		return err
	}
	converted := trace.Encode(recs, target)
	if err := os.WriteFile(*out, converted, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s (%s, %d bytes) -> %s (%s, %d bytes): %d records, %.2fx size\n",
		*in, from, len(data), *out, target, len(converted), len(recs),
		float64(len(converted))/float64(len(data)))
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	workers := fs.Int("workers", 0, "analyze the 14 ports concurrently with this many engines (0 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rows []harness.Table2Row
	var err error
	if *workers > 0 {
		rows, err = harness.RunTable2Parallel(*workers)
	} else {
		rows, err = harness.RunTable2()
	}
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable2(rows))
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	workers := fs.Int("workers", 48, "parallel pre-processing workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := harness.RunTable3(*workers)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable3(rows, *workers))
	return nil
}

func cmdTable4() error {
	rows, err := harness.RunTable4()
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable4(rows))
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	storeKind := fs.String("store", "file", "checkpoint storage backend (file, memory, sharded, remote, replicated)")
	addr := fs.String("addr", "", "remote backend: checkpoint service address")
	addrsFlag := fs.String("addrs", "", "replicated backend: comma-separated replica service addresses")
	writeQuorum := fs.Int("write-quorum", 0, "replicated: acks required per write (0 = majority)")
	readQuorum := fs.Int("read-quorum", 0, "replicated: replicas consulted per read (0 = majority)")
	hedgeAfter := fs.Duration("hedge-after", 0, "replicated: hedge reads after this delay (0 = adaptive p95, negative = off)")
	cacheMB := fs.Int("cache-mb", 0, "read-through LRU cache over the base backend (MB, 0 = off)")
	benchName := fs.String("benchmark", "", "validate only this port (default: all 14)")
	level := fs.String("level", "L1", "checkpoint reliability level (1-4 or L1-L4)")
	async := fs.Bool("async", false, "double-buffered asynchronous checkpoint writes")
	incremental := fs.Bool("incremental", false, "delta checkpoints with periodic keyframes")
	keyframe := fs.Int("keyframe", 8, "incremental: full checkpoint every N writes")
	shardWorkers := fs.Int("shard-workers", store.DefaultShardWorkers, "sharded backend write pool size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := store.ParseKind(*storeKind)
	if err != nil {
		return err
	}
	if kind == store.KindRemote && *addr == "" {
		return fmt.Errorf("validate -store remote needs -addr (start one with `autocheck serve`)")
	}
	if kind != store.KindRemote && *addr != "" {
		return fmt.Errorf("-addr only applies to -store remote")
	}
	addrs := splitAddrs(*addrsFlag)
	if kind == store.KindReplicated && len(addrs) == 0 {
		return fmt.Errorf("validate -store replicated needs -addrs (start a cluster with `autocheck serve -cluster 3`)")
	}
	if kind != store.KindReplicated && len(addrs) > 0 {
		return fmt.Errorf("-addrs only applies to -store replicated")
	}
	lvl, err := checkpoint.ParseLevel(*level)
	if err != nil {
		return err
	}
	opts := validate.Options{
		Level: lvl,
		Store: store.Config{
			Kind:        kind,
			Addr:        *addr,
			Addrs:       addrs,
			WriteQuorum: *writeQuorum,
			ReadQuorum:  *readQuorum,
			HedgeAfter:  *hedgeAfter,
			CacheMB:     *cacheMB,
			Workers:     *shardWorkers,
			Async:       *async,
			Incremental: *incremental,
			Keyframe:    *keyframe,
		},
	}
	dir, err := os.MkdirTemp("", "autocheck-validate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("storage: backend=%s level=%s async=%v incremental=%v",
		kind, lvl, *async, *incremental)
	if kind == store.KindRemote {
		fmt.Printf(" addr=%s", *addr)
	}
	if kind == store.KindReplicated {
		w, r := *writeQuorum, *readQuorum
		if w <= 0 {
			w = len(addrs)/2 + 1
		}
		if r <= 0 {
			r = len(addrs)/2 + 1
		}
		fmt.Printf(" replicas=%d write-quorum=%d read-quorum=%d addrs=%s",
			len(addrs), w, r, strings.Join(addrs, ","))
	}
	if *cacheMB > 0 {
		fmt.Printf(" cache=%dMB", *cacheMB)
	}
	fmt.Println()
	var names []string
	if *benchName != "" {
		names = []string{*benchName}
	}
	rows, err := harness.RunValidationBenchmarks(dir, opts, names)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatValidation(rows))
	return nil
}

// splitAddrs parses a comma-separated address list, dropping empty
// elements and surrounding whitespace.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9473", "listen address")
	cluster := fs.Int("cluster", 1, "run this many independent service nodes in one process")
	storeKind := fs.String("store", "file", "per-namespace backend kind (file, memory, sharded)")
	dir := fs.String("dir", "", "storage root directory (default: a fresh temp dir)")
	syncWrites := fs.Bool("sync", false, "fsync every write")
	shardWorkers := fs.Int("shard-workers", store.DefaultShardWorkers, "sharded backend write pool size")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "bound on concurrently served requests")
	tenantSlots := fs.Int("tenant-slots", 0, "per-tenant concurrent request cap (0 = unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant sustained requests/sec token-bucket rate (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = rate rounded up)")
	queueDepth := fs.Int("queue-depth", 0, "per-tenant wait queue past -max-inflight, drained in weighted priority order (0 = shed immediately)")
	ingest := fs.Bool("ingest", false, "also mount the trace-ingest service (one-shot analyze + chunked sessions)")
	ingestSessions := fs.Int("ingest-sessions", analysis.DefaultMaxSessions, "per-namespace live session quota (with -ingest)")
	ingestInFlight := fs.Int("ingest-inflight", analysis.DefaultMaxInFlight, "per-namespace in-flight ingest request cap (with -ingest)")
	ingestTTL := fs.Duration("ingest-ttl", analysis.DefaultIdleTTL, "idle session eviction TTL (with -ingest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := store.ParseKind(*storeKind)
	if err != nil {
		return err
	}
	if *cluster < 1 {
		return fmt.Errorf("serve: -cluster must be at least 1")
	}
	adm := admission.Config{
		TenantSlots: *tenantSlots,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
		QueueDepth:  *queueDepth,
	}
	if *cluster > 1 {
		if *ingest {
			return fmt.Errorf("serve: -ingest runs on a single node (sessions are per-node state); drop -cluster")
		}
		return serveCluster(*cluster, *addr, kind, *dir, *syncWrites, *shardWorkers, *maxInFlight, adm)
	}
	root := *dir
	if root == "" && kind != store.KindMemory {
		if root, err = os.MkdirTemp("", "autocheck-serve-*"); err != nil {
			return err
		}
		fmt.Printf("storage root: %s\n", root)
	}
	scfg := server.Config{
		Store:       store.Config{Kind: kind, Dir: root, Sync: *syncWrites, Workers: *shardWorkers},
		MaxInFlight: *maxInFlight,
		Admission:   adm,
	}
	if *ingest {
		scfg.Ingest = &analysis.Config{
			MaxSessions: *ingestSessions,
			MaxInFlight: *ingestInFlight,
			IdleTTL:     *ingestTTL,
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr, ready) }()
	var bound string
	select {
	case bound = <-ready:
	case err := <-serveErr:
		return err
	}
	// One structured line each for startup and shutdown: greppable
	// key=value pairs that log collectors and the doctor smoke job can
	// consume without parsing prose.
	fmt.Printf("serve: start addr=%s store=%s dir=%q max-inflight=%d sync=%v ingest=%v\n",
		bound, kind, root, *maxInFlight, *syncWrites, *ingest)
	fmt.Printf("clients: autocheck validate -store remote -addr %s\n", bound)
	if *ingest {
		fmt.Printf("ingest:  autocheck analyze -addr %s -trace T -start N -end M [-chunk-bytes K]\n", bound)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("\n%v: draining and shutting down...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		rep := srv.Stats()
		fmt.Printf("serve: stop addr=%s requests=%d shed=%d namespaces=%d puts=%d gets=%d bytes-written=%d bytes-read=%d cache-hits=%d cache-follower-hits=%d cache-misses=%d\n",
			bound, rep.Requests, rep.Rejected, rep.Namespaces,
			rep.Store.Puts, rep.Store.Gets, rep.Store.BytesWritten, rep.Store.BytesRead,
			rep.Store.CacheHits, rep.Store.CacheFollowerHits, rep.Store.CacheMisses)
		return nil
	}
}

// serveCluster runs N independent checkpoint services in one process —
// the replicated tier's development and smoke-test topology (real
// deployments run one `autocheck serve` per node). Each node gets its
// own storage root and listener; with a fixed base port the nodes count
// up from it, and a `:0` base lets the kernel pick every port.
func serveCluster(n int, addr string, kind store.Kind, dir string, syncWrites bool, shardWorkers, maxInFlight int, adm admission.Config) error {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("serve -cluster: bad -addr %q: %w", addr, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("serve -cluster: bad -addr port %q: %w", portStr, err)
	}
	root := dir
	if root == "" && kind != store.KindMemory {
		if root, err = os.MkdirTemp("", "autocheck-cluster-*"); err != nil {
			return err
		}
		fmt.Printf("storage root: %s\n", root)
	}
	var (
		srvs   []*server.Server
		bounds []string
	)
	serveErr := make(chan error, n)
	for i := 0; i < n; i++ {
		nodeDir := ""
		if root != "" {
			nodeDir = filepath.Join(root, fmt.Sprintf("node%d", i))
		}
		srv, err := server.New(server.Config{
			Store:       store.Config{Kind: kind, Dir: nodeDir, Sync: syncWrites, Workers: shardWorkers},
			MaxInFlight: maxInFlight,
			Admission:   adm,
		})
		if err != nil {
			return err
		}
		nodeAddr := addr
		if basePort != 0 {
			nodeAddr = net.JoinHostPort(host, strconv.Itoa(basePort+i))
		}
		ready := make(chan string, 1)
		go func() { serveErr <- srv.ListenAndServe(nodeAddr, ready) }()
		var bound string
		select {
		case bound = <-ready:
		case err := <-serveErr:
			return err
		}
		srvs = append(srvs, srv)
		bounds = append(bounds, bound)
		fmt.Printf("serve: start node=%d addr=%s store=%s dir=%q max-inflight=%d sync=%v\n",
			i, bound, kind, nodeDir, maxInFlight, syncWrites)
	}
	fmt.Printf("clients: autocheck validate -store replicated -addrs %s\n", strings.Join(bounds, ","))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("\n%v: draining and shutting down %d nodes...\n", s, n)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		var firstErr error
		for i, srv := range srvs {
			if err := srv.Shutdown(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
			rep := srv.Stats()
			fmt.Printf("serve: stop node=%d addr=%s requests=%d shed=%d namespaces=%d puts=%d gets=%d bytes-written=%d bytes-read=%d\n",
				i, bounds[i], rep.Requests, rep.Rejected, rep.Namespaces,
				rep.Store.Puts, rep.Store.Gets, rep.Store.BytesWritten, rep.Store.BytesRead)
		}
		return firstErr
	}
}

func cmdList() error {
	for _, b := range progs.All() {
		spec, err := b.Spec(0)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s LOC=%-4d MCLR=%d-%d  %s\n", b.Name, b.LOC(), spec.StartLine, spec.EndLine, b.Description)
	}
	return nil
}

// Command autocheck is the command-line front end of the AutoCheck
// reproduction.
//
//	autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg]
//	autocheck trace    -file prog.mc [-o trace.txt]
//	autocheck table2 | table3 [-workers K] | table4 | validate
//	autocheck list
//
// `analyze` compiles a mini-C program, executes it under the tracing
// interpreter, and prints the critical variables to checkpoint for the
// given main-computation-loop range. The table subcommands regenerate the
// paper's evaluation tables over the 14 benchmark ports; `validate` runs
// the §VI-B fail-stop/restart protocol.
package main

import (
	"flag"
	"fmt"
	"os"

	"autocheck"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "table2":
		err = cmdTable2()
	case "table3":
		err = cmdTable3(os.Args[2:])
	case "table4":
		err = cmdTable4()
	case "validate":
		err = cmdValidate()
	case "list":
		err = cmdList()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "autocheck: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "autocheck: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  autocheck analyze  -file prog.mc -start N -end M [-func main] [-workers K] [-ddg]
  autocheck trace    -file prog.mc [-o trace.txt]
  autocheck table2              regenerate Table II  (critical variables)
  autocheck table3 [-workers K] regenerate Table III (analysis cost)
  autocheck table4              regenerate Table IV  (checkpoint storage)
  autocheck validate            run the fail-stop/restart validation (§VI-B)
  autocheck list                list the 14 benchmark ports`)
}

func compileFile(path string) (*autocheck.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return autocheck.CompileProgram(string(src))
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file (compiled and traced)")
	traceFile := fs.String("trace", "", "pre-generated trace file (alternative to -file)")
	fn := fs.String("func", "main", "function containing the main computation loop")
	start := fs.Int("start", 0, "main loop start line")
	end := fs.Int("end", 0, "main loop end line")
	workers := fs.Int("workers", 0, "parallel pre-processing workers (0 = serial)")
	ddg := fs.Bool("ddg", false, "also print the contracted DDG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "" && *traceFile == "") || *start == 0 || *end == 0 {
		return fmt.Errorf("analyze needs -file or -trace, plus -start and -end")
	}
	spec := autocheck.LoopSpec{Function: *fn, StartLine: *start, EndLine: *end}
	opts := autocheck.DefaultOptions()
	opts.Workers = *workers
	opts.BuildDDG = *ddg
	var res *autocheck.Result
	var err error
	if *traceFile != "" {
		// Trace-only mode: induction detection uses the dynamic heuristic.
		res, err = autocheck.AnalyzeFile(*traceFile, spec, opts)
	} else {
		var mod *autocheck.Module
		mod, err = compileFile(*file)
		if err != nil {
			return err
		}
		var recs []autocheck.Record
		recs, _, err = autocheck.TraceProgram(mod)
		if err != nil {
			return err
		}
		opts.Module = mod
		res, err = autocheck.Analyze(recs, spec, opts)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d records (A=%d B=%d C=%d)\n",
		res.Stats.Records, res.Stats.RegionA, res.Stats.RegionB, res.Stats.RegionC)
	fmt.Printf("MLI variables: ")
	for i, v := range res.MLI {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(v.Name)
	}
	fmt.Println()
	fmt.Println("critical variables to checkpoint:")
	for _, c := range res.Critical {
		where := c.Fn
		if where == "" {
			where = "global"
		}
		fmt.Printf("  %-24s %-8s %8d bytes  (%s)\n", c.Name, c.Type, c.SizeBytes, where)
	}
	if *ddg && res.Contracted != nil {
		fmt.Println("\ncontracted DDG (DOT):")
		fmt.Print(res.Contracted.DOT("contracted"))
	}
	fmt.Printf("timing: pre=%v dep=%v identify=%v total=%v\n",
		res.Timing.Pre, res.Timing.Dep, res.Timing.Identify, res.Timing.Total)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file")
	out := fs.String("o", "", "output trace file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("trace needs -file")
	}
	mod, err := compileFile(*file)
	if err != nil {
		return err
	}
	recs, progOut, err := autocheck.TraceProgram(mod)
	if err != nil {
		return err
	}
	data := trace.EncodeAll(recs)
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\nprogram output: %s",
		len(recs), len(data), *out, progOut)
	return nil
}

func cmdTable2() error {
	rows, err := harness.RunTable2()
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable2(rows))
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	workers := fs.Int("workers", 48, "parallel pre-processing workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := harness.RunTable3(*workers)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable3(rows, *workers))
	return nil
}

func cmdTable4() error {
	rows, err := harness.RunTable4()
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable4(rows))
	return nil
}

func cmdValidate() error {
	dir, err := os.MkdirTemp("", "autocheck-validate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rows, err := harness.RunValidation(dir)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatValidation(rows))
	return nil
}

func cmdList() error {
	for _, b := range progs.All() {
		spec, err := b.Spec(0)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s LOC=%-4d MCLR=%d-%d  %s\n", b.Name, b.LOC(), spec.StartLine, spec.EndLine, b.Description)
	}
	return nil
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"autocheck/internal/core"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/trace"
)

// cmdBench measures the trace hot path — text serial/parallel parse,
// binary parse, and the two encodings' sizes — on one benchmark's trace,
// plus analysis throughput through the engine adapters (materialized,
// streaming, online) and the cross-trace AnalyzeMany pool over all 14
// ports, and appends the result to a JSON trajectory file, so the repo
// accumulates perf history without hand-running `go test -bench`.

// benchEntry is one measured configuration.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is one `autocheck bench` run.
type benchReport struct {
	Date            string       `json:"date"`
	Benchmark       string       `json:"benchmark"`
	Scale           int          `json:"scale"`
	Records         int          `json:"records"`
	TextBytes       int          `json:"text_bytes"`
	BinaryBytes     int          `json:"binary_bytes"`
	BinaryTextRatio float64      `json:"binary_text_ratio"`
	Entries         []benchEntry `json:"entries"`
}

func runOne(name string, totalBytes int, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.NsPerOp() > 0 {
		e.MBPerSec = float64(totalBytes) / (float64(r.NsPerOp()) / 1e9) / 1e6
	}
	fmt.Printf("  %-22s %10.2f ms/op  %8.1f MB/s  %8d allocs/op\n",
		name, float64(e.NsPerOp)/1e6, e.MBPerSec, e.AllocsPerOp)
	return e
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH_trace.json", "output JSON trajectory file (appended)")
	benchName := fs.String("benchmark", "HACC", "benchmark port to trace")
	scale := fs.Int("scale", 0, "input scale (0 = default)")
	workers := fs.Int("workers", 8, "parallel text parse workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench := progs.Get(*benchName)
	if bench == nil {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	// Load the trajectory up front: a file that exists but does not parse
	// is surfaced before minutes of benchmarking, not silently
	// overwritten — it is the accumulated history this command exists to
	// preserve.
	var history []benchReport
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &history); err != nil {
			return fmt.Errorf("existing %s is not a valid trajectory (fix or remove it): %w", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	p, err := harness.Prepare(bench, *scale)
	if err != nil {
		return err
	}
	rep := benchReport{
		Date:            time.Now().UTC().Format(time.RFC3339),
		Benchmark:       bench.Name,
		Scale:           *scale,
		Records:         len(p.Records),
		TextBytes:       len(p.Data),
		BinaryBytes:     len(p.BinData()),
		BinaryTextRatio: float64(len(p.BinData())) / float64(len(p.Data)),
	}
	fmt.Printf("%s trace: %d records, text %d B, binary %d B (%.0f%%)\n",
		bench.Name, rep.Records, rep.TextBytes, rep.BinaryBytes, 100*rep.BinaryTextRatio)
	rep.Entries = append(rep.Entries,
		runOne("text-parse-serial", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBytes(p.Data); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne(fmt.Sprintf("text-parse-parallel%d", *workers), len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBytesParallel(p.Data, *workers); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("binary-parse", len(p.BinData()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBinary(p.BinData()); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("text-encode", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trace.EncodeAll(p.Records)
			}
		}),
		runOne("binary-encode", len(p.BinData()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trace.EncodeBinary(p.Records)
			}
		}),
	)

	// Analysis throughput: the three engine adapters on this benchmark's
	// trace, then cross-trace parallelism (one engine per port) over all
	// 14 ports at several pool sizes.
	rep.Entries = append(rep.Entries,
		runOne("analyze-materialized", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Analyze(0); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("analyze-streaming", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeData(p.Data, 0, true); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("analyze-online", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeOnline(); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)
	fmt.Println("preparing all 14 ports for the cross-trace sweep...")
	var inputs []core.Input
	totalText := 0
	for _, bb := range progs.All() {
		pp, err := harness.Prepare(bb, 0)
		if err != nil {
			return err
		}
		inputs = append(inputs, pp.Input())
		totalText += len(pp.Data)
	}
	for _, w := range []int{1, 4, 8} {
		w := w
		rep.Entries = append(rep.Entries,
			runOne(fmt.Sprintf("analyze-many-%d", w), totalText, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.AnalyzeMany(inputs, w); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	history = append(history, rep)
	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(history), *out)
	return nil
}

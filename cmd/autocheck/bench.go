package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck"
	"autocheck/internal/analysis"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/harness"
	"autocheck/internal/interp"
	"autocheck/internal/obs"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// seedRemoteRestart opens a checkpoint context against the service under
// its own namespace, seeds it with 8 synthetic checkpoints (3 variables
// x 256 cells), and returns the context, a machine to restart into, and
// the byte size of one restart's reads.
func seedRemoteRestart(addr, name string, cacheMB int, reg *obs.Registry) (*checkpoint.Context, *interp.Machine, int, error) {
	mod, err := autocheck.CompileProgram(`int main() { return 0; }`)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := store.Config{Kind: store.KindRemote, Addr: addr, Dir: "bench-" + name, CacheMB: cacheMB, Obs: reg}
	ctx, err := checkpoint.NewContextStore(cfg, checkpoint.L1)
	if err != nil {
		return nil, nil, 0, err
	}
	m := interp.New(mod)
	cells := make([]trace.Value, 256)
	for _, base := range []uint64{0x1000, 0x2000, 0x3000} {
		for i := range cells {
			cells[i] = trace.IntValue(int64(base) + int64(i))
		}
		m.WriteRange(base, cells)
		ctx.Protect(fmt.Sprintf("v%x", base), base, int64(len(cells)*8))
	}
	for i := 1; i <= 8; i++ {
		if err := ctx.Checkpoint(m, int64(i)); err != nil {
			ctx.Close()
			return nil, nil, 0, err
		}
	}
	return ctx, interp.New(mod), int(ctx.LastBytes()), nil
}

// cmdBench measures the trace hot path — text serial/parallel parse,
// binary parse, and the two encodings' sizes — on one benchmark's trace,
// plus analysis throughput through the engine adapters (materialized,
// streaming, online) and the cross-trace AnalyzeMany pool over all 14
// ports, and appends the result to a JSON trajectory file, so the repo
// accumulates perf history without hand-running `go test -bench`.

// benchEntry is one measured configuration. Workers records the pool or
// chunk parallelism of configurations that have one, and Gomaxprocs the
// scheduler width the run actually had — a flat analyze-many curve means
// nothing without knowing the machine was 1-wide.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	P99Ns       int64   `json:"p99_ns,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Gomaxprocs  int     `json:"gomaxprocs,omitempty"`
}

// benchObsSnapshot condenses the telemetry registry that observed the
// remote series into the trajectory: p95 latency per store/server
// operation and the cache tier's hit rate, so perf history carries the
// distribution tails alongside the ns/op means.
type benchObsSnapshot struct {
	P95Ns        map[string]int64 `json:"p95_ns"`
	CacheHitRate float64          `json:"cache_hit_rate"`
}

// benchReport is one `autocheck bench` run.
type benchReport struct {
	Date            string            `json:"date"`
	Benchmark       string            `json:"benchmark"`
	Scale           int               `json:"scale"`
	Records         int               `json:"records"`
	TextBytes       int               `json:"text_bytes"`
	BinaryBytes     int               `json:"binary_bytes"`
	BinaryTextRatio float64           `json:"binary_text_ratio"`
	Entries         []benchEntry      `json:"entries"`
	Obs             *benchObsSnapshot `json:"obs,omitempty"`
}

func runOne(name string, totalBytes int, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
	}
	if r.NsPerOp() > 0 {
		e.MBPerSec = float64(totalBytes) / (float64(r.NsPerOp()) / 1e9) / 1e6
	}
	fmt.Printf("  %-22s %10.2f ms/op  %8.1f MB/s  %8d allocs/op\n",
		name, float64(e.NsPerOp)/1e6, e.MBPerSec, e.AllocsPerOp)
	return e
}

// withWorkers tags an entry with its parallelism knob.
func withWorkers(e benchEntry, w int) benchEntry {
	e.Workers = w
	return e
}

// benchHedgedReads measures the replicated tier's read tail with one
// deterministically slow replica (a client-side delay failpoint on r0's
// get site): the unhedged tier eats the delay on every read, the hedged
// tier races a second replica after its hedge timer. The p99 column is
// the comparison that matters.
func benchHedgedReads(addrs []string) ([]benchEntry, error) {
	const (
		key       = "ckpt-hedge"
		iters     = 300
		slowDelay = 4 * time.Millisecond
	)
	seed, err := store.Open(store.Config{
		Kind: store.KindReplicated, Addrs: addrs, Namespace: "bench-hedge",
		WriteQuorum: 3, HedgeAfter: -1,
	})
	if err != nil {
		return nil, err
	}
	payload := []store.Section{{Name: "v", Data: make([]byte, 64<<10)}}
	if err := seed.Put(key, payload); err != nil {
		seed.Close()
		return nil, err
	}
	if err := seed.Close(); err != nil {
		return nil, err
	}
	freg := faultinject.NewRegistry(1)
	if err := freg.ArmSchedule(fmt.Sprintf("%s=delay@every=1@delay=%s", store.SiteReplicaGet(0), slowDelay)); err != nil {
		return nil, err
	}
	var entries []benchEntry
	for _, tc := range []struct {
		name       string
		hedgeAfter time.Duration
	}{
		{"replicated-get-slow-unhedged", -1},
		{"replicated-get-slow-hedged", 500 * time.Microsecond},
	} {
		rb, err := store.Open(store.Config{
			Kind: store.KindReplicated, Addrs: addrs, Namespace: "bench-hedge",
			ReadQuorum: 1, HedgeAfter: tc.hedgeAfter, Faults: freg,
		})
		if err != nil {
			return nil, err
		}
		durs := make([]time.Duration, 0, iters)
		var total time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := rb.Get(key); err != nil {
				rb.Close()
				return nil, fmt.Errorf("%s: get: %w", tc.name, err)
			}
			d := time.Since(start)
			durs = append(durs, d)
			total += d
		}
		if err := rb.Close(); err != nil {
			return nil, err
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		e := benchEntry{
			Name:    tc.name,
			NsPerOp: (total / iters).Nanoseconds(),
			P99Ns:   durs[iters*99/100].Nanoseconds(),
		}
		e.MBPerSec = float64(len(payload[0].Data)) / (float64(e.NsPerOp) / 1e9) / 1e6
		fmt.Printf("  %-28s %10.2f ms/op  %8.1f MB/s  p99=%.2fms\n",
			e.Name, float64(e.NsPerOp)/1e6, e.MBPerSec, float64(e.P99Ns)/1e6)
		entries = append(entries, e)
	}
	return entries, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH_trace.json", "output JSON trajectory file (appended)")
	benchName := fs.String("benchmark", "HACC", "benchmark port to trace")
	scale := fs.Int("scale", 0, "input scale (0 = default)")
	workers := fs.Int("workers", 8, "parallel text parse workers")
	assertScaling := fs.Bool("assert-scaling", false,
		"fail unless analyze-many-8 beats analyze-many-1 by >= 30% (no-op below 4 CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench := progs.Get(*benchName)
	if bench == nil {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	// Load the trajectory up front so a corrupt file fails before
	// minutes of benchmarking.
	history, err := loadTrajectory(*out)
	if err != nil {
		return err
	}
	p, err := harness.Prepare(bench, *scale)
	if err != nil {
		return err
	}
	rep := benchReport{
		Date:            time.Now().UTC().Format(time.RFC3339),
		Benchmark:       bench.Name,
		Scale:           *scale,
		Records:         len(p.Records),
		TextBytes:       len(p.Data),
		BinaryBytes:     len(p.BinData()),
		BinaryTextRatio: float64(len(p.BinData())) / float64(len(p.Data)),
	}
	fmt.Printf("%s trace: %d records, text %d B, binary %d B (%.0f%%)\n",
		bench.Name, rep.Records, rep.TextBytes, rep.BinaryBytes, 100*rep.BinaryTextRatio)
	rep.Entries = append(rep.Entries,
		runOne("text-parse-serial", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBytes(p.Data); err != nil {
					b.Fatal(err)
				}
			}
		}),
		withWorkers(runOne(fmt.Sprintf("text-parse-parallel%d", *workers), len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBytesParallel(p.Data, *workers); err != nil {
					b.Fatal(err)
				}
			}
		}), *workers),
		runOne("binary-parse", len(p.BinData()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ParseBinary(p.BinData()); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("text-encode", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trace.EncodeAll(p.Records)
			}
		}),
		runOne("binary-encode", len(p.BinData()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trace.EncodeBinary(p.Records)
			}
		}),
	)

	// Analysis throughput: the three engine adapters on this benchmark's
	// trace, then cross-trace parallelism (one engine per port) over all
	// 14 ports at several pool sizes.
	rep.Entries = append(rep.Entries,
		runOne("analyze-materialized", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Analyze(0); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("analyze-streaming", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeData(p.Data, 0, true); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("analyze-online", len(p.Data), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeOnline(); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// Networked analysis: the same trace through the ingest service —
	// one-shot, one chunked session, and concurrent chunked sessions —
	// against analyze-materialized as the local baseline.
	fmt.Println("starting in-process ingest service for the analyze-remote series...")
	isvc := server.NewWithFactory(
		server.Config{Ingest: &analysis.Config{MaxSessions: 32, MaxInFlight: 64}},
		func(ns string) (store.Backend, error) { return store.NewMemory(), nil })
	its := httptest.NewServer(isvc.Handler())
	defer its.Close()
	defer isvc.Shutdown(context.Background())
	icli, err := analysis.NewClient(its.URL)
	if err != nil {
		return err
	}
	bin := p.BinData()
	rep.Entries = append(rep.Entries,
		runOne("analyze-remote-oneshot", len(bin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := icli.Analyze(bin, p.Spec); err != nil {
					b.Fatal(err)
				}
			}
		}),
		runOne("analyze-remote-chunked", len(bin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := icli.AnalyzeChunked(bin, p.Spec, analysis.DefaultChunkBytes); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)
	for _, n := range []int{1, 4, 8} {
		n := n
		rep.Entries = append(rep.Entries, withWorkers(
			runOne(fmt.Sprintf("analyze-remote-sessions-%d", n), n*len(bin), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					errs := make([]error, n)
					for j := 0; j < n; j++ {
						j := j
						wg.Add(1)
						go func() {
							defer wg.Done()
							_, errs[j] = icli.AnalyzeChunked(bin, p.Spec, analysis.DefaultChunkBytes)
						}()
					}
					wg.Wait()
					for _, e := range errs {
						if e != nil {
							b.Fatal(e)
						}
					}
				}
			}), n))
	}
	fmt.Println("preparing all 14 ports for the cross-trace sweep...")
	var inputs []core.Input
	totalText := 0
	for _, bb := range progs.All() {
		pp, err := harness.Prepare(bb, 0)
		if err != nil {
			return err
		}
		inputs = append(inputs, pp.Input())
		totalText += len(pp.Data)
	}
	manyNs := map[int]int64{}
	for _, w := range []int{1, 4, 8} {
		w := w
		e := withWorkers(runOne(fmt.Sprintf("analyze-many-%d", w), totalText, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeMany(inputs, w); err != nil {
					b.Fatal(err)
				}
			}
		}), w)
		manyNs[w] = e.NsPerOp
		rep.Entries = append(rep.Entries, e)
	}
	if *assertScaling {
		// Scaling across traces needs scheduler width; on narrow runners
		// the pool degenerates to sequential and the assertion is vacuous.
		if np := runtime.GOMAXPROCS(0); np < 4 {
			fmt.Printf("assert-scaling: skipped (GOMAXPROCS=%d < 4)\n", np)
		} else if got, want := manyNs[8], manyNs[1]*7/10; got >= want {
			return fmt.Errorf("assert-scaling: analyze-many-8 = %.2fms/op, want < 0.7x analyze-many-1 (%.2fms/op)",
				float64(got)/1e6, float64(manyNs[1])/1e6)
		} else {
			fmt.Printf("assert-scaling: ok (many-8 %.2fms vs many-1 %.2fms)\n",
				float64(got)/1e6, float64(manyNs[1])/1e6)
		}
	}

	// Networked checkpoint service: N concurrent IS clients checkpointing
	// through store.Remote into one in-process service (latency +
	// throughput vs client count), then the restart read path with and
	// without the read-through cache tier.
	fmt.Println("starting in-process checkpoint service for the remote series...")
	// One registry observes the whole remote series — service routes,
	// per-namespace store stacks, and the cached clients — and its
	// snapshot rides into the trajectory entry.
	reg := obs.New()
	svc := server.NewWithFactory(server.Config{Obs: reg}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	for _, clients := range []int{1, 4, 8} {
		clients := clients
		tmpl := store.Config{Kind: store.KindRemote, Addr: ts.URL, Dir: "bench"}
		// One calibration run sizes the traffic so MB/s is meaningful.
		cal, err := harness.RunManyClients("IS", 0, tmpl, checkpoint.L1, clients)
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries,
			runOne(fmt.Sprintf("remote-put-clients-%d", clients), int(cal.BytesWritten), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run, err := harness.RunManyClients("IS", 0, tmpl, checkpoint.L1, clients)
					if err != nil {
						b.Fatal(err)
					}
					if run.RestartsOK != clients {
						b.Fatalf("restarts %d/%d ok", run.RestartsOK, clients)
					}
				}
			}))
	}
	for _, tc := range []struct {
		name    string
		cacheMB int
	}{
		{"remote-restart-uncached", 0},
		{"remote-restart-cached", 64},
	} {
		tc := tc
		ctx, m, bytesPerRestart, err := seedRemoteRestart(ts.URL, tc.name, tc.cacheMB, reg)
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries,
			runOne(tc.name, bytesPerRestart, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					iter, err := ctx.Restart(m, nil)
					if err != nil || iter != 8 {
						b.Fatalf("restart: iter=%d err=%v", iter, err)
					}
				}
			}))
		ctx.Close()
	}

	// Replicated quorum tier: put throughput at each write quorum over a
	// 3-node in-process cluster, then the read tail with one slow replica
	// — hedged vs unhedged — where the p99 column is the point.
	fmt.Println("starting a 3-node in-process cluster for the replicated series...")
	var addrs []string
	for i := 0; i < 3; i++ {
		nsvc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
			return store.NewMemory(), nil
		})
		nts := httptest.NewServer(nsvc.Handler())
		defer nts.Close()
		defer nsvc.Shutdown(context.Background())
		addrs = append(addrs, nts.URL)
	}
	repPayload := []store.Section{{Name: "v", Data: make([]byte, 64<<10)}}
	for _, w := range []int{1, 2, 3} {
		rb, err := store.Open(store.Config{
			Kind: store.KindReplicated, Addrs: addrs, Namespace: fmt.Sprintf("bench-w%d", w),
			WriteQuorum: w, ReadQuorum: 2, HedgeAfter: -1,
		})
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries,
			runOne(fmt.Sprintf("replicated-put-w%d", w), len(repPayload[0].Data), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := rb.Put("ckpt-bench", repPayload); err != nil {
						b.Fatal(err)
					}
				}
			}))
		if err := rb.Close(); err != nil {
			return err
		}
	}
	hedgeEntries, err := benchHedgedReads(addrs)
	if err != nil {
		return err
	}
	rep.Entries = append(rep.Entries, hedgeEntries...)

	// Fold the remote series' telemetry into the entry: per-op p95 tails
	// plus the cache tier's hit rate.
	snap := reg.Snapshot()
	bo := &benchObsSnapshot{P95Ns: make(map[string]int64)}
	for name, h := range snap.Histograms {
		if strings.HasSuffix(name, ".ns") && h.Count > 0 {
			bo.P95Ns[name] = h.P95Ns
		}
	}
	hits := snap.Counters["store.cache.hits"] + snap.Counters["store.cache.follower_hits"]
	if total := hits + snap.Counters["store.cache.misses"]; total > 0 {
		bo.CacheHitRate = float64(hits) / float64(total)
	}
	rep.Obs = bo
	fmt.Printf("obs: %d op histograms, cache hit rate %.1f%%\n", len(bo.P95Ns), 100*bo.CacheHitRate)

	return appendTrajectory(*out, history, rep)
}

package main

import (
	"flag"
	"fmt"

	"autocheck"
)

// cmdExplain runs the analysis with provenance capture and prints, after
// the same classification listing `analyze` produces (shared
// printAnalysis, so the two can never disagree), the per-variable trail:
// which signals the dependency pass accumulated, at which dynamic
// record they fired, and which §IV-C rule decided.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	file := fs.String("file", "", "mini-C source file (compiled and traced)")
	traceFile := fs.String("trace", "", "pre-generated trace file (alternative to -file)")
	fn := fs.String("func", "main", "function containing the main computation loop")
	start := fs.Int("start", 0, "main loop start line")
	end := fs.Int("end", 0, "main loop end line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "" && *traceFile == "") || *start == 0 || *end == 0 {
		return fmt.Errorf("explain needs -file or -trace, plus -start and -end")
	}
	spec := autocheck.LoopSpec{Function: *fn, StartLine: *start, EndLine: *end}
	opts := autocheck.DefaultOptions()
	opts.Explain = true
	var res *autocheck.Result
	var err error
	if *traceFile != "" {
		res, err = autocheck.AnalyzeFile(*traceFile, spec, opts)
	} else {
		var mod *autocheck.Module
		if mod, err = compileFile(*file); err != nil {
			return err
		}
		opts.Module = mod
		var recs []autocheck.Record
		if recs, _, err = autocheck.TraceProgram(mod); err != nil {
			return err
		}
		res, err = autocheck.Analyze(recs, spec, opts)
	}
	if err != nil {
		return err
	}
	printAnalysis(res)
	fmt.Println("\nprovenance:")
	for _, p := range res.Provenance {
		verdict := "not critical"
		if p.Critical {
			verdict = p.Type.String()
		}
		where := p.Fn
		if where == "" {
			where = "global"
		}
		fmt.Printf("  %-24s %-12s (%s)\n", p.Name, verdict, where)
		fmt.Printf("      rule: %s\n", p.Rule)
		fmt.Printf("      signals: %s\n", formatSignals(p))
	}
	return nil
}

// formatSignals renders the accumulated evidence for one variable,
// including the dynamic record ids where each decisive signal first
// fired, so a trail can be cross-referenced against the trace itself.
func formatSignals(p autocheck.Provenance) string {
	s := fmt.Sprintf("first-access=%s", p.FirstAccess)
	if p.FirstDyn >= 0 {
		s += fmt.Sprintf("@dyn%d", p.FirstDyn)
	}
	s += fmt.Sprintf(" reads=%d writes=%d", p.Reads, p.Writes)
	if p.UncoveredRead {
		s += fmt.Sprintf(" uncovered-read@dyn%d", p.UncoveredDyn)
	}
	if p.ReadAfterLoop {
		s += fmt.Sprintf(" read-after-loop@dyn%d", p.AfterLoopDyn)
	}
	if p.SelfUpdates > 0 || p.CmpUses > 0 {
		s += fmt.Sprintf(" self-updates=%d cmp-uses=%d", p.SelfUpdates, p.CmpUses)
	}
	return s
}

module autocheck

go 1.24

// Seeded chaos: the resume protocol under injected faults and hard
// service kills. Every test prints its seed and schedule, so a failure
// replays exactly; the invariant throughout is the acceptance bar — a
// chunked session that survives faults mid-stream produces a result
// byte-identical to an uninterrupted local analysis.
package analysis_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"autocheck/internal/analysis"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/server"
)

// TestChaosSchedulesByteIdentical streams a chunked session through the
// retrying client while a seeded fault schedule fires on the ingest
// path: shed chunks, failed checkpoint writes, dropped connections, and
// a crashed handler goroutine. The client absorbs every one of them and
// the result matches the local analysis byte for byte.
func TestChaosSchedulesByteIdentical(t *testing.T) {
	p, want := prep(t)
	schedules := []string{
		"analysis.session.chunk=error@every=3",
		"analysis.session.ckpt=error@nth=2",
		"analysis.session.chunk=drop@nth=4",
		"analysis.session.chunk=crash@nth=3",
		"server.request=drop@every=11",
		"analysis.session.chunk=error@p=0.2;analysis.session.ckpt=error@p=0.1",
	}
	for si, sched := range schedules {
		seed := int64(si + 1)
		t.Run(fmt.Sprintf("schedule-%d", si), func(t *testing.T) {
			faults := faultinject.NewRegistry(seed)
			if err := faults.ArmSchedule(sched); err != nil {
				t.Fatal(err)
			}
			t.Logf("seed %d, schedule %q", seed, sched)
			svc, ts := newIngestServer(t, analysis.Config{}, server.Config{Faults: faults}, nil)
			defer ts.Close()
			defer svc.Shutdown(context.Background())

			cli := fastClient(t, ts.URL)
			cli.MaxAttempts = 10
			cli.Backoff = 2 * time.Millisecond
			res, err := cli.AnalyzeChunked(p.BinData(), p.Spec, len(p.BinData())/9+1)
			if err != nil {
				t.Fatalf("chunked analyze under %q: %v", sched, err)
			}
			if got := report(res); got != want {
				t.Errorf("report differs under %q:\nwant %s\ngot  %s", sched, want, got)
			}
			if faults.Fired() == 0 {
				t.Errorf("schedule %q never fired; the run proved nothing", sched)
			}
		})
	}
}

// TestChaosKillMidStreamResumeByteIdentical is the acceptance test: a
// client streams chunks, the service is killed mid-stream with no
// goodbye (connections severed, no graceful shutdown), a fresh instance
// starts over the same store, and the client resumes — from a sequence
// number it is deliberately unsure about — to a byte-identical result.
func TestChaosKillMidStreamResumeByteIdentical(t *testing.T) {
	p, want := prep(t)
	bin := p.BinData()
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			chunkBytes := 512 + rng.Intn(4096)
			nChunks := (len(bin) + chunkBytes - 1) / chunkBytes
			killAfter := 1 + rng.Intn(nChunks)
			t.Logf("seed %d: chunkBytes=%d, %d chunks, kill after %d acked",
				seed, chunkBytes, nChunks, killAfter)

			ss := newSharedStore()
			svcA, tsA := newIngestServer(t, analysis.Config{}, server.Config{}, ss)
			defer svcA.Shutdown(context.Background())
			cli := fastClient(t, tsA.URL)
			cli.Backoff = 2 * time.Millisecond
			sess, err := cli.NewSession(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			for seq := 0; seq < killAfter && seq*chunkBytes < len(bin); seq++ {
				lo := seq * chunkBytes
				if err := sess.SendChunk(seq, bin[lo:min(lo+chunkBytes, len(bin))]); err != nil {
					t.Fatalf("chunk %d: %v", seq, err)
				}
			}

			// kill -9: sever live connections and stop serving; no flush,
			// no session teardown. Only what was acked-after-persist exists.
			tsA.CloseClientConnections()
			tsA.Close()

			svcB, tsB := newIngestServer(t, analysis.Config{}, server.Config{}, ss)
			defer tsB.Close()
			defer svcB.Shutdown(context.Background())
			if err := cli.SetAddr(tsB.URL); err != nil {
				t.Fatal(err)
			}

			// Resume one chunk *before* the acked point: a client that lost
			// the final ack in the kill re-sends, gets the typed duplicate
			// error, and jumps to the session's real resume point.
			res := resumeFrom(t, cli, sess, bin, chunkBytes, max(killAfter-1, 0))
			if got := report(res); got != want {
				t.Errorf("resumed report differs:\nwant %s\ngot  %s", want, got)
			}
			if res.Stats.TraceBytes != int64(len(bin)) {
				t.Errorf("TraceBytes = %d, want %d", res.Stats.TraceBytes, len(bin))
			}
			if n := svcB.Obs().Snapshot().Counters["analysis.resumes"]; n == 0 {
				t.Error("replacement service reports zero session resumes")
			}
		})
	}
}

// resumeFrom drives the client's resumable chunk loop from the given
// sequence number and finishes the session.
func resumeFrom(t *testing.T, cli *analysis.Client, sess *analysis.Session, data []byte, chunkBytes, from int) *core.Result {
	t.Helper()
	if err := analysis.StreamChunks(cli, sess, data, chunkBytes, from); err != nil {
		t.Fatalf("resuming stream: %v", err)
	}
	res, err := sess.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res
}

// Package analysis is the trace-ingest service: the paper's
// identification pipeline (internal/core) offered over the network, so
// a traced application streams its instruction trace to a service and
// gets back the set of critical variables to checkpoint — the full
// AutoCheck loop as a service, with the checkpoint store behind it.
//
// Two ingestion shapes share one engine path:
//
//   - One-shot: POST the whole trace (text or ACTB binary, sniffed by
//     magic) and receive the result in the response.
//   - Chunked sessions: create a session carrying the LoopSpec, PUT
//     strictly ordered chunks — arbitrary byte splits of the trace, the
//     ACTB encoding is stateful and only splits at byte granularity —
//     and POST finish to collect the result. Each session feeds a
//     per-session core.Engine through an io.Pipe and the batch decode
//     path, so memory stays O(variables) regardless of trace size.
//
// Sessions are durable: every chunk is persisted through the embedding
// server's store stack *before* it is acknowledged (ack-after-persist),
// so a server restart or an idle eviction never loses acknowledged
// bytes — an unknown session id is recovered lazily from its store
// namespace by replaying the acknowledged chunk prefix into a fresh
// engine, and the client resumes at the next sequence number. Because
// the engine is deterministic, a resumed session's result is
// byte-identical to an uninterrupted run.
//
// Admission control is delegated to internal/admission: a namespace
// holds at most MaxSessions live session leases and MaxInFlight
// concurrent requests, and excess traffic is shed with 429 carrying the
// controller's computed Retry-After, which the retrying Client honors.
// Idle sessions are evicted after IdleTTL (state stays in the store;
// eviction only frees memory and the engine goroutine).
package analysis

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"autocheck/internal/admission"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// Failpoints on the session ingest path.
const (
	// SiteSessionChunk fires once per accepted chunk, before anything is
	// persisted: error sheds the chunk with 503 (the client retries),
	// drop kills the connection without a response, crash panics the
	// handler goroutine.
	SiteSessionChunk = "analysis.session.chunk"
	// SiteSessionCkpt fires on the chunk-persist step: an error makes
	// the durable write fail, so the chunk is neither persisted nor
	// acknowledged — the ack-after-persist invariant under test.
	SiteSessionCkpt = "analysis.session.ckpt"
)

// Typed error codes carried in the JSON error envelope.
const (
	CodeInvalidArgument = "invalid_argument"
	CodeDecode          = "decode"
	CodeNoLoop          = "no_loop"
	CodeOutOfOrder      = "out_of_order"
	CodeDuplicateChunk  = "duplicate_chunk"
	CodeUnknownSession  = "unknown_session"
	CodeSessionFailed   = "session_failed"
	CodeSessionFinished = "session_finished"
	CodeQuota           = "quota"
	CodeTooLarge        = "too_large"
	CodeUnavailable     = "unavailable"
)

// Error is the service's typed error: an HTTP status, a stable machine
// code, and — for sequencing errors — the next sequence number the
// session expects, which is all a client needs to resynchronize.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Expect  int    `json:"expect,omitempty"`

	// RetryAfter, when set on a shed, is the admission-computed value
	// the HTTP layer puts on the Retry-After header.
	RetryAfter time.Duration `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("analysis: %s: %s", e.Code, e.Message)
}

// Config defaults.
const (
	DefaultMaxSessions   = 8
	DefaultMaxInFlight   = 16
	DefaultIdleTTL       = 2 * time.Minute
	DefaultSweepEvery    = 15 * time.Second
	DefaultMaxChunkBytes = int64(64) << 20
)

// Config parameterizes a Service.
type Config struct {
	// MaxSessions bounds live sessions per namespace; excess creates are
	// shed with 429 + Retry-After. Sessions recovered from the store
	// after a restart bypass the bound — they were admitted once.
	MaxSessions int

	// MaxInFlight bounds concurrently served ingest requests (chunks,
	// one-shots, finishes) per namespace, layered under the embedding
	// server's global MaxInFlight semaphore.
	MaxInFlight int

	// IdleTTL evicts sessions with no request activity for this long;
	// their durable state stays in the store, so a late client resumes
	// via recovery. SweepEvery is the janitor period; negative disables
	// the janitor (tests drive EvictIdle directly).
	IdleTTL    time.Duration
	SweepEvery time.Duration

	// MaxChunkBytes bounds one chunk (or one-shot body) upload.
	MaxChunkBytes int64

	// Open returns the store backend for a session namespace — the
	// embedding server passes its own per-namespace factory so session
	// checkpoints flow through the exact store stack the service is
	// configured with. nil falls back to fresh in-memory backends
	// (standalone use; no restart recovery).
	Open func(ns string) (store.Backend, error)

	// Faults arms the session failpoints; nil leaves ingest fault-free.
	Faults *faultinject.Registry

	// Obs receives the service's metrics (analysis.sessions gauge, chunk
	// latency/byte instruments, eviction/resume counters). nil creates a
	// private registry.
	Obs *obs.Registry

	// NewID and Now are test seams; nil means crypto/rand ids and the
	// real clock.
	NewID func() string
	Now   func() time.Time
}

// feedOutcome is the engine goroutine's single, final report.
type feedOutcome struct {
	res *core.Result
	err error
}

type sessState int

const (
	sessActive sessState = iota
	sessFinished
	sessFailed
)

func (st sessState) String() string {
	switch st {
	case sessActive:
		return "active"
	case sessFinished:
		return "finished"
	}
	return "failed"
}

// session is one chunked ingest session. The pipe writer feeds the
// engine goroutine; pw.Write blocking until the engine consumed the
// bytes is the service's natural backpressure.
type session struct {
	id             string
	ns             string // tenant namespace (admission accounting)
	spec           core.LoopSpec
	includeGlobals bool
	back           store.Backend // "sess-<id>" namespace of the store stack

	mu      sync.Mutex
	state   sessState
	next    int   // next expected chunk sequence number
	bytes   int64 // acknowledged trace bytes
	last    time.Time
	pw      *io.PipeWriter
	out     chan feedOutcome // buffered(1); the engine goroutine's result
	res     *core.Result     // set once finished
	failErr error            // set once failed
}

// Sentinel errors delivered through the session pipe when the service —
// not the trace — ends an engine.
var (
	errEvicted  = errors.New("analysis: session evicted while idle")
	errShutdown = errors.New("analysis: service shutting down")
	errDeleted  = errors.New("analysis: session deleted")
)

// Service is the trace-ingest service. Create one with NewService and
// mount its handlers (http.go) into a server mux, or call the exported
// methods directly for in-process use.
type Service struct {
	cfg Config
	obs *obs.Registry

	sessionsG *obs.Gauge   // analysis.sessions: sessions resident in memory
	chunkOp   *obs.Op      // analysis.chunk: per-chunk latency/bytes/errors
	oneshotOp *obs.Op      // analysis.oneshot: whole-trace requests
	evictedC  *obs.Counter // analysis.evictions: idle sessions dropped from memory
	resumedC  *obs.Counter // analysis.resumes: sessions recovered from the store
	createdC  *obs.Counter // analysis.sessions_created
	finishedC *obs.Counter // analysis.sessions_finished
	failedC   *obs.Counter // analysis.sessions_failed

	mu         sync.Mutex
	sessions   map[string]*session
	recovering map[string]chan struct{} // ids mid-recovery; waiters block
	closed     bool

	// adm owns every quota decision: per-namespace in-flight slots
	// (TenantSlots = MaxInFlight), session leases (TenantSessions =
	// MaxSessions), and the shed metrics under the "analysis" prefix.
	adm *admission.Controller

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewService creates a service. Defaults are applied for every zero
// field; see Config.
func NewService(cfg Config) *Service {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = DefaultIdleTTL
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = DefaultSweepEvery
	}
	if cfg.MaxChunkBytes <= 0 {
		cfg.MaxChunkBytes = DefaultMaxChunkBytes
	}
	if cfg.Open == nil {
		cfg.Open = func(string) (store.Backend, error) {
			return store.Open(store.Config{Kind: store.KindMemory})
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.NewID == nil {
		cfg.NewID = randomID
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Service{
		cfg:        cfg,
		obs:        cfg.Obs,
		sessions:   make(map[string]*session),
		recovering: make(map[string]chan struct{}),
		adm: admission.New(admission.Config{
			TenantSlots:    cfg.MaxInFlight,
			TenantSessions: cfg.MaxSessions,
			Prefix:         "analysis",
			Faults:         cfg.Faults,
			Obs:            cfg.Obs,
			Now:            cfg.Now,
		}),
	}
	s.sessionsG = s.obs.Gauge("analysis.sessions")
	s.chunkOp = s.obs.Op("analysis.chunk")
	s.oneshotOp = s.obs.Op("analysis.oneshot")
	s.evictedC = s.obs.Counter("analysis.evictions")
	s.resumedC = s.obs.Counter("analysis.resumes")
	s.createdC = s.obs.Counter("analysis.sessions_created")
	s.finishedC = s.obs.Counter("analysis.sessions_finished")
	s.failedC = s.obs.Counter("analysis.sessions_failed")
	if cfg.SweepEvery > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Obs returns the service's telemetry registry.
func (s *Service) Obs() *obs.Registry { return s.obs }

func (s *Service) now() time.Time { return s.cfg.Now() }

// sessNS is the store namespace holding one session's durable state:
// a "meta" object, "chunk-%08d" objects, and a "result" object.
func sessNS(id string) string { return "sess-" + id }

func chunkKey(seq int) string { return fmt.Sprintf("chunk-%08d", seq) }

const maxChunkSeq = 99999999 // chunkKey's zero-padding keeps List order numeric

// sessMeta is the durable session descriptor, persisted before the
// create is acknowledged.
type sessMeta struct {
	Namespace      string `json:"namespace"`
	Function       string `json:"function"`
	StartLine      int    `json:"start_line"`
	EndLine        int    `json:"end_line"`
	IncludeGlobals bool   `json:"include_globals"`
}

// sectionData extracts the single "data" section of a session object.
func sectionData(secs []store.Section) ([]byte, error) {
	for i := range secs {
		if secs[i].Name == "data" {
			return secs[i].Data, nil
		}
	}
	return nil, errors.New("analysis: session object has no data section")
}

func dataSections(data []byte) []store.Section {
	return []store.Section{{Name: "data", Data: data}}
}

// ---- Admission (delegated to internal/admission) ----

// shedError translates an admission refusal into the service's typed
// 429 quota error, carrying the controller's computed Retry-After.
// Injected faults pass through untouched for the HTTP layer to map.
func shedError(err error) error {
	sh, ok := admission.AsShed(err)
	if !ok {
		return err
	}
	return &Error{Status: 429, Code: CodeQuota, Message: sh.Error(), RetryAfter: sh.RetryAfter}
}

// admitSession takes one of the namespace's session leases. Recovered
// sessions were admitted by their original create and only re-enter
// memory, so they bypass the bound (but still hold a lease).
func (s *Service) admitSession(ns string, recovered bool) error {
	if err := s.adm.AcquireSession(ns, recovered); err != nil {
		return shedError(err)
	}
	return nil
}

func (s *Service) releaseLive(ns string) { s.adm.ReleaseSession(ns) }

// acquire admits one in-flight ingest request for the namespace at the
// given priority class; release the ticket when the request is done.
func (s *Service) acquire(ns string, pri admission.Priority) (admission.Ticket, error) {
	tkt, err := s.adm.Acquire(ns, pri)
	if err != nil {
		return admission.Ticket{}, shedError(err)
	}
	return tkt, nil
}

// ---- Engine feeding ----

// runEngine drives one core.Engine over a streaming trace reader via
// the batch decode path; the reader's format (text or ACTB) is sniffed
// from its first bytes.
func runEngine(r io.Reader, spec core.LoopSpec, includeGlobals bool, reg *obs.Registry) (*core.Result, error) {
	opts := core.DefaultOptions()
	opts.IncludeGlobals = includeGlobals
	opts.Obs = reg
	eng, err := core.NewEngine(spec, opts)
	if err != nil {
		return nil, err
	}
	rd, _, err := trace.NewAutoReader(r)
	if err != nil {
		return nil, err
	}
	var batch trace.RecordBatch
	if err := trace.ForEachBatch(rd, &batch, func(_ int, recs []trace.Record) error {
		for k := range recs {
			eng.Observe(&recs[k])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return eng.Finish()
}

// feed is the per-session engine goroutine. It consumes the pipe until
// EOF (finish) or a decode error; on error the pipe is closed with that
// error so a blocked or later chunk write observes it. The outcome
// channel is buffered, so the goroutine always exits — even when the
// session was evicted and nobody collects the result.
func (s *Service) feed(pr *io.PipeReader, spec core.LoopSpec, includeGlobals bool, out chan<- feedOutcome) {
	res, err := runEngine(pr, spec, includeGlobals, s.obs)
	if err != nil {
		pr.CloseWithError(err)
	} else {
		pr.Close()
	}
	out <- feedOutcome{res: res, err: err}
}

// newLiveSession builds an active session with a running engine.
func (s *Service) newLiveSession(id string, meta sessMeta, back store.Backend) *session {
	pr, pw := io.Pipe()
	sess := &session{
		id: id, ns: meta.Namespace,
		spec:           core.LoopSpec{Function: meta.Function, StartLine: meta.StartLine, EndLine: meta.EndLine},
		includeGlobals: meta.IncludeGlobals,
		back:           back,
		last:           s.now(),
		pw:             pw,
		out:            make(chan feedOutcome, 1),
	}
	go s.feed(pr, sess.spec, sess.includeGlobals, sess.out)
	return sess
}

// analysisError maps an engine or decoder error to its typed 4xx: a
// LoopSpec that matched nothing is 422, everything else the trace body
// caused — including the decoders' byte-offset errors — is a 400.
func analysisError(err error) *Error {
	var nle *core.NoLoopError
	if errors.As(err, &nle) {
		return &Error{Status: 422, Code: CodeNoLoop, Message: err.Error()}
	}
	return &Error{Status: 400, Code: CodeDecode, Message: err.Error()}
}

// errClassOf buckets an error for the per-op error-class counters.
func errClassOf(err error) string {
	if err == nil {
		return ""
	}
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	if errors.Is(err, faultinject.ErrInjected) {
		return "injected"
	}
	return "error"
}

// ---- Session lifecycle ----

// Create opens a new chunked session for the tenant namespace ns. The
// session's meta object is persisted before the create is acknowledged,
// so a created session is always recoverable.
func (s *Service) Create(ns string, spec core.LoopSpec, includeGlobals bool) (SessionStatus, error) {
	if !store.ValidName(ns) {
		return SessionStatus{}, &Error{Status: 400, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("invalid namespace %q", ns)}
	}
	if spec.Function == "" || spec.StartLine <= 0 || spec.EndLine < spec.StartLine {
		return SessionStatus{}, &Error{Status: 400, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("invalid loop spec %+v", spec)}
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return SessionStatus{}, &Error{Status: 503, Code: CodeUnavailable, Message: "service shutting down"}
	}
	if aerr := s.admitSession(ns, false); aerr != nil {
		return SessionStatus{}, aerr
	}
	id := s.cfg.NewID()
	meta := sessMeta{Namespace: ns, Function: spec.Function,
		StartLine: spec.StartLine, EndLine: spec.EndLine, IncludeGlobals: includeGlobals}
	back, err := s.cfg.Open(sessNS(id))
	if err == nil {
		mdata, _ := json.Marshal(meta)
		err = back.Put("meta", dataSections(mdata))
	}
	if err != nil {
		s.releaseLive(ns)
		return SessionStatus{}, &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("persisting session meta: %v", err)}
	}
	sess := s.newLiveSession(id, meta, back)
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	s.sessionsG.Inc()
	s.createdC.Inc()
	return sess.status(), nil
}

// session resolves id, recovering it from the store when it is not
// resident (a restarted server, or an evicted idle session). Concurrent
// requests for one recovering id share a single recovery.
func (s *Service) session(id string) (*session, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, &Error{Status: 503, Code: CodeUnavailable, Message: "service shutting down"}
		}
		if sess, ok := s.sessions[id]; ok {
			s.mu.Unlock()
			return sess, nil
		}
		if ch, ok := s.recovering[id]; ok {
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.recovering[id] = ch
		s.mu.Unlock()

		sess, err := s.recover(id)
		// Pre-publication, only this goroutine (and the engine feed, which
		// never touches these fields) can see sess — no lock needed.
		if sess != nil && sess.state == sessActive {
			s.admitSession(sess.ns, true) // recovered: bypasses the quota
		}
		s.mu.Lock()
		delete(s.recovering, id)
		if sess != nil && s.closed {
			// The service shut down mid-recovery: tear the engine back down
			// instead of publishing a session nobody will ever drain.
			if sess.state == sessActive {
				sess.pw.CloseWithError(errShutdown)
				s.releaseLive(sess.ns)
			}
			sess = nil
			if err == nil {
				err = &Error{Status: 503, Code: CodeUnavailable, Message: "service shutting down"}
			}
		}
		if sess != nil {
			s.sessions[id] = sess
		}
		s.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		s.sessionsG.Inc()
		s.resumedC.Inc()
		return sess, nil
	}
}

// recover rebuilds a session from its store namespace: a finished
// session from its persisted result, an interrupted one by replaying
// the acknowledged chunk prefix into a fresh engine. Replay is
// deterministic, so the rebuilt engine state — and any eventual result
// — is byte-identical to the uninterrupted run.
func (s *Service) recover(id string) (*session, error) {
	if !store.ValidName(sessNS(id)) {
		return nil, &Error{Status: 404, Code: CodeUnknownSession,
			Message: fmt.Sprintf("no session %q", id)}
	}
	back, err := s.cfg.Open(sessNS(id))
	if err != nil {
		return nil, &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("opening session store: %v", err)}
	}
	msecs, err := back.Get("meta")
	if errors.Is(err, store.ErrNotFound) {
		return nil, &Error{Status: 404, Code: CodeUnknownSession,
			Message: fmt.Sprintf("no session %q", id)}
	}
	if err != nil {
		return nil, &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("reading session meta: %v", err)}
	}
	mdata, err := sectionData(msecs)
	var meta sessMeta
	if err == nil {
		err = json.Unmarshal(mdata, &meta)
	}
	if err != nil {
		return nil, &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("decoding session meta: %v", err)}
	}

	// A persisted result short-circuits replay entirely.
	if rsecs, rerr := back.Get("result"); rerr == nil {
		if rdata, derr := sectionData(rsecs); derr == nil {
			if res, derr := decodeResult(rdata); derr == nil {
				sess := &session{
					id: id, ns: meta.Namespace,
					spec:           core.LoopSpec{Function: meta.Function, StartLine: meta.StartLine, EndLine: meta.EndLine},
					includeGlobals: meta.IncludeGlobals,
					back:           back,
					last:           s.now(),
					state:          sessFinished,
					res:            res,
				}
				sess.next, sess.bytes = s.chunkExtent(back)
				return sess, nil
			}
		}
		// A corrupt result object falls through to deterministic replay.
	}

	sess := s.newLiveSession(id, meta, back)
	for seq := 0; ; seq++ {
		csecs, cerr := back.Get(chunkKey(seq))
		if errors.Is(cerr, store.ErrNotFound) {
			break
		}
		if cerr != nil {
			sess.pw.CloseWithError(errShutdown)
			return nil, &Error{Status: 503, Code: CodeUnavailable,
				Message: fmt.Sprintf("replaying session chunk %d: %v", seq, cerr)}
		}
		data, derr := sectionData(csecs)
		if derr != nil {
			sess.pw.CloseWithError(errShutdown)
			return nil, &Error{Status: 503, Code: CodeUnavailable,
				Message: fmt.Sprintf("replaying session chunk %d: %v", seq, derr)}
		}
		sess.next = seq + 1
		sess.bytes += int64(len(data))
		if _, werr := sess.pw.Write(data); werr != nil {
			// The persisted prefix re-fails exactly where the original
			// ingest failed: the session recovers into its failed state.
			sess.state = sessFailed
			sess.failErr = werr
			break
		}
	}
	return sess, nil
}

// chunkExtent reports the acknowledged chunk count and byte total of a
// session namespace (status fields of a recovered finished session).
func (s *Service) chunkExtent(back store.Backend) (next int, bytes int64) {
	for seq := 0; ; seq++ {
		secs, err := back.Get(chunkKey(seq))
		if err != nil {
			return seq, bytes
		}
		if data, derr := sectionData(secs); derr == nil {
			bytes += int64(len(data))
		}
	}
}

// Chunk ingests one ordered chunk: persist (ack-after-persist), feed
// the engine, advance the sequence. Sequencing violations return typed
// errors carrying the expected sequence number.
func (s *Service) Chunk(id string, seq int, data []byte) (err error) {
	start := s.chunkOp.Start()
	defer func() { s.chunkOp.Done(start, int64(len(data)), errClassOf(err)) }()
	if seq < 0 || seq > maxChunkSeq {
		return &Error{Status: 400, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("chunk sequence %d out of range", seq)}
	}
	sess, err := s.session(id)
	if err != nil {
		return err
	}
	tkt, aerr := s.acquire(sess.ns, admission.Ingest)
	if aerr != nil {
		return aerr
	}
	defer tkt.Release()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = s.now()
	switch sess.state {
	case sessFinished:
		return &Error{Status: 409, Code: CodeSessionFinished,
			Message: "session already finished"}
	case sessFailed:
		return &Error{Status: 400, Code: CodeSessionFailed,
			Message: fmt.Sprintf("session failed: %v", sess.failErr)}
	}
	if seq != sess.next {
		if seq < sess.next {
			return &Error{Status: 409, Code: CodeDuplicateChunk, Expect: sess.next,
				Message: fmt.Sprintf("chunk %d already acknowledged; next is %d", seq, sess.next)}
		}
		return &Error{Status: 409, Code: CodeOutOfOrder, Expect: sess.next,
			Message: fmt.Sprintf("chunk %d out of order; next is %d", seq, sess.next)}
	}
	if ferr := s.cfg.Faults.Hit(SiteSessionChunk); ferr != nil {
		return ferr // http layer maps drop/error; crash already panicked
	}
	if ferr := s.cfg.Faults.Hit(SiteSessionCkpt); ferr != nil {
		return ferr
	}
	if perr := sess.back.Put(chunkKey(seq), dataSections(data)); perr != nil {
		// Not persisted, therefore not acknowledged: the client retries
		// the same sequence number against unchanged session state.
		return &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("persisting chunk %d: %v", seq, perr)}
	}
	sess.next = seq + 1
	sess.bytes += int64(len(data))
	if _, werr := sess.pw.Write(data); werr != nil {
		if errors.Is(werr, errEvicted) || errors.Is(werr, errShutdown) {
			// The engine was torn down between resolving the session and
			// writing — the durable state is intact, so the retrying
			// client recovers the session and resumes.
			return &Error{Status: 503, Code: CodeUnavailable,
				Message: fmt.Sprintf("session engine stopped: %v", werr)}
		}
		// A decode error is terminal: the chunk's bytes are part of the
		// durable prefix, so recovery re-fails deterministically.
		sess.state = sessFailed
		sess.failErr = werr
		s.failedC.Inc()
		s.releaseLive(sess.ns)
		return analysisError(werr)
	}
	return nil
}

// Finish closes the session's trace stream and returns the analysis
// result, persisting it for idempotent re-finish and post-restart
// status queries. Decode errors still buffered in the engine surface
// here as the same typed 4xx a chunk would have produced.
func (s *Service) Finish(id string) (*core.Result, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	tkt, aerr := s.acquire(sess.ns, admission.Interactive)
	if aerr != nil {
		return nil, aerr
	}
	defer tkt.Release()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = s.now()
	switch sess.state {
	case sessFinished:
		return sess.res, nil // idempotent
	case sessFailed:
		return nil, &Error{Status: 400, Code: CodeSessionFailed,
			Message: fmt.Sprintf("session failed: %v", sess.failErr)}
	}
	sess.pw.Close()
	o := <-sess.out
	if o.err != nil {
		sess.state = sessFailed
		sess.failErr = o.err
		s.failedC.Inc()
		s.releaseLive(sess.ns)
		return nil, analysisError(o.err)
	}
	// The engine never saw the trace as one buffer; restore the byte
	// accounting a local AnalyzeBytes would report.
	o.res.Stats.TraceBytes = sess.bytes
	sess.res = o.res
	sess.state = sessFinished
	s.finishedC.Inc()
	s.releaseLive(sess.ns)
	// Best-effort persist: if this write is lost, recovery replays the
	// chunk prefix and recomputes the identical result.
	_ = sess.back.Put("result", dataSections(encodeResult(o.res)))
	return sess.res, nil
}

// SessionStatus is the GET /v1/sessions/{id} payload.
type SessionStatus struct {
	ID             string `json:"id"`
	Namespace      string `json:"namespace"`
	State          string `json:"state"`
	NextSeq        int    `json:"next_seq"`
	Bytes          int64  `json:"bytes"`
	Function       string `json:"function"`
	StartLine      int    `json:"start_line"`
	EndLine        int    `json:"end_line"`
	IncludeGlobals bool   `json:"include_globals"`
}

func (sess *session) status() SessionStatus {
	return SessionStatus{
		ID: sess.id, Namespace: sess.ns, State: sess.state.String(),
		NextSeq: sess.next, Bytes: sess.bytes,
		Function: sess.spec.Function, StartLine: sess.spec.StartLine, EndLine: sess.spec.EndLine,
		IncludeGlobals: sess.includeGlobals,
	}
}

// Status reports a session's state — a reconnecting client's resume
// point (NextSeq) comes from here when it missed the typed sequencing
// error that carries it.
func (s *Service) Status(id string) (SessionStatus, error) {
	sess, err := s.session(id)
	if err != nil {
		return SessionStatus{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = s.now()
	return sess.status(), nil
}

// Delete purges a session: its engine is stopped, its durable objects
// are removed, and the id becomes unknown.
func (s *Service) Delete(id string) error {
	sess, err := s.session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	sess.mu.Lock()
	if sess.state == sessActive {
		sess.state = sessFailed
		sess.failErr = errDeleted
		sess.pw.CloseWithError(errDeleted)
		s.releaseLive(sess.ns)
	}
	sess.mu.Unlock()
	s.sessionsG.Dec()
	keys, lerr := sess.back.List()
	if lerr != nil {
		return &Error{Status: 503, Code: CodeUnavailable,
			Message: fmt.Sprintf("listing session objects: %v", lerr)}
	}
	for _, k := range keys {
		if derr := sess.back.Delete(k); derr != nil && !errors.Is(derr, store.ErrNotFound) {
			return &Error{Status: 503, Code: CodeUnavailable,
				Message: fmt.Sprintf("deleting session object %q: %v", k, derr)}
		}
	}
	return nil
}

// OneShot analyzes a complete trace body in one request. Every failure
// the body can cause — decode errors at any byte offset, a loop spec
// that matches nothing — maps to a typed 4xx, never a 5xx.
func (s *Service) OneShot(ns string, spec core.LoopSpec, data []byte, includeGlobals bool) (res *core.Result, err error) {
	start := s.oneshotOp.Start()
	defer func() { s.oneshotOp.Done(start, int64(len(data)), errClassOf(err)) }()
	if !store.ValidName(ns) {
		return nil, &Error{Status: 400, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("invalid namespace %q", ns)}
	}
	if spec.Function == "" || spec.StartLine <= 0 || spec.EndLine < spec.StartLine {
		return nil, &Error{Status: 400, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("invalid loop spec %+v", spec)}
	}
	tkt, aerr := s.acquire(ns, admission.Interactive)
	if aerr != nil {
		return nil, aerr
	}
	defer tkt.Release()
	opts := core.DefaultOptions()
	opts.IncludeGlobals = includeGlobals
	opts.Obs = s.obs
	res, cerr := core.AnalyzeBytes(data, spec, opts)
	if cerr != nil {
		return nil, analysisError(cerr)
	}
	return res, nil
}

// EvictIdle drops sessions idle for at least IdleTTL from memory (their
// durable state remains recoverable) and returns how many were evicted.
// The janitor calls this every SweepEvery; tests call it directly.
func (s *Service) EvictIdle(now time.Time) int {
	var evicted int
	s.mu.Lock()
	for id, sess := range s.sessions {
		sess.mu.Lock()
		if now.Sub(sess.last) >= s.cfg.IdleTTL {
			delete(s.sessions, id)
			if sess.state == sessActive {
				sess.pw.CloseWithError(errEvicted)
				s.releaseLive(sess.ns)
			}
			evicted++
			s.evictedC.Inc()
			s.sessionsG.Dec()
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	return evicted
}

func (s *Service) janitor() {
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	defer close(s.janitorDone)
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.EvictIdle(s.now())
		}
	}
}

// Close stops the janitor and tears down every resident session's
// engine. Durable session state is untouched — a service restarted over
// the same store recovers and resumes them.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := s.sessions
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.state == sessActive {
			sess.pw.CloseWithError(errShutdown)
			s.releaseLive(sess.ns)
		}
		sess.mu.Unlock()
		s.sessionsG.Dec()
	}
	return nil
}

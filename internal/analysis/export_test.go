package analysis

import "time"

// SetClientClock installs test clock seams on c so the package's
// integration tests can compress retry backoffs and Retry-After waits.
func SetClientClock(c *Client, sleep func(time.Duration), now func() time.Time) {
	c.sleep, c.now = sleep, now
}

// StreamChunks exposes the client's resumable chunk loop for tests that
// interleave it with service restarts.
func StreamChunks(c *Client, s *Session, data []byte, chunkBytes, from int) error {
	return c.streamChunks(s, data, chunkBytes, from)
}

package analysis

import (
	"reflect"
	"testing"
	"time"

	"autocheck/internal/core"
)

// TestResultRoundTrip pins the wire encoding: every field the CLI
// printer and the harness byte-comparisons consult survives
// encode/decode exactly.
func TestResultRoundTrip(t *testing.T) {
	res := &core.Result{
		Spec: core.LoopSpec{Function: "main", StartLine: 10, EndLine: 40},
		MLI: []*core.VarInfo{
			{Name: "i", Fn: "main", Base: 0x1000, SizeBytes: 8, FirstDyn: 3, FirstLine: 12},
			{Name: "g", Base: 0x2000, SizeBytes: 16, Global: true, FirstDyn: 1, FirstLine: 5},
		},
		Critical: []core.CriticalVar{
			{Name: "p", Fn: "main", Base: 0x3000, SizeBytes: 8, Type: core.WAR},
			{Name: "r", Fn: "main", Base: 0x3008, SizeBytes: 4, Type: core.Outcome},
			{Name: "q", Fn: "f", Base: 0x4000, SizeBytes: 8, Type: core.RAPO},
			{Name: "it", Fn: "main", Base: 0x5000, SizeBytes: 8, Type: core.Index},
		},
		Stats:  core.Stats{Records: 99, TraceBytes: 1234, RegionA: 10, RegionB: 80, RegionC: 9},
		Timing: core.Timing{Pre: time.Millisecond, Dep: 2 * time.Millisecond, Identify: time.Microsecond, Total: 3 * time.Millisecond},
	}
	got, err := decodeResult(encodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("round trip differs:\nwant %+v\ngot  %+v", res, got)
	}
}

func TestDecodeResultRejectsBadType(t *testing.T) {
	if _, err := decodeResult([]byte(`{"critical":[{"name":"x","type":"Bogus"}]}`)); err == nil {
		t.Error("decodeResult accepted an unknown dependency type")
	}
	if _, err := decodeResult([]byte(`not json`)); err == nil {
		t.Error("decodeResult accepted malformed JSON")
	}
}

// HTTP surface of the trace-ingest service. Every failure is a typed
// JSON envelope {"code","message","expect"} so clients branch on stable
// machine codes, not status text; sequencing errors carry the next
// expected chunk number, which is the whole resume protocol.
//
//	POST   /v1/analyze/{session}          one-shot: trace body -> result
//	POST   /v1/sessions                   create (JSON spec) -> 201 status
//	PUT    /v1/sessions/{id}/chunks/{seq} ordered chunk -> 204
//	POST   /v1/sessions/{id}/finish       close stream -> 200 result
//	GET    /v1/sessions/{id}              status (resume point)
//	DELETE /v1/sessions/{id}              purge -> 204
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"autocheck/internal/admission"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
)

// Mount registers the service's routes on mux. wrap, when non-nil,
// decorates each handler with the embedding server's per-route
// telemetry (server.route); standalone users pass nil.
func (s *Service) Mount(mux *http.ServeMux, wrap func(name string, h http.HandlerFunc) http.HandlerFunc) {
	if wrap == nil {
		wrap = func(_ string, h http.HandlerFunc) http.HandlerFunc { return h }
	}
	mux.HandleFunc("POST /v1/analyze/{session}", wrap("analyze", s.handleOneShot))
	mux.HandleFunc("POST /v1/sessions", wrap("session_create", s.handleCreate))
	mux.HandleFunc("PUT /v1/sessions/{id}/chunks/{seq}", wrap("session_chunk", s.handleChunk))
	mux.HandleFunc("POST /v1/sessions/{id}/finish", wrap("session_finish", s.handleFinish))
	mux.HandleFunc("GET /v1/sessions/{id}", wrap("session_status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", wrap("session_delete", s.handleDelete))
}

// writeError renders err as the typed envelope. Injected faults mirror
// the server's request failpoint semantics: drop aborts the connection
// without a response, error becomes an immediately-retryable 503.
func writeError(w http.ResponseWriter, err error) {
	var ae *Error
	if !errors.As(err, &ae) {
		if a, ok := faultinject.ActionOf(err); ok {
			if a == faultinject.ActionDrop {
				panic(http.ErrAbortHandler)
			}
			w.Header().Set("Retry-After", "0")
			ae = &Error{Status: http.StatusServiceUnavailable, Code: CodeUnavailable,
				Message: fmt.Sprintf("injected unavailability: %v", err)}
		} else {
			ae = &Error{Status: http.StatusServiceUnavailable, Code: CodeUnavailable,
				Message: err.Error()}
		}
	}
	if (ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable) &&
		w.Header().Get("Retry-After") == "" {
		if ae.RetryAfter > 0 {
			// The admission-computed hint (queue drain, token refill).
			w.Header().Set("Retry-After", admission.FormatRetryAfter(ae.RetryAfter))
		} else {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	json.NewEncoder(w).Encode(ae)
}

// readBody reads a bounded upload, answering the typed error itself.
func (s *Service) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxChunkBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeTooLarge,
				Message: fmt.Sprintf("upload exceeds %d bytes", mbe.Limit)})
		} else {
			writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
				Message: fmt.Sprintf("reading upload: %v", err)})
		}
		return nil, false
	}
	if r.ContentLength >= 0 && int64(len(body)) != r.ContentLength {
		writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
			Message: "truncated upload"})
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeResult(w http.ResponseWriter, res *core.Result) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(encodeResult(res))
}

// specFromQuery parses ?func=F&start=N&end=M[&globals=0].
func specFromQuery(r *http.Request) (core.LoopSpec, bool, *Error) {
	q := r.URL.Query()
	spec := core.LoopSpec{Function: q.Get("func")}
	var err error
	if spec.StartLine, err = strconv.Atoi(q.Get("start")); err != nil {
		return spec, false, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("start line: %v", err)}
	}
	if spec.EndLine, err = strconv.Atoi(q.Get("end")); err != nil {
		return spec, false, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("end line: %v", err)}
	}
	includeGlobals := q.Get("globals") != "0"
	return spec, includeGlobals, nil
}

func (s *Service) handleOneShot(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("session")
	spec, includeGlobals, aerr := specFromQuery(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	res, err := s.OneShot(ns, spec, body, includeGlobals)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, res)
}

// createRequest is the POST /v1/sessions body.
type createRequest struct {
	Namespace string `json:"namespace"`
	Function  string `json:"function"`
	StartLine int    `json:"start_line"`
	EndLine   int    `json:"end_line"`
	// IncludeGlobals defaults to true when omitted (DefaultOptions).
	IncludeGlobals *bool `json:"include_globals,omitempty"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req createRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("decoding session request: %v", err)})
		return
	}
	if req.Namespace == "" {
		req.Namespace = "default"
	}
	includeGlobals := req.IncludeGlobals == nil || *req.IncludeGlobals
	st, err := s.Create(req.Namespace,
		core.LoopSpec{Function: req.Function, StartLine: req.StartLine, EndLine: req.EndLine},
		includeGlobals)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleChunk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
			Message: fmt.Sprintf("chunk sequence: %v", err)})
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if err := s.Chunk(id, seq, body); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleFinish(w http.ResponseWriter, r *http.Request) {
	res, err := s.Finish(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, res)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// HTTP-level integration tests: the service mounted in internal/server,
// exercised through real requests and the retrying Client. Pins the two
// satellite guarantees — hostile one-shot uploads always answer a typed
// 4xx (never a 5xx, hang, or panic), and admission control sheds
// overload with 429 + Retry-After that the client rides out.
package analysis_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/analysis"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

// newIngestServer mounts an ingest-enabled server over the shared store
// (nil means private per-namespace memory backends) and returns it with
// its httptest front end. Callers own shutdown.
func newIngestServer(t *testing.T, icfg analysis.Config, scfg server.Config, ss *sharedStore) (*server.Server, *httptest.Server) {
	t.Helper()
	if icfg.SweepEvery == 0 {
		icfg.SweepEvery = -1
	}
	scfg.Ingest = &icfg
	open := func(string) (store.Backend, error) { return store.NewMemory(), nil }
	if ss != nil {
		open = ss.open
	}
	svc := server.NewWithFactory(scfg, open)
	ts := httptest.NewServer(svc.Handler())
	ts.Config.ErrorLog = discardLog()
	return svc, ts
}

// fastClient returns a retrying client whose backoff sleeps are
// compressed 100x, so shed-and-retry tests run at test speed.
func fastClient(t *testing.T, addr string) *analysis.Client {
	t.Helper()
	c, err := analysis.NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	analysis.SetClientClock(c, func(d time.Duration) { time.Sleep(d / 100) }, time.Now)
	return c
}

// discardLog silences httptest servers whose chaos schedules make
// handlers panic on purpose.
func discardLog() *log.Logger { return log.New(io.Discard, "", 0) }

// oneShotURL builds the one-shot endpoint URL for a loop spec.
func oneShotURL(base, ns string, spec core.LoopSpec) string {
	return fmt.Sprintf("%s/v1/analyze/%s?func=%s&start=%d&end=%d",
		base, url.PathEscape(ns), url.QueryEscape(spec.Function), spec.StartLine, spec.EndLine)
}

// TestOneShotCorpusAlwaysTyped4xx is the hostile-input guarantee: every
// upload a fuzzer (or a broken tracer) can produce — truncations at any
// byte offset, bit flips, wrong-format garbage, pathological text lines —
// answers promptly with either a result or a typed 4xx envelope. A 5xx,
// a hang, or a dropped connection here is a bug.
func TestOneShotCorpusAlwaysTyped4xx(t *testing.T) {
	p, _ := prep(t)
	_, ts := newIngestServer(t, analysis.Config{}, server.Config{}, nil)
	defer ts.Close()

	bin := p.BinData()
	corpus := map[string][]byte{
		"valid-text":   p.Data,
		"valid-binary": bin,
		"empty":        {},
		// The trace fuzzer's hand-written seeds.
		"garbage-text":    []byte("garbage\n"),
		"negative-fid":    []byte("0,-1,main,entry,26,0\n"),
		"mixed-lines":     []byte("0,1,f,b,27,1\n1,1,64,0x10,1,p\nr,0,64,5,1,8\n"),
		"binary-header":   bin[:min(6, len(bin))],
		"all-ff":          bytes.Repeat([]byte{0xff}, 64),
		"text-then-junk":  append(append([]byte{}, p.Data[:len(p.Data)/2]...), 0x00, 0xfe, 0x01),
		"binary-doubled":  append(append([]byte{}, bin...), bin...),
		"long-junk-line":  append(bytes.Repeat([]byte{'x'}, 1<<16), '\n'),
		"null-bytes-text": append([]byte("0,1,f,b,27,1\n"), 0, 0, 0),
	}
	// Systematic truncations and bit flips of the valid binary trace.
	for _, off := range []int{1, 2, 3, 5, 8, 16, len(bin) / 3, len(bin) / 2, len(bin) - 1} {
		corpus[fmt.Sprintf("binary-truncated-%d", off)] = bin[:off]
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		flipped := append([]byte{}, bin...)
		flipped[rng.Intn(len(flipped))] ^= 1 << rng.Intn(8)
		corpus[fmt.Sprintf("binary-bitflip-%d", i)] = flipped
	}
	for i := 0; i < 4; i++ {
		junk := make([]byte, 256+rng.Intn(1024))
		rng.Read(junk)
		corpus[fmt.Sprintf("random-%d", i)] = junk
	}

	hc := &http.Client{Timeout: 30 * time.Second} // a hang is a failure, not a stall
	target := oneShotURL(ts.URL, "default", p.Spec)
	for name, body := range corpus {
		resp, err := hc.Post(target, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Errorf("%s: request failed: %v", name, err)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Errorf("%s: got %d (5xx), body %q", name, resp.StatusCode, data)
			continue
		}
		if resp.StatusCode >= 400 {
			var env struct {
				Code string `json:"code"`
			}
			if json.Unmarshal(data, &env) != nil || env.Code == "" {
				t.Errorf("%s: %d without a typed envelope: %q", name, resp.StatusCode, data)
			}
		}
	}

	// Malformed requests around the body are typed 4xx too.
	for name, target := range map[string]string{
		"missing-start": ts.URL + "/v1/analyze/default?func=main&end=9",
		"bad-namespace": ts.URL + "/v1/analyze/" + url.PathEscape("no/slash") + "?func=main&start=1&end=9",
	} {
		resp, err := hc.Post(target, "application/octet-stream", bytes.NewReader(p.Data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: got %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestClientOneShotAndChunkedOverHTTP: the retrying client against a
// live server, both ingestion shapes, results identical to local.
func TestClientOneShotAndChunkedOverHTTP(t *testing.T) {
	p, want := prep(t)
	_, ts := newIngestServer(t, analysis.Config{}, server.Config{}, nil)
	defer ts.Close()
	cli := fastClient(t, ts.URL)

	res, err := cli.Analyze(p.BinData(), p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res); got != want {
		t.Errorf("one-shot report differs:\nwant %s\ngot  %s", want, got)
	}

	res, err = cli.AnalyzeChunked(p.BinData(), p.Spec, len(p.BinData())/7+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res); got != want {
		t.Errorf("chunked report differs:\nwant %s\ngot  %s", want, got)
	}
	if res.Stats.TraceBytes != int64(len(p.BinData())) {
		t.Errorf("chunked TraceBytes = %d, want %d", res.Stats.TraceBytes, len(p.BinData()))
	}

	// The service's telemetry reaches the server's metrics endpoint.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{"analysis.oneshot.ns", "analysis.chunk.ns", "analysis.sessions_finished"} {
		if !strings.Contains(string(mbody), name) {
			t.Errorf("metrics endpoint missing %q", name)
		}
	}
}

// TestShedStormAllClientsLand: satellite 1's storm. A deliberately tiny
// in-flight cap against a burst of concurrent clients: the service sheds
// with 429 + Retry-After, the clients retry, and every one of them
// finishes with the correct result — load shedding degrades latency,
// never correctness.
func TestShedStormAllClientsLand(t *testing.T) {
	p, want := prep(t)
	faults := faultinject.NewRegistry(1)
	if err := faults.ArmSchedule("analysis.session.chunk=delay@nth=1@delay=300ms"); err != nil {
		t.Fatal(err)
	}
	svc, ts := newIngestServer(t,
		analysis.Config{MaxInFlight: 1, MaxSessions: 64, Faults: faults},
		server.Config{}, nil)
	defer ts.Close()

	// A delayed chunk occupies the namespace's only in-flight slot, so
	// the storm's first wave is shed deterministically.
	holder := fastClient(t, ts.URL)
	hs, err := holder.NewSession(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	holderDone := make(chan error, 1)
	go func() { holderDone <- hs.SendChunk(0, p.BinData()) }()
	deadline := time.Now().Add(2 * time.Second)
	for faults.Fired() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delay failpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}

	const clients = 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		cli := fastClient(t, ts.URL)
		cli.MaxAttempts = 50
		cli.Backoff = 2 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := cli.Analyze(p.BinData(), p.Spec)
			if err == nil && report(res) != want {
				err = fmt.Errorf("client %d: report differs", i)
			}
			errs[i] = err
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if err := <-holderDone; err != nil {
		t.Errorf("slot-holding chunk: %v", err)
	}
	if shed := svc.Obs().Snapshot().Counters["analysis.shed"]; shed == 0 {
		t.Error("storm produced zero sheds; the cap was never exercised")
	}
}

// TestShedRetryAfterHeader pins the wire shape of a shed: 429, a
// Retry-After hint, and the typed quota envelope — while a slow request
// (held open by a delay failpoint) occupies the namespace's only
// in-flight slot.
func TestShedRetryAfterHeader(t *testing.T) {
	p, _ := prep(t)
	faults := faultinject.NewRegistry(1)
	if err := faults.ArmSchedule("analysis.session.chunk=delay@nth=1@delay=400ms"); err != nil {
		t.Fatal(err)
	}
	_, ts := newIngestServer(t,
		analysis.Config{MaxInFlight: 1, Faults: faults},
		server.Config{}, nil)
	defer ts.Close()
	cli := fastClient(t, ts.URL)

	s1, err := cli.NewSession(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cli.NewSession(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	parts := chunks(p.BinData(), 2)
	done := make(chan error, 1)
	go func() { done <- s1.SendChunk(0, parts[0]) }()
	deadline := time.Now().Add(2 * time.Second)
	for faults.Fired() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delay failpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/sessions/%s/chunks/0", ts.URL, s2.ID), bytes.NewReader(parts[0]))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("got %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	var env struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &env) != nil || env.Code != analysis.CodeQuota {
		t.Errorf("429 envelope %q, want code %q", body, analysis.CodeQuota)
	}
	if err := <-done; err != nil {
		t.Fatalf("delayed chunk: %v", err)
	}
}

// Service-level tests: session lifecycle and sequencing, idle eviction
// and recovery, restart resume, per-namespace admission control — all
// against the exported Service methods, with the HTTP layer covered by
// http_integration_test.go.
package analysis_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/analysis"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/store"
)

// prep memoizes one traced benchmark per test binary: trace generation
// dominates test time and every test here analyzes the same program.
var (
	prepOnce sync.Once
	prepped  *harness.Prepared
	prepErr  error
	wantRep  string
)

func prep(t *testing.T) (*harness.Prepared, string) {
	t.Helper()
	prepOnce.Do(func() {
		prepped, prepErr = harness.Prepare(progs.Get("IS"), 0)
		if prepErr != nil {
			return
		}
		var res *core.Result
		if res, prepErr = prepped.Analyze(0); prepErr == nil {
			wantRep = report(res)
		}
	})
	if prepErr != nil {
		t.Fatal(prepErr)
	}
	return prepped, wantRep
}

// report renders the parts of a result the CLI reports, in a stable byte
// form (the harness's criticalReport).
func report(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.Critical {
		fmt.Fprintf(&sb, "%s/%s@%x:%d (%s); ", c.Fn, c.Name, c.Base, c.SizeBytes, c.Type)
	}
	for _, v := range res.MLI {
		fmt.Fprintf(&sb, "mli %s/%s@%x:%d; ", v.Fn, v.Name, v.Base, v.SizeBytes)
	}
	return sb.String()
}

// sharedStore is a store opener whose backends survive Service (and
// Server) teardown: Close is a no-op and reopening a namespace returns
// the same in-memory backend — the durable substrate restart tests
// "restart" over.
type sharedStore struct {
	mu sync.Mutex
	m  map[string]store.Backend
}

func newSharedStore() *sharedStore {
	return &sharedStore{m: make(map[string]store.Backend)}
}

func (ss *sharedStore) open(ns string) (store.Backend, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	b, ok := ss.m[ns]
	if !ok {
		b = store.NewMemory()
		ss.m[ns] = b
	}
	return nopClose{b}, nil
}

type nopClose struct{ store.Backend }

func (nopClose) Close() error { return nil }

// fixedIDs is a deterministic session id seam.
func fixedIDs(prefix string) func() string {
	var n int
	var mu sync.Mutex
	return func() string {
		mu.Lock()
		defer mu.Unlock()
		n++
		return fmt.Sprintf("%s%04d", prefix, n)
	}
}

// chunks splits data into n roughly equal pieces.
func chunks(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	size := (len(data) + n - 1) / n
	var out [][]byte
	for lo := 0; lo < len(data); lo += size {
		out = append(out, data[lo:min(lo+size, len(data))])
	}
	return out
}

func asServiceError(t *testing.T, err error) *analysis.Error {
	t.Helper()
	var ae *analysis.Error
	if !errors.As(err, &ae) {
		t.Fatalf("got %T (%v), want *analysis.Error", err, err)
	}
	return ae
}

func TestOneShotMatchesLocal(t *testing.T) {
	p, want := prep(t)
	svc := analysis.NewService(analysis.Config{SweepEvery: -1})
	defer svc.Close()
	for label, data := range map[string][]byte{"text": p.Data, "binary": p.BinData()} {
		res, err := svc.OneShot("default", p.Spec, data, true)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := report(res); got != want {
			t.Errorf("%s report differs:\nwant %s\ngot  %s", label, want, got)
		}
		if res.Stats.TraceBytes != int64(len(data)) {
			t.Errorf("%s: TraceBytes = %d, want %d", label, res.Stats.TraceBytes, len(data))
		}
	}
}

func TestOneShotTypedErrors(t *testing.T) {
	p, _ := prep(t)
	svc := analysis.NewService(analysis.Config{SweepEvery: -1})
	defer svc.Close()
	cases := []struct {
		name   string
		ns     string
		spec   core.LoopSpec
		data   []byte
		status int
		code   string
	}{
		{"bad-namespace", "no/slash", p.Spec, p.Data, 400, analysis.CodeInvalidArgument},
		{"empty-function", "default", core.LoopSpec{StartLine: 1, EndLine: 2}, p.Data, 400, analysis.CodeInvalidArgument},
		{"inverted-lines", "default", core.LoopSpec{Function: "main", StartLine: 9, EndLine: 3}, p.Data, 400, analysis.CodeInvalidArgument},
		{"garbage-trace", "default", p.Spec, []byte("garbage\n"), 400, analysis.CodeDecode},
		{"no-loop", "default", core.LoopSpec{Function: "nosuchfn", StartLine: 1, EndLine: 2}, p.Data, 422, analysis.CodeNoLoop},
	}
	for _, tc := range cases {
		_, err := svc.OneShot(tc.ns, tc.spec, tc.data, true)
		ae := asServiceError(t, err)
		if ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("%s: got %d/%s, want %d/%s", tc.name, ae.Status, ae.Code, tc.status, tc.code)
		}
	}
}

// TestSessionLifecycle walks one chunked session through every
// transition: sequencing violations with typed resume points, status,
// finish idempotency, and post-finish rejection.
func TestSessionLifecycle(t *testing.T) {
	p, want := prep(t)
	svc := analysis.NewService(analysis.Config{SweepEvery: -1})
	defer svc.Close()

	if _, err := svc.Create("default", core.LoopSpec{}, true); err == nil {
		t.Fatal("Create accepted an empty loop spec")
	}

	st, err := svc.Create("tenant-a", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "active" || st.NextSeq != 0 || st.Namespace != "tenant-a" {
		t.Fatalf("fresh session status %+v", st)
	}

	parts := chunks(p.BinData(), 5)

	// Sequencing before anything is acknowledged: chunk 3 is out of order
	// and the typed error carries the resume point.
	ae := asServiceError(t, svc.Chunk(st.ID, 3, parts[3]))
	if ae.Status != 409 || ae.Code != analysis.CodeOutOfOrder || ae.Expect != 0 {
		t.Fatalf("out-of-order error %+v", ae)
	}

	if err := svc.Chunk(st.ID, 0, parts[0]); err != nil {
		t.Fatal(err)
	}
	// A duplicate of an acknowledged chunk is a typed 409, not a re-feed.
	ae = asServiceError(t, svc.Chunk(st.ID, 0, parts[0]))
	if ae.Status != 409 || ae.Code != analysis.CodeDuplicateChunk || ae.Expect != 1 {
		t.Fatalf("duplicate error %+v", ae)
	}
	ae = asServiceError(t, svc.Chunk(st.ID, -1, nil))
	if ae.Status != 400 || ae.Code != analysis.CodeInvalidArgument {
		t.Fatalf("negative seq error %+v", ae)
	}

	for i := 1; i < len(parts); i++ {
		if err := svc.Chunk(st.ID, i, parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	st, err = svc.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextSeq != len(parts) || st.Bytes != int64(len(p.BinData())) || st.State != "active" {
		t.Fatalf("pre-finish status %+v", st)
	}

	res, err := svc.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res); got != want {
		t.Errorf("chunked report differs:\nwant %s\ngot  %s", want, got)
	}
	if res.Stats.TraceBytes != int64(len(p.BinData())) {
		t.Errorf("TraceBytes = %d, want %d", res.Stats.TraceBytes, len(p.BinData()))
	}

	// Finish is idempotent; further chunks are rejected as finished.
	res2, err := svc.Finish(st.ID)
	if err != nil || report(res2) != want {
		t.Errorf("re-finish: err=%v", err)
	}
	ae = asServiceError(t, svc.Chunk(st.ID, len(parts), []byte("x")))
	if ae.Status != 409 || ae.Code != analysis.CodeSessionFinished {
		t.Fatalf("chunk-after-finish error %+v", ae)
	}

	if err := svc.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Status(st.ID)
	ae = asServiceError(t, err)
	if ae.Status != 404 || ae.Code != analysis.CodeUnknownSession {
		t.Fatalf("post-delete status error %+v", ae)
	}
}

// TestSessionCorruptTraceFailsTyped: a corrupt upload ends the session
// with a typed 4xx — at the chunk that broke the decoder or at finish —
// and the session stays failed for subsequent requests.
func TestSessionCorruptTraceFailsTyped(t *testing.T) {
	p, _ := prep(t)
	svc := analysis.NewService(analysis.Config{SweepEvery: -1})
	defer svc.Close()

	st, err := svc.Create("default", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	// A valid prefix, then garbage mid-stream.
	parts := chunks(p.BinData(), 4)
	if err := svc.Chunk(st.ID, 0, parts[0]); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, parts[1]...)
	for i := range corrupt {
		corrupt[i] ^= 0xa5
	}
	// The decode error may surface on this write, a later one, or at
	// finish, depending on pipe scheduling — but it is always a typed
	// 4xx, never a hang or a 5xx.
	err = svc.Chunk(st.ID, 1, corrupt)
	if err == nil {
		err = svc.Chunk(st.ID, 2, parts[2])
	}
	if err == nil {
		_, err = svc.Finish(st.ID)
	}
	ae := asServiceError(t, err)
	if ae.Status < 400 || ae.Status >= 500 {
		t.Fatalf("corrupt stream error %+v, want 4xx", ae)
	}
	if ae.Code != analysis.CodeDecode && ae.Code != analysis.CodeSessionFailed {
		t.Fatalf("corrupt stream code %q", ae.Code)
	}
	st2, err := svc.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "failed" {
		t.Fatalf("state %q after corrupt stream, want failed", st2.State)
	}
	ae = asServiceError(t, svc.Chunk(st.ID, st2.NextSeq, parts[2]))
	if ae.Status != 400 || ae.Code != analysis.CodeSessionFailed {
		t.Fatalf("chunk-after-failure error %+v", ae)
	}
}

// TestRestartResume is the durability core: chunks acknowledged by one
// service instance are replayed by a fresh instance over the same store,
// and the finished result is byte-identical to a local analysis.
func TestRestartResume(t *testing.T) {
	p, want := prep(t)
	ss := newSharedStore()
	parts := chunks(p.BinData(), 6)

	a := analysis.NewService(analysis.Config{
		SweepEvery: -1, Open: ss.open, NewID: fixedIDs("restart"),
	})
	st, err := a.Create("default", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Chunk(st.ID, i, parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	a.Close() // the "crash": resident engines die, the store survives

	ae := asServiceError(t, a.Chunk(st.ID, 3, parts[3]))
	if ae.Status != 503 || ae.Code != analysis.CodeUnavailable {
		t.Fatalf("chunk on closed service: %+v", ae)
	}

	b := analysis.NewService(analysis.Config{SweepEvery: -1, Open: ss.open})
	defer b.Close()
	st2, err := b.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NextSeq != 3 || st2.State != "active" {
		t.Fatalf("recovered status %+v, want next_seq=3 active", st2)
	}
	for i := 3; i < len(parts); i++ {
		if err := b.Chunk(st.ID, i, parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := b.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res); got != want {
		t.Errorf("resumed report differs:\nwant %s\ngot  %s", want, got)
	}
	if n := b.Obs().Snapshot().Counters["analysis.resumes"]; n != 1 {
		t.Errorf("analysis.resumes = %d, want 1", n)
	}

	// A third instance finds the persisted result without replaying.
	c := analysis.NewService(analysis.Config{SweepEvery: -1, Open: ss.open})
	defer c.Close()
	res3, err := c.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res3); got != want {
		t.Errorf("post-restart finish differs:\nwant %s\ngot  %s", want, got)
	}
	st3, err := c.Status(st.ID)
	if err != nil || st3.State != "finished" {
		t.Errorf("recovered finished status %+v (err %v)", st3, err)
	}
}

// TestIdleEviction: an evicted idle session leaves memory (gauge and
// counters agree) but its durable state recovers on the next touch, and
// the eventual result is unaffected.
func TestIdleEviction(t *testing.T) {
	p, want := prep(t)
	ss := newSharedStore()
	clock := time.Unix(1000, 0)
	svc := analysis.NewService(analysis.Config{
		SweepEvery: -1, IdleTTL: time.Minute, Open: ss.open,
		Now: func() time.Time { return clock },
	})
	defer svc.Close()

	parts := chunks(p.BinData(), 4)
	st, err := svc.Create("default", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Chunk(st.ID, 0, parts[0]); err != nil {
		t.Fatal(err)
	}
	if n := svc.EvictIdle(clock.Add(30 * time.Second)); n != 0 {
		t.Fatalf("evicted %d sessions before TTL", n)
	}
	if n := svc.EvictIdle(clock.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d sessions after TTL, want 1", n)
	}
	snap := svc.Obs().Snapshot()
	if snap.Counters["analysis.evictions"] != 1 || snap.Gauges["analysis.sessions"] != 0 {
		t.Fatalf("post-eviction obs: evictions=%d sessions=%d",
			snap.Counters["analysis.evictions"], snap.Gauges["analysis.sessions"])
	}

	// The next chunk recovers the session transparently and the stream
	// completes as if nothing happened.
	for i := 1; i < len(parts); i++ {
		if err := svc.Chunk(st.ID, i, parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(res); got != want {
		t.Errorf("post-eviction report differs:\nwant %s\ngot  %s", want, got)
	}
	snap = svc.Obs().Snapshot()
	if snap.Counters["analysis.resumes"] != 1 {
		t.Errorf("analysis.resumes = %d, want 1", snap.Counters["analysis.resumes"])
	}
}

// TestSessionQuota: the per-namespace live-session bound sheds creates
// with a typed 429 and frees capacity on finish and delete, while other
// namespaces are unaffected.
func TestSessionQuota(t *testing.T) {
	p, _ := prep(t)
	svc := analysis.NewService(analysis.Config{SweepEvery: -1, MaxSessions: 2})
	defer svc.Close()

	a, err := svc.Create("tenant-a", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create("tenant-a", p.Spec, true); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Create("tenant-a", p.Spec, true)
	ae := asServiceError(t, err)
	if ae.Status != 429 || ae.Code != analysis.CodeQuota {
		t.Fatalf("over-quota create: %+v", ae)
	}
	// Another tenant's quota is its own.
	if _, err := svc.Create("tenant-b", p.Spec, true); err != nil {
		t.Fatalf("tenant-b create shed by tenant-a's quota: %v", err)
	}
	if n := svc.Obs().Snapshot().Counters["analysis.shed"]; n != 1 {
		t.Errorf("analysis.shed = %d, want 1", n)
	}

	// Finishing a session frees its slot.
	if err := svc.Chunk(a.ID, 0, p.BinData()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Finish(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create("tenant-a", p.Spec, true); err != nil {
		t.Fatalf("create after finish still shed: %v", err)
	}
}

// TestInFlightCap: the per-namespace concurrent-request bound sheds the
// second request while the first is still being served (held open by a
// delay failpoint), with the typed 429 the retrying client absorbs.
func TestInFlightCap(t *testing.T) {
	p, _ := prep(t)
	faults := faultinject.NewRegistry(1)
	svc := analysis.NewService(analysis.Config{
		SweepEvery: -1, MaxInFlight: 1, Faults: faults,
	})
	defer svc.Close()

	s1, err := svc.Create("tenant-a", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := svc.Create("tenant-a", p.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	parts := chunks(p.BinData(), 2)

	if err := faults.ArmSchedule("analysis.session.chunk=delay@nth=1@delay=300ms"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- svc.Chunk(s1.ID, 0, parts[0]) }()
	// Wait until the first chunk is provably in flight (inside its delay).
	deadline := time.Now().Add(2 * time.Second)
	for faults.Fired() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delay failpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}
	ae := asServiceError(t, svc.Chunk(s2.ID, 0, parts[0]))
	if ae.Status != 429 || ae.Code != analysis.CodeQuota {
		t.Fatalf("in-flight shed: %+v", ae)
	}
	if err := <-done; err != nil {
		t.Fatalf("delayed chunk: %v", err)
	}
	// Capacity freed: the identical retry now succeeds.
	if err := svc.Chunk(s2.ID, 0, parts[0]); err != nil {
		t.Fatalf("chunk after drain: %v", err)
	}
}

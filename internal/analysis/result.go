// Wire encoding of an analysis result. The service computes a
// *core.Result and ships it as JSON; the client reconstructs a
// *core.Result the caller cannot tell apart from a local analysis —
// every field the CLI printer and the harness byte-comparisons consult
// (spec, MLI, critical list, trace stats) survives the round trip
// exactly. Timing is carried in nanoseconds for completeness but is of
// course the service's clock, not the client's.
package analysis

import (
	"encoding/json"
	"fmt"
	"time"

	"autocheck/internal/core"
)

type wireVar struct {
	Name      string `json:"name"`
	Fn        string `json:"fn,omitempty"`
	Base      uint64 `json:"base"`
	SizeBytes int64  `json:"size_bytes"`
	Global    bool   `json:"global,omitempty"`
	FirstDyn  int64  `json:"first_dyn"`
	FirstLine int    `json:"first_line"`
}

type wireCritical struct {
	Name      string `json:"name"`
	Fn        string `json:"fn,omitempty"`
	Base      uint64 `json:"base"`
	SizeBytes int64  `json:"size_bytes"`
	Type      string `json:"type"`
}

type wireSpec struct {
	Function  string `json:"function"`
	StartLine int    `json:"start_line"`
	EndLine   int    `json:"end_line"`
}

type wireStats struct {
	Records    int   `json:"records"`
	TraceBytes int64 `json:"trace_bytes"`
	RegionA    int   `json:"region_a"`
	RegionB    int   `json:"region_b"`
	RegionC    int   `json:"region_c"`
}

type wireTiming struct {
	Pre      int64 `json:"pre"`
	Dep      int64 `json:"dep"`
	Identify int64 `json:"identify"`
	Total    int64 `json:"total"`
}

type wireResult struct {
	Spec     wireSpec       `json:"spec"`
	Stats    wireStats      `json:"stats"`
	MLI      []wireVar      `json:"mli"`
	Critical []wireCritical `json:"critical"`
	TimingNS wireTiming     `json:"timing_ns"`
}

// encodeResult serializes res for the wire (and for the session store's
// "result" object).
func encodeResult(res *core.Result) []byte {
	wr := wireResult{
		Spec: wireSpec{Function: res.Spec.Function, StartLine: res.Spec.StartLine, EndLine: res.Spec.EndLine},
		Stats: wireStats{
			Records:    res.Stats.Records,
			TraceBytes: res.Stats.TraceBytes,
			RegionA:    res.Stats.RegionA,
			RegionB:    res.Stats.RegionB,
			RegionC:    res.Stats.RegionC,
		},
		MLI:      make([]wireVar, 0, len(res.MLI)),
		Critical: make([]wireCritical, 0, len(res.Critical)),
		TimingNS: wireTiming{
			Pre:      int64(res.Timing.Pre),
			Dep:      int64(res.Timing.Dep),
			Identify: int64(res.Timing.Identify),
			Total:    int64(res.Timing.Total),
		},
	}
	for _, v := range res.MLI {
		wr.MLI = append(wr.MLI, wireVar{
			Name: v.Name, Fn: v.Fn, Base: v.Base, SizeBytes: v.SizeBytes,
			Global: v.Global, FirstDyn: v.FirstDyn, FirstLine: v.FirstLine,
		})
	}
	for _, c := range res.Critical {
		wr.Critical = append(wr.Critical, wireCritical{
			Name: c.Name, Fn: c.Fn, Base: c.Base, SizeBytes: c.SizeBytes,
			Type: c.Type.String(),
		})
	}
	data, _ := json.Marshal(wr) // no unmarshalable fields by construction
	return data
}

// parseDepType inverts core.DependencyType.String.
func parseDepType(s string) (core.DependencyType, error) {
	switch s {
	case "WAR":
		return core.WAR, nil
	case "Outcome":
		return core.Outcome, nil
	case "RAPO":
		return core.RAPO, nil
	case "Index":
		return core.Index, nil
	}
	return 0, fmt.Errorf("analysis: unknown dependency type %q", s)
}

// decodeResult reconstructs a *core.Result from its wire encoding.
func decodeResult(data []byte) (*core.Result, error) {
	var wr wireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return nil, fmt.Errorf("analysis: decoding result: %w", err)
	}
	res := &core.Result{
		Spec: core.LoopSpec{Function: wr.Spec.Function, StartLine: wr.Spec.StartLine, EndLine: wr.Spec.EndLine},
		Stats: core.Stats{
			Records:    wr.Stats.Records,
			TraceBytes: wr.Stats.TraceBytes,
			RegionA:    wr.Stats.RegionA,
			RegionB:    wr.Stats.RegionB,
			RegionC:    wr.Stats.RegionC,
		},
		Timing: core.Timing{
			Pre:      time.Duration(wr.TimingNS.Pre),
			Dep:      time.Duration(wr.TimingNS.Dep),
			Identify: time.Duration(wr.TimingNS.Identify),
			Total:    time.Duration(wr.TimingNS.Total),
		},
	}
	for _, v := range wr.MLI {
		res.MLI = append(res.MLI, &core.VarInfo{
			Name: v.Name, Fn: v.Fn, Base: v.Base, SizeBytes: v.SizeBytes,
			Global: v.Global, FirstDyn: v.FirstDyn, FirstLine: v.FirstLine,
		})
	}
	for _, c := range wr.Critical {
		typ, err := parseDepType(c.Type)
		if err != nil {
			return nil, err
		}
		res.Critical = append(res.Critical, core.CriticalVar{
			Name: c.Name, Fn: c.Fn, Base: c.Base, SizeBytes: c.SizeBytes, Type: typ,
		})
	}
	return res, nil
}

package analysis

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autocheck/internal/admission"
)

// TestClientHonorsComputedRetryAfter pins that the Client's retry
// backoff follows the admission-computed Retry-After on a 429 — a 7s
// hint yields exactly one 7s wait, not the local exponential schedule.
func TestClientHonorsComputedRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"code":"quota","message":"shed"}`))
			return
		}
		w.Write([]byte(`{"id":"x","state":"active"}`))
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c.MaxElapsed = time.Hour
	var waits []time.Duration
	c.sleep = func(d time.Duration) { waits = append(waits, d) }
	if _, err := c.ResumeSession("x").Status(); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != 7*time.Second {
		t.Fatalf("waits = %v, want exactly the server's computed hint [7s]", waits)
	}
}

// TestClientPriorityHeaders pins the Client's admission headers: every
// request carries the tenant namespace, and chunk uploads announce
// themselves as ingest-class while control requests are interactive.
func TestClientPriorityHeaders(t *testing.T) {
	type seen struct{ tenant, pri string }
	var mu sync.Mutex
	var got []seen
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, seen{r.Header.Get(admission.TenantHeader),
			r.Header.Get(admission.PriorityHeader)})
		mu.Unlock()
		if r.Method == http.MethodPut {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Write([]byte(`{"id":"x","state":"active"}`))
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c.Namespace = "tenant-x"
	sess := c.ResumeSession("x")
	if err := sess.SendChunk(0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Status(); err != nil {
		t.Fatal(err)
	}
	want := []seen{{"tenant-x", "ingest"}, {"tenant-x", "interactive"}}
	if len(got) != len(want) {
		t.Fatalf("requests = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d = %v, want %v", i, got[i], want[i])
		}
	}
}

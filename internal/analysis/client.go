// Client is the remote side of the trace-ingest service, mirroring the
// store.Remote idioms: one keep-alive connection pool, bounded
// exponential backoff with a wall-clock budget, Retry-After hints
// honored, request bodies rebuilt per attempt. On top of the transport
// retry loop, AnalyzeChunked adds session-level resumption: when the
// service restarts or the connection dies mid-stream, the client
// resynchronizes on the session's next expected sequence number (from
// the typed sequencing errors or a status probe) and continues — the
// service replays the acknowledged prefix from its store, so the final
// result is byte-identical to an uninterrupted run.
package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"autocheck/internal/admission"
	"autocheck/internal/core"
)

// Client retry defaults, matching store.Remote's.
const (
	DefaultClientAttempts   = 4
	DefaultClientBackoff    = 25 * time.Millisecond
	DefaultClientMaxElapsed = 15 * time.Second

	// DefaultChunkBytes is AnalyzeChunked's chunk size when the caller
	// passes 0.
	DefaultChunkBytes = 256 << 10
)

// Client talks to a trace-ingest service.
type Client struct {
	// MaxAttempts, Backoff and MaxElapsed tune the per-request retry
	// loop; MaxElapsed also bounds AnalyzeChunked's session-level
	// resume loop across restarts.
	MaxAttempts int
	Backoff     time.Duration
	MaxElapsed  time.Duration

	// Namespace is the tenant namespace requests are accounted to
	// ("default" when empty).
	Namespace string

	// ChunkDelay, when positive, pauses between AnalyzeChunked's chunk
	// uploads — a pacing knob for demos and restart smoke tests that
	// need a window to kill the service mid-stream.
	ChunkDelay time.Duration

	base string
	hc   *http.Client

	// Test seams; nil means the real clock.
	sleep func(time.Duration)
	now   func() time.Time
}

// NewClient returns a client for the service at addr (host:port or
// URL). It does not contact the service; a service still starting is
// absorbed by the first request's retry loop.
func NewClient(addr string) (*Client, error) {
	c := &Client{
		MaxAttempts: DefaultClientAttempts,
		Backoff:     DefaultClientBackoff,
		MaxElapsed:  DefaultClientMaxElapsed,
		Namespace:   "default",
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
			Timeout: 2 * time.Minute,
		},
	}
	if err := c.SetAddr(addr); err != nil {
		return nil, err
	}
	return c, nil
}

// SetAddr repoints the client (reconnect tests move a client between a
// killed service and its replacement; production clients follow a
// failover the same way). Sessions are service-side state recovered
// from the store, so an existing Session keeps working after the move.
func (c *Client) SetAddr(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return fmt.Errorf("analysis: client address: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("analysis: client address %q: unsupported scheme %q", addr, u.Scheme)
	}
	c.base = strings.TrimSuffix(u.String(), "/")
	return nil
}

func (c *Client) clock() (func(time.Duration), func() time.Time) {
	sleep, now := c.sleep, c.now
	if sleep == nil {
		sleep = time.Sleep
	}
	if now == nil {
		now = time.Now
	}
	return sleep, now
}

// transientStatus reports whether the retry loop may try again: 5xx
// (including load-shed 503s) and the admission layer's 429s.
func transientStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// parseRetryAfter interprets a Retry-After value (delay-seconds or an
// HTTP-date) as a wait duration; ok distinguishes an explicit "retry
// now" from an absent or unparseable header.
func parseRetryAfter(v string, now time.Time) (_ time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// envelopeError decodes a typed error envelope, falling back to a
// generic Error for non-JSON failure bodies (the embedding server's own
// middleware answers some requests itself).
func envelopeError(status int, body []byte) *Error {
	var ae Error
	if json.Unmarshal(body, &ae) == nil && ae.Code != "" {
		ae.Status = status
		return &ae
	}
	code := CodeInvalidArgument
	switch {
	case status == http.StatusNotFound:
		code = CodeUnknownSession
	case status >= 500 || status == http.StatusTooManyRequests:
		code = CodeUnavailable
	}
	return &Error{Status: status, Code: code, Message: strings.TrimSpace(string(body))}
}

// do performs one exchange with bounded retry/backoff and returns the
// response body. Permanent failures come back as *Error. Every request
// carries the tenant namespace and its admission class so the embedding
// server's controller can account and order it.
func (c *Client) do(method, path string, body []byte, pri admission.Priority) ([]byte, error) {
	attempts := c.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	maxElapsed := c.MaxElapsed
	if maxElapsed <= 0 {
		maxElapsed = DefaultClientMaxElapsed
	}
	sleep, now := c.clock()
	start := now()
	backoff := c.Backoff
	var lastErr error
	var hint time.Duration
	var hinted bool
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wait := backoff
			backoff *= 2
			if hinted {
				wait, hint, hinted = hint, 0, false
			}
			if elapsed := now().Sub(start); elapsed+wait > maxElapsed {
				return nil, fmt.Errorf("analysis: retry budget %v exhausted after %v (%d attempts): %w",
					maxElapsed, elapsed, attempt, lastErr)
			}
			if wait > 0 {
				sleep(wait)
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, reader)
		if err != nil {
			return nil, err
		}
		req.Header.Set(admission.TenantHeader, c.ns())
		req.Header.Set(admission.PriorityHeader, pri.String())
		if body != nil {
			req.ContentLength = int64(len(body))
			req.Header.Set("Content-Type", "application/octet-stream")
			req.GetBody = func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(body)), nil
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("analysis: service: %w", err) // network-level: transient
			continue
		}
		// Drain in full either way so the connection is reusable.
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 300:
			ae := envelopeError(resp.StatusCode, data)
			if !transientStatus(resp.StatusCode) {
				return nil, ae
			}
			hint, hinted = parseRetryAfter(resp.Header.Get("Retry-After"), now())
			lastErr = ae
		case readErr != nil:
			lastErr = fmt.Errorf("analysis: reading response: %w", readErr) // truncated: transient
		default:
			return data, nil
		}
	}
	return nil, lastErr
}

// Analyze runs the one-shot endpoint: the whole trace in one request.
func (c *Client) Analyze(data []byte, spec core.LoopSpec) (*core.Result, error) {
	path := fmt.Sprintf("/v1/analyze/%s?func=%s&start=%d&end=%d",
		url.PathEscape(c.ns()), url.QueryEscape(spec.Function), spec.StartLine, spec.EndLine)
	body, err := c.do(http.MethodPost, path, data, admission.Interactive)
	if err != nil {
		return nil, err
	}
	return decodeResult(body)
}

func (c *Client) ns() string {
	if c.Namespace == "" {
		return "default"
	}
	return c.Namespace
}

// Session is a client-side handle on one chunked ingest session.
type Session struct {
	ID string
	c  *Client
}

// NewSession creates a chunked session carrying spec.
func (c *Client) NewSession(spec core.LoopSpec) (*Session, error) {
	req, _ := json.Marshal(createRequest{
		Namespace: c.ns(), Function: spec.Function,
		StartLine: spec.StartLine, EndLine: spec.EndLine,
	})
	body, err := c.do(http.MethodPost, "/v1/sessions", req, admission.Interactive)
	if err != nil {
		return nil, err
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("analysis: decoding session: %w", err)
	}
	return &Session{ID: st.ID, c: c}, nil
}

// ResumeSession returns a handle on an existing session id (a client
// process reattaching after its own restart).
func (c *Client) ResumeSession(id string) *Session {
	return &Session{ID: id, c: c}
}

// SendChunk uploads the chunk with the given sequence number.
// Sequencing violations return an *Error whose Expect field is the
// session's resume point.
func (s *Session) SendChunk(seq int, data []byte) error {
	// Chunk uploads are background streaming: they admit at the ingest
	// class so restart-path reads drain ahead of them under load.
	_, err := s.c.do(http.MethodPut,
		fmt.Sprintf("/v1/sessions/%s/chunks/%d", url.PathEscape(s.ID), seq), data,
		admission.Ingest)
	return err
}

// Status fetches the session's state and resume point.
func (s *Session) Status() (SessionStatus, error) {
	body, err := s.c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(s.ID), nil, admission.Interactive)
	if err != nil {
		return SessionStatus{}, err
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return SessionStatus{}, fmt.Errorf("analysis: decoding status: %w", err)
	}
	return st, nil
}

// Finish closes the trace stream and returns the result.
func (s *Session) Finish() (*core.Result, error) {
	body, err := s.c.do(http.MethodPost,
		"/v1/sessions/"+url.PathEscape(s.ID)+"/finish", nil, admission.Interactive)
	if err != nil {
		return nil, err
	}
	return decodeResult(body)
}

// Delete purges the session service-side.
func (s *Session) Delete() error {
	_, err := s.c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(s.ID), nil, admission.Interactive)
	return err
}

// AnalyzeChunked streams data through a chunked session in fixed-size
// chunks and returns the result. It survives service restarts and
// connection loss within the MaxElapsed budget: after a transport-level
// failure it resynchronizes on the session's next expected sequence
// number and resumes; duplicate acknowledgments (an ack lost in a
// crash) are skipped the same way.
func (c *Client) AnalyzeChunked(data []byte, spec core.LoopSpec, chunkBytes int) (*core.Result, error) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	sess, err := c.NewSession(spec)
	if err != nil {
		return nil, err
	}
	if err := c.streamChunks(sess, data, chunkBytes, 0); err != nil {
		return nil, err
	}
	return sess.Finish()
}

// streamChunks uploads data's fixed-size chunks starting at sequence
// number from, riding out transient failures with session-level resume.
func (c *Client) streamChunks(sess *Session, data []byte, chunkBytes, from int) error {
	sleep, now := c.clock()
	maxElapsed := c.MaxElapsed
	if maxElapsed <= 0 {
		maxElapsed = DefaultClientMaxElapsed
	}
	deadline := now().Add(maxElapsed)
	wait := c.Backoff
	if wait <= 0 {
		wait = DefaultClientBackoff
	}
	seq := from
	for seq*chunkBytes < len(data) {
		lo := seq * chunkBytes
		hi := min(lo+chunkBytes, len(data))
		err := sess.SendChunk(seq, data[lo:hi])
		if err == nil {
			seq++
			if c.ChunkDelay > 0 {
				sleep(c.ChunkDelay)
			}
			continue
		}
		var ae *Error
		if errors.As(err, &ae) {
			switch ae.Code {
			case CodeDuplicateChunk, CodeOutOfOrder:
				// The typed error carries the resume point directly.
				seq = ae.Expect
				continue
			}
			if !transientStatus(ae.Status) {
				return err
			}
		}
		// Transport retry budget exhausted (service restarting, network
		// down): back off at the session level, then resync off a status
		// probe — the probe itself triggers service-side recovery.
		if now().After(deadline) {
			return err
		}
		sleep(wait)
		if wait *= 2; wait > time.Second {
			wait = time.Second
		}
		if st, serr := sess.Status(); serr == nil {
			seq = st.NextSeq
		}
	}
	return nil
}

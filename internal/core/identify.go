package core

import (
	"sort"

	"autocheck/internal/cfg"
)

// identify is module 3: classify MLI variables by their dependency pattern
// and add the induction variable of the outermost main-computation loop
// (§IV-C, Fig. 7). It works purely off the summaries accumulated by the
// earlier passes, which is what lets the streaming and online drivers
// share it without a record slice.
func (a *analyzer) identify() []CriticalVar {
	indexVars := a.findInductionVars()
	isIndex := make(map[VarID]bool, len(indexVars))
	for _, v := range indexVars {
		isIndex[v.ID()] = true
	}

	var out []CriticalVar
	for _, v := range a.mliList() {
		if isIndex[v.ID()] {
			continue // reported as Index below
		}
		s := a.sums[v.ID()]
		if s == nil {
			continue // matched by pre-processing but never accessed in B
		}
		isArray := v.SizeBytes > 8
		switch {
		case s.firstIsRead && s.writes > 0:
			// WAR: the variable's old value is consumed before the loop
			// overwrites it; a restart would lose the cross-iteration state.
			out = append(out, critical(v, WAR))
		case isArray && s.writes > 0 && s.reads > 0 && s.uncoveredRead:
			// RAPO: the loop overwrites only part of the array before
			// reading it; the unwritten elements cannot be recomputed.
			out = append(out, critical(v, RAPO))
		case s.writes > 0 && s.readAfterLoop:
			// Outcome: the loop's result feeds post-loop computation.
			out = append(out, critical(v, Outcome))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Name < out[j].Name
	})
	for _, v := range indexVars {
		out = append(out, critical(v, Index))
	}
	return out
}

func critical(v *VarInfo, t DependencyType) CriticalVar {
	return CriticalVar{Name: v.Name, Fn: v.Fn, Base: v.Base, SizeBytes: v.SizeBytes, Type: t}
}

// findInductionVars identifies the induction variable(s) of the outermost
// loop inside the MCLR. With a module available it uses static loop
// analysis (the paper's llvm-pass-loop API); otherwise it falls back to a
// dynamic heuristic over the trace: among the loop function's locals that
// are both compared at depth 0 and self-updated (v = v ± c), the one with
// the fewest self-updates belongs to the outermost loop (inner loops
// iterate strictly more often).
func (a *analyzer) findInductionVars() []*VarInfo {
	if a.opts.Module != nil {
		if fn := a.opts.Module.Func(a.spec.Function); fn != nil {
			g := cfg.New(fn)
			loop := g.OutermostLoopInRange(a.spec.StartLine, a.spec.EndLine)
			if iv := g.InductionVariable(loop); iv != nil {
				if v := a.vt.lookupLocal(a.spec.Function, iv.Name); v != nil {
					return []*VarInfo{v}
				}
			}
		}
	}
	var best *VarInfo
	var bestCount int64
	for _, s := range a.sums {
		if s.v.Fn != a.spec.Function || s.selfUpdate == 0 || s.cmpUses == 0 {
			continue
		}
		if best == nil || s.selfUpdate < bestCount ||
			(s.selfUpdate == bestCount && s.v.FirstDyn < best.FirstDyn) {
			best = s.v
			bestCount = s.selfUpdate
		}
	}
	if best == nil {
		return nil
	}
	return []*VarInfo{best}
}

package core

import (
	"sort"

	"autocheck/internal/cfg"
)

// identify is module 3: classify MLI variables by their dependency pattern
// and add the induction variable of the outermost main-computation loop
// (§IV-C, Fig. 7). It works purely off the summaries accumulated by the
// earlier passes, which is what lets the streaming and online drivers
// share it without a record slice.
func (a *analyzer) identify() []CriticalVar {
	indexVars := a.findInductionVars()
	isIndex := make(map[VarID]bool, len(indexVars))
	for _, v := range indexVars {
		isIndex[v.ID()] = true
	}

	var out []CriticalVar
	for _, v := range a.mliList() {
		if isIndex[v.ID()] {
			continue // reported as Index below
		}
		s := a.sums[v.ID()]
		if s == nil {
			continue // matched by pre-processing but never accessed in B
		}
		if t, ok := classifySummary(v, s); ok {
			out = append(out, critical(v, t))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Name < out[j].Name
	})
	for _, v := range indexVars {
		out = append(out, critical(v, Index))
	}
	return out
}

func critical(v *VarInfo, t DependencyType) CriticalVar {
	return CriticalVar{Name: v.Name, Fn: v.Fn, Base: v.Base, SizeBytes: v.SizeBytes, Type: t}
}

// classifySummary applies the §IV-C decision rules to one variable's
// accumulated signals. It is the single point of truth: identify builds
// the critical list from it and the explain trail reports it, so the two
// can never diverge.
func classifySummary(v *VarInfo, s *varSummary) (DependencyType, bool) {
	isArray := v.SizeBytes > 8
	switch {
	case s.firstIsRead && s.writes > 0:
		// WAR: the variable's old value is consumed before the loop
		// overwrites it; a restart would lose the cross-iteration state.
		return WAR, true
	case isArray && s.writes > 0 && s.reads > 0 && s.uncoveredRead:
		// RAPO: the loop overwrites only part of the array before
		// reading it; the unwritten elements cannot be recomputed.
		return RAPO, true
	case s.writes > 0 && s.readAfterLoop:
		// Outcome: the loop's result feeds post-loop computation.
		return Outcome, true
	}
	return 0, false
}

// ruleText spells out, for the explain trail, why a classification fired
// or why none did. The conditions mirror classifySummary branch for
// branch.
func ruleText(v *VarInfo, s *varSummary, t DependencyType, crit bool) string {
	if crit {
		switch t {
		case WAR:
			return "first region-B access is a read and the loop writes it: the pre-loop value is consumed before being overwritten (WAR)"
		case RAPO:
			return "array is partially overwritten before being read: an element was read that no earlier region-B store covered (RAPO)"
		case Outcome:
			return "the loop writes it and region C reads it: the loop's result feeds post-loop computation (Outcome)"
		case Index:
			return "induction variable of the outermost main-computation loop (Index)"
		}
	}
	switch {
	case s == nil || (s.reads == 0 && s.writes == 0):
		return "matched by pre-processing but never accessed inside the loop: recomputable, not critical"
	case s.writes == 0:
		return "only read inside the loop, never written: its value survives a restart unchanged, not critical"
	default:
		return "first access is a write, every read was covered by an earlier store, and region C never reads it: fully recomputable, not critical"
	}
}

// provenance builds the explain trail: one entry per classified variable
// in the exact order identify emitted them, followed by the MLI variables
// no rule matched (sorted by name). critVars is identify's output for
// this analyzer; index membership is recomputed the same way identify did.
func (a *analyzer) provenance(critVars []CriticalVar) []Provenance {
	entries := make([]Provenance, 0, len(a.mli))
	covered := make(map[VarID]bool, len(critVars))
	find := func(name string, fn string, base uint64) *VarInfo {
		for _, v := range a.mliList() {
			if v.Name == name && v.Fn == fn && v.Base == base {
				return v
			}
		}
		// Index variables need not be MLI members.
		for _, s := range a.sums {
			if s.v.Name == name && s.v.Fn == fn && s.v.Base == base {
				return s.v
			}
		}
		return nil
	}
	for _, c := range critVars {
		v := find(c.Name, c.Fn, c.Base)
		if v == nil {
			continue
		}
		covered[v.ID()] = true
		entries = append(entries, a.provEntry(v, c.Type, true))
	}
	for _, v := range a.mliList() {
		if covered[v.ID()] {
			continue
		}
		entries = append(entries, a.provEntry(v, 0, false))
	}
	return entries
}

func (a *analyzer) provEntry(v *VarInfo, t DependencyType, crit bool) Provenance {
	p := Provenance{
		Name: v.Name, Fn: v.Fn, Critical: crit, Type: t,
		FirstAccess: "none", FirstDyn: -1, UncoveredDyn: -1, AfterLoopDyn: -1,
	}
	s := a.sums[v.ID()]
	if s != nil {
		if s.haveFirst {
			p.FirstAccess = "write"
			if s.firstIsRead {
				p.FirstAccess = "read"
			}
		}
		p.FirstDyn = s.firstDyn
		p.Reads, p.Writes = s.reads, s.writes
		p.UncoveredRead, p.UncoveredDyn = s.uncoveredRead, s.uncoveredDyn
		p.ReadAfterLoop, p.AfterLoopDyn = s.readAfterLoop, s.afterDyn
		p.SelfUpdates, p.CmpUses = s.selfUpdate, s.cmpUses
	}
	p.Rule = ruleText(v, s, t, crit)
	return p
}

// findInductionVars identifies the induction variable(s) of the outermost
// loop inside the MCLR. With a module available it uses static loop
// analysis (the paper's llvm-pass-loop API); otherwise it falls back to a
// dynamic heuristic over the trace: among the loop function's locals that
// are both compared at depth 0 and self-updated (v = v ± c), the one with
// the fewest self-updates belongs to the outermost loop (inner loops
// iterate strictly more often).
func (a *analyzer) findInductionVars() []*VarInfo {
	if a.opts.Module != nil {
		if fn := a.opts.Module.Func(a.spec.Function); fn != nil {
			g := cfg.New(fn)
			loop := g.OutermostLoopInRange(a.spec.StartLine, a.spec.EndLine)
			if iv := g.InductionVariable(loop); iv != nil {
				if v := a.vt.lookupLocal(a.spec.Function, iv.Name); v != nil {
					return []*VarInfo{v}
				}
			}
		}
	}
	var best *VarInfo
	var bestCount int64
	for _, s := range a.sums {
		if s.v.Fn != a.spec.Function || s.selfUpdate == 0 || s.cmpUses == 0 {
			continue
		}
		if best == nil || s.selfUpdate < bestCount ||
			(s.selfUpdate == bestCount && s.v.FirstDyn < best.FirstDyn) {
			best = s.v
			bestCount = s.selfUpdate
		}
	}
	if best == nil {
		return nil
	}
	return []*VarInfo{best}
}

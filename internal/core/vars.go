// Package core implements AutoCheck itself: the three-module analytical
// model of the paper (Fig. 2) that turns a dynamic instruction execution
// trace plus the main computation loop's location into the set of critical
// variables to checkpoint.
//
//   - Pre-processing (§IV-A): partition the trace into the regions before /
//     inside / after the main computation loop, collect the variables
//     accessed at call depth zero in the before and inside regions, and
//     match them to obtain the Main-Loop-Input (MLI) variables.
//   - Data dependency analysis (§IV-B): maintain the on-the-fly "reg-var"
//     and "reg-reg" maps over Load/Store/GetElementPtr/BitCast, arithmetic,
//     and both Call forms; update the DDG at every Store; contract the DDG
//     to MLI variables (Algorithm 1).
//   - Identification (§IV-C): classify MLI variables as Write-After-Read,
//     Read-After-Partially-Overwritten, or Outcome from the time-ordered
//     R/W sequence, and add the outermost loop's induction variable
//     (Index).
package core

import (
	"sort"
)

// VarID identifies a variable: its symbolic name plus its base memory
// address. The address component is the paper's Challenge 2 resolution —
// local variables in different function calls may share a name, but never
// an address at the same time.
type VarID struct {
	Fn   string // declaring function; "" for globals
	Name string
	Base uint64
}

// VarInfo describes one observed variable.
type VarInfo struct {
	Name      string
	Fn        string // declaring function; "" for globals
	Base      uint64
	SizeBytes int64 // allocation size; for globals, the observed footprint
	Global    bool
	FirstDyn  int64 // dynamic ID of the Alloca (locals) or first access
	FirstLine int   // source line of first non-synthesized access
}

// ID returns the variable's identity key.
func (v *VarInfo) ID() VarID { return VarID{Fn: v.Fn, Name: v.Name, Base: v.Base} }

// span is a half-open address interval [lo, hi) owned by a variable.
type span struct {
	lo, hi uint64
	v      *VarInfo
}

// varTable resolves memory addresses to variables. Local variables are
// registered from Alloca records (which carry the allocation size); their
// spans are replaced on-the-fly when stack addresses are reused by later
// calls — the same "active state at a certain point" semantics as the
// paper's reg-var map. Globals have no Alloca records; their base addresses
// are learned from the first direct (named) reference and their extent
// grows with the observed access footprint.
type varTable struct {
	locals  []span // sorted by lo, non-overlapping
	globals []span // sorted by lo; hi grows with observed footprint
	gByName map[string]*VarInfo
	frozen  bool // stop growing global footprints (see freeze)
}

// freeze stops global-footprint growth. Resolution is unaffected —
// globals resolve by greatest base, never by extent — so freezing changes
// only the sizes recorded from here on. The online engine freezes at the
// loop's end to match the offline schedule, whose collect sweep stops
// observing footprints there.
func (t *varTable) freeze() { t.frozen = true }

func newVarTable() *varTable {
	return &varTable{gByName: make(map[string]*VarInfo)}
}

// reset empties the table for a fresh sweep while keeping its allocated
// storage. The VarInfo objects the old spans pointed at are never
// mutated, so results that retained them across a reset stay valid.
func (t *varTable) reset() {
	t.locals = t.locals[:0]
	t.globals = t.globals[:0]
	clear(t.gByName)
	t.frozen = false
}

// addAlloca registers a local variable's storage, evicting any previous
// spans that overlap the new one (stack reuse).
func (t *varTable) addAlloca(name, fn string, base uint64, size int64, dyn int64) *VarInfo {
	if size <= 0 {
		size = 8
	}
	v := &VarInfo{Name: name, Fn: fn, Base: base, SizeBytes: size, FirstDyn: dyn, FirstLine: -1}
	lo, hi := base, base+uint64(size)
	// Find the range of spans overlapping [lo, hi).
	i := sort.Search(len(t.locals), func(i int) bool { return t.locals[i].hi > lo })
	j := i
	for j < len(t.locals) && t.locals[j].lo < hi {
		j++
	}
	repl := []span{{lo: lo, hi: hi, v: v}}
	t.locals = append(t.locals[:i], append(repl, t.locals[j:]...)...)
	return v
}

// noteGlobal learns (or refreshes) a global variable from a direct named
// reference at its base address. If a previously learned global's observed
// footprint has grown over this base (footprints are estimates until every
// base is known), it is truncated at the new base.
func (t *varTable) noteGlobal(name string, base uint64, dyn int64, line int) *VarInfo {
	if v, ok := t.gByName[name]; ok {
		return v
	}
	v := &VarInfo{Name: name, Fn: "", Base: base, SizeBytes: 8, Global: true, FirstDyn: dyn, FirstLine: line}
	t.gByName[name] = v
	sp := span{lo: base, hi: base + 8, v: v}
	i := sort.Search(len(t.globals), func(i int) bool { return t.globals[i].lo >= base })
	if i > 0 && t.globals[i-1].hi > base {
		prev := &t.globals[i-1]
		prev.hi = base
		prev.v.SizeBytes = int64(prev.hi - prev.lo)
	}
	t.globals = append(t.globals[:i], append([]span{sp}, t.globals[i:]...)...)
	return v
}

// resolveLocal maps an address to a local variable's span without any
// global-footprint side effects.
func (t *varTable) resolveLocal(addr uint64) *VarInfo {
	i := sort.Search(len(t.locals), func(i int) bool { return t.locals[i].hi > addr })
	if i < len(t.locals) && t.locals[i].lo <= addr {
		return t.locals[i].v
	}
	return nil
}

// resolve maps an accessed address to its owning variable, or nil.
// Accesses beyond a global's currently known footprint extend it (the
// next global's base bounds the growth) — footprints record observed
// element *accesses* (Load/Store), so use resolveRef for addresses that
// are merely computed or passed around.
func (t *varTable) resolve(addr uint64) *VarInfo {
	return t.lookup(addr, true)
}

// resolveRef maps a referenced address — a GetElementPtr result, a
// pointer argument — to its owning variable without growing any
// footprint. Resolution is identical to resolve (globals resolve by
// greatest base, never by extent); only the size bookkeeping differs.
func (t *varTable) resolveRef(addr uint64) *VarInfo {
	return t.lookup(addr, false)
}

func (t *varTable) lookup(addr uint64, access bool) *VarInfo {
	// Locals: exact span containment.
	i := sort.Search(len(t.locals), func(i int) bool { return t.locals[i].hi > addr })
	if i < len(t.locals) && t.locals[i].lo <= addr {
		return t.locals[i].v
	}
	// Globals: greatest base <= addr, bounded by the next global's base.
	j := sort.Search(len(t.globals), func(i int) bool { return t.globals[i].lo > addr })
	if j == 0 {
		return nil
	}
	g := &t.globals[j-1]
	if j < len(t.globals) && addr >= t.globals[j].lo {
		return nil // inside the next global's territory (defensive; unreachable)
	}
	if access && addr >= g.hi && !t.frozen {
		g.hi = addr + 8
		if g.v.SizeBytes < int64(g.hi-g.lo) {
			g.v.SizeBytes = int64(g.hi - g.lo)
		}
	}
	return g.v
}

// lookupLocal finds the (latest) local with the given name in the given
// function.
func (t *varTable) lookupLocal(fn, name string) *VarInfo {
	var best *VarInfo
	for _, sp := range t.locals {
		if sp.v.Fn == fn && sp.v.Name == name {
			if best == nil || sp.v.FirstDyn > best.FirstDyn {
				best = sp.v
			}
		}
	}
	return best
}

// global returns a known global by name.
func (t *varTable) global(name string) *VarInfo { return t.gByName[name] }

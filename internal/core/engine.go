package core

import (
	"fmt"
	"time"

	"autocheck/internal/ddg"
	"autocheck/internal/trace"
)

// This file is the single incremental analysis core that every mode of
// AutoCheck adapts to. The pipeline of the paper's Fig. 2 is expressed
// once, as an explicit region state machine (partitioner) plus composable
// passes that consume one trace.Record at a time:
//
//   - storagePass   — address→variable table maintenance (prerequisite of
//     both analysis passes; owns the table reset between sweeps)
//   - collectPass   — module 1, MLI variable collection (§IV-A)
//   - dependPass    — module 2, on-the-fly dependency tracking (§IV-B)
//   - ddgPass       — optional complete-DDG materialization (Fig. 5)
//   - identifyPass  — module 3, critical-variable classification (§IV-C)
//
// The adapters differ only in how records reach the passes:
//
//   - Analyze / AnalyzeStream run the offline *schedule*
//     (analyzeSchedule): three bounded sweeps over a replayable source —
//     partition, storage+collect, storage+depend(+ddg) — so streaming
//     keeps O(variables) memory without a parallel implementation.
//   - Engine (and its Collector alias) is the single-sweep online
//     configuration: the scanPartitioner discovers the loop extent
//     incrementally and all passes run fused on a live record feed.
//   - AnalyzeMany (many.go) runs N independent engines concurrently over
//     distinct traces.

// Region classifies one dynamic record relative to the main computation
// loop (the paper's trace partitioning, §IV-A).
type Region uint8

// Regions, in trace order.
const (
	RegionBefore Region = iota // region A: before the loop's dynamic extent
	RegionLoop                 // region B: inside the loop
	RegionAfter                // region C: after the loop
)

func (r Region) String() string {
	switch r {
	case RegionBefore:
		return "A"
	case RegionLoop:
		return "B"
	default:
		return "C"
	}
}

// NoLoopError reports a LoopSpec that matched nothing: the whole trace
// was scanned without one record of the loop function at a line inside
// the MCLR, so there is no region B to analyze.
type NoLoopError struct {
	Spec    LoopSpec
	Records int // records scanned before giving up
}

func (e *NoLoopError) Error() string {
	return fmt.Sprintf("core: no trace records for function %q lines %d-%d in %d records scanned (wrong main-loop location?)",
		e.Spec.Function, e.Spec.StartLine, e.Spec.EndLine, e.Records)
}

// The engine has two region state machines: spanPartitioner serves the
// offline schedule (the loop's dynamic extent is known from the partition
// sweep, so classification is a pure index comparison), and
// scanPartitioner serves the online engine (the extent is discovered
// incrementally from a live feed, with bounded lookahead buffering to
// stay exactly offline-equivalent).

// spanPartitioner classifies by the loop's dynamic extent [bStart, bEnd]:
// every record inside that index interval is region B, including records
// of callees invoked from the loop.
type spanPartitioner struct {
	spec         LoopSpec
	bStart, bEnd int
	n            int
}

func newSpanPartitioner(spec LoopSpec) *spanPartitioner {
	return &spanPartitioner{spec: spec, bStart: -1, bEnd: -1}
}

// observe is the partition sweep: it learns the extent record by record.
func (p *spanPartitioner) observe(i int, r *trace.Record) error {
	p.n = i + 1
	if r.Func == p.spec.Function && r.Line >= p.spec.StartLine && r.Line <= p.spec.EndLine {
		if p.bStart < 0 {
			p.bStart = i
		}
		p.bEnd = i
	}
	return nil
}

func (p *spanPartitioner) classify(r *trace.Record, i int) Region {
	switch {
	case i < p.bStart:
		return RegionBefore
	case i <= p.bEnd:
		return RegionLoop
	default:
		return RegionAfter
	}
}

func (p *spanPartitioner) stats() Stats {
	return Stats{
		Records: p.n,
		RegionA: p.bStart,
		RegionB: p.bEnd - p.bStart + 1,
		RegionC: p.n - p.bEnd - 1,
	}
}

func (p *spanPartitioner) sawLoop() bool { return p.bStart >= 0 }

// scanPartitioner discovers the regions incrementally and is exactly
// equivalent to the offline partition sweep: region B spans from the
// first to the last record of the loop function at a line inside the
// MCLR. The last such record cannot be recognized without lookahead —
// a callee excursion or the loop's back edge looks just like the loop's
// exit until the MCLR is (or is never) re-entered — so once the loop has
// started, records outside the MCLR park in a pending buffer: the next
// in-MCLR record proves the loop continued and flushes them as region B,
// and the end of the stream resolves the final run as region C. Memory
// is therefore bounded by the longest single run of records away from
// the MCLR: one callee excursion during the loop, and — the trailing run
// — the entire program epilogue, which only flushes at Finish. Under the
// paper's model (the main computation loop dominates the program) the
// epilogue is a handful of records; a program that does most of its work
// after the loop pays O(post-loop records) here and should use the
// offline schedule instead. The exactness is what the buffering buys:
// deferred records must be replayed with their full dependency context,
// so they cannot be processed eagerly without diverging from offline
// map/storage state at their position.
type scanPartitioner struct {
	spec    LoopSpec
	inLoop  bool           // region B entered
	pending []trace.Record // records awaiting excursion/exit resolution
	counts  [3]int
}

// observe classifies one record, emitting it (and any parked records
// whose region its arrival resolves) in trace order.
func (p *scanPartitioner) observe(r *trace.Record, emit func(*trace.Record, Region)) {
	inRange := r.Func == p.spec.Function &&
		r.Line >= p.spec.StartLine && r.Line <= p.spec.EndLine
	switch {
	case inRange:
		// In the MCLR: everything parked since the last such record was
		// an excursion inside the loop, i.e. region B.
		p.inLoop = true
		p.flush(RegionLoop, emit)
		p.emit(r, RegionLoop, emit)
	case p.inLoop:
		// Deep-copy: the caller may reuse its record and operand buffers
		// between Observe calls (nothing in the Observer contract forbids
		// it), and parked records outlive the call.
		p.pending = append(p.pending, r.Clone())
	default:
		p.emit(r, RegionBefore, emit)
	}
}

// finish resolves the trailing pending run: no later record re-entered
// the MCLR, so it was the loop's exit and the records are region C.
func (p *scanPartitioner) finish(emit func(*trace.Record, Region)) {
	p.flush(RegionAfter, emit)
}

func (p *scanPartitioner) flush(reg Region, emit func(*trace.Record, Region)) {
	for i := range p.pending {
		p.emit(&p.pending[i], reg, emit)
	}
	p.pending = p.pending[:0]
}

func (p *scanPartitioner) emit(r *trace.Record, reg Region, emit func(*trace.Record, Region)) {
	p.counts[reg]++
	emit(r, reg)
}

func (p *scanPartitioner) stats() Stats {
	return Stats{
		Records: p.counts[0] + p.counts[1] + p.counts[2],
		RegionA: p.counts[0],
		RegionB: p.counts[1],
		RegionC: p.counts[2],
	}
}

func (p *scanPartitioner) sawLoop() bool { return p.inLoop }

// Pass is one composable stage of the engine. A pass consumes classified
// records one at a time; schedules decide which passes share a sweep.
// Future passes (new classifiers, per-rank reducers, trace statistics)
// implement this interface and slot into a schedule — see DESIGN.md
// "The analysis engine" for the contract.
type Pass interface {
	// Name identifies the pass in schedules and diagnostics.
	Name() string
	// Begin resets the pass for a sweep that starts at the head of the
	// trace. It runs before any Step of that sweep.
	Begin()
	// Step consumes one record together with its region classification.
	Step(r *trace.Record, i int, reg Region)
	// Finish contributes the pass's output to the result after its final
	// sweep.
	Finish(res *Result)
}

// storagePass maintains the address→variable table that both analysis
// passes resolve through. It owns the table reset: each sweep replays
// storage from the start so resolution stays time-correct (the same
// "active state at a certain point" semantics as the paper's reg-var
// map).
type storagePass struct{ a *analyzer }

func (p *storagePass) Name() string                            { return "storage" }
func (p *storagePass) Begin()                                  { p.a.vt = newVarTable() }
func (p *storagePass) Step(r *trace.Record, i int, reg Region) { p.a.trackStorage(r) }
func (p *storagePass) Finish(res *Result)                      {}

// collectPass is module 1 (§IV-A): collect the variables accessed in
// region A, match region-B accesses against them, and emit the MLI set.
type collectPass struct{ a *analyzer }

func (p *collectPass) Name() string { return "collect" }
func (p *collectPass) Begin()       {}
func (p *collectPass) Step(r *trace.Record, i int, reg Region) {
	switch reg {
	case RegionBefore:
		p.a.collectRegionA(r)
	case RegionLoop:
		p.a.collectRegionBMatch(r)
	}
}
func (p *collectPass) Finish(res *Result) { res.MLI = p.a.mliList() }

// dependPass is module 2 (§IV-B): maintain the reg-var and reg-reg maps
// over the whole trace and stream region-B/C read-write information into
// the per-variable summaries that identification consumes.
type dependPass struct{ a *analyzer }

func (p *dependPass) Name() string { return "depend" }
func (p *dependPass) Begin()       {}
func (p *dependPass) Step(r *trace.Record, i int, reg Region) {
	p.a.updateMaps(r)
	switch reg {
	case RegionLoop:
		p.a.processLoopRecord(r)
	case RegionAfter:
		p.a.processAfterLoop(r)
	}
}
func (p *dependPass) Finish(res *Result) {}

// ddgPass activates complete-DDG materialization (Fig. 5(c)) for the
// sweep that runs the dependency pass, and contracts it to the MLI
// vertices (Algorithm 1) at the end. Graph construction itself rides the
// dependency logic — the pass's contribution is turning it on and
// finalizing the graphs.
type ddgPass struct{ a *analyzer }

func (p *ddgPass) Name() string { return "ddg" }
func (p *ddgPass) Begin() {
	p.a.graph = ddg.New()
	p.a.regNode = make(map[regKey]*ddg.Node)
	p.a.varNodes = make(map[VarID]*ddg.Node)
}
func (p *ddgPass) Step(r *trace.Record, i int, reg Region) {}
func (p *ddgPass) Finish(res *Result) {
	res.Complete = p.a.graph
	res.Contracted = p.a.graph.Contract(func(n *ddg.Node) bool { return n.Kind == ddg.KindMLI })
}

// identifyPass is module 3 (§IV-C): classify the MLI variables from the
// accumulated summaries and add the outermost loop's induction variable.
// It consumes no records — everything it needs was streamed into the
// summaries by the dependency pass — which is what lets every adapter
// share it without a record slice.
type identifyPass struct{ a *analyzer }

func (p *identifyPass) Name() string                            { return "identify" }
func (p *identifyPass) Begin()                                  {}
func (p *identifyPass) Step(r *trace.Record, i int, reg Region) {}
func (p *identifyPass) Finish(res *Result) {
	res.Critical = p.a.identify()
	if p.a.opts.Explain {
		res.Provenance = p.a.provenance(res.Critical)
	}
}

// ---- Offline schedule ----

// source yields the records of one trace, replayable once per schedule
// sweep.
type source interface {
	sweep(fn func(i int, r *trace.Record) error) error
}

// sliceSource adapts a materialized []trace.Record without copying.
type sliceSource []trace.Record

func (s sliceSource) sweep(fn func(i int, r *trace.Record) error) error {
	for i := range s {
		if err := fn(i, &s[i]); err != nil {
			return err
		}
	}
	return nil
}

// streamSource adapts an AnalyzeStream-style opener: each sweep re-opens
// the stream and decodes it once, so no record slice ever materializes.
type streamSource func() (trace.Reader, error)

func (open streamSource) sweep(fn func(i int, r *trace.Record) error) error {
	rd, err := open()
	if err != nil {
		return err
	}
	return trace.ForEach(rd, fn)
}

// runSweep drives one schedule sweep: Begin every pass, then classify and
// feed each record through the passes in order.
func runSweep(src source, part *spanPartitioner, passes ...Pass) error {
	for _, p := range passes {
		p.Begin()
	}
	return src.sweep(func(i int, r *trace.Record) error {
		reg := part.classify(r, i)
		for _, p := range passes {
			p.Step(r, i, reg)
		}
		return nil
	})
}

// analyzeSchedule is the engine's bounded-memory offline schedule: sweep
// 1 locates the loop's dynamic extent (building the span partitioner),
// sweep 2 runs storage+collect, sweep 3 runs storage+depend (+ddg), and
// identification closes the result. Analyze (materialized) and
// AnalyzeStream (never-materialized) are thin adapters that only choose
// the source; memory stays O(variables) whenever the source does.
func analyzeSchedule(src source, spec LoopSpec, opts Options) (*Result, error) {
	total0 := time.Now()
	a := newAnalyzer(spec, opts)
	res := &Result{Spec: spec}

	// Sweep 1: partition (locate the loop's dynamic extent).
	t0 := time.Now()
	part := newSpanPartitioner(spec)
	if err := src.sweep(part.observe); err != nil {
		return nil, err
	}
	if !part.sawLoop() {
		return nil, &NoLoopError{Spec: spec, Records: part.n}
	}
	res.Stats = part.stats()
	opts.Obs.Histogram("core.sweep.partition.ns").ObserveSince(t0)

	// Sweep 2: MLI collection (module 1).
	t1 := time.Now()
	collect := &collectPass{a}
	if err := runSweep(src, part, &storagePass{a}, collect); err != nil {
		return nil, err
	}
	collect.Finish(res)
	res.Timing.Pre = time.Since(t0)
	opts.Obs.Histogram("core.sweep.collect.ns").ObserveSince(t1)

	// Sweep 3: dependency analysis (module 2), optionally with the DDG.
	t0 = time.Now()
	passes := []Pass{&storagePass{a}, &dependPass{a}}
	if opts.BuildDDG {
		passes = append(passes, &ddgPass{a})
	}
	if err := runSweep(src, part, passes...); err != nil {
		return nil, err
	}
	for _, p := range passes {
		p.Finish(res)
	}
	res.Timing.Dep = time.Since(t0)
	opts.Obs.Histogram("core.sweep.depend.ns").ObserveSince(t0)

	// Identification (module 3).
	t0 = time.Now()
	(&identifyPass{a}).Finish(res)
	res.Timing.Identify = time.Since(t0)
	res.Timing.Total = time.Since(total0)
	opts.Obs.Histogram("core.identify.ns").ObserveSince(t0)
	opts.Obs.Counter("core.analyze.records").Add(int64(res.Stats.Records))
	return res, nil
}

// ---- Online (single-sweep) engine ----

// Engine is the incremental core in its single-sweep configuration — the
// paper's §IX online mode, where analysis runs inside the instrumentation
// itself. Records are observed as they are produced (for example by
// wiring Observe as the interpreter's Tracer callback); no trace is
// materialized and no record is revisited.
//
// The offline schedule consults MLI membership while streaming dependency
// events; fused into one sweep, the engine instead tracks summaries for
// every variable and intersects with the MLI set at Finish. Region
// boundaries come from the incremental scanPartitioner, which buffers
// just enough lookahead to classify records exactly like the offline
// partition sweep — results are byte-identical to Analyze on the same
// records (Timing aside, and Stats.TraceBytes stays 0: no trace bytes
// exist online). BuildDDG requires offline analysis: DDG vertex kinds
// depend on MLI membership, which is only final when the stream ends.
type Engine struct {
	spec   LoopSpec
	a      *analyzer
	part   *scanPartitioner
	passes []Pass
	emit   func(*trace.Record, Region) // e.step, bound once: a per-Observe method value would allocate
	n      int
	frozen bool
	start  time.Time
}

// NewEngine prepares a single-sweep analysis session.
func NewEngine(spec LoopSpec, opts Options) (*Engine, error) {
	if opts.BuildDDG {
		return nil, fmt.Errorf("core: BuildDDG requires offline analysis")
	}
	a := newAnalyzer(spec, opts)
	a.trackAll = true
	e := &Engine{
		spec:   spec,
		a:      a,
		part:   &scanPartitioner{spec: spec},
		passes: []Pass{&storagePass{a}, &collectPass{a}, &dependPass{a}},
		start:  time.Now(),
	}
	e.emit = e.step
	for _, p := range e.passes {
		p.Begin()
	}
	return e, nil
}

// Observe consumes one dynamic instruction record. The record may reach
// the passes slightly later (copied into the partitioner's lookahead
// buffer) when its region is not yet decidable; pass order always equals
// trace order.
func (e *Engine) Observe(r *trace.Record) {
	e.part.observe(r, e.emit)
}

// step feeds one region-resolved record through the fused passes.
func (e *Engine) step(r *trace.Record, reg Region) {
	if reg == RegionAfter && !e.frozen {
		// Match the offline schedule's footprint semantics: its collect
		// sweep stops observing at the loop's end, so region-C accesses
		// never grow a reported global footprint. Freezing changes no
		// address resolution (global resolution is by base, not extent) —
		// only the recorded sizes.
		e.frozen = true
		e.a.vt.freeze()
	}
	for _, p := range e.passes {
		p.Step(r, e.n, reg)
	}
	e.n++
}

// Finish resolves the trailing records, completes the analysis, and
// returns the result. Call it exactly once, after the last Observe.
// With Options.Obs the fused sweep's total and the identification step
// are recorded here — once per session, never per record, so Observe's
// hot path carries no telemetry cost when disabled or enabled.
func (e *Engine) Finish() (*Result, error) {
	e.part.finish(e.step)
	if !e.part.sawLoop() {
		return nil, &NoLoopError{Spec: e.spec, Records: e.n}
	}
	res := &Result{Spec: e.spec}
	res.Stats = e.part.stats()
	for _, p := range e.passes {
		p.Finish(res)
	}
	t0 := time.Now()
	(&identifyPass{e.a}).Finish(res)
	res.Timing.Identify = time.Since(t0)
	res.Timing.Total = time.Since(e.start)
	obsReg := e.a.opts.Obs
	obsReg.Histogram("core.identify.ns").Observe(res.Timing.Identify)
	obsReg.Histogram("core.engine.sweep.ns").Observe(res.Timing.Total)
	obsReg.Counter("core.engine.records").Add(int64(res.Stats.Records))
	return res, nil
}

package core

import (
	"fmt"
	"time"

	"autocheck/internal/ddg"
	"autocheck/internal/trace"
)

// This file is the single incremental analysis core that every mode of
// AutoCheck adapts to. The pipeline of the paper's Fig. 2 is expressed
// once, as an explicit region state machine (partitioner) plus composable
// passes that consume one trace.Record at a time:
//
//   - storagePass   — address→variable table maintenance (prerequisite of
//     both analysis passes; owns the table reset between sweeps)
//   - collectPass   — module 1, MLI variable collection (§IV-A)
//   - dependPass    — module 2, on-the-fly dependency tracking (§IV-B)
//   - ddgPass       — optional complete-DDG materialization (Fig. 5)
//   - identifyPass  — module 3, critical-variable classification (§IV-C)
//
// The adapters differ only in how records reach the passes:
//
//   - Analyze / AnalyzeStream run the offline *schedule*
//     (analyzeSchedule): bounded sweeps over a replayable source —
//     a header-only partition sweep, then one fused
//     storage+collect+depend sweep (analysisPass), batched — so
//     streaming keeps O(variables) memory without a parallel
//     implementation. With BuildDDG the split three-sweep schedule
//     (partition, storage+collect, storage+depend+ddg) runs instead,
//     because DDG vertex kinds need the final MLI set.
//   - Engine (and its Collector alias) is the single-sweep online
//     configuration: the scanPartitioner discovers the loop extent
//     incrementally and the same fused pass runs on a live record feed.
//   - AnalyzeMany (many.go) runs N independent engines concurrently over
//     distinct traces, one reusable scratch bundle per worker.

// Region classifies one dynamic record relative to the main computation
// loop (the paper's trace partitioning, §IV-A).
type Region uint8

// Regions, in trace order.
const (
	RegionBefore Region = iota // region A: before the loop's dynamic extent
	RegionLoop                 // region B: inside the loop
	RegionAfter                // region C: after the loop
)

func (r Region) String() string {
	switch r {
	case RegionBefore:
		return "A"
	case RegionLoop:
		return "B"
	default:
		return "C"
	}
}

// NoLoopError reports a LoopSpec that matched nothing: the whole trace
// was scanned without one record of the loop function at a line inside
// the MCLR, so there is no region B to analyze.
type NoLoopError struct {
	Spec    LoopSpec
	Records int // records scanned before giving up
}

func (e *NoLoopError) Error() string {
	return fmt.Sprintf("core: no trace records for function %q lines %d-%d in %d records scanned (wrong main-loop location?)",
		e.Spec.Function, e.Spec.StartLine, e.Spec.EndLine, e.Records)
}

// The engine has two region state machines: spanPartitioner serves the
// offline schedule (the loop's dynamic extent is known from the partition
// sweep, so classification is a pure index comparison), and
// scanPartitioner serves the online engine (the extent is discovered
// incrementally from a live feed, with bounded lookahead buffering to
// stay exactly offline-equivalent).

// spanPartitioner classifies by the loop's dynamic extent [bStart, bEnd]:
// every record inside that index interval is region B, including records
// of callees invoked from the loop.
type spanPartitioner struct {
	spec         LoopSpec
	bStart, bEnd int
	n            int
}

func newSpanPartitioner(spec LoopSpec) *spanPartitioner {
	return &spanPartitioner{spec: spec, bStart: -1, bEnd: -1}
}

// observe is the partition sweep: it learns the extent record by record.
func (p *spanPartitioner) observe(i int, r *trace.Record) error {
	p.n = i + 1
	if r.Func == p.spec.Function && r.Line >= p.spec.StartLine && r.Line <= p.spec.EndLine {
		if p.bStart < 0 {
			p.bStart = i
		}
		p.bEnd = i
	}
	return nil
}

func (p *spanPartitioner) classify(r *trace.Record, i int) Region {
	switch {
	case i < p.bStart:
		return RegionBefore
	case i <= p.bEnd:
		return RegionLoop
	default:
		return RegionAfter
	}
}

func (p *spanPartitioner) stats() Stats {
	return Stats{
		Records: p.n,
		RegionA: p.bStart,
		RegionB: p.bEnd - p.bStart + 1,
		RegionC: p.n - p.bEnd - 1,
	}
}

func (p *spanPartitioner) sawLoop() bool { return p.bStart >= 0 }

// scanPartitioner discovers the regions incrementally and is exactly
// equivalent to the offline partition sweep: region B spans from the
// first to the last record of the loop function at a line inside the
// MCLR. The last such record cannot be recognized without lookahead —
// a callee excursion or the loop's back edge looks just like the loop's
// exit until the MCLR is (or is never) re-entered — so once the loop has
// started, records outside the MCLR park in a pending buffer: the next
// in-MCLR record proves the loop continued and flushes them as region B,
// and the end of the stream resolves the final run as region C. Memory
// is therefore bounded by the longest single run of records away from
// the MCLR: one callee excursion during the loop, and — the trailing run
// — the entire program epilogue, which only flushes at Finish. Under the
// paper's model (the main computation loop dominates the program) the
// epilogue is a handful of records; a program that does most of its work
// after the loop pays O(post-loop records) here and should use the
// offline schedule instead. The exactness is what the buffering buys:
// deferred records must be replayed with their full dependency context,
// so they cannot be processed eagerly without diverging from offline
// map/storage state at their position.
type scanPartitioner struct {
	spec    LoopSpec
	inLoop  bool           // region B entered
	pending []trace.Record // records awaiting excursion/exit resolution
	pendOps []trace.Operand // arena backing the parked records' operands
	counts  [3]int
}

// observe classifies one record, emitting it (and any parked records
// whose region its arrival resolves) in trace order.
func (p *scanPartitioner) observe(r *trace.Record, emit func(*trace.Record, Region)) {
	inRange := r.Func == p.spec.Function &&
		r.Line >= p.spec.StartLine && r.Line <= p.spec.EndLine
	switch {
	case inRange:
		// In the MCLR: everything parked since the last such record was
		// an excursion inside the loop, i.e. region B.
		p.inLoop = true
		p.flush(RegionLoop, emit)
		p.emit(r, RegionLoop, emit)
	case p.inLoop:
		p.park(r)
	default:
		p.emit(r, RegionBefore, emit)
	}
}

// park deep-copies r into the partitioner's buffers: the caller may reuse
// its record and operand storage between Observe calls (nothing in the
// Observer contract forbids it), and parked records outlive the call. The
// copy lands in a reusable arena — recycled at every flush — so steady
// excursion traffic parks without allocating. Arena growth copies the
// backing array but never mutates written elements, so earlier parked
// records' aliases stay value-correct.
func (p *scanPartitioner) park(r *trace.Record) {
	c := *r
	if len(r.Ops) > 0 {
		opStart := len(p.pendOps)
		p.pendOps = append(p.pendOps, r.Ops...)
		c.Ops = p.pendOps[opStart:len(p.pendOps):len(p.pendOps)]
	}
	if r.Result != nil {
		p.pendOps = append(p.pendOps, *r.Result)
		c.Result = &p.pendOps[len(p.pendOps)-1]
	}
	p.pending = append(p.pending, c)
}

// finish resolves the trailing pending run: no later record re-entered
// the MCLR, so it was the loop's exit and the records are region C.
func (p *scanPartitioner) finish(emit func(*trace.Record, Region)) {
	p.flush(RegionAfter, emit)
}

func (p *scanPartitioner) flush(reg Region, emit func(*trace.Record, Region)) {
	for i := range p.pending {
		p.emit(&p.pending[i], reg, emit)
	}
	// Passes never retain record pointers past Step, so the parked
	// storage is free for reuse the moment the flush ends.
	p.pending = p.pending[:0]
	p.pendOps = p.pendOps[:0]
}

func (p *scanPartitioner) emit(r *trace.Record, reg Region, emit func(*trace.Record, Region)) {
	p.counts[reg]++
	emit(r, reg)
}

func (p *scanPartitioner) stats() Stats {
	return Stats{
		Records: p.counts[0] + p.counts[1] + p.counts[2],
		RegionA: p.counts[0],
		RegionB: p.counts[1],
		RegionC: p.counts[2],
	}
}

func (p *scanPartitioner) sawLoop() bool { return p.inLoop }

// Pass is one composable stage of the engine. A pass consumes classified
// records one at a time; schedules decide which passes share a sweep.
// Future passes (new classifiers, per-rank reducers, trace statistics)
// implement this interface and slot into a schedule — see DESIGN.md
// "The analysis engine" for the contract.
type Pass interface {
	// Name identifies the pass in schedules and diagnostics.
	Name() string
	// Begin resets the pass for a sweep that starts at the head of the
	// trace. It runs before any Step of that sweep.
	Begin()
	// Step consumes one record together with its region classification.
	Step(r *trace.Record, i int, reg Region)
	// Finish contributes the pass's output to the result after its final
	// sweep.
	Finish(res *Result)
}

// BatchPass is the optional batch extension of Pass: a pass that also
// implements StepBatch consumes whole decoded record batches, paying one
// virtual call per batch instead of one per record. Semantics must equal
// calling Step(recs[k], base+k, regions[k]) for every k in order — the
// equivalence is pinned by tests. A sweep batch-dispatches at most ONE
// pass: two passes sharing analyzer state would see each other's updates
// whole-batches-early instead of record-by-record (the storage table a
// later pass resolves through would already reflect the batch's future).
// Sweeps that fuse several stages express them as one pass — see
// analysisPass — rather than batch-stepping a pass list.
type BatchPass interface {
	Pass
	// StepBatch consumes one batch of records; base is the stream index
	// of recs[0] and regions[k] classifies recs[k].
	StepBatch(recs []trace.Record, base int, regions []Region)
}

// storagePass maintains the address→variable table that both analysis
// passes resolve through. It owns the table reset: each sweep replays
// storage from the start so resolution stays time-correct (the same
// "active state at a certain point" semantics as the paper's reg-var
// map).
type storagePass struct{ a *analyzer }

func (p *storagePass) Name() string                            { return "storage" }
func (p *storagePass) Begin()                                  { p.a.vt.reset() }
func (p *storagePass) Step(r *trace.Record, i int, reg Region) { p.a.trackStorage(r) }
func (p *storagePass) Finish(res *Result)                      {}

// collectPass is module 1 (§IV-A): collect the variables accessed in
// region A, match region-B accesses against them, and emit the MLI set.
type collectPass struct{ a *analyzer }

func (p *collectPass) Name() string { return "collect" }
func (p *collectPass) Begin()       {}
func (p *collectPass) Step(r *trace.Record, i int, reg Region) {
	switch reg {
	case RegionBefore:
		p.a.collectRegionA(r)
	case RegionLoop:
		p.a.collectRegionBMatch(r)
	}
}
func (p *collectPass) Finish(res *Result) { res.MLI = p.a.mliList() }

// dependPass is module 2 (§IV-B): maintain the reg-var and reg-reg maps
// over the whole trace and stream region-B/C read-write information into
// the per-variable summaries that identification consumes.
type dependPass struct{ a *analyzer }

func (p *dependPass) Name() string { return "depend" }
func (p *dependPass) Begin()       {}
func (p *dependPass) Step(r *trace.Record, i int, reg Region) {
	p.a.updateMaps(r)
	switch reg {
	case RegionLoop:
		p.a.processLoopRecord(r)
	case RegionAfter:
		p.a.processAfterLoop(r)
	}
}
func (p *dependPass) Finish(res *Result) {}

// ddgPass activates complete-DDG materialization (Fig. 5(c)) for the
// sweep that runs the dependency pass, and contracts it to the MLI
// vertices (Algorithm 1) at the end. Graph construction itself rides the
// dependency logic — the pass's contribution is turning it on and
// finalizing the graphs.
type ddgPass struct{ a *analyzer }

func (p *ddgPass) Name() string { return "ddg" }
func (p *ddgPass) Begin() {
	p.a.graph = ddg.New()
	p.a.regNode = make(map[regKey]*ddg.Node)
	p.a.varNodes = make(map[VarID]*ddg.Node)
}
func (p *ddgPass) Step(r *trace.Record, i int, reg Region) {}
func (p *ddgPass) Finish(res *Result) {
	res.Complete = p.a.graph
	res.Contracted = p.a.graph.Contract(func(n *ddg.Node) bool { return n.Kind == ddg.KindMLI })
}

// identifyPass is module 3 (§IV-C): classify the MLI variables from the
// accumulated summaries and add the outermost loop's induction variable.
// It consumes no records — everything it needs was streamed into the
// summaries by the dependency pass — which is what lets every adapter
// share it without a record slice.
type identifyPass struct{ a *analyzer }

func (p *identifyPass) Name() string                            { return "identify" }
func (p *identifyPass) Begin()                                  {}
func (p *identifyPass) Step(r *trace.Record, i int, reg Region) {}
func (p *identifyPass) Finish(res *Result) {
	res.Critical = p.a.identify()
	if p.a.opts.Explain {
		res.Provenance = p.a.provenance(res.Critical)
	}
}

// analysisPass fuses storage+collect+depend into a single pass — the
// configuration the online engine has always run, now shared with the
// offline schedule's fused sweep. Fusion requires analyzer.trackAll:
// MLI membership is incomplete while the sweep runs, so summaries are
// kept for every variable and intersected with the MLI set at Finish,
// and the variable table freezes at the first region-C record so
// reported global footprints match the collect sweep (which never
// observes region C). The equivalence of this fusion to the split
// sweeps is exactly the pinned engine↔offline equivalence.
type analysisPass struct{ a *analyzer }

func (p *analysisPass) Name() string { return "analysis" }
func (p *analysisPass) Begin() {
	p.a.vt.reset()
	p.a.frozen = false
}
func (p *analysisPass) Step(r *trace.Record, i int, reg Region) { p.a.fusedStep(r, reg) }
func (p *analysisPass) StepBatch(recs []trace.Record, base int, regions []Region) {
	for k := range recs {
		p.a.fusedStep(&recs[k], regions[k])
	}
}
func (p *analysisPass) Finish(res *Result) { res.MLI = p.a.mliList() }

// fusedStep is the per-record body of the fused pass: storage, collect,
// and depend in trace order, with the footprint freeze at the loop's end.
func (a *analyzer) fusedStep(r *trace.Record, reg Region) {
	if reg == RegionAfter && !a.frozen {
		// Match the offline split schedule's footprint semantics: its
		// collect sweep stops observing at the loop's end, so region-C
		// accesses never grow a reported global footprint. Freezing
		// changes no address resolution (global resolution is by base,
		// not extent) — only the recorded sizes.
		a.frozen = true
		a.vt.freeze()
	}
	a.trackStorage(r)
	switch reg {
	case RegionBefore:
		a.collectRegionA(r)
	case RegionLoop:
		a.collectRegionBMatch(r)
	}
	a.updateMaps(r)
	switch reg {
	case RegionLoop:
		a.processLoopRecord(r)
	case RegionAfter:
		a.processAfterLoop(r)
	}
}

// ---- Offline schedule ----

// source yields the records of one trace, replayable once per schedule
// sweep.
type source interface {
	// sweep replays the stream one record at a time.
	sweep(fn func(i int, r *trace.Record) error) error
	// sweepBatch replays the stream in record slices; base is the stream
	// index of recs[0]. A non-nil filter tells the source which opcodes
	// need their operands — sources that decode per sweep skip the
	// operand decode for rejected opcodes (headers stay intact); already
	// materialized sources ignore it, which is always a superset. The
	// records are only valid for the duration of each fn call.
	sweepBatch(filter func(opcode int) bool, fn func(base int, recs []trace.Record) error) error
}

// sliceSource adapts a materialized []trace.Record without copying.
type sliceSource []trace.Record

func (s sliceSource) sweep(fn func(i int, r *trace.Record) error) error {
	for i := range s {
		if err := fn(i, &s[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s sliceSource) sweepBatch(filter func(opcode int) bool, fn func(base int, recs []trace.Record) error) error {
	// Already materialized: the whole slice is one batch, no decode to
	// filter.
	if len(s) == 0 {
		return nil
	}
	return fn(0, s)
}

// streamSource adapts an AnalyzeStream-style opener: each sweep re-opens
// the stream and decodes it once, so no record slice ever materializes.
// Batched sweeps decode into the shared reusable batch — a single record
// slice plus operand arena recycled across batches, sweeps, and (through
// the scratch bundle) across traces.
type streamSource struct {
	open  func() (trace.Reader, error)
	batch *trace.RecordBatch
}

func (s *streamSource) sweep(fn func(i int, r *trace.Record) error) error {
	rd, err := s.open()
	if err != nil {
		return err
	}
	return trace.ForEach(rd, fn)
}

func (s *streamSource) sweepBatch(filter func(opcode int) bool, fn func(base int, recs []trace.Record) error) error {
	rd, err := s.open()
	if err != nil {
		return err
	}
	s.batch.Filter = filter
	defer func() { s.batch.Filter = nil }()
	return trace.ForEachBatch(rd, s.batch, fn)
}

// runSweep drives one schedule sweep: Begin every pass, then classify and
// feed each record through the passes in order.
func runSweep(src source, part *spanPartitioner, passes ...Pass) error {
	for _, p := range passes {
		p.Begin()
	}
	return src.sweep(func(i int, r *trace.Record) error {
		reg := part.classify(r, i)
		for _, p := range passes {
			p.Step(r, i, reg)
		}
		return nil
	})
}

// runSweepBatched drives one schedule sweep through a single pass in
// record batches: regions are classified into a reusable scratch slice,
// then the batch goes to StepBatch when the pass implements BatchPass and
// record-by-record Step otherwise — byte-identical either way (pinned by
// tests). Exactly one pass by construction: see the BatchPass contract
// for why a pass list cannot be batch-dispatched. filter narrows the
// operand decode (nil: full records); it must admit every opcode the
// pass reads operands of. The (possibly grown) region scratch is
// returned for reuse.
func runSweepBatched(src source, part *spanPartitioner, filter func(opcode int) bool, regions []Region, p Pass) ([]Region, error) {
	p.Begin()
	bp, batched := p.(BatchPass)
	err := src.sweepBatch(filter, func(base int, recs []trace.Record) error {
		if cap(regions) < len(recs) {
			regions = make([]Region, len(recs))
		}
		regions = regions[:len(recs)]
		for k := range recs {
			regions[k] = part.classify(&recs[k], base+k)
		}
		if batched {
			bp.StepBatch(recs, base, regions)
			return nil
		}
		for k := range recs {
			p.Step(&recs[k], base+k, regions[k])
		}
		return nil
	})
	return regions, err
}

// filterNone rejects every opcode: the partition sweep consults only
// header fields (Func, Line), so its decode can skip every operand.
func filterNone(int) bool { return false }

// scratch bundles the reusable state of one analysis: the analyzer (maps
// and variable table), the record batch (decode arena), and the region
// scratch of batched sweeps. One scratch serves any number of analyses
// sequentially (reset between traces); AnalyzeMany keeps one per worker
// so concurrent engines stop hammering the shared allocator.
type scratch struct {
	a       *analyzer
	batch   trace.RecordBatch
	regions []Region
}

// analyzer returns the bundle's analyzer configured for a fresh trace.
func (sc *scratch) analyzer(spec LoopSpec, opts Options) *analyzer {
	if sc.a == nil {
		sc.a = newAnalyzer(spec, opts)
	} else {
		sc.a.reset(spec, opts)
	}
	return sc.a
}

// analyzeSchedule is the engine's bounded-memory offline schedule over a
// fresh scratch bundle; analyzeScheduleIn is the same schedule over a
// caller-owned (reusable) one.
func analyzeSchedule(src source, spec LoopSpec, opts Options) (*Result, error) {
	return analyzeScheduleIn(&scratch{}, src, spec, opts)
}

// analyzeScheduleIn runs the offline schedule: sweep 1 locates the loop's
// dynamic extent (building the span partitioner, decoding headers only),
// then one fused storage+collect+depend sweep completes the analysis —
// the same fusion the online engine runs, so two full decodes instead of
// three, both batched. With BuildDDG the split three-sweep schedule runs
// instead: DDG vertex kinds depend on MLI membership, which the fused
// sweep only finalizes at the end. Analyze (materialized) and
// AnalyzeStream (never-materialized) are thin adapters that only choose
// the source; memory stays O(variables) whenever the source does.
func analyzeScheduleIn(sc *scratch, src source, spec LoopSpec, opts Options) (*Result, error) {
	total0 := time.Now()
	a := sc.analyzer(spec, opts)
	res := &Result{Spec: spec}

	// Sweep 1: partition (locate the loop's dynamic extent). Only header
	// fields matter, so the decode skips every operand.
	t0 := time.Now()
	part := newSpanPartitioner(spec)
	err := src.sweepBatch(filterNone, func(base int, recs []trace.Record) error {
		for k := range recs {
			part.observe(base+k, &recs[k]) // never fails
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !part.sawLoop() {
		return nil, &NoLoopError{Spec: spec, Records: part.n}
	}
	res.Stats = part.stats()
	opts.Obs.Histogram("core.sweep.partition.ns").ObserveSince(t0)

	if !opts.BuildDDG {
		// Fused sweep: storage, collect, and depend in one pass.
		res.Timing.Pre = time.Since(t0)
		t1 := time.Now()
		a.trackAll = true
		ap := &analysisPass{a}
		if sc.regions, err = runSweepBatched(src, part, nil, sc.regions, ap); err != nil {
			return nil, err
		}
		ap.Finish(res)
		res.Timing.Dep = time.Since(t1)
		opts.Obs.Histogram("core.sweep.analyze.ns").ObserveSince(t1)
	} else {
		// Sweep 2: MLI collection (module 1).
		t1 := time.Now()
		collect := &collectPass{a}
		if err := runSweep(src, part, &storagePass{a}, collect); err != nil {
			return nil, err
		}
		collect.Finish(res)
		res.Timing.Pre = time.Since(t0)
		opts.Obs.Histogram("core.sweep.collect.ns").ObserveSince(t1)

		// Sweep 3: dependency analysis (module 2) with the DDG.
		t1 = time.Now()
		passes := []Pass{&storagePass{a}, &dependPass{a}, &ddgPass{a}}
		if err := runSweep(src, part, passes...); err != nil {
			return nil, err
		}
		for _, p := range passes {
			p.Finish(res)
		}
		res.Timing.Dep = time.Since(t1)
		opts.Obs.Histogram("core.sweep.depend.ns").ObserveSince(t1)
	}

	// Identification (module 3).
	t0 = time.Now()
	(&identifyPass{a}).Finish(res)
	res.Timing.Identify = time.Since(t0)
	res.Timing.Total = time.Since(total0)
	opts.Obs.Histogram("core.identify.ns").ObserveSince(t0)
	opts.Obs.Counter("core.analyze.records").Add(int64(res.Stats.Records))
	return res, nil
}

// ---- Online (single-sweep) engine ----

// Engine is the incremental core in its single-sweep configuration — the
// paper's §IX online mode, where analysis runs inside the instrumentation
// itself. Records are observed as they are produced (for example by
// wiring Observe as the interpreter's Tracer callback); no trace is
// materialized and no record is revisited.
//
// The offline schedule consults MLI membership while streaming dependency
// events; fused into one sweep, the engine instead tracks summaries for
// every variable and intersects with the MLI set at Finish. Region
// boundaries come from the incremental scanPartitioner, which buffers
// just enough lookahead to classify records exactly like the offline
// partition sweep — results are byte-identical to Analyze on the same
// records (Timing aside, and Stats.TraceBytes stays 0: no trace bytes
// exist online). BuildDDG requires offline analysis: DDG vertex kinds
// depend on MLI membership, which is only final when the stream ends.
type Engine struct {
	spec  LoopSpec
	a     *analyzer
	part  *scanPartitioner
	pass  *analysisPass               // the fused storage+collect+depend pass
	emit  func(*trace.Record, Region) // e.step, bound once: a per-Observe method value would allocate
	n     int
	start time.Time
}

// NewEngine prepares a single-sweep analysis session.
func NewEngine(spec LoopSpec, opts Options) (*Engine, error) {
	if opts.BuildDDG {
		return nil, fmt.Errorf("core: BuildDDG requires offline analysis")
	}
	a := newAnalyzer(spec, opts)
	a.trackAll = true
	e := &Engine{
		spec:  spec,
		a:     a,
		part:  &scanPartitioner{spec: spec},
		pass:  &analysisPass{a},
		start: time.Now(),
	}
	e.emit = e.step
	e.pass.Begin()
	return e, nil
}

// Observe consumes one dynamic instruction record. The record may reach
// the pass slightly later (copied into the partitioner's lookahead
// buffer) when its region is not yet decidable; pass order always equals
// trace order.
func (e *Engine) Observe(r *trace.Record) {
	e.part.observe(r, e.emit)
}

// step feeds one region-resolved record through the fused pass (which
// owns the footprint freeze at the loop's end).
func (e *Engine) step(r *trace.Record, reg Region) {
	e.pass.Step(r, e.n, reg)
	e.n++
}

// Finish resolves the trailing records, completes the analysis, and
// returns the result. Call it exactly once, after the last Observe.
// With Options.Obs the fused sweep's total and the identification step
// are recorded here — once per session, never per record, so Observe's
// hot path carries no telemetry cost when disabled or enabled.
func (e *Engine) Finish() (*Result, error) {
	e.part.finish(e.step)
	if !e.part.sawLoop() {
		return nil, &NoLoopError{Spec: e.spec, Records: e.n}
	}
	res := &Result{Spec: e.spec}
	res.Stats = e.part.stats()
	e.pass.Finish(res)
	t0 := time.Now()
	(&identifyPass{e.a}).Finish(res)
	res.Timing.Identify = time.Since(t0)
	res.Timing.Total = time.Since(e.start)
	obsReg := e.a.opts.Obs
	obsReg.Histogram("core.identify.ns").Observe(res.Timing.Identify)
	obsReg.Histogram("core.engine.sweep.ns").Observe(res.Timing.Total)
	obsReg.Counter("core.engine.records").Add(int64(res.Stats.Records))
	return res, nil
}

package core

import (
	"testing"

	"autocheck/internal/interp"
	"autocheck/internal/trace"
)

func BenchmarkObserveHot(b *testing.B) {
	mod, err := interp.Compile(fig4Source)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := interp.TraceProgram(mod)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(fig4Spec, Options{IncludeGlobals: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := range recs {
		e.Observe(&recs[i])
	}
	var hot *trace.Record
	for i := range recs {
		r := &recs[i]
		if r.Opcode == trace.OpLoad && r.Func == fig4Spec.Function &&
			r.Line >= fig4Spec.StartLine && r.Line <= fig4Spec.EndLine {
			hot = r
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(hot)
	}
}

package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"autocheck/internal/ddg"
	"autocheck/internal/trace"
)

// AnalyzeStream runs the three-module pipeline over a replayable record
// stream in three bounded passes, never materializing a []trace.Record.
// It produces results identical to Analyze on the same records (the
// equivalence is pinned by tests) because each pass drives exactly the
// materialized pipeline's per-record steps: pass 1 is the partition scan
// (plain state, no analyzer), pass 2 is collectMLI with the known loop
// extent, pass 3 is the module-2/3 replay.
//
// open is called once per pass and must return a fresh reader positioned
// at the start of the same stream (for example a new Scanner or
// BinaryScanner over the trace). Readers that implement io.Closer are
// closed when their pass ends.
func AnalyzeStream(open func() (trace.Reader, error), spec LoopSpec, opts Options) (*Result, error) {
	total0 := time.Now()
	res := &Result{Spec: spec}
	a := newAnalyzer(spec, opts)

	// ---- Pass 1: partition (locate the loop's dynamic extent) ----
	t0 := time.Now()
	bStart, bEnd := -1, -1
	n := 0
	err := forEachRecord(open, func(i int, r *trace.Record) error {
		n = i + 1
		if r.Func == spec.Function && r.Line >= spec.StartLine && r.Line <= spec.EndLine {
			if bStart < 0 {
				bStart = i
			}
			bEnd = i
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if bStart < 0 {
		return nil, fmt.Errorf("core: no trace records for function %q lines %d-%d (wrong main-loop location?)",
			spec.Function, spec.StartLine, spec.EndLine)
	}
	res.Stats.Records = n
	res.Stats.RegionA = bStart
	res.Stats.RegionB = bEnd - bStart + 1
	res.Stats.RegionC = n - bEnd - 1

	// ---- Pass 2: MLI collection (module 1) ----
	err = forEachRecord(open, func(i int, r *trace.Record) error {
		a.collectStep(r, i, bStart, bEnd)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.MLI = a.mliList()
	res.Timing.Pre = time.Since(t0)

	// ---- Pass 3: dependency analysis (module 2) ----
	t0 = time.Now()
	a.beginDependencyPass()
	err = forEachRecord(open, func(i int, r *trace.Record) error {
		a.dependencyStep(r, i, bStart, bEnd)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.BuildDDG {
		res.Complete = a.graph
		res.Contracted = a.graph.Contract(func(n *ddg.Node) bool { return n.Kind == ddg.KindMLI })
	}
	res.Timing.Dep = time.Since(t0)

	// ---- Module 3: identification ----
	t0 = time.Now()
	res.Critical = a.identify()
	res.Timing.Identify = time.Since(t0)
	res.Timing.Total = time.Since(total0)
	return res, nil
}

// forEachRecord drives one streaming pass, closing the reader if it is
// also an io.Closer.
func forEachRecord(open func() (trace.Reader, error), fn func(i int, r *trace.Record) error) (err error) {
	rd, err := open()
	if err != nil {
		return err
	}
	if c, ok := rd.(io.Closer); ok {
		defer func() {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	for i := 0; ; i++ {
		r, rerr := rd.Next()
		if rerr != nil {
			return rerr
		}
		if r == nil {
			return nil
		}
		if ferr := fn(i, r); ferr != nil {
			return ferr
		}
	}
}

// bytesReaderOpener adapts an in-memory trace (either format) into the
// replayable stream AnalyzeStream needs.
func bytesReaderOpener(data []byte) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		rd, _, err := trace.NewAutoReader(bytes.NewReader(data))
		return rd, err
	}
}

// closingReader pairs a record reader with the file it scans, so each
// streaming pass releases its descriptor.
type closingReader struct {
	trace.Reader
	c io.Closer
}

func (r closingReader) Close() error { return r.c.Close() }

// fileReaderOpener re-opens a trace file (either format) for each
// streaming pass.
func fileReaderOpener(path string) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rd, _, err := trace.NewAutoReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return closingReader{Reader: rd, c: f}, nil
	}
}

package core

import (
	"io"
	"os"

	"autocheck/internal/trace"
)

// AnalyzeStream runs the engine's offline schedule over a replayable
// record stream: bounded sweeps (header-only partition, then the fused
// analysis sweep), never materializing a []trace.Record. It produces
// results identical to Analyze on the same records (the equivalence is
// pinned by tests) because both are the same schedule over the same
// passes — only the source differs; memory stays O(variables) at the
// cost of decoding the trace once per sweep. Decoding goes through the
// batch reader protocol (trace.BatchReader) when the reader supports it,
// reusing one record slice and operand arena for the whole analysis.
//
// open is called once per sweep and must return a fresh reader positioned
// at the start of the same stream (for example a new Scanner or
// BinaryScanner over the trace). Readers that implement io.Closer are
// closed when their sweep ends.
func AnalyzeStream(open func() (trace.Reader, error), spec LoopSpec, opts Options) (*Result, error) {
	return analyzeStreamIn(&scratch{}, open, spec, opts)
}

// analyzeStreamIn is AnalyzeStream over a caller-owned scratch bundle:
// the stream decodes into the bundle's batch storage.
func analyzeStreamIn(sc *scratch, open func() (trace.Reader, error), spec LoopSpec, opts Options) (*Result, error) {
	return analyzeScheduleIn(sc, &streamSource{open: open, batch: &sc.batch}, spec, opts)
}

// bytesReaderOpener adapts an in-memory trace (either format) into the
// replayable stream AnalyzeStream needs, on the direct slice-walking
// batch decoders (no bufio layer, no per-line copying).
func bytesReaderOpener(data []byte) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		rd, _, err := trace.NewBytesReader(data)
		return rd, err
	}
}

// closingReader pairs a record reader with the file it scans, so each
// streaming sweep releases its descriptor.
type closingReader struct {
	trace.Reader
	c io.Closer
}

func (r closingReader) Close() error { return r.c.Close() }

// NextBatch forwards the batch protocol to the wrapped reader, so the
// interface-embedding wrapper does not hide it from ForEachBatch; a
// non-batching reader degrades to the record-at-a-time gather.
func (r closingReader) NextBatch(b *trace.RecordBatch, max int) (int, error) {
	if br, ok := r.Reader.(trace.BatchReader); ok {
		return br.NextBatch(b, max)
	}
	return trace.GatherBatch(r.Reader, b, max)
}

// fileReaderOpener re-opens a trace file (either format) for each
// streaming sweep.
func fileReaderOpener(path string) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rd, _, err := trace.NewAutoReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return closingReader{Reader: rd, c: f}, nil
	}
}

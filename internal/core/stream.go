package core

import (
	"bytes"
	"io"
	"os"

	"autocheck/internal/trace"
)

// AnalyzeStream runs the engine's offline schedule over a replayable
// record stream: three bounded sweeps (partition, MLI collection,
// dependency replay), never materializing a []trace.Record. It produces
// results identical to Analyze on the same records (the equivalence is
// pinned by tests) because both are the same schedule over the same
// passes — only the source differs; memory stays O(variables) at the
// cost of decoding the trace once per sweep.
//
// open is called once per sweep and must return a fresh reader positioned
// at the start of the same stream (for example a new Scanner or
// BinaryScanner over the trace). Readers that implement io.Closer are
// closed when their sweep ends.
func AnalyzeStream(open func() (trace.Reader, error), spec LoopSpec, opts Options) (*Result, error) {
	return analyzeSchedule(streamSource(open), spec, opts)
}

// bytesReaderOpener adapts an in-memory trace (either format) into the
// replayable stream AnalyzeStream needs.
func bytesReaderOpener(data []byte) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		rd, _, err := trace.NewAutoReader(bytes.NewReader(data))
		return rd, err
	}
}

// closingReader pairs a record reader with the file it scans, so each
// streaming sweep releases its descriptor.
type closingReader struct {
	trace.Reader
	c io.Closer
}

func (r closingReader) Close() error { return r.c.Close() }

// fileReaderOpener re-opens a trace file (either format) for each
// streaming sweep.
func fileReaderOpener(path string) func() (trace.Reader, error) {
	return func() (trace.Reader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rd, _, err := trace.NewAutoReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return closingReader{Reader: rd, c: f}, nil
	}
}

package core

import (
	"testing"
)

// The paper notes (§VII "Use of AutoCheck" / "Select main loop") that the
// analysis applies to ANY block of continuously executed code, and that
// programs with multiple loops are handled one loop at a time, each
// producing its own checkpoint set. These tests exercise both claims.

// twoLoopSource has two top-level computation loops with different state:
// the first evolves array a (WAR there), the second only reduces over a
// into an accumulator.
const twoLoopSource = `
int main() {
  float a[8];
  float total = 0.0;
  for (int i = 0; i < 8; i++) {
    a[i] = i + 1;
  }
  for (int s = 0; s < 4; s++) {
    for (int i = 0; i < 8; i++) {
      a[i] = a[i] * 1.5;
    }
  }
  for (int k = 0; k < 4; k++) {
    for (int i = 0; i < 8; i++) {
      total += a[i] * 0.25;
    }
  }
  print(total);
  return 0;
}`

func TestMultipleLoopsAnalyzedSeparately(t *testing.T) {
	recs, mod := traceOf(t, twoLoopSource)
	opts := DefaultOptions()
	opts.Module = mod

	// First loop (lines 8-12): a is read-then-scaled each iteration -> WAR.
	res1, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 8, EndLine: 12}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got1 := typesByName(res1)
	if got1["a"] != WAR {
		t.Errorf("loop 1: a = %v, want WAR", got1["a"])
	}
	if c := res1.Find("s"); c == nil || c.Type != Index {
		t.Errorf("loop 1: s = %+v, want Index", c)
	}
	if _, bad := got1["total"]; bad {
		t.Errorf("loop 1: total flagged although untouched there")
	}

	// Second loop (lines 13-17): a is read-only; total accumulates (WAR).
	res2, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 13, EndLine: 17}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got2 := typesByName(res2)
	if got2["total"] != WAR {
		t.Errorf("loop 2: total = %v, want WAR", got2["total"])
	}
	if _, bad := got2["a"]; bad {
		t.Errorf("loop 2: read-only a flagged as %v", got2["a"])
	}
	if c := res2.Find("k"); c == nil || c.Type != Index {
		t.Errorf("loop 2: k = %+v, want Index", c)
	}
}

// TestInnerLoopAsRegion analyzes the inner loop of a nest as "the" loop:
// the outer index becomes an ordinary MLI variable of the region.
func TestInnerLoopAsRegion(t *testing.T) {
	src := `
int main() {
  float acc[4];
  for (int i = 0; i < 4; i++) {
    acc[i] = 0.0;
  }
  int outer = 0;
  outer = outer + 0;
  for (outer = 0; outer < 3; outer++) {
    for (int inner = 0; inner < 4; inner++) {
      acc[inner] = acc[inner] + outer;
    }
  }
  print(acc[0], acc[3]);
  return 0;
}`
	recs, mod := traceOf(t, src)
	opts := DefaultOptions()
	opts.Module = mod
	// Analyze only the inner loop (lines 10-12).
	res, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 10, EndLine: 12}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	// Within the inner-loop region, acc is read-modify-write -> WAR.
	if got["acc"] != WAR {
		t.Errorf("acc = %v, want WAR (got %v)", got["acc"], got)
	}
	if c := res.Find("inner"); c == nil || c.Type != Index {
		t.Errorf("inner = %+v, want Index", c)
	}
}

func TestRegionsWithEmptyAfterLoop(t *testing.T) {
	// A program whose main loop is the last thing it does: region C holds
	// only the epilogue (no Outcome detectable; nothing should crash).
	src := `
int main() {
  int s = 0;
  s = s + 0;
  for (int i = 0; i < 3; i++) {
    s += i;
  }
  return 0;
}`
	recs, mod := traceOf(t, src)
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 5, EndLine: 7}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	// s is WAR (s += i reads it); not Outcome (never read after).
	if got["s"] != WAR {
		t.Errorf("s = %v, want WAR", got["s"])
	}
}

func TestOptionsWorkersOnBytes(t *testing.T) {
	recs, mod := traceOf(t, twoLoopSource)
	data := encodeRecs(recs)
	for _, w := range []int{0, 3} {
		opts := DefaultOptions()
		opts.Module = mod
		opts.Workers = w
		res, err := AnalyzeBytes(data, LoopSpec{Function: "main", StartLine: 8, EndLine: 12}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Find("a") == nil {
			t.Errorf("workers=%d: a missing", w)
		}
	}
}

func TestAnalyzeFile(t *testing.T) {
	recs, mod := traceOf(t, twoLoopSource)
	path := t.TempDir() + "/trace.txt"
	if err := osWriteFile(path, encodeRecs(recs)); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Module = mod
	res, err := AnalyzeFile(path, LoopSpec{Function: "main", StartLine: 8, EndLine: 12}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Find("a") == nil {
		t.Errorf("AnalyzeFile missed a: %v", res.CriticalNames())
	}
	if _, err := AnalyzeFile(t.TempDir()+"/missing.txt", LoopSpec{}, opts); err == nil {
		t.Error("missing file should fail")
	}
}

package core

import (
	"os"
	"reflect"
	"testing"

	"autocheck/internal/ddg"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

// fig4Source is the paper's Fig. 4 example code. Line numbers matter: the
// main computation loop (region (b)) spans lines 17-25.
const fig4Source = `
void foo(int *p, int *q) {
  for (int i = 0; i < 10; ++i) {
    q[i] = p[i] * 2;
  }
}
int main() {
  int a[10];
  int b[10];
  int sum = 0;
  int s = 0;
  int r = 1;
  for (int i = 0; i < 10; ++i) {
    a[i] = 0;
    b[i] = 0;
  }
  for (int it = 0; it < 10; ++it) {
    int m;
    s = it + 1;
    a[it] = s * r;
    foo(a, b);
    r++;
    m = a[it] + b[it];
    sum = m;
  }
  print(sum);
  return 0;
}`

var fig4Spec = LoopSpec{Function: "main", StartLine: 17, EndLine: 25}

func traceOf(t *testing.T, src string) ([]trace.Record, *ir.Module) {
	t.Helper()
	mod, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	recs, _, err := interp.TraceProgram(mod)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return recs, mod
}

func analyzeFig4(t *testing.T, opts Options) *Result {
	t.Helper()
	recs, mod := traceOf(t, fig4Source)
	if opts.Module == nil {
		opts.Module = mod
	}
	res, err := Analyze(recs, fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func typesByName(res *Result) map[string]DependencyType {
	out := make(map[string]DependencyType)
	for _, c := range res.Critical {
		out[c.Name] = c.Type
	}
	return out
}

// TestPaperExampleMLI reproduces §IV-A: the MLI variables of Fig. 4 are
// exactly a, b, sum, s, r.
func TestPaperExampleMLI(t *testing.T) {
	res := analyzeFig4(t, DefaultOptions())
	var names []string
	for _, v := range res.MLI {
		names = append(names, v.Name)
	}
	want := []string{"a", "b", "r", "s", "sum"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("MLI = %v, want %v", names, want)
	}
}

// TestPaperExampleCritical reproduces §IV-C: checkpoint r (WAR), a (RAPO),
// sum (Outcome), it (Index).
func TestPaperExampleCritical(t *testing.T) {
	res := analyzeFig4(t, DefaultOptions())
	got := typesByName(res)
	want := map[string]DependencyType{
		"r": WAR, "a": RAPO, "sum": Outcome, "it": Index,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("critical = %v, want %v", got, want)
	}
}

// TestPaperExampleContractedDDG reproduces Fig. 5(d): the contracted DDG
// contains only the MLI variables with edges s->a, r->a, a->b, r->r,
// a->sum, b->sum.
func TestPaperExampleContractedDDG(t *testing.T) {
	opts := DefaultOptions()
	opts.BuildDDG = true
	res := analyzeFig4(t, opts)
	if res.Contracted == nil || res.Complete == nil {
		t.Fatal("DDG not built")
	}
	for _, n := range res.Contracted.Nodes() {
		if n.Kind != ddg.KindMLI {
			t.Errorf("contracted DDG contains non-MLI node %s", n.Name)
		}
	}
	edges := make(map[string]bool)
	for _, n := range res.Contracted.Nodes() {
		for _, c := range res.Contracted.Children(n) {
			edges[n.Name+"->"+c.Name] = true
		}
	}
	want := []string{"s->a", "r->a", "a->b", "r->r", "a->sum", "b->sum"}
	for _, e := range want {
		if !edges[e] {
			t.Errorf("contracted DDG missing edge %s (have %v)", e, edges)
		}
	}
	for e := range edges {
		found := false
		for _, w := range want {
			if e == w {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected contracted edge %s", e)
		}
	}
	// The complete DDG must be strictly larger (registers + locals).
	if len(res.Complete.Nodes()) <= len(res.Contracted.Nodes()) {
		t.Errorf("complete DDG (%d nodes) not larger than contracted (%d)",
			len(res.Complete.Nodes()), len(res.Contracted.Nodes()))
	}
}

// TestPaperExampleEvents checks the R/W sequence of one loop iteration
// against Fig. 5(e): s-Write, s-Read, r-Read, a-Write, a-Read, b-Write,
// r-Read, r-Write, a-Read, b-Read, sum-Write.
func TestPaperExampleEvents(t *testing.T) {
	opts := DefaultOptions()
	opts.BuildDDG = true
	res := analyzeFig4(t, opts)
	evs := res.Contracted.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	// Fig. 5(e) abstracts one entry per statement; our events are per
	// element access. Project the order of FIRST occurrences of each
	// (variable, kind) pair, which removes both per-element and
	// per-iteration repetition: s-Write, s-Read, r-Read, a-Write, a-Read,
	// b-Write, r-Write, b-Read, sum-Write (events 7 "r-Read" and 9
	// "a-Read" of the figure are repeats of earlier entries).
	seen := make(map[string]bool)
	var got []string
	for _, e := range evs {
		k := e.Node.Name + "-" + e.Kind.String()
		if !seen[k] {
			seen[k] = true
			got = append(got, k)
		}
	}
	want := []string{
		"s-Write", "s-Read", "r-Read", "a-Write", "a-Read", "b-Write",
		"r-Write", "b-Read", "sum-Write",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("first-occurrence events:\n got %v\nwant %v", got, want)
	}
}

func TestInductionWithoutModule(t *testing.T) {
	// The dynamic fallback heuristic must agree with static loop analysis.
	recs, _ := traceOf(t, fig4Source)
	res, err := Analyze(recs, fig4Spec, DefaultOptions()) // no Module
	if err != nil {
		t.Fatal(err)
	}
	c := res.Find("it")
	if c == nil || c.Type != Index {
		t.Errorf("dynamic induction detection: it = %+v", c)
	}
}

func TestAnalyzeBytesMatchesAnalyze(t *testing.T) {
	recs, mod := traceOf(t, fig4Source)
	data := trace.EncodeAll(recs)
	opts := DefaultOptions()
	opts.Module = mod
	direct, err := Analyze(recs, fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 48} {
		o := opts
		o.Workers = workers
		viaBytes, err := AnalyzeBytes(data, fig4Spec, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(typesByName(direct), typesByName(viaBytes)) {
			t.Errorf("workers=%d: %v != %v", workers, typesByName(viaBytes), typesByName(direct))
		}
		if viaBytes.Stats.TraceBytes != int64(len(data)) {
			t.Errorf("TraceBytes = %d, want %d", viaBytes.Stats.TraceBytes, len(data))
		}
	}
}

func TestRegionStats(t *testing.T) {
	res := analyzeFig4(t, DefaultOptions())
	st := res.Stats
	if st.RegionA <= 0 || st.RegionB <= 0 || st.RegionC <= 0 {
		t.Errorf("regions = %+v; all must be positive", st)
	}
	if st.RegionA+st.RegionB+st.RegionC != st.Records {
		t.Errorf("regions don't partition the trace: %+v", st)
	}
	// Most records are in the loop.
	if st.RegionB < st.RegionA {
		t.Errorf("region B (%d) should dominate region A (%d)", st.RegionB, st.RegionA)
	}
}

func TestTimingPopulated(t *testing.T) {
	res := analyzeFig4(t, DefaultOptions())
	if res.Timing.Total <= 0 {
		t.Error("total time not measured")
	}
	if res.Timing.Pre <= 0 || res.Timing.Dep <= 0 {
		t.Errorf("phase timings not measured: %+v", res.Timing)
	}
}

func TestWrongLoopLocation(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	_, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 900, EndLine: 950}, DefaultOptions())
	if err == nil {
		t.Error("analysis with absent MCLR should fail")
	}
	_, err = Analyze(recs, LoopSpec{Function: "nosuch", StartLine: 17, EndLine: 25}, DefaultOptions())
	if err == nil {
		t.Error("analysis with wrong function should fail")
	}
}

// cgSource ports the paper's Algorithm 2 (the CG case study, §IV-D): the
// conj_grad inputs are globals initialized in main before the main loop.
// Expected result (§IV-D and Table II row CG): checkpoint x (WAR) and the
// loop index; z, p, q, r, A need no checkpoint.
const cgSource = `
float x[8];
float z[8];
float p[8];
float q[8];
float r[8];
float A[8][8];

float conj_grad() {
  float rho = 0.0;
  for (int i = 0; i < 8; i++) {
    z[i] = 0.0;
    r[i] = x[i];
    p[i] = r[i];
    rho += r[i] * r[i];
  }
  for (int cgit = 0; cgit < 5; cgit++) {
    float dpq = 0.0;
    for (int i = 0; i < 8; i++) {
      q[i] = 0.0;
      for (int j = 0; j < 8; j++) {
        q[i] += A[i][j] * p[j];
      }
      dpq += p[i] * q[i];
    }
    float alpha = rho / dpq;
    float rho0 = rho;
    rho = 0.0;
    for (int i = 0; i < 8; i++) {
      z[i] += alpha * p[i];
      r[i] -= alpha * q[i];
      rho += r[i] * r[i];
    }
    float beta = rho / rho0;
    for (int i = 0; i < 8; i++) {
      p[i] = r[i] + beta * p[i];
    }
  }
  float sum = 0.0;
  for (int i = 0; i < 8; i++) {
    float d = x[i] - z[i];
    sum += d * d;
  }
  return sqrt(sum);
}

int main() {
  for (int i = 0; i < 8; i++) {
    x[i] = 1.0;
    z[i] = 0.0;
    p[i] = 0.0;
    q[i] = 0.0;
    r[i] = 0.0;
    for (int j = 0; j < 8; j++) {
      A[i][j] = 0.0;
    }
    A[i][i] = 2.0;
  }
  float rnorm;
  float zeta;
  for (int it = 0; it < 4; it++) {
    rnorm = conj_grad();
    float norm = 0.0;
    for (int i = 0; i < 8; i++) {
      norm += z[i] * z[i];
    }
    norm = sqrt(norm);
    for (int i = 0; i < 8; i++) {
      x[i] = z[i] / norm;
    }
    float xz = 0.0;
    for (int i = 0; i < 8; i++) {
      xz += x[i] * z[i];
    }
    zeta = 10.0 + 1.0 / xz;
  }
  print(rnorm, zeta);
  return 0;
}`

var cgSpec = LoopSpec{Function: "main", StartLine: 61, EndLine: 75}

func TestCGCaseStudy(t *testing.T) {
	recs, mod := traceOf(t, cgSource)
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, cgSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	if got["x"] != WAR {
		t.Errorf("x = %v, want WAR (read at r=x, written at x=z/||z||)", got["x"])
	}
	if c := res.Find("it"); c == nil || c.Type != Index {
		t.Errorf("it = %+v, want Index", c)
	}
	// §IV-D: "For the remaining input variables, including z, p, q, r, and
	// A, we did not find a dependency necessary for checkpointing."
	for _, name := range []string{"z", "p", "q", "r", "A"} {
		if ty, bad := got[name]; bad {
			t.Errorf("%s flagged as %v; the paper finds no dependency", name, ty)
		}
	}
}

func TestCGGlobalsAreMLI(t *testing.T) {
	recs, mod := traceOf(t, cgSource)
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, cgSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, v := range res.MLI {
		names[v.Name] = true
	}
	for _, want := range []string{"x", "z", "p", "q", "r", "A"} {
		if !names[want] {
			t.Errorf("global %s missing from MLI set %v", want, res.MLI)
		}
	}
}

func TestIncludeGlobalsOff(t *testing.T) {
	// Without the automated FT workaround, globals touched only inside
	// callees are lost — the paper's Challenge 1 failure mode.
	recs, mod := traceOf(t, cgSource)
	opts := Options{IncludeGlobals: false, Module: mod}
	res, err := Analyze(recs, cgSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	if _, ok := got["x"]; ok {
		// x is read only inside conj_grad (depth > 0) in region B's
		// critical path... but it IS written at depth 0 (x[i] = z[i]/norm),
		// so it remains MLI; the WAR read is still observed.
		// What must disappear is A and q, which are only touched in
		// callees. This assertion documents the weaker property.
		_ = ok
	}
	for _, v := range res.MLI {
		if v.Name == "q" || v.Name == "A" {
			t.Errorf("%s should not be MLI with IncludeGlobals=false", v.Name)
		}
	}
}

func TestCriticalVarMetadata(t *testing.T) {
	res := analyzeFig4(t, DefaultOptions())
	a := res.Find("a")
	if a == nil {
		t.Fatal("a not found")
	}
	if a.SizeBytes != 80 {
		t.Errorf("a.SizeBytes = %d, want 80 (10 x i64)", a.SizeBytes)
	}
	if a.Fn != "main" {
		t.Errorf("a.Fn = %q, want main", a.Fn)
	}
	if a.Base == 0 {
		t.Error("a.Base not set")
	}
	names := res.CriticalNames()
	if len(names) != 4 {
		t.Errorf("CriticalNames = %v", names)
	}
}

func encodeRecs(recs []trace.Record) []byte { return trace.EncodeAll(recs) }

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

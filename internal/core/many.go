package core

import (
	"errors"
	"fmt"

	"autocheck/internal/pool"
	"autocheck/internal/trace"
)

// Input names one independent trace for AnalyzeMany. Exactly one of the
// four sources should be set; they are consulted in the order Records,
// Open, Data, Path, mirroring the single-trace entry points (Analyze,
// AnalyzeStream, AnalyzeBytes, AnalyzeFile).
type Input struct {
	Name string // label used in error messages (benchmark name, rank, shard, ...)
	Spec LoopSpec
	Opts Options

	Records []trace.Record               // materialized records, or
	Open    func() (trace.Reader, error) // a replayable record stream, or
	Data    []byte                       // an encoded trace (text or binary), or
	Path    string                       // a trace file on disk
}

// analyze runs the engine over whichever source the input names.
func (in *Input) analyze() (*Result, error) {
	return in.analyzeIn(&scratch{})
}

// analyzeIn is analyze over a caller-owned scratch bundle. AnalyzeMany
// hands each worker its own bundle so consecutive traces on the same
// worker reuse one analyzer, batch arena, and region slice.
func (in *Input) analyzeIn(sc *scratch) (*Result, error) {
	switch {
	case in.Records != nil:
		return analyzeScheduleIn(sc, sliceSource(in.Records), in.Spec, in.Opts)
	case in.Open != nil:
		return analyzeStreamIn(sc, in.Open, in.Spec, in.Opts)
	case in.Data != nil:
		return analyzeBytesIn(sc, in.Data, in.Spec, in.Opts)
	case in.Path != "":
		return analyzeFileIn(sc, in.Path, in.Spec, in.Opts)
	}
	return nil, fmt.Errorf("core: no trace source set")
}

func (in *Input) label(i int) string {
	if in.Name != "" {
		return in.Name
	}
	return fmt.Sprintf("input %d", i)
}

// AnalyzeMany analyzes independent traces concurrently, one engine per
// trace, with at most workers engines in flight (<= 0 means GOMAXPROCS).
// This is the across-traces dimension of the paper's §V-A parallelism:
// records within one trace are order-dependent, but distinct traces —
// the 14 benchmark ports, or the per-rank shards of a multi-rank run —
// share nothing and scale with the pool. Results are positional;
// per-input failures leave a nil slot and are joined into the returned
// error, so one bad trace never hides the other thirteen results.
func AnalyzeMany(inputs []Input, workers int) ([]*Result, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	results := make([]*Result, len(inputs))
	errs := make([]error, len(inputs))
	scratches := make([]*scratch, pool.Resolve(len(inputs), workers))
	pool.ForEachWorker(len(inputs), workers, func(w, i int) {
		if scratches[w] == nil {
			scratches[w] = &scratch{}
		}
		res, err := inputs[i].analyzeIn(scratches[w])
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", inputs[i].label(i), err)
			return
		}
		results[i] = res
	})
	return results, errors.Join(errs...)
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"autocheck/internal/ddg"
	"autocheck/internal/trace"
)

// mliNames projects the MLI list to comparable identity tuples.
func mliNames(res *Result) []string {
	out := make([]string, len(res.MLI))
	for i, v := range res.MLI {
		out[i] = fmt.Sprintf("%s/%s@%x:%d", v.Fn, v.Name, v.Base, v.SizeBytes)
	}
	return out
}

// requireEquivalent asserts the parts of a Result that the paper's tables
// report are identical between two analysis paths.
func requireEquivalent(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Critical, got.Critical) {
		t.Errorf("%s: critical variables differ:\nwant %+v\ngot  %+v", label, want.Critical, got.Critical)
	}
	if !reflect.DeepEqual(mliNames(want), mliNames(got)) {
		t.Errorf("%s: MLI sets differ:\nwant %v\ngot  %v", label, mliNames(want), mliNames(got))
	}
	ws, gs := want.Stats, got.Stats
	if ws.Records != gs.Records || ws.RegionA != gs.RegionA || ws.RegionB != gs.RegionB || ws.RegionC != gs.RegionC {
		t.Errorf("%s: region stats differ: want %+v got %+v", label, ws, gs)
	}
}

// TestStreamEquivalence pins the tentpole invariant: materialized text,
// parallel text, binary, and streaming analyses (over both encodings)
// produce identical results on the paper's Fig. 4 example.
func TestStreamEquivalence(t *testing.T) {
	recs, mod := traceOf(t, fig4Source)
	opts := DefaultOptions()
	opts.Module = mod
	text := trace.EncodeAll(recs)
	bin := trace.EncodeBinary(recs)

	want, err := Analyze(recs, fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths := []struct {
		label string
		data  []byte
		tweak func(*Options)
	}{
		{"text-serial", text, nil},
		{"text-parallel", text, func(o *Options) { o.Workers = 4 }},
		{"binary", bin, nil},
		{"text-streaming", text, func(o *Options) { o.Streaming = true }},
		{"binary-streaming", bin, func(o *Options) { o.Streaming = true }},
	}
	for _, p := range paths {
		o := opts
		if p.tweak != nil {
			p.tweak(&o)
		}
		got, err := AnalyzeBytes(p.data, fig4Spec, o)
		if err != nil {
			t.Fatalf("%s: %v", p.label, err)
		}
		requireEquivalent(t, p.label, want, got)
		if got.Stats.TraceBytes != int64(len(p.data)) {
			t.Errorf("%s: TraceBytes = %d, want %d", p.label, got.Stats.TraceBytes, len(p.data))
		}
	}
}

// TestStreamEquivalenceDDG checks the streaming path also supports DDG
// construction identically.
func TestStreamEquivalenceDDG(t *testing.T) {
	recs, mod := traceOf(t, fig4Source)
	opts := DefaultOptions()
	opts.Module = mod
	opts.BuildDDG = true
	want, err := Analyze(recs, fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Streaming = true
	got, err := AnalyzeBytes(trace.EncodeAll(recs), fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, "streaming+ddg", want, got)
	if got.Contracted == nil || want.Contracted == nil {
		t.Fatal("contracted DDG missing")
	}
	// Node IDs depend on contraction's internal iteration order, so
	// compare canonical content: the sorted node names and the sorted
	// R/W event multiset.
	if w, g := canonicalGraph(want.Contracted), canonicalGraph(got.Contracted); !reflect.DeepEqual(w, g) {
		t.Errorf("contracted DDGs differ:\nwant %v\ngot  %v", w, g)
	}
	if w, g := canonicalGraph(want.Complete), canonicalGraph(got.Complete); !reflect.DeepEqual(w, g) {
		t.Errorf("complete DDGs differ (%d vs %d entries)", len(w), len(g))
	}
}

func canonicalGraph(g *ddg.Graph) []string {
	var out []string
	for _, n := range g.Nodes() {
		out = append(out, fmt.Sprintf("node %s/%s", n.Name, n.Kind))
	}
	for _, e := range g.Events() {
		out = append(out, fmt.Sprintf("ev %s %v @%d", e.Node.Name, e.Kind, e.Time))
	}
	sort.Strings(out)
	return out
}

// TestAnalyzeFileStreaming exercises the never-load-the-file path over
// both encodings.
func TestAnalyzeFileStreaming(t *testing.T) {
	recs, mod := traceOf(t, fig4Source)
	opts := DefaultOptions()
	opts.Module = mod
	want, err := Analyze(recs, fig4Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for label, data := range map[string][]byte{
		"text":   trace.EncodeAll(recs),
		"binary": trace.EncodeBinary(recs),
	} {
		path := filepath.Join(dir, "trace."+label)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Streaming = true
		got, err := AnalyzeFile(path, fig4Spec, o)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireEquivalent(t, "file-stream-"+label, want, got)
		if got.Stats.TraceBytes != int64(len(data)) {
			t.Errorf("%s: TraceBytes = %d, want %d", label, got.Stats.TraceBytes, len(data))
		}
	}
}

// TestStreamMissingLoop mirrors Analyze's error when the MCLR never
// executes.
func TestStreamMissingLoop(t *testing.T) {
	recs, mod := traceOf(t, fig4Source)
	opts := DefaultOptions()
	opts.Module = mod
	opts.Streaming = true
	_, err := AnalyzeBytes(trace.EncodeAll(recs), LoopSpec{Function: "nope", StartLine: 1, EndLine: 2}, opts)
	if err == nil {
		t.Fatal("streaming analysis of absent loop succeeded")
	}
}

// TestStreamPropagatesParseError ensures decode errors from mid-stream
// surface instead of truncating the analysis silently.
func TestStreamPropagatesParseError(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	data := trace.EncodeAll(recs)
	data = append(data, []byte("0,notanint,f,b,27,1\n")...)
	opts := DefaultOptions()
	opts.Streaming = true
	if _, err := AnalyzeBytes(data, fig4Spec, opts); err == nil {
		t.Fatal("corrupt tail did not fail the streaming analysis")
	}
}

// TestStreamGlobalFootprintParity pins a subtle equivalence case: an
// unnamed access beyond a global's footprint after the loop must not grow
// the reported variable size on the streaming path (the materialized
// pass-1 stops collecting at the loop's end, so the streaming passes must
// too).
func TestStreamGlobalFootprintParity(t *testing.T) {
	mk := func(line int, fn string, op int, addr uint64, name string) trace.Record {
		return trace.Record{
			Line: line, Func: fn, Block: "b", Opcode: op, DynID: int64(line),
			Ops:    []trace.Operand{{Index: 1, Size: 64, Value: trace.PtrValue(addr), IsReg: true, Name: name}},
			Result: &trace.Operand{Index: 0, Size: 64, Value: trace.IntValue(1), IsReg: true, Name: "t"},
		}
	}
	recs := []trace.Record{
		mk(1, "main", trace.OpLoad, 0x1000, "g"), // region A: named global ref
		mk(5, "main", trace.OpLoad, 0x1000, "g"), // region B (loop lines 4-6)
		mk(9, "main", trace.OpLoad, 0x1020, ""),  // region C: unnamed far access
	}
	spec := LoopSpec{Function: "main", StartLine: 4, EndLine: 6}
	opts := DefaultOptions()
	want, err := Analyze(recs, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Streaming = true
	got, err := AnalyzeBytes(trace.EncodeAll(recs), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, "global-footprint", want, got)
	if len(want.MLI) != 1 || want.MLI[0].SizeBytes != got.MLI[0].SizeBytes {
		t.Fatalf("footprints diverge: materialized %+v, streaming %+v", want.MLI, got.MLI)
	}
}

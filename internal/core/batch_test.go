package core

import (
	"fmt"
	"testing"

	"autocheck/internal/trace"
)

// stepLogPass records every record it is fed — identity, order, region,
// and operand shape — so schedules can be compared step for step.
type stepLogPass struct {
	log []string
}

func (p *stepLogPass) Name() string { return "steplog" }
func (p *stepLogPass) Begin()       { p.log = p.log[:0] }
func (p *stepLogPass) Step(r *trace.Record, i int, reg Region) {
	res := -1
	if r.Result != nil {
		res = r.Result.Index
	}
	p.log = append(p.log, fmt.Sprintf("%d %s %s:%d op%d ops%d res%d",
		i, reg, r.Func, r.Line, r.Opcode, len(r.Ops), res))
}
func (p *stepLogPass) Finish(res *Result) {}

// batchLogPass is stepLogPass plus StepBatch, logging through the batch
// entry point instead.
type batchLogPass struct{ stepLogPass }

func (p *batchLogPass) StepBatch(recs []trace.Record, base int, regions []Region) {
	for k := range recs {
		p.Step(&recs[k], base+k, regions[k])
	}
}

// TestStepBatchEquivalence pins the BatchPass contract at the schedule
// level: runSweepBatched must feed a batch-capable pass exactly the
// records, indices, and region classifications that a plain pass sees
// record by record — over both the materialized source and a streaming
// source whose trace spans several decode batches.
func TestStepBatchEquivalence(t *testing.T) {
	base, _ := traceOf(t, fig4Source)
	// Big enough for several DefaultBatchRecords batches.
	recs := make([]trace.Record, 0, 3*trace.DefaultBatchRecords)
	for len(recs) < 3*trace.DefaultBatchRecords {
		recs = append(recs, base...)
	}
	data := trace.EncodeAll(recs)

	sources := map[string]func() source{
		"slice": func() source { return sliceSource(recs) },
		"stream": func() source {
			return &streamSource{open: bytesReaderOpener(data), batch: &trace.RecordBatch{}}
		},
	}
	for name, mk := range sources {
		part := newSpanPartitioner(fig4Spec)
		if err := mk().sweep(func(i int, r *trace.Record) error {
			return part.observe(i, r)
		}); err != nil {
			t.Fatal(err)
		}

		plain := &stepLogPass{}
		if _, err := runSweepBatched(mk(), part, nil, nil, plain); err != nil {
			t.Fatal(err)
		}
		batched := &batchLogPass{}
		if _, err := runSweepBatched(mk(), part, nil, nil, batched); err != nil {
			t.Fatal(err)
		}
		if len(plain.log) != len(recs) {
			t.Fatalf("%s: plain pass saw %d records, want %d", name, len(plain.log), len(recs))
		}
		if len(plain.log) != len(batched.log) {
			t.Fatalf("%s: StepBatch saw %d records, Step saw %d", name, len(batched.log), len(plain.log))
		}
		for i := range plain.log {
			if plain.log[i] != batched.log[i] {
				t.Fatalf("%s: step %d diverges:\nStep      %s\nStepBatch %s", name, i, plain.log[i], batched.log[i])
			}
		}
	}
}

// TestAnalyzeStreamAllocs pins the streaming arena work: analyzing an
// in-memory trace without materializing it must cost O(variables)
// allocations, not O(records). Before batch decoding, this trace cost
// one-plus allocations per record per sweep.
func TestAnalyzeStreamAllocs(t *testing.T) {
	base, _ := traceOf(t, fig4Source)
	recs := make([]trace.Record, 0, 4096)
	for len(recs) < 4096 {
		recs = append(recs, base...)
	}
	opts := DefaultOptions()
	opts.Streaming = true
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"text", trace.EncodeAll(recs)},
		{"binary", trace.EncodeBinary(recs)},
	} {
		t.Run(enc.name, func(t *testing.T) {
			if _, err := AnalyzeBytes(enc.data, fig4Spec, opts); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := AnalyzeBytes(enc.data, fig4Spec, opts); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.0f allocs per streaming analysis of %d records", enc.name, allocs, len(recs))
			// O(variables) headroom; len(recs) would mean a per-record cost
			// crept back in.
			if allocs > float64(len(recs))/4 {
				t.Errorf("streaming analysis = %.0f allocs for %d records — per-record costs are back",
					allocs, len(recs))
			}
		})
	}
}

// TestScratchReuseAllocs pins the per-worker scratch contract that
// AnalyzeMany relies on: re-running an analysis through one scratch
// bundle must reuse the analyzer maps and batch arena, costing far less
// than the first (cold) run.
func TestScratchReuseAllocs(t *testing.T) {
	base, _ := traceOf(t, fig4Source)
	recs := make([]trace.Record, 0, 4096)
	for len(recs) < 4096 {
		recs = append(recs, base...)
	}
	data := trace.EncodeAll(recs)
	opts := DefaultOptions()
	opts.Streaming = true
	in := Input{Data: data, Spec: fig4Spec, Opts: opts}

	cold := testing.AllocsPerRun(5, func() {
		if _, err := in.analyzeIn(&scratch{}); err != nil {
			t.Fatal(err)
		}
	})
	sc := &scratch{}
	if _, err := in.analyzeIn(sc); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		if _, err := in.analyzeIn(sc); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("cold %.0f allocs, warm %.0f allocs", cold, warm)
	// The arena work already makes cold runs O(variables), so reuse saves
	// only the analyzer/batch setup — pin that it never costs extra, and
	// an absolute ceiling (measured ~290 on this fixture) that a revived
	// per-record or per-sweep cost would blow through.
	if warm > cold {
		t.Errorf("scratch reuse costs extra: cold %.0f allocs, warm %.0f allocs", cold, warm)
	}
	if warm > 1000 {
		t.Errorf("warm streaming analysis = %.0f allocs, want O(variables) (<= 1000)", warm)
	}
}

// TestAnalyzeManyScratchAllocs pins that AnalyzeMany's per-worker
// scratch actually amortizes: analyzing N identical traces on one
// worker must cost far less than N cold single-trace analyses.
func TestAnalyzeManyScratchAllocs(t *testing.T) {
	base, _ := traceOf(t, fig4Source)
	recs := make([]trace.Record, 0, 4096)
	for len(recs) < 4096 {
		recs = append(recs, base...)
	}
	data := trace.EncodeAll(recs)
	opts := DefaultOptions()
	opts.Streaming = true
	const n = 8
	inputs := make([]Input, n)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("in%d", i), Data: data, Spec: fig4Spec, Opts: opts}
	}

	perCold := testing.AllocsPerRun(5, func() {
		if _, err := inputs[0].analyze(); err != nil {
			t.Fatal(err)
		}
	})
	perMany := testing.AllocsPerRun(3, func() {
		if _, err := AnalyzeMany(inputs, 1); err != nil {
			t.Fatal(err)
		}
	}) / n
	t.Logf("cold single analysis %.0f allocs; AnalyzeMany %.0f allocs per trace", perCold, perMany)
	// Per-trace cost inside AnalyzeMany must not exceed a cold standalone
	// analysis (the scratch can only help) and must stay O(variables).
	if perMany > perCold {
		t.Errorf("AnalyzeMany costs more per trace (%.0f allocs) than a cold analysis (%.0f)", perMany, perCold)
	}
	if perMany > 1000 {
		t.Errorf("AnalyzeMany = %.0f allocs per trace, want O(variables) (<= 1000)", perMany)
	}
}

// TestEngineSessionAllocs pins the online engine's whole-session cost on
// a trace with heavy callee excursions: parking is arena-backed, so the
// session must stay O(variables), not O(records).
func TestEngineSessionAllocs(t *testing.T) {
	base, _ := traceOf(t, fig4Source)
	recs := make([]trace.Record, 0, 4096)
	for len(recs) < 4096 {
		recs = append(recs, base...)
	}
	run := func() {
		e, err := NewEngine(fig4Spec, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			e.Observe(&recs[i])
		}
		if _, err := e.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(5, run)
	t.Logf("%.0f allocs per online session of %d records", allocs, len(recs))
	if allocs > float64(len(recs))/4 {
		t.Errorf("online session = %.0f allocs for %d records — per-record costs are back",
			allocs, len(recs))
	}
}

package core

import (
	"reflect"
	"testing"

	"autocheck/internal/interp"
	"autocheck/internal/trace"
)

// runOnline executes a program with the collector wired as the tracer.
func runOnline(t *testing.T, src string, spec LoopSpec, opts Options) *Result {
	t.Helper()
	mod, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(mod)
	m.Tracer = func(r *trace.Record) { col.Observe(r) }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := col.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOnlineMatchesOffline: the single-pass collector must produce the
// same MLI set and critical variables as the two-pass offline pipeline.
func TestOnlineMatchesOffline(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		spec LoopSpec
	}{
		{"fig4", fig4Source, fig4Spec},
		{"cg", cgSource, cgSpec},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			recs, _ := traceOf(t, tc.src)
			offline, err := Analyze(recs, tc.spec, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			online := runOnline(t, tc.src, tc.spec, DefaultOptions())

			if !reflect.DeepEqual(typesByName(offline), typesByName(online)) {
				t.Errorf("critical sets differ:\noffline %v\nonline  %v",
					typesByName(offline), typesByName(online))
			}
			var offMLI, onMLI []string
			for _, v := range offline.MLI {
				offMLI = append(offMLI, v.Name)
			}
			for _, v := range online.MLI {
				onMLI = append(onMLI, v.Name)
			}
			if !reflect.DeepEqual(offMLI, onMLI) {
				t.Errorf("MLI sets differ: offline %v online %v", offMLI, onMLI)
			}
			if online.Stats.Records != offline.Stats.Records {
				t.Errorf("record counts differ: %d vs %d",
					online.Stats.Records, offline.Stats.Records)
			}
			// Region boundaries: the online state machine flips to region C
			// on the first post-loop main record; the offline partition ends
			// region B at the last in-loop record. Both must agree that
			// region B dominates.
			if online.Stats.RegionB <= 0 || online.Stats.RegionA <= 0 || online.Stats.RegionC <= 0 {
				t.Errorf("online regions: %+v", online.Stats)
			}
		})
	}
}

func TestOnlineRejectsBuildDDG(t *testing.T) {
	opts := DefaultOptions()
	opts.BuildDDG = true
	if _, err := NewCollector(fig4Spec, opts); err == nil {
		t.Error("online collector should reject BuildDDG")
	}
}

func TestOnlineLoopNeverExecuted(t *testing.T) {
	mod, err := interp.Compile("int main() { print(1); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(LoopSpec{Function: "main", StartLine: 100, EndLine: 200}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(mod)
	m.Tracer = func(r *trace.Record) { col.Observe(r) }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Finish(); err == nil {
		t.Error("Finish should fail when the loop never executed")
	}
}

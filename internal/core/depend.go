package core

import (
	"fmt"
	"strconv"

	"autocheck/internal/ddg"
	"autocheck/internal/trace"
)

// This file holds the per-record logic of the engine's dependency pass
// (module 2, §IV-B): maintain the reg-var and reg-reg maps on-the-fly and
// stream Read/Write information into per-variable summaries. With the ddg
// pass active (Options.BuildDDG) it additionally materializes the
// complete DDG (Fig. 5(c)): MLI vertices, local-variable vertices, and
// one vertex per dynamic register instance, with an edge flush at every
// Store. The dependPass in engine.go drives these steps.

// updateMaps maintains the reg-var map (Load/Store/GEP/BitCast/Alloca and
// Call parameter correlation, Table I) and the reg-reg map (arithmetic and
// the single-Call form). It runs over the whole trace because region C
// reads and induction detection also consult the maps.
func (a *analyzer) updateMaps(r *trace.Record) {
	fn := r.Func
	switch r.Opcode {
	case trace.OpLoad:
		addr, ok := accessAddr(r)
		if !ok || r.Result == nil {
			return
		}
		v := a.vt.resolve(addr)
		key := regKey{fn, r.Result.Name}
		if v != nil {
			a.rv[key] = v
		} else {
			delete(a.rv, key)
		}
		delete(a.rr, key)
	case trace.OpGetElementPtr, trace.OpBitCast:
		if r.Result == nil {
			return
		}
		key := regKey{fn, r.Result.Name}
		// Resolve by the result address first (exact), then through the
		// base operand's name chain (the paper's approach). The result is
		// a computed reference, not an access: resolveRef keeps reported
		// footprints to what Loads and Stores actually touch, identically
		// in every adapter.
		var v *VarInfo
		if r.Result.Value.Kind == trace.KindPtr {
			v = a.vt.resolveRef(r.Result.Value.Addr)
		}
		if v == nil {
			if base := r.Operand(1); base != nil && base.IsReg {
				v = a.rv[regKey{fn, base.Name}]
			}
		}
		if v != nil {
			a.rv[key] = v
		} else {
			delete(a.rv, key)
		}
		delete(a.rr, key)
	case trace.OpCall:
		a.updateCallMaps(r)
	default:
		if r.Result == nil {
			return
		}
		// Arithmetic, comparisons, casts, selects: link input registers to
		// the output register (reg-reg map). The key's previous source
		// slice is truncated and refilled in place — nothing else retains
		// it — so a register rewritten every iteration stops costing one
		// slice allocation per record.
		key := regKey{fn, r.Result.Name}
		srcs := a.rr[key][:0]
		for i := range r.Ops {
			op := &r.Ops[i]
			if op.Index > 0 && op.IsReg {
				srcs = append(srcs, regKey{fn, op.Name})
			}
		}
		a.rr[key] = srcs
		delete(a.rv, key)
	}
}

// updateCallMaps handles both Call forms of §IV-B. Form 1 (a lone Call
// with a result, e.g. pow) behaves like arithmetic: inputs link to the
// result in the reg-reg map. Form 2 (a Call followed by its function body)
// correlates each argument with the callee's parameter: the argument
// register resolves through the caller's reg-var map, and the triplet
// (argument variable, argument register, parameter) makes the callee's
// parameter name resolve to the caller's variable.
func (a *analyzer) updateCallMaps(r *trace.Record) {
	fn := r.Func
	callee := ""
	if op := r.Operand(0); op != nil {
		callee = op.Name
	}
	hasParams := false
	for i := range r.Ops {
		if r.Ops[i].Index < 0 {
			hasParams = true
			break
		}
	}
	if !hasParams {
		// Form 1: treat as arithmetic (source slice reused like updateMaps).
		if r.Result != nil {
			key := regKey{fn, r.Result.Name}
			srcs := a.rr[key][:0]
			for i := range r.Ops {
				op := &r.Ops[i]
				if op.Index > 0 && op.IsReg {
					srcs = append(srcs, regKey{fn, op.Name})
				}
			}
			a.rr[key] = srcs
			delete(a.rv, key)
		}
		return
	}
	// Form 2: parameter correlation.
	for i := range r.Ops {
		p := &r.Ops[i]
		if p.Index >= 0 {
			continue
		}
		argIdx := -p.Index
		arg := r.Operand(argIdx)
		pkey := regKey{callee, p.Name}
		var v *VarInfo
		if arg != nil && arg.IsReg {
			v = a.rv[regKey{fn, arg.Name}]
		}
		if v == nil && arg != nil && arg.Value.Kind == trace.KindPtr {
			// Pointer argument: resolve the pointed-to variable directly
			// (a reference, not an access — no footprint growth).
			v = a.vt.resolveRef(arg.Value.Addr)
		}
		if v != nil {
			a.rv[pkey] = v
			if a.graph != nil {
				a.setRegNode(pkey, a.nodeOf(v))
			}
		} else {
			delete(a.rv, pkey)
			if a.graph != nil {
				delete(a.regNode, pkey)
			}
		}
	}
}

// resolveRegVars chases a register through the reg-reg map to the set of
// variables it was computed from (bounded depth; expression trees are
// shallow).
func (a *analyzer) resolveRegVars(key regKey, depth int, out map[VarID]*VarInfo) {
	if depth > 64 {
		return
	}
	if v, ok := a.rv[key]; ok {
		out[v.ID()] = v
		return
	}
	for _, src := range a.rr[key] {
		a.resolveRegVars(src, depth+1, out)
	}
}

// processLoopRecord streams region-B Read/Write information into the
// per-variable summaries and, with BuildDDG, grows the complete DDG.
func (a *analyzer) processLoopRecord(r *trace.Record) {
	switch r.Opcode {
	case trace.OpLoad:
		addr, ok := accessAddr(r)
		if !ok {
			return
		}
		v := a.vt.resolve(addr)
		if v == nil {
			return
		}
		if a.trackAll || a.isMLI(v) {
			s := a.summary(v)
			if !s.haveFirst {
				s.haveFirst = true
				s.firstIsRead = true
				s.firstDyn = r.DynID
			}
			s.reads++
			if !s.written[addr] {
				if !s.uncoveredRead {
					s.uncoveredDyn = r.DynID
				}
				s.uncoveredRead = true
			}
		}
		if a.graph != nil {
			n := a.newRegInstance(r)
			a.graph.AddEdge(a.nodeOf(v), n, r.DynID)
			a.setRegNode(regKey{r.Func, r.Result.Name}, n)
		}
	case trace.OpStore:
		addr, ok := accessAddr(r)
		if !ok {
			return
		}
		v := a.vt.resolve(addr)
		if v == nil {
			return
		}
		if a.trackAll || a.isMLI(v) {
			s := a.summary(v)
			if !s.haveFirst {
				s.haveFirst = true
				s.firstDyn = r.DynID
			}
			s.writes++
			s.written[addr] = true
		}
		// Induction signal: a depth-0 store to a loop-function local whose
		// sources include the variable itself. The resolution set is a
		// reusable scratch map — this fires for every such store, and a
		// fresh map per record was a top allocation site.
		if r.Func == a.spec.Function && v.Fn == a.spec.Function {
			if val := r.Operand(1); val != nil && val.IsReg {
				if a.ivSrcs == nil {
					a.ivSrcs = make(map[VarID]*VarInfo, 8)
				} else {
					clear(a.ivSrcs)
				}
				a.resolveRegVars(regKey{r.Func, val.Name}, 0, a.ivSrcs)
				if _, self := a.ivSrcs[v.ID()]; self {
					a.summary(v).selfUpdate++
				}
			}
		}
		if a.graph != nil {
			dst := a.nodeOf(v)
			val := r.Operand(1)
			if val != nil && val.IsReg {
				if src, ok := a.regNode[regKey{r.Func, val.Name}]; ok {
					a.graph.AddEdge(src, dst, r.DynID)
					return
				}
			}
			a.graph.MarkWrite(dst, r.DynID)
		}
	case trace.OpICmp, trace.OpFCmp:
		// Induction signal: comparisons at depth 0 over loop-function
		// locals.
		if r.Func != a.spec.Function {
			break
		}
		for i := range r.Ops {
			op := &r.Ops[i]
			if op.Index <= 0 || !op.IsReg {
				continue
			}
			if v, ok := a.rv[regKey{r.Func, op.Name}]; ok && v.Fn == a.spec.Function {
				a.summary(v).cmpUses++
			}
		}
		a.ddgArith(r)
	default:
		if r.Result != nil {
			a.ddgArith(r)
		}
	}
}

// ddgArith adds the register-to-register DDG vertices and edges for a
// value-producing record (arithmetic, casts, comparisons, form-1 calls).
func (a *analyzer) ddgArith(r *trace.Record) {
	if a.graph == nil || r.Result == nil {
		return
	}
	switch r.Opcode {
	case trace.OpAlloca, trace.OpGetElementPtr, trace.OpBitCast:
		return // addressing, not data flow
	}
	n := a.newRegInstance(r)
	for i := range r.Ops {
		op := &r.Ops[i]
		if op.Index > 0 && op.IsReg {
			if src, ok := a.regNode[regKey{r.Func, op.Name}]; ok {
				a.graph.AddEdge(src, n, r.DynID)
			}
		}
	}
	a.setRegNode(regKey{r.Func, r.Result.Name}, n)
}

// processAfterLoop records region-C reads of MLI variables (the Outcome
// signal, §IV-C).
func (a *analyzer) processAfterLoop(r *trace.Record) {
	if r.Opcode != trace.OpLoad {
		return
	}
	addr, ok := accessAddr(r)
	if !ok {
		return
	}
	if v := a.vt.resolve(addr); v != nil && (a.trackAll || a.isMLI(v)) {
		s := a.summary(v)
		if !s.readAfterLoop {
			s.afterDyn = r.DynID
		}
		s.readAfterLoop = true
	}
}

// --- DDG vertex bookkeeping ---

func (a *analyzer) nodeOf(v *VarInfo) *ddg.Node {
	if n, ok := a.varNodes[v.ID()]; ok {
		return n
	}
	kind := ddg.KindLocal
	if a.isMLI(v) {
		kind = ddg.KindMLI
	}
	name := v.Name
	if a.graph.Lookup(name) != nil {
		name = fmt.Sprintf("%s@%x", v.Name, v.Base)
	}
	n := a.graph.Node(name, kind)
	a.varNodes[v.ID()] = n
	return n
}

func (a *analyzer) newRegInstance(r *trace.Record) *ddg.Node {
	name := r.Func + ":" + r.Result.Name + "#" + strconv.FormatInt(r.DynID, 10)
	return a.graph.Node(name, ddg.KindRegister)
}

func (a *analyzer) setRegNode(key regKey, n *ddg.Node) {
	a.regNode[key] = n
}

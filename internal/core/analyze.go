package core

import (
	"fmt"
	"os"
	"sort"
	"time"

	"autocheck/internal/ddg"
	"autocheck/internal/ir"
	"autocheck/internal/obs"
	"autocheck/internal/trace"
)

// LoopSpec locates the main computation loop (the paper's MCLR input):
// the enclosing function plus the loop's start and end source lines.
type LoopSpec struct {
	Function  string
	StartLine int
	EndLine   int
}

// Options tunes the analysis.
type Options struct {
	// IncludeGlobals collects global variables referenced inside function
	// calls when identifying MLI variables. This automates the paper's
	// manual FT workaround (§V-B Challenge 1): the paper bypasses callee
	// bodies, losing globals used only there; we can keep them because
	// globals are identified by name and address, never confusable with a
	// callee's locals.
	IncludeGlobals bool
	// Workers sets the pre-processing parallelism for AnalyzeBytes
	// (the paper's 48-thread OpenMP optimization); 0 means serial.
	// Streaming and binary traces decode serially, so Workers only
	// affects the materialized textual path.
	Workers int
	// Streaming analyzes the trace through AnalyzeStream: three bounded
	// passes over a re-opened record stream instead of one materialized
	// []Record. Memory stays O(variables) instead of O(records) at the
	// cost of decoding the trace per pass; results are identical. BuildDDG
	// still materializes the graph and is unaffected.
	Streaming bool
	// BuildDDG additionally constructs the complete and contracted
	// dependency graphs (Fig. 5(c)/(d)). Intended for small traces,
	// reports and visualization; classification itself streams.
	BuildDDG bool
	// Module, when available, enables exact induction-variable
	// identification via loop analysis (the paper's llvm-pass-loop API).
	// Without it a trace-based heuristic is used.
	Module *ir.Module
	// Obs, when non-nil, receives per-sweep timing histograms and record
	// counters ("core.sweep.*.ns", "core.identify.ns", "core.analyze.records").
	// Recording happens once per sweep, never per record, so the hot paths
	// are untouched either way.
	Obs *obs.Registry
	// Explain additionally fills Result.Provenance: one entry per MLI
	// variable describing the accumulated signals and the rule that did
	// (or did not) classify it. Classification itself is unaffected.
	Explain bool
}

// DefaultOptions returns the recommended configuration.
func DefaultOptions() Options { return Options{IncludeGlobals: true} }

// DependencyType classifies why a variable must be checkpointed (§IV-C).
type DependencyType int

// Dependency types.
const (
	WAR     DependencyType = iota // Write-After-Read across iterations
	Outcome                       // main-loop output read after the loop
	RAPO                          // Read-After-Partially-Overwritten array
	Index                         // induction variable of the outermost loop
)

func (d DependencyType) String() string {
	switch d {
	case WAR:
		return "WAR"
	case Outcome:
		return "Outcome"
	case RAPO:
		return "RAPO"
	default:
		return "Index"
	}
}

// CriticalVar is one variable AutoCheck says must be checkpointed.
type CriticalVar struct {
	Name      string
	Fn        string // declaring function; "" for globals
	Base      uint64
	SizeBytes int64
	Type      DependencyType
}

// Timing is the per-phase cost breakdown reported in Table III.
type Timing struct {
	Pre      time.Duration // trace reading + MLI identification
	Dep      time.Duration // data dependency analysis
	Identify time.Duration // critical-variable identification
	Total    time.Duration
}

// Stats summarizes the analyzed trace.
type Stats struct {
	Records    int
	TraceBytes int64
	RegionA    int // records before the main loop
	RegionB    int // records inside the main loop
	RegionC    int // records after the main loop
}

// Result is the analysis output.
type Result struct {
	Spec     LoopSpec
	MLI      []*VarInfo
	Critical []CriticalVar
	// Provenance is only set with Options.Explain: one entry per MLI (and
	// induction) variable, in classification order first, then the
	// variables no rule matched.
	Provenance []Provenance
	// Contracted and Complete are only set with Options.BuildDDG.
	Contracted *ddg.Graph
	Complete   *ddg.Graph
	Timing     Timing
	Stats      Stats
}

// Provenance explains one variable's classification decision: the signals
// module 2 accumulated while streaming the trace and the §IV-C rule module
// 3 applied to them. Both identify and explain derive from the same
// classifySummary call, so a printed trail can never disagree with the
// critical-variable list.
type Provenance struct {
	Name     string
	Fn       string // declaring function; "" for globals
	Critical bool
	Type     DependencyType // meaningful only when Critical
	Rule     string         // the decision, in words
	// Region-B signals (dependency pass).
	FirstAccess   string // "read", "write", or "none"
	FirstDyn      int64  // dynamic id of the first region-B access, -1 if none
	Reads, Writes int64
	UncoveredRead bool  // read an array element never written earlier in B
	UncoveredDyn  int64 // dynamic id of the first such read, -1 if none
	// Region-C signal.
	ReadAfterLoop bool
	AfterLoopDyn  int64 // dynamic id of the first region-C read, -1 if none
	// Induction signals.
	SelfUpdates int64 // stores of v computed from v
	CmpUses     int64 // loads of v feeding comparisons
}

// CriticalNames returns the sorted names of the critical variables.
func (r *Result) CriticalNames() []string {
	out := make([]string, len(r.Critical))
	for i, c := range r.Critical {
		out[i] = c.Name
	}
	sort.Strings(out)
	return out
}

// Find returns the critical entry with the given name, or nil.
func (r *Result) Find(name string) *CriticalVar {
	for i := range r.Critical {
		if r.Critical[i].Name == name {
			return &r.Critical[i]
		}
	}
	return nil
}

// AnalyzeFile reads a trace file produced by the tracer (or by LLVM-Tracer
// with compatible encoding, text or binary) and analyzes it. This is the
// paper's primary usage mode: trace generation and analysis as separate
// steps. With opts.Streaming the file is scanned from disk once per
// bounded pass (three in total) and never loaded whole.
func AnalyzeFile(path string, spec LoopSpec, opts Options) (*Result, error) {
	return analyzeFileIn(&scratch{}, path, spec, opts)
}

func analyzeFileIn(sc *scratch, path string, spec LoopSpec, opts Options) (*Result, error) {
	if opts.Streaming {
		st, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("core: reading trace: %w", err)
		}
		res, err := analyzeStreamIn(sc, fileReaderOpener(path), spec, opts)
		if err != nil {
			return nil, err
		}
		res.Stats.TraceBytes = st.Size()
		return res, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading trace: %w", err)
	}
	return analyzeBytesIn(sc, data, spec, opts)
}

// AnalyzeBytes parses an in-memory trace — text or binary, detected by
// magic — and analyzes it. Textual traces decode in parallel chunks when
// opts.Workers > 1; with opts.Streaming no []Record is materialized at
// all.
func AnalyzeBytes(data []byte, spec LoopSpec, opts Options) (*Result, error) {
	return analyzeBytesIn(&scratch{}, data, spec, opts)
}

func analyzeBytesIn(sc *scratch, data []byte, spec LoopSpec, opts Options) (*Result, error) {
	if opts.Streaming {
		res, err := analyzeStreamIn(sc, bytesReaderOpener(data), spec, opts)
		if err != nil {
			return nil, err
		}
		res.Stats.TraceBytes = int64(len(data))
		return res, nil
	}
	t0 := time.Now()
	var recs []trace.Record
	var err error
	switch {
	case trace.DetectFormat(data) == trace.FormatBinary:
		recs, err = trace.ParseBinary(data)
	case opts.Workers > 1:
		recs, err = trace.ParseBytesParallel(data, opts.Workers)
	default:
		recs, err = trace.ParseBytes(data)
	}
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	res, err := analyzeScheduleIn(sc, sliceSource(recs), spec, opts)
	if err != nil {
		return nil, err
	}
	res.Timing.Pre += parse
	res.Timing.Total += parse
	res.Stats.TraceBytes = int64(len(data))
	return res, nil
}

// Analyze runs the three-module pipeline over parsed records: the
// engine's offline schedule with a slice-backed source (see engine.go).
func Analyze(recs []trace.Record, spec LoopSpec, opts Options) (*Result, error) {
	return analyzeSchedule(sliceSource(recs), spec, opts)
}

// regKey names a register within a function (registers are
// function-scoped; the on-the-fly map update resolves reuse across
// iterations and calls, §IV-B "Mutable-register").
type regKey struct {
	fn  string
	reg string
}

// varSummary accumulates the per-variable signals that identification
// needs, streamed in execution order so no event list is materialized.
type varSummary struct {
	v             *VarInfo
	firstIsRead   bool
	haveFirst     bool
	reads, writes int64
	written       map[uint64]bool // element addresses written in region B
	uncoveredRead bool            // read an element not yet written in B
	readAfterLoop bool            // read in region C
	selfUpdate    int64           // stores of v computed from v (induction signal)
	cmpUses       int64           // loads of v feeding comparisons (induction signal)
	// Provenance captures: the dynamic ids where the decisive signals
	// first fired. Set once inside branches the pass takes anyway, so
	// they cost nothing when Explain is off.
	firstDyn     int64 // first region-B access
	uncoveredDyn int64 // first uncovered read
	afterDyn     int64 // first region-C read
}

type analyzer struct {
	spec LoopSpec
	opts Options

	vt   *varTable
	mliA map[VarID]*VarInfo
	mli  map[VarID]*VarInfo // matched MLI set

	rv       map[regKey]*VarInfo // reg-var map (paper Fig. 5(a))
	rr       map[regKey][]regKey // reg-reg map (paper Fig. 5(b))
	sums     map[VarID]*varSummary
	graph    *ddg.Graph
	regNode  map[regKey]*ddg.Node
	varNodes map[VarID]*ddg.Node
	// trackAll records summaries for every variable rather than only MLI
	// variables. The fused single-sweep configurations (the online engine
	// and the offline fused sweep) need this: MLI membership is only final
	// when the stream ends, so filtering happens at Finish.
	trackAll bool
	// frozen mirrors vt.frozen for the fused step: set at the first
	// region-C record to match the offline footprint semantics.
	frozen bool
	// ivSrcs is the reusable scratch map for the per-store induction
	// check (resolveRegVars output); cleared before each use.
	ivSrcs map[VarID]*VarInfo
}

func newAnalyzer(spec LoopSpec, opts Options) *analyzer {
	a := &analyzer{}
	a.reset(spec, opts)
	return a
}

// reset reconfigures the analyzer for a fresh trace, keeping its
// allocated map and table storage. This is what makes one scratch bundle
// serve many analyses (AnalyzeMany's per-worker reuse): a reset analyzer
// behaves exactly like a new one, and the VarInfo/summary objects a
// previous Result retained are never mutated afterwards.
func (a *analyzer) reset(spec LoopSpec, opts Options) {
	a.spec = spec
	a.opts = opts
	if a.vt == nil {
		a.vt = newVarTable()
		a.mliA = make(map[VarID]*VarInfo)
		a.mli = make(map[VarID]*VarInfo)
		a.rv = make(map[regKey]*VarInfo)
		a.rr = make(map[regKey][]regKey)
		a.sums = make(map[VarID]*varSummary)
	} else {
		a.vt.reset()
		clear(a.mliA)
		clear(a.mli)
		clear(a.rv)
		clear(a.rr)
		clear(a.sums)
	}
	a.graph = nil
	a.regNode = nil
	a.varNodes = nil
	a.trackAll = false
	a.frozen = false
	clear(a.ivSrcs)
}

// trackStorage processes the storage-defining records that both passes
// need: Alloca (local intervals) and named pointer operands (global
// discovery).
func (a *analyzer) trackStorage(r *trace.Record) {
	switch r.Opcode {
	case trace.OpAlloca:
		if r.Result != nil && r.Result.Value.Kind == trace.KindPtr {
			a.vt.addAlloca(r.Result.Name, r.Func, r.Result.Value.Addr, int64(r.Result.Size/8), r.DynID)
		}
	case trace.OpLoad, trace.OpStore, trace.OpGetElementPtr:
		// A named, non-numeric pointer operand that no local span owns is a
		// global reference at its base address. This must not consult the
		// footprint-growing resolver: the named base is authoritative and
		// truncates any neighbor whose estimated footprint overgrew it.
		idx := 1
		if r.Opcode == trace.OpStore {
			idx = 2
		}
		op := r.Operand(idx)
		if op == nil || op.Value.Kind != trace.KindPtr || op.Name == "" || isNumeric(op.Name) {
			return
		}
		if a.vt.resolveLocal(op.Value.Addr) == nil {
			a.vt.noteGlobal(op.Name, op.Value.Addr, r.DynID, r.Line)
		}
	}
}

// isNumeric reports whether s is an (optionally signed) decimal integer.
// Hand-rolled rather than strconv.Atoi: this runs for every named operand
// of every Load/Store/GEP, and Atoi's error return allocates on the
// non-numeric names that dominate real traces.
func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		if len(s) == 1 {
			return false
		}
		i = 1
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// accessAddr returns the memory address a Load or Store touches, or 0.
func accessAddr(r *trace.Record) (uint64, bool) {
	idx := 1
	if r.Opcode == trace.OpStore {
		idx = 2
	}
	op := r.Operand(idx)
	if op == nil || op.Value.Kind != trace.KindPtr {
		return 0, false
	}
	return op.Value.Addr, true
}

// collectible resolves the variable a Load/Store record accesses if the
// record participates in MLI collection: records executed in the loop
// function (call depth zero), plus — with IncludeGlobals — global accesses
// at any depth (the automated FT workaround, §V-B Challenge 1).
func (a *analyzer) collectible(r *trace.Record) *VarInfo {
	switch r.Opcode {
	case trace.OpLoad, trace.OpStore:
	default:
		return nil
	}
	addr, ok := accessAddr(r)
	if !ok {
		return nil
	}
	v := a.vt.resolve(addr)
	if v == nil {
		return nil
	}
	if r.Func != a.spec.Function && !(a.opts.IncludeGlobals && v.Global) {
		return nil
	}
	if v.FirstLine < 0 {
		v.FirstLine = r.Line
	}
	return v
}

// collectRegionA collects an arithmetic variable accessed before the loop.
func (a *analyzer) collectRegionA(r *trace.Record) {
	if v := a.collectible(r); v != nil {
		a.mliA[v.ID()] = v
	}
}

// collectRegionBMatch matches a variable accessed inside the loop against
// the region-A set: the intersection is the MLI set (§IV-A).
func (a *analyzer) collectRegionBMatch(r *trace.Record) {
	if v := a.collectible(r); v != nil {
		if _, inA := a.mliA[v.ID()]; inA {
			a.mli[v.ID()] = v
		}
	}
}

func (a *analyzer) mliList() []*VarInfo {
	out := make([]*VarInfo, 0, len(a.mli))
	for _, v := range a.mli {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Base < out[j].Base
	})
	return out
}

func (a *analyzer) isMLI(v *VarInfo) bool {
	if v == nil {
		return false
	}
	_, ok := a.mli[v.ID()]
	return ok
}

func (a *analyzer) summary(v *VarInfo) *varSummary {
	s, ok := a.sums[v.ID()]
	if !ok {
		s = &varSummary{v: v, written: make(map[uint64]bool),
			firstDyn: -1, uncoveredDyn: -1, afterDyn: -1}
		a.sums[v.ID()] = s
	}
	return s
}

package core

import (
	"testing"
)

// The paper argues (§VII "MPI programs") that AutoCheck covers message
// passing without inter-process analysis: under BSP checkpointing at
// global barriers, communication is just "an operation copying one buffer
// on a node to another buffer", and the dependency analysis sees how each
// buffer is produced and consumed. This test models a two-rank halo
// exchange inside one address space (ranks = array segments; the exchange
// function plays MPI_Sendrecv) and checks the expected classification:
//
//   - the field arrays u0/u1 carry Write-After-Read state across steps;
//   - the pack/transfer/unpack buffers are fully overwritten before being
//     read every step, so they need no checkpoint — exactly the BSP
//     argument that synchronous checkpointing localizes recovery;
//   - the step counter is the Index.
const haloSource = `
float u0[10];
float u1[10];
float sendbuf[2];
float recvbuf[2];
void exchange() {
  sendbuf[0] = u0[8];
  sendbuf[1] = u1[1];
  recvbuf[0] = sendbuf[0];
  recvbuf[1] = sendbuf[1];
  u1[0] = recvbuf[0];
  u0[9] = recvbuf[1];
}
void smooth(float u[]) {
  for (int i = 1; i < 9; i++) {
    u[i] = u[i] * 0.5 + 0.25 * (u[i - 1] + u[i + 1]);
  }
}
int main() {
  for (int i = 0; i < 10; i++) {
    u0[i] = i * 0.1;
    u1[i] = 1.0 - i * 0.1;
  }
  for (int i = 0; i < 2; i++) {
    sendbuf[i] = 0.0;
    recvbuf[i] = 0.0;
  }
  for (int step = 0; step < 5; step++) { // main loop: lines 27-30
    exchange();
    smooth(u0);
    smooth(u1);
  }
  print(u0[4], u1[4]);
  return 0;
}`

var haloSpec = LoopSpec{Function: "main", StartLine: 27, EndLine: 30}

func TestBSPHaloExchange(t *testing.T) {
	recs, mod := traceOf(t, haloSource)
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, haloSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	if got["u0"] != WAR || got["u1"] != WAR {
		t.Errorf("field arrays = %v, want both WAR", got)
	}
	if c := res.Find("step"); c == nil || c.Type != Index {
		t.Errorf("step = %+v, want Index", c)
	}
	for _, buf := range []string{"sendbuf", "recvbuf"} {
		if ty, bad := got[buf]; bad {
			t.Errorf("communication buffer %s flagged %v; BSP buffers are "+
				"fully overwritten before use and need no checkpoint", buf, ty)
		}
	}
	// The buffers are still MLI variables (defined before, used inside).
	names := map[string]bool{}
	for _, v := range res.MLI {
		names[v.Name] = true
	}
	if !names["sendbuf"] || !names["recvbuf"] {
		t.Errorf("communication buffers missing from MLI set: %v", res.MLI)
	}
}

// TestPersistentCommBuffer: a communication buffer that carries state
// across iterations (e.g. an asynchronous pipeline where this step's
// message is consumed next step) is read before it is overwritten and must
// be checkpointed — the §VII asynchronous-checkpointing argument that the
// buffer's own dependencies are what matter.
func TestPersistentCommBuffer(t *testing.T) {
	src := `
float u[10];
float pipebuf[2];
int main() {
  for (int i = 0; i < 10; i++) {
    u[i] = i * 0.1;
  }
  pipebuf[0] = 0.5;
  pipebuf[1] = 0.25;
  for (int step = 0; step < 5; step++) { // main loop: lines 10-15
    u[0] = u[0] + pipebuf[0];
    u[9] = u[9] + pipebuf[1];
    pipebuf[0] = u[4] * 0.1;
    pipebuf[1] = u[5] * 0.1;
  }
  print(u[0], u[9]);
  return 0;
}`
	recs, mod := traceOf(t, src)
	opts := DefaultOptions()
	opts.Module = mod
	res, err := Analyze(recs, LoopSpec{Function: "main", StartLine: 10, EndLine: 15}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := typesByName(res)
	if got["pipebuf"] != WAR {
		t.Errorf("pipebuf = %v, want WAR (its last message is consumed next iteration)", got["pipebuf"])
	}
	if got["u"] != WAR {
		t.Errorf("u = %v, want WAR", got["u"])
	}
}

package core

import (
	"reflect"
	"testing"

	"autocheck/internal/obs"
	"autocheck/internal/trace"
)

// TestAnalysisObsSweepTimings checks the offline schedule records one
// observation per sweep plus the record counter. The default schedule is
// the fused two-sweep form (partition + analysis); requesting a DDG
// falls back to the split sweeps and their per-module histograms.
func TestAnalysisObsSweepTimings(t *testing.T) {
	reg := obs.New()
	res := analyzeFig4(t, Options{IncludeGlobals: true, Obs: reg})
	s := reg.Snapshot()
	for _, h := range []string{
		"core.sweep.partition.ns", "core.sweep.analyze.ns", "core.identify.ns",
	} {
		if got := s.Histograms[h].Count; got != 1 {
			t.Errorf("%s count = %d, want 1", h, got)
		}
	}
	for _, h := range []string{"core.sweep.collect.ns", "core.sweep.depend.ns"} {
		if got := s.Histograms[h].Count; got != 0 {
			t.Errorf("%s count = %d on the fused path, want 0", h, got)
		}
	}
	if got := s.Counters["core.analyze.records"]; got != int64(res.Stats.Records) {
		t.Errorf("core.analyze.records = %d, want %d", got, res.Stats.Records)
	}

	reg = obs.New()
	res = analyzeFig4(t, Options{IncludeGlobals: true, BuildDDG: true, Obs: reg})
	s = reg.Snapshot()
	for _, h := range []string{
		"core.sweep.partition.ns", "core.sweep.collect.ns",
		"core.sweep.depend.ns", "core.identify.ns",
	} {
		if got := s.Histograms[h].Count; got != 1 {
			t.Errorf("BuildDDG: %s count = %d, want 1", h, got)
		}
	}
	if got := s.Counters["core.analyze.records"]; got != int64(res.Stats.Records) {
		t.Errorf("BuildDDG: core.analyze.records = %d, want %d", got, res.Stats.Records)
	}
}

// TestExplainProvenance checks the explain trail: classification is
// untouched, the leading entries mirror the critical list in order, and
// the decisive signals are reported for the paper's Fig. 4 variables.
func TestExplainProvenance(t *testing.T) {
	plain := analyzeFig4(t, DefaultOptions())
	opts := DefaultOptions()
	opts.Explain = true
	res := analyzeFig4(t, opts)

	if !reflect.DeepEqual(res.Critical, plain.Critical) {
		t.Fatalf("Explain changed classification: %v vs %v", res.Critical, plain.Critical)
	}
	if len(res.Provenance) < len(res.Critical) {
		t.Fatalf("provenance has %d entries for %d critical vars",
			len(res.Provenance), len(res.Critical))
	}
	byName := make(map[string]Provenance)
	for i, c := range res.Critical {
		p := res.Provenance[i]
		if p.Name != c.Name || !p.Critical || p.Type != c.Type {
			t.Errorf("provenance[%d] = %s/%v/crit=%v, want %s/%v in critical order",
				i, p.Name, p.Type, p.Critical, c.Name, c.Type)
		}
		byName[p.Name] = p
	}
	for _, p := range res.Provenance[len(res.Critical):] {
		if p.Critical {
			t.Errorf("trailing provenance entry %q marked critical", p.Name)
		}
		byName[p.Name] = p
	}

	// Fig. 4 signals: r is WAR (first access a read, then written), a is
	// RAPO (uncovered read), sum is Outcome (read after the loop), it is
	// Index; b and s are MLI but not critical.
	if p := byName["r"]; p.FirstAccess != "read" || p.Writes == 0 || p.FirstDyn < 0 {
		t.Errorf("r provenance = %+v, want first-read + writes + captured dyn", p)
	}
	if p := byName["a"]; !p.UncoveredRead || p.UncoveredDyn < 0 {
		t.Errorf("a provenance = %+v, want uncovered read with captured dyn", p)
	}
	if p := byName["sum"]; !p.ReadAfterLoop || p.AfterLoopDyn < 0 {
		t.Errorf("sum provenance = %+v, want read-after-loop with captured dyn", p)
	}
	for name, p := range byName {
		if p.Rule == "" {
			t.Errorf("%s has empty rule text", name)
		}
	}
	if p, ok := byName["b"]; !ok || p.Critical {
		t.Errorf("b should appear as a non-critical MLI entry, got %+v", p)
	}
}

// TestEngineObs checks the online engine records its fused-sweep totals.
func TestEngineObs(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	reg := obs.New()
	e, err := NewEngine(fig4Spec, Options{IncludeGlobals: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		e.Observe(&recs[i])
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Histograms["core.engine.sweep.ns"].Count != 1 {
		t.Error("core.engine.sweep.ns not recorded")
	}
	if got := s.Counters["core.engine.records"]; got != int64(res.Stats.Records) {
		t.Errorf("core.engine.records = %d, want %d", got, res.Stats.Records)
	}
}

// TestEngineObserveZeroAllocs pins that the engine's per-record hot path
// allocates nothing in steady state — with telemetry disabled AND with a
// registry armed, since recording happens per sweep, not per record.
func TestEngineObserveZeroAllocs(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	for _, tc := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"disabled", nil},
		{"enabled", obs.New()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(fig4Spec, Options{IncludeGlobals: true, Obs: tc.reg})
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: feed the whole trace so every map and summary exists.
			for i := range recs {
				e.Observe(&recs[i])
			}
			// Steady-state record: an in-MCLR load resolves its region
			// immediately and walks every fused pass.
			var hot *trace.Record
			for i := range recs {
				r := &recs[i]
				if r.Opcode == trace.OpLoad && r.Func == fig4Spec.Function &&
					r.Line >= fig4Spec.StartLine && r.Line <= fig4Spec.EndLine {
					hot = r
					break
				}
			}
			if hot == nil {
				t.Fatal("no in-loop load in the fig4 trace")
			}
			if allocs := testing.AllocsPerRun(500, func() { e.Observe(hot) }); allocs != 0 {
				t.Errorf("Engine.Observe steady state = %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autocheck/internal/trace"
)

// TestNoLoopErrorDescriptive pins the error contract of every offline
// entry point: a LoopSpec that matches nothing yields a *NoLoopError
// naming the function, the line range, and the number of records scanned
// — never a silently empty Result.
func TestNoLoopErrorDescriptive(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	data := trace.EncodeAll(recs)
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := LoopSpec{Function: "nosuch", StartLine: 900, EndLine: 950}
	paths := map[string]func(Options) (*Result, error){
		"Analyze":             func(o Options) (*Result, error) { return Analyze(recs, bad, o) },
		"AnalyzeBytes":        func(o Options) (*Result, error) { return AnalyzeBytes(data, bad, o) },
		"AnalyzeFile":         func(o Options) (*Result, error) { return AnalyzeFile(path, bad, o) },
		"AnalyzeBytes-stream": func(o Options) (*Result, error) { o.Streaming = true; return AnalyzeBytes(data, bad, o) },
		"AnalyzeFile-stream":  func(o Options) (*Result, error) { o.Streaming = true; return AnalyzeFile(path, bad, o) },
	}
	for label, run := range paths {
		res, err := run(DefaultOptions())
		if err == nil {
			t.Fatalf("%s: no error for absent loop (result %+v)", label, res)
		}
		var nle *NoLoopError
		if !errors.As(err, &nle) {
			t.Fatalf("%s: error is %T, want *NoLoopError: %v", label, err, err)
		}
		if nle.Records != len(recs) {
			t.Errorf("%s: scanned %d records, want %d", label, nle.Records, len(recs))
		}
		msg := err.Error()
		for _, want := range []string{`"nosuch"`, "900-950", fmt.Sprint(len(recs))} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: error %q missing %q", label, msg, want)
			}
		}
	}
}

// TestNoLoopErrorOnline: the single-sweep engine reports the same typed
// error when the loop never executes.
func TestNoLoopErrorOnline(t *testing.T) {
	recs, _ := traceOf(t, fig4Source)
	eng, err := NewEngine(LoopSpec{Function: "main", StartLine: 900, EndLine: 950}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		eng.Observe(&recs[i])
	}
	_, err = eng.Finish()
	var nle *NoLoopError
	if !errors.As(err, &nle) {
		t.Fatalf("Finish error is %T, want *NoLoopError: %v", err, err)
	}
	if nle.Records != len(recs) {
		t.Errorf("scanned %d records, want %d", nle.Records, len(recs))
	}
}

// TestEngineMatchesOffline drives the single-sweep engine over
// materialized records and requires full result equivalence with the
// offline schedule — critical variables, MLI identities (including
// footprint sizes, thanks to the region-C freeze), and region stats.
func TestEngineMatchesOffline(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		spec LoopSpec
	}{
		{"fig4", fig4Source, fig4Spec},
		{"cg", cgSource, cgSpec},
		{"halo", haloSource, haloSpec},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			recs, mod := traceOf(t, tc.src)
			opts := DefaultOptions()
			opts.Module = mod
			want, err := Analyze(recs, tc.spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(tc.spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				eng.Observe(&recs[i])
			}
			got, err := eng.Finish()
			if err != nil {
				t.Fatal(err)
			}
			requireEquivalent(t, "engine-vs-offline", want, got)
		})
	}
}

// TestEngineRefResolutionNoFootprintGrowth pins a footprint-parity case:
// a region-B GetElementPtr whose result points beyond a global's observed
// footprint, with the address never dereferenced. Reported footprints
// record Load/Store accesses only, so the reference must not grow the
// global in any adapter (the offline schedule's reported table never even
// sees depend-pass resolutions; the online engine shares one table and
// must resolve references without growth).
func TestEngineRefResolutionNoFootprintGrowth(t *testing.T) {
	ptr := func(idx int, addr uint64, name string) trace.Operand {
		return trace.Operand{Index: idx, Size: 64, Value: trace.PtrValue(addr), IsReg: true, Name: name}
	}
	reg := func(name string) *trace.Operand {
		return &trace.Operand{Index: 0, Size: 64, Value: trace.IntValue(1), IsReg: true, Name: name}
	}
	recs := []trace.Record{
		// Region A: named access registers and collects global g.
		{Line: 1, Func: "main", Block: "b", Opcode: trace.OpLoad, DynID: 1,
			Ops: []trace.Operand{ptr(1, 0x1000, "g")}, Result: reg("t0")},
		// Region B (loop lines 4-6): access g, then compute a far
		// reference into it that is never dereferenced.
		{Line: 5, Func: "main", Block: "b", Opcode: trace.OpLoad, DynID: 2,
			Ops: []trace.Operand{ptr(1, 0x1000, "g")}, Result: reg("t1")},
		{Line: 5, Func: "main", Block: "b", Opcode: trace.OpGetElementPtr, DynID: 3,
			Ops:    []trace.Operand{ptr(1, 0x1000, "g")},
			Result: &trace.Operand{Index: 0, Size: 64, Value: trace.PtrValue(0x1320), IsReg: true, Name: "t2"}},
	}
	spec := LoopSpec{Function: "main", StartLine: 4, EndLine: 6}
	want, err := Analyze(recs, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.MLI) != 1 || want.MLI[0].SizeBytes != 8 {
		t.Fatalf("offline baseline footprint wrong: %+v", want.MLI)
	}
	eng, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		eng.Observe(&recs[i])
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, "ref-no-growth", want, got)
}

// TestEngineObserverBufferReuse: the Observer contract allows emitters to
// reuse their record and operand buffers between calls (allocation-free
// tracers do). Parked lookahead records must survive that, so the engine
// deep-copies what it buffers. haloSource exercises parking heavily (its
// spec excludes the loop's back-edge line).
func TestEngineObserverBufferReuse(t *testing.T) {
	recs, mod := traceOf(t, haloSource)
	opts := DefaultOptions()
	opts.Module = mod
	want, err := Analyze(recs, haloSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(haloSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	var scratch trace.Record
	var opsBuf []trace.Operand
	var resBuf trace.Operand
	for i := range recs {
		r := &recs[i]
		scratch = *r
		opsBuf = append(opsBuf[:0], r.Ops...)
		scratch.Ops = opsBuf
		if r.Result != nil {
			resBuf = *r.Result
			scratch.Result = &resBuf
		}
		eng.Observe(&scratch)
		// Poison the reused buffers: anything the engine retained by
		// reference is now garbage.
		for j := range opsBuf {
			opsBuf[j] = trace.Operand{}
		}
		resBuf = trace.Operand{}
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, "reused-buffers", want, got)
}

// manyInputs builds one AnalyzeMany input per source kind over the same
// three example programs, exercising every dispatch path.
func manyInputs(t *testing.T, dir string) ([]Input, []*Result) {
	t.Helper()
	cases := []struct {
		name string
		src  string
		spec LoopSpec
	}{
		{"fig4", fig4Source, fig4Spec},
		{"cg", cgSource, cgSpec},
		{"halo", haloSource, haloSpec},
	}
	var inputs []Input
	var want []*Result
	for i, tc := range cases {
		recs, mod := traceOf(t, tc.src)
		opts := DefaultOptions()
		opts.Module = mod
		res, err := Analyze(recs, tc.spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
		in := Input{Name: tc.name, Spec: tc.spec, Opts: opts}
		switch i % 4 {
		case 0:
			in.Records = recs
		case 1:
			in.Data = trace.EncodeAll(recs)
		case 2:
			path := filepath.Join(dir, tc.name+".trace")
			if err := os.WriteFile(path, trace.EncodeBinary(recs), 0o644); err != nil {
				t.Fatal(err)
			}
			in.Path = path
		case 3:
			in.Open = bytesReaderOpener(trace.EncodeBinary(recs))
		}
		inputs = append(inputs, in)
	}
	return inputs, want
}

// TestAnalyzeManyMatchesSerial: concurrent engines over independent
// traces (every source kind) match per-trace serial analysis at several
// pool sizes.
func TestAnalyzeManyMatchesSerial(t *testing.T) {
	inputs, want := manyInputs(t, t.TempDir())
	for _, workers := range []int{0, 1, 2, 8} {
		results, err := AnalyzeMany(inputs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(inputs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(inputs))
		}
		for i, got := range results {
			requireEquivalent(t, fmt.Sprintf("workers=%d/%s", workers, inputs[i].Name), want[i], got)
		}
	}
}

// TestAnalyzeManyPartialFailure: one bad input must not hide the other
// results; its error carries the input's label.
func TestAnalyzeManyPartialFailure(t *testing.T) {
	inputs, _ := manyInputs(t, t.TempDir())
	inputs[1].Data = []byte("not a trace\n")
	results, err := AnalyzeMany(inputs, 2)
	if err == nil {
		t.Fatal("corrupt input did not fail")
	}
	if !strings.Contains(err.Error(), inputs[1].Name) {
		t.Errorf("error %q does not name the failing input %q", err, inputs[1].Name)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("healthy inputs lost their results")
	}
	if results[1] != nil {
		t.Error("failed input produced a result")
	}

	var empty Input
	if _, err := (&empty).analyze(); err == nil {
		t.Error("input with no source should fail")
	}
}

// TestAnalyzeManyEmpty: no inputs, no work, no deadlock.
func TestAnalyzeManyEmpty(t *testing.T) {
	results, err := AnalyzeMany(nil, 8)
	if err != nil || results != nil {
		t.Errorf("AnalyzeMany(nil) = %v, %v", results, err)
	}
}

// TestRegionString covers the region labels used in diagnostics.
func TestRegionString(t *testing.T) {
	for reg, want := range map[Region]string{RegionBefore: "A", RegionLoop: "B", RegionAfter: "C"} {
		if got := reg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", reg, got, want)
		}
	}
}

// TestPassNames: every pass names itself (the schedule/diagnostic
// contract of the Pass interface).
func TestPassNames(t *testing.T) {
	a := newAnalyzer(fig4Spec, DefaultOptions())
	passes := []Pass{&storagePass{a}, &collectPass{a}, &dependPass{a}, &ddgPass{a}, &identifyPass{a}}
	seen := map[string]bool{}
	for _, p := range passes {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("pass name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

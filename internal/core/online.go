package core

// Collector is the online (single-sweep) adapter of the engine — the
// paper's stated future work of incorporating AutoCheck into the
// instrumentation itself "to eliminate the performance bottleneck because
// of trace file processing" (§IX). It is the Engine under its historical
// name: wire Observe as the interpreter's Tracer callback and call
// Finish when the program ends.
type Collector = Engine

// NewCollector prepares an online analysis session.
func NewCollector(spec LoopSpec, opts Options) (*Collector, error) {
	return NewEngine(spec, opts)
}

package core

import (
	"fmt"
	"time"

	"autocheck/internal/trace"
)

// Collector is the online (single-pass) form of the analysis — the
// paper's stated future work of incorporating AutoCheck into the
// instrumentation itself "to eliminate the performance bottleneck because
// of trace file processing" (§IX). Records are observed as they are
// produced (for example by wiring Observe as the interpreter's Tracer
// callback); no trace is materialized and the records are never revisited.
//
// The offline pipeline runs two passes because MLI membership is consulted
// while streaming dependency events; online, the collector tracks
// summaries for every variable and intersects with the MLI set at Finish.
// Region boundaries are recognized incrementally: region B starts at the
// first record of the loop function whose line falls inside the MCLR and
// ends at the first record of the loop function whose line falls outside
// it afterwards (the paper's model — one contiguous main loop, executed
// once). BuildDDG is not supported online.
type Collector struct {
	a      *analyzer
	opts   Options
	region int // 0 = before loop, 1 = inside, 2 = after
	counts [3]int
	start  time.Time
}

// NewCollector prepares an online analysis session.
func NewCollector(spec LoopSpec, opts Options) (*Collector, error) {
	if opts.BuildDDG {
		return nil, fmt.Errorf("core: BuildDDG requires offline analysis")
	}
	a := newAnalyzer(spec, opts)
	a.trackAll = true
	return &Collector{a: a, opts: opts, start: time.Now()}, nil
}

// Observe processes one dynamic instruction record.
func (c *Collector) Observe(r *trace.Record) {
	a := c.a
	a.trackStorage(r)
	if r.Func == a.spec.Function {
		switch {
		case c.region == 0 && r.Line >= a.spec.StartLine && r.Line <= a.spec.EndLine:
			c.region = 1
		case c.region == 1 && (r.Line < a.spec.StartLine || r.Line > a.spec.EndLine) && r.Line >= 0:
			c.region = 2
		}
	}
	c.counts[c.region]++
	a.updateMaps(r, c.region == 1)
	switch c.region {
	case 0:
		a.collectRegionA(r)
	case 1:
		a.collectRegionBMatch(r)
		a.processLoopRecord(r)
	case 2:
		a.processAfterLoop(r)
	}
}

// Finish completes the analysis and returns the result.
func (c *Collector) Finish() (*Result, error) {
	if c.region == 0 {
		return nil, fmt.Errorf("core: main loop of %q (lines %d-%d) never executed",
			c.a.spec.Function, c.a.spec.StartLine, c.a.spec.EndLine)
	}
	res := &Result{Spec: c.a.spec}
	res.Stats.Records = c.counts[0] + c.counts[1] + c.counts[2]
	res.Stats.RegionA, res.Stats.RegionB, res.Stats.RegionC = c.counts[0], c.counts[1], c.counts[2]
	res.MLI = c.a.mliList()
	res.Critical = c.a.identify()
	res.Timing.Total = time.Since(c.start)
	return res, nil
}

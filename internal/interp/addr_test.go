package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: multi-dimensional array addressing is consistent — writing
// f(i,j,k) to u[i][j][k] for random dimensions and reading every element
// back reproduces the function, and the flattened traversal order matches
// row-major layout.
func TestQuickMultiDimAddressing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d1 := rng.Intn(3) + 2
		d2 := rng.Intn(3) + 2
		d3 := rng.Intn(3) + 2
		src := fmt.Sprintf(`int main() {
  int u[%d][%d][%d];
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        u[i][j][k] = i * 10000 + j * 100 + k;
  int bad = 0;
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        if (u[i][j][k] != i * 10000 + j * 100 + k) { bad = bad + 1; }
  print(bad);
  return 0;
}`, d1, d2, d3, d1, d2, d3, d1, d2, d3)
		mod, err := Compile(src)
		if err != nil {
			return false
		}
		out, err := RunProgram(mod)
		return err == nil && out == "0\n"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: passing any sub-array of a 2-D array to a function that
// mutates it through the decayed pointer affects exactly that row.
func TestQuickRowAliasing(t *testing.T) {
	f := func(rowSel uint8) bool {
		row := int(rowSel % 4)
		src := fmt.Sprintf(`
void bump(float r[], int n) {
  for (int i = 0; i < n; i++) { r[i] = r[i] + 100.0; }
}
int main() {
  float m[4][3];
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 3; j++)
      m[i][j] = i * 3 + j;
  bump(m[%d], 3);
  float others = 0.0;
  float target = 0.0;
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 3; j++) {
      if (i == %d) { target += m[i][j]; }
      else { others += m[i][j]; }
    }
  print(target, others);
  return 0;
}`, row, row)
		mod, err := Compile(src)
		if err != nil {
			return false
		}
		out, err := RunProgram(mod)
		if err != nil {
			return false
		}
		// target = sum(row elems) + 300; others = total - sum(row elems).
		rowSum := 0
		total := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				v := i*3 + j
				total += v
				if i == row {
					rowSum += v
				}
			}
		}
		want := fmt.Sprintf("%d.0 %d.0\n", rowSum+300, total-rowSum)
		return out == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestIntegerSemantics(t *testing.T) {
	// Signed division/remainder truncation, negative operands.
	out := run(t, `int main() {
  print(7 / 2, -7 / 2, 7 % 3, -7 % 3, 7 % -3);
  return 0;
}`)
	if out != "3 -3 1 -1 1\n" {
		t.Errorf("integer semantics = %q", out)
	}
}

func TestDeepRecursionStackDiscipline(t *testing.T) {
	// Each recursion level allocates locals; on return the stack pointer
	// must be fully restored so iterative reuse stays at one frame depth.
	recs, _, err := TraceSource(`
int down(int n) {
  int local = n;
  if (n == 0) return 0;
  return local + down(n - 1);
}
int main() {
  print(down(20));
  print(down(20));
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// The two invocations must produce identical 'local' alloca addresses
	// at equal depths (deterministic reuse).
	var first, second []uint64
	for i := range recs {
		r := &recs[i]
		if r.Opcode != 26 || r.Result == nil || r.Result.Name != "local" {
			continue
		}
		if len(first) < 21 {
			first = append(first, r.Result.Value.Addr)
		} else {
			second = append(second, r.Result.Value.Addr)
		}
	}
	if len(first) != 21 || len(second) != 21 {
		t.Fatalf("alloca counts: %d, %d (want 21 each)", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("depth %d: address %#x vs %#x", i, first[i], second[i])
		}
	}
	// Distinct depths use distinct addresses.
	seen := map[uint64]bool{}
	for _, a := range first {
		if seen[a] {
			t.Errorf("address %#x reused within one recursion chain", a)
		}
		seen[a] = true
	}
}

func TestOutputFormattingOfKinds(t *testing.T) {
	out := run(t, `int main() {
  float f = 0.5;
  int i = -3;
  print(f, i, 1000000);
  return 0;
}`)
	if !strings.HasPrefix(out, "0.5 -3 1000000") {
		t.Errorf("output = %q", out)
	}
}

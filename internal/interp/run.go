package interp

import (
	"bytes"

	"autocheck/internal/ir"
	"autocheck/internal/lower"
	"autocheck/internal/minic"
	"autocheck/internal/trace"
)

// Compile parses, checks, and lowers a mini-C source program.
func Compile(src string) (*ir.Module, error) {
	f, err := minic.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return lower.Module(f)
}

// RunProgram executes a module without tracing and returns its output.
func RunProgram(mod *ir.Module) (string, error) {
	return New(mod).Run()
}

// TraceProgram executes a module with tracing enabled, returning the
// dynamic instruction execution trace and the program output.
func TraceProgram(mod *ir.Module) ([]trace.Record, string, error) {
	m := New(mod)
	var recs []trace.Record
	m.Tracer = func(r *trace.Record) { recs = append(recs, *r) }
	out, err := m.Run()
	return recs, out, err
}

// TraceProgramTo executes a module with the tracer wired straight into a
// trace encoder (text or binary): records are serialized as they are
// produced and never materialized as a []trace.Record. The writer is
// flushed before returning.
func TraceProgramTo(mod *ir.Module, w trace.RecordWriter) (string, error) {
	m := New(mod)
	var werr error
	m.Tracer = func(r *trace.Record) {
		if werr == nil {
			werr = w.Write(r)
		}
	}
	out, err := m.Run()
	if err == nil {
		err = werr
	}
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	return out, err
}

// Observer consumes dynamic records as they are produced — the direct
// tracer→analysis feed. core.Engine implements it, so an online analysis
// needs no trace bytes at all (the paper's §IX mode).
type Observer interface {
	Observe(r *trace.Record)
}

// TraceProgramInto executes a module with the tracer wired straight into
// obs: records flow to the observer as the program runs and are never
// encoded, written, or materialized.
func TraceProgramInto(mod *ir.Module, obs Observer) (string, error) {
	m := New(mod)
	m.Tracer = obs.Observe
	return m.Run()
}

// TraceProgramBinary executes a module emitting the compact binary trace
// directly (no intermediate record slice), returning the encoded trace
// and the program output.
func TraceProgramBinary(mod *ir.Module) ([]byte, string, error) {
	var buf bytes.Buffer
	out, err := TraceProgramTo(mod, trace.NewBinaryWriter(&buf))
	if err != nil {
		return nil, out, err
	}
	return buf.Bytes(), out, nil
}

// TraceSource compiles and traces a source program in one step.
func TraceSource(src string) ([]trace.Record, string, error) {
	mod, err := Compile(src)
	if err != nil {
		return nil, "", err
	}
	return TraceProgram(mod)
}

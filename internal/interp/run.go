package interp

import (
	"autocheck/internal/ir"
	"autocheck/internal/lower"
	"autocheck/internal/minic"
	"autocheck/internal/trace"
)

// Compile parses, checks, and lowers a mini-C source program.
func Compile(src string) (*ir.Module, error) {
	f, err := minic.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return lower.Module(f)
}

// RunProgram executes a module without tracing and returns its output.
func RunProgram(mod *ir.Module) (string, error) {
	return New(mod).Run()
}

// TraceProgram executes a module with tracing enabled, returning the
// dynamic instruction execution trace and the program output.
func TraceProgram(mod *ir.Module) ([]trace.Record, string, error) {
	m := New(mod)
	var recs []trace.Record
	m.Tracer = func(r *trace.Record) { recs = append(recs, *r) }
	out, err := m.Run()
	return recs, out, err
}

// TraceSource compiles and traces a source program in one step.
func TraceSource(src string) ([]trace.Record, string, error) {
	mod, err := Compile(src)
	if err != nil {
		return nil, "", err
	}
	return TraceProgram(mod)
}

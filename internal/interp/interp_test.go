package interp

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

func run(t *testing.T, src string) string {
	t.Helper()
	mod, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := RunProgram(mod)
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, out)
	}
	return out
}

func TestArithmeticAndLoops(t *testing.T) {
	out := run(t, `int main() {
  int s = 0;
  for (int i = 0; i < 10; ++i) { s += i; }
  print(s);
  return 0;
}`)
	if out != "45\n" {
		t.Errorf("output = %q, want 45", out)
	}
}

func TestFloatMath(t *testing.T) {
	out := run(t, `int main() {
  float x = 2.0;
  float y;
  y = sqrt(x) * sqrt(x) + pow(2.0, 10.0) / 4.0 - fabs(0.0 - 1.5);
  print(y);
  return 0;
}`)
	if out != "256.5\n" {
		t.Errorf("output = %q, want 256.5", out)
	}
}

// The paper's Fig. 4 example: sum must be 300 after 10 iterations.
const fig4 = `
void foo(int *p, int *q) {
  for (int i = 0; i < 10; ++i) {
    q[i] = p[i] * 2;
  }
}
int main() {
  int a[10];
  int b[10];
  int sum = 0;
  int s = 0;
  int r = 1;
  for (int i = 0; i < 10; ++i) {
    a[i] = 0;
    b[i] = 0;
  }
  for (int it = 0; it < 10; ++it) {
    int m;
    s = it + 1;
    a[it] = s * r;
    foo(a, b);
    r++;
    m = a[it] + b[it];
    sum = m;
  }
  print(sum);
  return 0;
}`

func TestFig4Example(t *testing.T) {
	if out := run(t, fig4); out != "300\n" {
		t.Errorf("fig4 output = %q, want 300", out)
	}
}

func TestMultiDimArrays(t *testing.T) {
	out := run(t, `int main() {
  float u[3][4][5];
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      for (int k = 0; k < 5; k++)
        u[i][j][k] = i * 100 + j * 10 + k;
  print(u[2][3][4], u[0][0][0], u[1][2][3]);
  return 0;
}`)
	if out != "234.0 0.0 123.0\n" {
		t.Errorf("output = %q", out)
	}
}

func TestArrayParamWriting(t *testing.T) {
	out := run(t, `
void fill(float v[], int n) {
  for (int i = 0; i < n; i++) v[i] = i * 2.5;
}
float total(float v[], int n) {
  float s = 0.0;
  for (int i = 0; i < n; i++) s += v[i];
  return s;
}
int main() {
  float data[8];
  fill(data, 8);
  print(total(data, 8));
  return 0;
}`)
	if out != "70.0\n" {
		t.Errorf("output = %q, want 70.0", out)
	}
}

func TestMultiDimArrayParam(t *testing.T) {
	out := run(t, `
void scale(float m[][4], int rows, float f) {
  for (int i = 0; i < rows; i++)
    for (int j = 0; j < 4; j++)
      m[i][j] = m[i][j] * f;
}
int main() {
  float m[2][4];
  for (int i = 0; i < 2; i++)
    for (int j = 0; j < 4; j++)
      m[i][j] = i + j;
  scale(m, 2, 10.0);
  print(m[1][3]);
  return 0;
}`)
	if out != "40.0\n" {
		t.Errorf("output = %q, want 40.0", out)
	}
}

func TestGlobals(t *testing.T) {
	out := run(t, `
int counter;
float table[4];
void bump() { counter = counter + 1; }
int main() {
  counter = 0;
  bump(); bump(); bump();
  table[2] = 7.5;
  print(counter, table[2], table[0]);
  return 0;
}`)
	if out != "3 7.5 0.0\n" {
		t.Errorf("output = %q", out)
	}
}

func TestBreakContinueWhile(t *testing.T) {
	out := run(t, `int main() {
  int s = 0;
  int i = 0;
  while (1) {
    i++;
    if (i > 10) break;
    if (i % 2 == 0) continue;
    s += i;
  }
  print(s, i);
  return 0;
}`)
	if out != "25 11\n" {
		t.Errorf("output = %q, want 25 11", out)
	}
}

func TestShortCircuit(t *testing.T) {
	// q[5] would trap if evaluated; short-circuit must skip it.
	out := run(t, `int main() {
  int x = 0;
  int ok;
  ok = (x == 0) || (1 / x > 0);
  int both;
  both = (x == 1) && (1 / x > 0);
  print(ok, both);
  return 0;
}`)
	if out != "1 0\n" {
		t.Errorf("output = %q, want 1 0", out)
	}
}

func TestUnaryAndComparisons(t *testing.T) {
	out := run(t, `int main() {
  int a = 5;
  float b = 2.5;
  print(-a, !a, !0, a >= 5, b < 2.5, b != 2.5, -b);
  return 0;
}`)
	if out != "-5 0 1 1 0 0 -2.5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	out := run(t, `
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(12)); return 0; }`)
	if out != "144\n" {
		t.Errorf("output = %q, want 144", out)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `int main() { print(rand() % 1000, rand() % 1000); return 0; }`
	a := run(t, src)
	b := run(t, src)
	if a != b {
		t.Errorf("rand() is not deterministic: %q vs %q", a, b)
	}
}

func TestDivisionByZero(t *testing.T) {
	mod, err := Compile(`int main() { int x = 0; print(1 / x); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(mod); err == nil {
		t.Error("division by zero should fail")
	}
}

func TestStepLimit(t *testing.T) {
	mod, err := Compile(`int main() { while (1) {} return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(mod)
	m.MaxSteps = 1000
	if _, err := m.Run(); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestFailStopInjection(t *testing.T) {
	mod, err := Compile(fig4)
	if err != nil {
		t.Fatal(err)
	}
	m := New(mod)
	hits := 0
	m.BlockHook = func(mm *Machine, f *Frame, blk *ir.Block) error {
		if f.Fn.Name == "main" && strings.HasPrefix(blk.Name, "for.cond") {
			hits++
			if hits > 15 {
				return ErrFailStop
			}
		}
		return nil
	}
	_, err = m.Run()
	if !errors.Is(err, ErrFailStop) {
		t.Errorf("err = %v, want ErrFailStop", err)
	}
}

func TestTraceRecordsShape(t *testing.T) {
	recs, out, err := TraceSource(fig4)
	if err != nil {
		t.Fatal(err)
	}
	if out != "300\n" {
		t.Errorf("traced output = %q", out)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	var last int64 = 0
	sawAlloca, sawParamCall, sawLoad := false, false, false
	for i := range recs {
		r := &recs[i]
		if r.DynID <= last && i > 0 {
			t.Fatalf("dynamic IDs not strictly increasing at %d", i)
		}
		last = r.DynID
		switch r.Opcode {
		case trace.OpAlloca:
			sawAlloca = true
			if r.Line != -1 {
				t.Errorf("alloca with line %d, want -1 (Fig 6c)", r.Line)
			}
			if r.Result == nil || r.Result.Value.Kind != trace.KindPtr {
				t.Error("alloca result must carry the variable address")
			}
		case trace.OpCall:
			for _, op := range r.Ops {
				if op.Index < 0 {
					sawParamCall = true
					if op.Name == "" {
						t.Error("parameter operand without a name")
					}
				}
			}
		case trace.OpLoad:
			sawLoad = true
			if len(r.Ops) != 1 || r.Ops[0].Value.Kind != trace.KindPtr {
				t.Errorf("load operand should be an address, got %+v", r.Ops)
			}
			if r.Result == nil {
				t.Error("load without result")
			}
		}
	}
	if !sawAlloca || !sawParamCall || !sawLoad {
		t.Errorf("trace missing record kinds: alloca=%v paramCall=%v load=%v",
			sawAlloca, sawParamCall, sawLoad)
	}
}

func TestTraceDeterministic(t *testing.T) {
	recs1, _, err := TraceSource(fig4)
	if err != nil {
		t.Fatal(err)
	}
	recs2, _, err := TraceSource(fig4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if recs1[i].String() != recs2[i].String() {
			t.Fatalf("record %d differs:\n%s\n%s", i, recs1[i].String(), recs2[i].String())
		}
	}
}

func TestStackAddressReuse(t *testing.T) {
	// Sibling calls must reuse stack addresses (this is what makes the
	// paper's Challenge 2 — same-name locals at the same address across
	// different calls — actually occur).
	src := `
int f() { int local = 1; return local; }
int g() { int local = 2; return local; }
int main() { print(f() + g()); return 0; }`
	recs, _, err := TraceSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for i := range recs {
		r := &recs[i]
		if r.Opcode == trace.OpAlloca && r.Result.Name == "local" {
			addrs = append(addrs, r.Result.Value.Addr)
		}
	}
	if len(addrs) != 2 {
		t.Fatalf("found %d 'local' allocas, want 2", len(addrs))
	}
	if addrs[0] != addrs[1] {
		t.Errorf("sibling frames got different addresses: %#x vs %#x", addrs[0], addrs[1])
	}
}

func TestGlobalAndFrameAddressLookups(t *testing.T) {
	mod, err := Compile(`
float big[16];
int main() { big[3] = 1.0; int x = 2; for (int i = 0; i < 1; i++) {} print(x); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(mod)
	addr, ok := m.GlobalAddr("big")
	if !ok {
		t.Fatal("GlobalAddr(big) not found")
	}
	var xAddr uint64
	m.BlockHook = func(mm *Machine, f *Frame, blk *ir.Block) error {
		if a, ok := f.AllocaAddr("x"); ok {
			xAddr = a
		}
		return nil
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if xAddr == 0 {
		t.Error("never saw frame alloca for x")
	}
	// big[3] was written at addr+24.
	v := m.ReadCell(addr+24, ir.F64)
	if v.Kind != trace.KindFloat || v.Float != 1.0 {
		t.Errorf("big[3] cell = %+v, want 1.0", v)
	}
	if typ, ok := m.GlobalType("big"); !ok || typ.String() != "[16 x f64]" {
		t.Errorf("GlobalType(big) = %v, %v", typ, ok)
	}
}

func TestReadWriteRange(t *testing.T) {
	mod, err := Compile(`int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(mod)
	vals := []trace.Value{trace.IntValue(1), trace.FloatValue(2.5), trace.IntValue(3)}
	m.WriteRange(0x1000, vals)
	got := m.ReadRange(0x1000, 3)
	for i := range vals {
		if !got[i].Equal(vals[i]) {
			t.Errorf("cell %d = %+v, want %+v", i, got[i], vals[i])
		}
	}
	// Unwritten cells read as zero.
	z := m.ReadRange(0x2000, 2)
	if z[0].Int != 0 || z[1].Int != 0 {
		t.Errorf("unwritten cells = %+v", z)
	}
}

func TestOutputOnlyFromPrint(t *testing.T) {
	out := run(t, `int main() { int x = 5; x = x * 2; return 0; }`)
	if out != "" {
		t.Errorf("silent program produced output %q", out)
	}
}

func TestIntFloatConversionOnStore(t *testing.T) {
	out := run(t, `int main() {
  float f = 3;
  int i;
  i = 7.9;
  print(f, i);
  return 0;
}`)
	if out != "3.0 7\n" {
		t.Errorf("output = %q, want \"3.0 7\"", out)
	}
}

// recordSink is a minimal Observer for the direct tracer feed. It clones
// what it retains: the Observer contract lets emitters reuse their
// record and operand buffers between calls.
type recordSink struct{ recs []trace.Record }

func (s *recordSink) Observe(r *trace.Record) { s.recs = append(s.recs, r.Clone()) }

// TestTraceProgramInto: the direct tracer→observer feed delivers exactly
// the records TraceProgram materializes, in order, with the same program
// output.
func TestTraceProgramInto(t *testing.T) {
	mod, err := Compile(`int main() {
  int s = 0;
  for (int i = 0; i < 4; i++) {
    s += i;
  }
  print(s);
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	want, wantOut, err := TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	var sink recordSink
	out, err := TraceProgramInto(mod, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if out != wantOut {
		t.Errorf("output %q, want %q", out, wantOut)
	}
	if !reflect.DeepEqual(sink.recs, want) {
		t.Errorf("observer saw %d records, TraceProgram %d (or contents differ)",
			len(sink.recs), len(want))
	}
}

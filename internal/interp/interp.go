// Package interp executes IR modules in a simulated address space and emits
// the dynamic instruction execution trace that AutoCheck consumes. It plays
// the role of both the target machine and LLVM-Tracer in the paper's
// toolchain (§II-C): every executed instruction produces one trace block
// with dynamic operand values, memory addresses, and register names.
//
// The machine is deterministic: the same module produces the same trace,
// the same addresses, and the same output on every run, which is what makes
// checkpoint/restart validation by output comparison sound (§VI-B).
package interp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

// ErrFailStop is returned when a hook injects a fail-stop failure
// (the moral equivalent of the paper's raise(SIGTERM)).
var ErrFailStop = errors.New("interp: injected fail-stop failure")

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

const (
	globalBase = 0x0000000000600000 // globals grow upward from here
	stackBase  = 0x00007ffc00000000 // stack grows downward from here
)

// Frame is one activation record.
type Frame struct {
	Fn      *ir.Function
	blk     *ir.Block
	idx     int
	regs    map[*ir.Instr]trace.Value
	args    []trace.Value
	allocas map[*ir.Instr]uint64
	sp      uint64 // stack pointer at frame entry (restored on return)
	call    *ir.Instr
}

// AllocaAddr returns the address of the named local in this frame.
func (f *Frame) AllocaAddr(name string) (uint64, bool) {
	for in, addr := range f.allocas {
		if in.Name == name {
			return addr, true
		}
	}
	return 0, false
}

// AllocaType returns the allocated type of the named local in this frame.
func (f *Frame) AllocaType(name string) (ir.Type, bool) {
	for in := range f.allocas {
		if in.Name == name {
			return in.AllocElem, true
		}
	}
	return nil, false
}

// Machine executes a module.
type Machine struct {
	Mod *ir.Module
	Mem map[uint64]trace.Value

	// Tracer, if non-nil, receives one record per executed instruction.
	Tracer func(*trace.Record)
	// BlockHook, if non-nil, runs on entry to every basic block. Returning
	// an error aborts execution with that error (use ErrFailStop to model
	// the paper's raise(SIGTERM) validation).
	BlockHook func(m *Machine, f *Frame, blk *ir.Block) error
	// MaxSteps bounds execution (0 means the 200M default).
	MaxSteps int64
	// Rank and Ranks are the SPMD identity reported by the myrank() and
	// nranks() builtins (defaults: rank 0 of 1).
	Rank, Ranks int

	Steps   int64
	dynID   int64
	out     strings.Builder
	frames  []*Frame
	globals map[*ir.Global]uint64
	nextG   uint64
	sp      uint64
	rng     uint64
	fnAddr  map[string]uint64
	nextFn  uint64
}

// funcAddr returns a stable fake code address for a function name, used in
// Call records the way LLVM-Tracer prints the callee's address+name
// (Fig. 6(a)/(b)).
func (m *Machine) funcAddr(name string) uint64 {
	if a, ok := m.fnAddr[name]; ok {
		return a
	}
	if m.fnAddr == nil {
		m.fnAddr = make(map[string]uint64)
		m.nextFn = 0x400000
	}
	m.nextFn += 0x40
	m.fnAddr[name] = m.nextFn
	return m.nextFn
}

// New creates a machine for a module, laying out globals deterministically.
func New(mod *ir.Module) *Machine {
	m := &Machine{
		Mod:     mod,
		Mem:     make(map[uint64]trace.Value),
		globals: make(map[*ir.Global]uint64),
		nextG:   globalBase,
		sp:      stackBase,
		rng:     0x9E3779B97F4A7C15,
	}
	for _, g := range mod.Globals {
		m.globals[g] = m.nextG
		m.nextG += align8(g.Elem.Size())
	}
	return m
}

func align8(n int64) uint64 {
	if n <= 0 {
		return 8
	}
	return uint64((n + 7) &^ 7)
}

// Output returns everything printed so far.
func (m *Machine) Output() string { return m.out.String() }

// GlobalAddr returns the address of a named global variable.
func (m *Machine) GlobalAddr(name string) (uint64, bool) {
	for g, addr := range m.globals {
		if g.Name == name {
			return addr, true
		}
	}
	return 0, false
}

// GlobalType returns the value type of a named global.
func (m *Machine) GlobalType(name string) (ir.Type, bool) {
	if g := m.Mod.Global(name); g != nil {
		return g.Elem, true
	}
	return nil, false
}

// TopFrame returns the currently executing frame (nil when stopped).
func (m *Machine) TopFrame() *Frame {
	if len(m.frames) == 0 {
		return nil
	}
	return m.frames[len(m.frames)-1]
}

// ReadCell reads one 8-byte cell, coercing to the wanted scalar type.
func (m *Machine) ReadCell(addr uint64, want ir.Type) trace.Value {
	v, ok := m.Mem[addr]
	if !ok {
		if ir.IsFloat(want) {
			return trace.FloatValue(0)
		}
		return trace.IntValue(0)
	}
	return coerce(v, want)
}

// WriteCell writes one 8-byte cell.
func (m *Machine) WriteCell(addr uint64, v trace.Value) { m.Mem[addr] = v }

// ReadRange copies n cells starting at addr (for checkpointing).
func (m *Machine) ReadRange(addr uint64, cells int64) []trace.Value {
	out := make([]trace.Value, cells)
	for i := int64(0); i < cells; i++ {
		if v, ok := m.Mem[addr+uint64(i*8)]; ok {
			out[i] = v
		} else {
			out[i] = trace.IntValue(0)
		}
	}
	return out
}

// WriteRange restores cells starting at addr (for checkpoint recovery).
func (m *Machine) WriteRange(addr uint64, vals []trace.Value) {
	for i, v := range vals {
		m.Mem[addr+uint64(i*8)] = v
	}
}

func coerce(v trace.Value, want ir.Type) trace.Value {
	switch {
	case ir.IsFloat(want) && v.Kind != trace.KindFloat:
		if v.Kind == trace.KindPtr {
			return trace.FloatValue(float64(v.Addr))
		}
		return trace.FloatValue(float64(v.Int))
	case ir.IsInt(want) && v.Kind == trace.KindFloat:
		return trace.IntValue(int64(v.Float))
	}
	return v
}

// Run executes main to completion and returns the printed output.
func (m *Machine) Run() (string, error) {
	mainFn := m.Mod.Func("main")
	if mainFn == nil {
		return "", fmt.Errorf("interp: module has no main")
	}
	if m.MaxSteps == 0 {
		m.MaxSteps = 200_000_000
	}
	if err := m.pushFrame(mainFn, nil, nil); err != nil {
		return m.Output(), err
	}
	for len(m.frames) > 0 {
		if m.Steps >= m.MaxSteps {
			return m.Output(), ErrStepLimit
		}
		if err := m.step(); err != nil {
			return m.Output(), err
		}
	}
	return m.Output(), nil
}

func (m *Machine) pushFrame(fn *ir.Function, args []trace.Value, call *ir.Instr) error {
	f := &Frame{
		Fn:      fn,
		blk:     fn.Entry(),
		regs:    make(map[*ir.Instr]trace.Value),
		args:    args,
		allocas: make(map[*ir.Instr]uint64),
		sp:      m.sp,
		call:    call,
	}
	m.frames = append(m.frames, f)
	if m.BlockHook != nil {
		return m.BlockHook(m, f, f.blk)
	}
	return nil
}

// eval resolves an IR value to its runtime value in frame f.
func (m *Machine) eval(f *Frame, v ir.Value) trace.Value {
	switch x := v.(type) {
	case *ir.Const:
		if ir.IsFloat(x.Typ) {
			return trace.FloatValue(x.F)
		}
		return trace.IntValue(x.I)
	case *ir.Global:
		return trace.PtrValue(m.globals[x])
	case *ir.Param:
		for i, p := range f.Fn.Params {
			if p.Name == x.Name {
				return f.args[i]
			}
		}
		panic(fmt.Sprintf("interp: unknown parameter %s in %s", x.Name, f.Fn.Name))
	case *ir.Instr:
		return f.regs[x]
	}
	panic(fmt.Sprintf("interp: unknown value %T", v))
}

// operandRecord builds the trace operand for an argument value.
func (m *Machine) operandRecord(f *Frame, idx int, v ir.Value) trace.Operand {
	val := m.eval(f, v)
	_, isConst := v.(*ir.Const)
	return trace.Operand{Index: idx, Size: 64, Value: val, IsReg: !isConst, Name: v.ValueName()}
}

func (m *Machine) emit(f *Frame, in *ir.Instr, result *trace.Value, extra []trace.Operand) {
	if m.Tracer == nil {
		return
	}
	rec := &trace.Record{
		Line:   in.Line,
		Func:   f.Fn.Name,
		Block:  f.blk.Name,
		Opcode: in.Op,
		DynID:  m.dynID,
	}
	for i, a := range in.Args {
		rec.Ops = append(rec.Ops, m.operandRecord(f, i+1, a))
	}
	rec.Ops = append(rec.Ops, extra...)
	if result != nil {
		size := 64
		if in.Op == trace.OpAlloca {
			// Alloca result size carries the allocation size in bits, so the
			// analysis can build exact address intervals for local variables
			// (the paper's Challenge 2 address table).
			size = int(in.AllocElem.Size() * 8)
		}
		rec.Result = &trace.Operand{Index: 0, Size: size, Value: *result, IsReg: true, Name: in.ValueName()}
	}
	m.Tracer(rec)
}

func (m *Machine) step() error {
	f := m.frames[len(m.frames)-1]
	in := f.blk.Instrs[f.idx]
	m.Steps++
	m.dynID++
	switch in.Op {
	case trace.OpAlloca:
		size := align8(in.AllocElem.Size())
		m.sp -= size
		addr := m.sp
		f.allocas[in] = addr
		f.regs[in] = trace.PtrValue(addr)
		res := trace.PtrValue(addr)
		m.emit(f, in, &res, nil)
	case trace.OpLoad:
		ptr := m.eval(f, in.Args[0])
		v := m.ReadCell(ptr.Addr, in.Type())
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpStore:
		val := m.eval(f, in.Args[0])
		ptr := m.eval(f, in.Args[1])
		m.WriteCell(ptr.Addr, coerce(val, scalarOf(in.Args[0].Type())))
		m.emit(f, in, nil, nil)
	case trace.OpGetElementPtr:
		addr := m.gepAddr(f, in)
		v := trace.PtrValue(addr)
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpBitCast:
		v := m.eval(f, in.Args[0])
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpSIToFP:
		x := m.eval(f, in.Args[0])
		v := trace.FloatValue(float64(x.Int))
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpFPToSI:
		x := m.eval(f, in.Args[0])
		v := trace.IntValue(int64(x.Float))
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpICmp, trace.OpFCmp:
		x := m.eval(f, in.Args[0])
		y := m.eval(f, in.Args[1])
		v := trace.IntValue(boolToInt(compare(in, x, y)))
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpAdd, trace.OpSub, trace.OpMul, trace.OpSDiv, trace.OpUDiv,
		trace.OpSRem, trace.OpURem, trace.OpFAdd, trace.OpFSub, trace.OpFMul,
		trace.OpFDiv, trace.OpFRem:
		x := m.eval(f, in.Args[0])
		y := m.eval(f, in.Args[1])
		v, err := arith(in.Op, x, y)
		if err != nil {
			return fmt.Errorf("%w at %s line %d", err, f.Fn.Name, in.Line)
		}
		f.regs[in] = v
		m.emit(f, in, &v, nil)
	case trace.OpBr:
		var target *ir.Block
		if len(in.Args) == 1 {
			cond := m.eval(f, in.Args[0])
			if truthy(cond) {
				target = in.Succs[0]
			} else {
				target = in.Succs[1]
			}
		} else {
			target = in.Succs[0]
		}
		m.emit(f, in, nil, nil)
		f.blk = target
		f.idx = 0
		if m.BlockHook != nil {
			if err := m.BlockHook(m, f, target); err != nil {
				return err
			}
		}
		return nil
	case trace.OpRet:
		var ret *trace.Value
		if len(in.Args) == 1 {
			v := m.eval(f, in.Args[0])
			ret = &v
		}
		m.emit(f, in, nil, nil)
		m.sp = f.sp // pop the frame's stack storage
		m.frames = m.frames[:len(m.frames)-1]
		if len(m.frames) > 0 {
			caller := m.frames[len(m.frames)-1]
			if f.call != nil && f.call.Producer() && ret != nil {
				caller.regs[f.call] = *ret
			}
			caller.idx++
		}
		return nil
	case trace.OpCall:
		return m.execCall(f, in)
	default:
		return fmt.Errorf("interp: unsupported opcode %s", trace.OpcodeName(in.Op))
	}
	f.idx++
	return nil
}

func scalarOf(t ir.Type) ir.Type {
	if ir.IsFloat(t) {
		return ir.F64
	}
	return t
}

func (m *Machine) gepAddr(f *Frame, in *ir.Instr) uint64 {
	base := m.eval(f, in.Args[0])
	addr := base.Addr
	t := ir.Pointee(in.Args[0].Type())
	// First index: pointer arithmetic over the pointee type.
	i0 := m.eval(f, in.Args[1])
	addr += uint64(i0.Int * t.Size())
	// Remaining indices descend array levels.
	for _, ixv := range in.Args[2:] {
		a, ok := t.(ir.ArrayType)
		if !ok {
			break
		}
		ix := m.eval(f, ixv)
		addr += uint64(ix.Int * a.Elem.Size())
		t = a.Elem
	}
	return addr
}

func truthy(v trace.Value) bool {
	switch v.Kind {
	case trace.KindFloat:
		return v.Float != 0
	case trace.KindPtr:
		return v.Addr != 0
	default:
		return v.Int != 0
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func compare(in *ir.Instr, x, y trace.Value) bool {
	if in.Op == trace.OpFCmp || x.Kind == trace.KindFloat || y.Kind == trace.KindFloat {
		a, b := asFloat(x), asFloat(y)
		switch in.Pred {
		case ir.CmpEQ:
			return a == b
		case ir.CmpNE:
			return a != b
		case ir.CmpLT:
			return a < b
		case ir.CmpLE:
			return a <= b
		case ir.CmpGT:
			return a > b
		default:
			return a >= b
		}
	}
	a, b := asInt(x), asInt(y)
	switch in.Pred {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	default:
		return a >= b
	}
}

func asFloat(v trace.Value) float64 {
	switch v.Kind {
	case trace.KindFloat:
		return v.Float
	case trace.KindPtr:
		return float64(v.Addr)
	default:
		return float64(v.Int)
	}
}

func asInt(v trace.Value) int64 {
	switch v.Kind {
	case trace.KindFloat:
		return int64(v.Float)
	case trace.KindPtr:
		return int64(v.Addr)
	default:
		return v.Int
	}
}

var errDivZero = errors.New("interp: integer division by zero")

func arith(op int, x, y trace.Value) (trace.Value, error) {
	switch op {
	case trace.OpAdd:
		return trace.IntValue(asInt(x) + asInt(y)), nil
	case trace.OpSub:
		return trace.IntValue(asInt(x) - asInt(y)), nil
	case trace.OpMul:
		return trace.IntValue(asInt(x) * asInt(y)), nil
	case trace.OpSDiv, trace.OpUDiv:
		if asInt(y) == 0 {
			return trace.Value{}, errDivZero
		}
		return trace.IntValue(asInt(x) / asInt(y)), nil
	case trace.OpSRem, trace.OpURem:
		if asInt(y) == 0 {
			return trace.Value{}, errDivZero
		}
		return trace.IntValue(asInt(x) % asInt(y)), nil
	case trace.OpFAdd:
		return trace.FloatValue(asFloat(x) + asFloat(y)), nil
	case trace.OpFSub:
		return trace.FloatValue(asFloat(x) - asFloat(y)), nil
	case trace.OpFMul:
		return trace.FloatValue(asFloat(x) * asFloat(y)), nil
	case trace.OpFDiv:
		return trace.FloatValue(asFloat(x) / asFloat(y)), nil
	case trace.OpFRem:
		return trace.FloatValue(math.Mod(asFloat(x), asFloat(y))), nil
	}
	return trace.Value{}, fmt.Errorf("interp: bad arithmetic opcode %d", op)
}

func (m *Machine) execCall(f *Frame, in *ir.Instr) error {
	if in.Builtin != "" {
		v, err := m.builtin(f, in)
		if err != nil {
			return err
		}
		var fnOp []trace.Operand
		if m.Tracer != nil {
			fnOp = []trace.Operand{{Index: 0, Size: 64, Value: trace.PtrValue(m.funcAddr(in.Builtin)), IsReg: false, Name: in.Builtin}}
		}
		if in.Producer() {
			f.regs[in] = v
			m.emit(f, in, &v, fnOp)
		} else {
			m.emit(f, in, nil, fnOp)
		}
		f.idx++
		return nil
	}
	callee := in.Callee
	args := make([]trace.Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = m.eval(f, a)
	}
	// Emit the Fig. 6(b) call record: callee-name operand (index 0),
	// argument operands, then parameter operands (negative indices mark
	// parameters, standing in for LLVM-Tracer's 'f' indicator lines).
	var extra []trace.Operand
	if m.Tracer != nil {
		extra = append(extra, trace.Operand{
			Index: 0, Size: 64, Value: trace.PtrValue(m.funcAddr(callee.Name)), IsReg: false, Name: callee.Name,
		})
		for i, p := range callee.Params {
			extra = append(extra, trace.Operand{
				Index: -(i + 1), Size: 64, Value: args[i], IsReg: true, Name: p.Name,
			})
		}
	}
	m.emit(f, in, nil, extra)
	return m.pushFrame(callee, args, in)
}

func (m *Machine) builtin(f *Frame, in *ir.Instr) (trace.Value, error) {
	args := make([]trace.Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = m.eval(f, a)
	}
	switch in.Builtin {
	case "print":
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.String()
		}
		m.out.WriteString(strings.Join(parts, " "))
		m.out.WriteByte('\n')
		return trace.Value{}, nil
	case "sqrt":
		return trace.FloatValue(math.Sqrt(asFloat(args[0]))), nil
	case "fabs":
		return trace.FloatValue(math.Abs(asFloat(args[0]))), nil
	case "pow":
		return trace.FloatValue(math.Pow(asFloat(args[0]), asFloat(args[1]))), nil
	case "exp":
		return trace.FloatValue(math.Exp(asFloat(args[0]))), nil
	case "rand":
		// Deterministic xorshift64*: reproducible traces and outputs.
		m.rng ^= m.rng >> 12
		m.rng ^= m.rng << 25
		m.rng ^= m.rng >> 27
		return trace.IntValue(int64((m.rng * 0x2545F4914F6CDD1D) >> 33)), nil
	case "myrank":
		return trace.IntValue(int64(m.Rank)), nil
	case "nranks":
		if m.Ranks <= 0 {
			return trace.IntValue(1), nil
		}
		return trace.IntValue(int64(m.Ranks)), nil
	}
	return trace.Value{}, fmt.Errorf("interp: unknown builtin %s", in.Builtin)
}

package checkpoint

import (
	"math"
	"time"
)

// OptimalInterval returns Young's first-order approximation of the optimal
// checkpoint interval: sqrt(2 * C * MTBF), where C is the cost of writing
// one checkpoint and MTBF the mean time between failures. This is the
// standard dimensioning rule for the C/R deployments the paper targets
// (§II-A reports node MTBFs of a few hours on flagship systems); AutoCheck
// shrinks C by orders of magnitude (Table IV), which shortens the optimal
// interval and thereby the expected recomputation lost per failure.
func OptimalInterval(ckptCost, mtbf time.Duration) time.Duration {
	if ckptCost <= 0 || mtbf <= 0 {
		return 0
	}
	t := math.Sqrt(2 * float64(ckptCost) * float64(mtbf))
	if t >= float64(math.MaxInt64) {
		// Astronomical MTBF: sqrt(2*C*MTBF) can exceed what a Duration
		// holds even though both inputs fit; saturate instead of wrapping
		// negative.
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(t)
}

// ExpectedWaste returns the fraction of machine time lost to checkpointing
// overhead plus expected rework when checkpointing every interval with the
// given cost and MTBF (first-order model: C/T + T/(2*MTBF)). Minimized at
// OptimalInterval.
func ExpectedWaste(interval, ckptCost, mtbf time.Duration) float64 {
	if interval <= 0 || mtbf <= 0 || ckptCost < 0 {
		return math.Inf(1)
	}
	return float64(ckptCost)/float64(interval) + float64(interval)/(2*float64(mtbf))
}

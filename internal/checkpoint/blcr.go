package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sort"

	"autocheck/internal/interp"
	"autocheck/internal/trace"
)

// FullSnapshot is the BLCR-like baseline: a system-level checkpoint of the
// entire process image. Where BLCR dumps the address space of a Linux
// process, we dump every live cell of the simulated machine's memory —
// globals, the whole stack, everything — regardless of whether the
// application needs it for restart. Table IV compares its size against the
// AutoCheck-selected variable checkpoint.
func FullSnapshot(m *interp.Machine, iter int64) []byte {
	addrs := make([]uint64, 0, len(m.Mem))
	for a := range m.Mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf := binary.LittleEndian.AppendUint32(nil, magic)
	buf = binary.LittleEndian.AppendUint32(buf, version+1000) // full-image format
	buf = binary.LittleEndian.AppendUint64(buf, uint64(iter))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint64(buf, a)
		buf = encodeValue(buf, m.Mem[a])
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// FullRestore writes a full snapshot back into a machine's memory and
// returns the snapshot's iteration number.
func FullRestore(m *interp.Machine, snap []byte) (int64, error) {
	if len(snap) < 28 {
		return 0, errors.New("checkpoint: snapshot too short")
	}
	body, sum := snap[:len(snap)-4], binary.LittleEndian.Uint32(snap[len(snap)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, errors.New("checkpoint: snapshot CRC mismatch")
	}
	if binary.LittleEndian.Uint32(body[0:4]) != magic || binary.LittleEndian.Uint32(body[4:8]) != version+1000 {
		return 0, errors.New("checkpoint: bad snapshot header")
	}
	iter := int64(binary.LittleEndian.Uint64(body[8:16]))
	n := binary.LittleEndian.Uint64(body[16:24])
	rest := body[24:]
	for i := uint64(0); i < n; i++ {
		if len(rest) < 8 {
			return 0, errors.New("checkpoint: truncated snapshot")
		}
		addr := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		var v trace.Value
		var err error
		v, rest, err = decodeValue(rest)
		if err != nil {
			return 0, err
		}
		m.WriteCell(addr, v)
	}
	return iter, nil
}

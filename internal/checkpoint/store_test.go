package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// contexts returns a fresh Context over every backend/decorator
// combination, for tests that must hold across the whole engine.
func contexts(t *testing.T, level Level) map[string]*Context {
	t.Helper()
	out := make(map[string]*Context)
	for name, cfg := range map[string]store.Config{
		"file":             {Kind: store.KindFile},
		"memory":           {Kind: store.KindMemory},
		"sharded":          {Kind: store.KindSharded, Workers: 3},
		"file-async":       {Kind: store.KindFile, Async: true},
		"file-incremental": {Kind: store.KindFile, Incremental: true, Keyframe: 3},
		"sharded-async-incremental": {
			Kind: store.KindSharded, Workers: 2, Async: true, Incremental: true, Keyframe: 3,
		},
	} {
		if cfg.Kind != store.KindMemory {
			cfg.Dir = t.TempDir()
		}
		ctx, err := NewContextStore(cfg, level)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = ctx
	}
	return out
}

func TestRoundtripAllStoreBackends(t *testing.T) {
	for name, ctx := range contexts(t, L1) {
		t.Run(name, func(t *testing.T) {
			defer ctx.Close()
			m := machine(t)
			ctx.Protect("arr", 0x1000, 24)
			ctx.Protect("x", 0x2000, 8)
			for i := int64(1); i <= 7; i++ {
				m.WriteRange(0x1000, []trace.Value{trace.IntValue(i), trace.IntValue(2 * i), trace.IntValue(3 * i)})
				m.WriteRange(0x2000, []trace.Value{trace.FloatValue(float64(i) / 2)})
				if err := ctx.Checkpoint(m, i); err != nil {
					t.Fatal(err)
				}
			}
			if err := ctx.Flush(); err != nil {
				t.Fatal(err)
			}
			m2 := machine(t)
			iter, err := ctx.Restart(m2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if iter != 7 {
				t.Errorf("iter = %d, want 7", iter)
			}
			if got := m2.ReadRange(0x1000, 3); got[0].Int != 7 || got[1].Int != 14 || got[2].Int != 21 {
				t.Errorf("arr = %v", got)
			}
			if v := m2.ReadRange(0x2000, 1)[0]; v.Float != 3.5 {
				t.Errorf("x = %v", v)
			}
			if ctx.Count() != 7 || ctx.LastBytes() <= 0 || ctx.TotalBytes() < 7*ctx.LastBytes() {
				t.Errorf("accounting: count=%d last=%d total=%d", ctx.Count(), ctx.LastBytes(), ctx.TotalBytes())
			}
			if st := ctx.StoreStats(); st.BytesWritten <= 0 {
				t.Errorf("StoreStats = %+v", st)
			}
		})
	}
}

// A flipped bit in the newest checkpoint must make Restart fall back to
// the previous valid one, on every file-backed backend.
func TestFlippedBitFallsBackToPreviousCheckpoint(t *testing.T) {
	corrupt := func(t *testing.T, dir string) {
		// Flip one byte in every file of the newest checkpoint's objects.
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !matchesSeq(path, "000002") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil || len(data) == 0 {
				return err
			}
			data[len(data)/2] ^= 0x10
			return os.WriteFile(path, data, 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, cfg := range map[string]store.Config{
		"file":    {Kind: store.KindFile},
		"sharded": {Kind: store.KindSharded, Workers: 2},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := cfg
			cfg.Dir = dir
			ctx, err := NewContextStore(cfg, L1)
			if err != nil {
				t.Fatal(err)
			}
			m := machine(t)
			ctx.Protect("x", 0x1000, 8)
			for i := int64(1); i <= 2; i++ {
				m.WriteRange(0x1000, []trace.Value{trace.IntValue(100 * i)})
				if err := ctx.Checkpoint(m, i); err != nil {
					t.Fatal(err)
				}
			}
			corrupt(t, dir)
			m2 := machine(t)
			iter, err := ctx.Restart(m2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if iter != 1 || m2.ReadRange(0x1000, 1)[0].Int != 100 {
				t.Errorf("fallback failed: iter=%d x=%v", iter, m2.ReadRange(0x1000, 1)[0])
			}
		})
	}
}

func matchesSeq(path, seq string) bool {
	base := filepath.Base(path)
	dir := filepath.Base(filepath.Dir(path))
	return containsSeq(base, seq) || containsSeq(dir, seq)
}

func containsSeq(name, seq string) bool {
	for i := 0; i+len(seq) <= len(name); i++ {
		if name[i:i+len(seq)] == seq {
			return true
		}
	}
	return false
}

// A truncated (torn) newest checkpoint must also fall back.
func TestTornWriteFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx, err := NewContext(dir, L1)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	ctx.Protect("x", 0x1000, 8)
	for i := int64(1); i <= 2; i++ {
		m.WriteRange(0x1000, []trace.Value{trace.IntValue(i)})
		if err := ctx.Checkpoint(m, i); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, "ckpt-000002.l1")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 1 {
		t.Errorf("torn-write fallback: iter = %d, want 1", iter)
	}
}

// With the incremental decorator, corrupting the newest delta must fall
// back to the previous reconstructable checkpoint, and corrupting a
// keyframe must fall back past its whole delta chain.
func TestIncrementalCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Incremental: true, Keyframe: 3}
	ctx, err := NewContextStore(cfg, L1)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	ctx.Protect("x", 0x1000, 8)
	// Keyframes at seq 1 and 4; deltas at 2, 3, 5.
	for i := int64(1); i <= 5; i++ {
		m.WriteRange(0x1000, []trace.Value{trace.IntValue(i)})
		if err := ctx.Checkpoint(m, i); err != nil {
			t.Fatal(err)
		}
	}
	flip := func(seq string) {
		path := filepath.Join(dir, "ckpt-"+seq+".l1")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip("000005") // newest delta
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil || iter != 4 {
		t.Fatalf("after delta corruption: iter=%d err=%v, want 4", iter, err)
	}
	flip("000004") // keyframe of the second chain
	m3 := machine(t)
	iter, err = ctx.Restart(m3, nil)
	if err != nil || iter != 3 {
		t.Fatalf("after keyframe corruption: iter=%d err=%v, want 3", iter, err)
	}
	if m3.ReadRange(0x1000, 1)[0].Int != 3 {
		t.Errorf("x = %v, want 3", m3.ReadRange(0x1000, 1)[0])
	}
}

// A Context reopened over an existing store (the cross-process restart
// flow) must resume the sequence past the previous session's checkpoints
// instead of restarting at 1: overwriting early keys while stale
// higher-numbered objects survive would let the old session's state
// shadow the new one on the next Restart — and, with the incremental
// decorator, leave deltas referencing a keyframe that no longer exists.
func TestReopenedContextAppendsAfterPreviousSession(t *testing.T) {
	for name, cfg := range map[string]store.Config{
		"file":             {Kind: store.KindFile},
		"sharded":          {Kind: store.KindSharded, Workers: 2},
		"file-incremental": {Kind: store.KindFile, Incremental: true, Keyframe: 3},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := cfg
			cfg.Dir = t.TempDir()
			ctx, err := NewContextStore(cfg, L1)
			if err != nil {
				t.Fatal(err)
			}
			m := machine(t)
			ctx.Protect("x", 0x1000, 8)
			for i := int64(1); i <= 4; i++ {
				m.WriteRange(0x1000, []trace.Value{trace.IntValue(10 * i)})
				if err := ctx.Checkpoint(m, i); err != nil {
					t.Fatal(err)
				}
			}
			if err := ctx.Close(); err != nil {
				t.Fatal(err)
			}

			// "Process restart": a fresh Context over the same directory.
			ctx2, err := NewContextStore(cfg, L1)
			if err != nil {
				t.Fatal(err)
			}
			defer ctx2.Close()
			ctx2.Protect("x", 0x1000, 8)
			m2 := machine(t)
			iter, err := ctx2.Restart(m2, nil)
			if err != nil || iter != 4 || m2.ReadRange(0x1000, 1)[0].Int != 40 {
				t.Fatalf("restart into new session: iter=%d err=%v", iter, err)
			}
			m2.WriteRange(0x1000, []trace.Value{trace.IntValue(999)})
			if err := ctx2.Checkpoint(m2, 5); err != nil {
				t.Fatal(err)
			}
			if err := ctx2.Flush(); err != nil {
				t.Fatal(err)
			}
			// The new checkpoint appends at seq 5 (no session-1 object was
			// overwritten), and a subsequent restart sees the new state.
			m3 := machine(t)
			iter, err = ctx2.Restart(m3, nil)
			if err != nil || iter != 5 || m3.ReadRange(0x1000, 1)[0].Int != 999 {
				t.Errorf("restart after appended checkpoint: iter=%d err=%v x=%v",
					iter, err, m3.ReadRange(0x1000, 1)[0])
			}
			if ctx2.Count() != 1 {
				t.Errorf("Count = %d, want 1 (this session's checkpoints only)", ctx2.Count())
			}
		})
	}
}

// Partner copies (L2) must survive primary corruption on the sharded
// backend too, through the levels decorator.
func TestShardedPartnerFallback(t *testing.T) {
	dir := t.TempDir()
	ctx, err := NewContextStore(store.Config{Kind: store.KindSharded, Dir: dir, Workers: 2}, L2)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(321)})
	ctx.Protect("x", 0x1000, 8)
	if err := ctx.Checkpoint(m, 3); err != nil {
		t.Fatal(err)
	}
	// Corrupt every shard of the primary object.
	manifest := filepath.Join(dir, "ckpt-000001.l1", "manifest")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(manifest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 3 || m2.ReadRange(0x1000, 1)[0].Int != 321 {
		t.Errorf("partner recovery failed: iter=%d", iter)
	}
}

func TestAsyncCheckpointErrorSurfacesOnFlush(t *testing.T) {
	dir := t.TempDir()
	ctx, err := NewContextStore(store.Config{Kind: store.KindFile, Dir: dir, Async: true}, L1)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	ctx.Protect("x", 0x1000, 8)
	// Make the directory unwritable so the background write fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte{}, 0o644); err != nil { // dir is now a file
		t.Fatal(err)
	}
	_ = ctx.Checkpoint(m, 1) // may or may not report synchronously
	if err := ctx.Flush(); err == nil {
		t.Error("Flush swallowed the background write error")
	}
}

func TestContextBackendAndLevels(t *testing.T) {
	mem := store.NewMemory()
	ctx, err := NewContextBackend(mem, L3)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(5)})
	ctx.Protect("x", 0x1000, 8)
	if err := ctx.Checkpoint(m, 1); err != nil {
		t.Fatal(err)
	}
	keys, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 { // primary + partner + parity
		t.Errorf("L3 wrote %v, want 3 objects", keys)
	}
	// Corrupt the primary in memory; the partner must carry the restart.
	if !mem.Corrupt("ckpt-000001.l1", 20) {
		t.Fatal("no primary object")
	}
	m2 := machine(t)
	if iter, err := ctx.Restart(m2, nil); err != nil || iter != 1 {
		t.Fatalf("restart via partner: iter=%d err=%v", iter, err)
	}
	if _, err := NewContextBackend(mem, Level(0)); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestRestartEmptyStore(t *testing.T) {
	ctx, err := NewContextStore(store.Config{Kind: store.KindMemory}, L1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Restart(machine(t), nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"1": L1, "L2": L2, "l3": L3, "4": L4} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "0", "5", "Lx"} {
		if _, err := ParseLevel(s); err == nil {
			t.Errorf("ParseLevel(%q) succeeded", s)
		}
	}
}

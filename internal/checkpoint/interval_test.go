package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestOptimalIntervalYoung(t *testing.T) {
	// C = 2 min, MTBF = 4 h: T* = sqrt(2*2*240) = sqrt(960) ≈ 30.98 min.
	got := OptimalInterval(2*time.Minute, 4*time.Hour)
	want := time.Duration(math.Sqrt(2 * float64(2*time.Minute) * float64(4*time.Hour)))
	if got != want {
		t.Errorf("OptimalInterval = %v, want %v", got, want)
	}
	if got < 30*time.Minute || got > 32*time.Minute {
		t.Errorf("OptimalInterval = %v, want ~31m", got)
	}
}

func TestOptimalIntervalDegenerate(t *testing.T) {
	if OptimalInterval(0, time.Hour) != 0 || OptimalInterval(time.Second, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestOptimalIntervalNegativeInputs(t *testing.T) {
	if OptimalInterval(-time.Second, time.Hour) != 0 {
		t.Error("negative cost should return 0")
	}
	if OptimalInterval(time.Second, -time.Hour) != 0 {
		t.Error("negative MTBF should return 0")
	}
	if OptimalInterval(-time.Second, -time.Hour) != 0 {
		t.Error("both negative should return 0")
	}
}

// Very large MTBF: sqrt(2*C*MTBF) can exceed time.Duration's range even
// though both inputs fit; the result must saturate, never wrap negative.
func TestOptimalIntervalVeryLargeMTBF(t *testing.T) {
	huge := time.Duration(math.MaxInt64) // ~292 years
	got := OptimalInterval(huge, huge)
	if got <= 0 {
		t.Errorf("OptimalInterval(max, max) = %v, overflowed", got)
	}
	if got != time.Duration(math.MaxInt64) {
		t.Errorf("OptimalInterval(max, max) = %v, want saturation at MaxInt64", got)
	}
	// A realistic cost with an astronomical MTBF stays in range and keeps
	// monotonicity: larger MTBF never shortens the interval.
	small := OptimalInterval(time.Minute, 100*365*24*time.Hour)
	if small <= 0 {
		t.Errorf("OptimalInterval(1m, 100y) = %v", small)
	}
	if bigger := OptimalInterval(time.Minute, huge); bigger < small {
		t.Errorf("interval shrank as MTBF grew: %v < %v", bigger, small)
	}
}

func TestExpectedWasteDegenerate(t *testing.T) {
	c, mtbf := time.Minute, time.Hour
	for name, got := range map[string]float64{
		"zero interval":     ExpectedWaste(0, c, mtbf),
		"negative interval": ExpectedWaste(-time.Second, c, mtbf),
		"zero mtbf":         ExpectedWaste(time.Minute, c, 0),
		"negative mtbf":     ExpectedWaste(time.Minute, c, -time.Hour),
		"negative cost":     ExpectedWaste(time.Minute, -time.Second, mtbf),
	} {
		if !math.IsInf(got, 1) {
			t.Errorf("%s: waste = %v, want +Inf", name, got)
		}
	}
	// Zero cost is legitimate (free checkpoints): waste is pure rework.
	if got := ExpectedWaste(time.Minute, 0, mtbf); got <= 0 || math.IsInf(got, 0) {
		t.Errorf("zero-cost waste = %v, want small positive", got)
	}
}

func TestExpectedWasteMinimizedAtOptimum(t *testing.T) {
	c, mtbf := 30*time.Second, 2*time.Hour
	opt := OptimalInterval(c, mtbf)
	at := ExpectedWaste(opt, c, mtbf)
	for _, f := range []float64{0.25, 0.5, 2, 4} {
		other := time.Duration(float64(opt) * f)
		if ExpectedWaste(other, c, mtbf) < at {
			t.Errorf("waste at %v (%f) below optimum %v (%f)", other,
				ExpectedWaste(other, c, mtbf), opt, at)
		}
	}
	if !math.IsInf(ExpectedWaste(0, c, mtbf), 1) {
		t.Error("zero interval should be infinitely wasteful")
	}
}

// Property: a smaller checkpoint (AutoCheck's Table IV effect) never
// increases the optimal interval or the minimal waste.
func TestQuickSmallerCheckpointsHelp(t *testing.T) {
	f := func(costMS, mtbfMin uint16) bool {
		cost := time.Duration(costMS%10000+1) * time.Millisecond
		mtbf := time.Duration(mtbfMin%600+1) * time.Minute
		smaller := cost / 10
		if smaller <= 0 {
			smaller = 1
		}
		tBig := OptimalInterval(cost, mtbf)
		tSmall := OptimalInterval(smaller, mtbf)
		if tSmall > tBig {
			return false
		}
		return ExpectedWaste(tSmall, smaller, mtbf) <= ExpectedWaste(tBig, cost, mtbf)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package checkpoint

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"autocheck/internal/interp"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// ckptFiles lists the primary checkpoint objects (logical keys) in a
// file-backed store directory.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".l1") {
			keys = append(keys, strings.TrimSuffix(e.Name(), ".l1"))
		}
	}
	sort.Strings(keys)
	return keys
}

func writeN(t *testing.T, ctx *Context, m *interp.Machine, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		m.WriteRange(0x1000, []trace.Value{trace.IntValue(int64(i))})
		if err := ctx.Checkpoint(m, int64(i)); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
}

func TestRetainPrunesToNewestN(t *testing.T) {
	for name, cfg := range map[string]store.Config{
		"file":    {Kind: store.KindFile},
		"sharded": {Kind: store.KindSharded, Workers: 2},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := cfg
			cfg.Dir = dir
			ctx, err := NewContextStore(cfg, L1)
			if err != nil {
				t.Fatal(err)
			}
			defer ctx.Close()
			ctx.Retain(3)
			ctx.Protect("x", 0x1000, 8)
			m := machine(t)
			writeN(t, ctx, m, 10)
			var keys []string
			if name == "file" {
				keys = ckptFiles(t, dir)
			} else {
				entries, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if e.IsDir() && strings.HasSuffix(e.Name(), ".l1") {
						keys = append(keys, strings.TrimSuffix(e.Name(), ".l1"))
					}
				}
				sort.Strings(keys)
			}
			want := []string{"ckpt-000008", "ckpt-000009", "ckpt-000010"}
			if fmt.Sprint(keys) != fmt.Sprint(want) {
				t.Errorf("retained keys = %v, want %v", keys, want)
			}
			if ctx.Pruned() != 7 {
				t.Errorf("Pruned = %d, want 7", ctx.Pruned())
			}
			m2 := machine(t)
			iter, err := ctx.Restart(m2, nil)
			if err != nil || iter != 10 || m2.ReadRange(0x1000, 1)[0].Int != 10 {
				t.Errorf("restart after prune: iter=%d err=%v", iter, err)
			}
		})
	}
}

// The retention floor: a retained delta keeps its keyframe and every
// intermediate delta alive even when they fall outside the retention
// window, so a pruned store is always restartable.
func TestRetainKeepsChainOfRetainedDeltas(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Incremental: true, Keyframe: 4}
	ctx, err := NewContextStore(cfg, L1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ctx.Retain(2)
	ctx.Protect("x", 0x1000, 8)
	m := machine(t)
	// Keyframes at 1 and 5; deltas at 2-4 and 6-7.
	writeN(t, ctx, m, 7)
	// Retained window is {6, 7}: both deltas of the second chain, whose
	// reconstruction needs keyframe 5 and delta 6. Chain one (1-4) is
	// unreferenced and fully pruned.
	want := []string{"ckpt-000005", "ckpt-000006", "ckpt-000007"}
	if got := ckptFiles(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("surviving keys = %v, want %v (keyframe kept beyond the window)", got, want)
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil || iter != 7 || m2.ReadRange(0x1000, 1)[0].Int != 7 {
		t.Fatalf("restart from retained chain: iter=%d err=%v", iter, err)
	}

	// One more checkpoint starts nothing new (8 is a delta on 7): the
	// window slides to {7, 8}, still pinning keyframe 5 and deltas 6-7.
	writeN(t, ctx, m, 1) // writes seq 8 with value 1
	want = []string{"ckpt-000005", "ckpt-000006", "ckpt-000007", "ckpt-000008"}
	if got := ckptFiles(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after slide: %v, want %v", got, want)
	}
	// Crossing the next keyframe (seq 9) frees the old chain entirely.
	writeN(t, ctx, m, 2) // seq 9 (keyframe), seq 10 (delta)
	want = []string{"ckpt-000009", "ckpt-000010"}
	if got := ckptFiles(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after next keyframe: %v, want %v", got, want)
	}
	m3 := machine(t)
	if iter, err := ctx.Restart(m3, nil); err != nil || iter != 2 {
		t.Fatalf("restart after chain turnover: iter=%d err=%v", iter, err)
	}
}

func TestRetainWithAsyncBackend(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Async: true}
	ctx, err := NewContextStore(cfg, L1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ctx.Retain(2)
	ctx.Protect("x", 0x1000, 8)
	m := machine(t)
	writeN(t, ctx, m, 6)
	if err := ctx.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{"ckpt-000005", "ckpt-000006"}
	if got := ckptFiles(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("retained keys = %v, want %v", got, want)
	}
	m2 := machine(t)
	if iter, err := ctx.Restart(m2, nil); err != nil || iter != 6 {
		t.Fatalf("restart: iter=%d err=%v", iter, err)
	}
}

// Retention must prune replicas too: at L2 the partner copies of pruned
// checkpoints disappear with their primaries.
func TestRetainPrunesReplicas(t *testing.T) {
	dir := t.TempDir()
	ctx, err := NewContextStore(store.Config{Kind: store.KindFile, Dir: dir}, L2)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ctx.Retain(1)
	ctx.Protect("x", 0x1000, 8)
	m := machine(t)
	writeN(t, ctx, m, 4)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{"ckpt-000004.l1", "ckpt-000004.l2"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("surviving files = %v, want %v", names, want)
	}
}

func TestRetainDisabledKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	ctx, err := NewContextStore(store.Config{Kind: store.KindFile, Dir: dir}, L1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ctx.Retain(0) // explicit no-op
	ctx.Retain(-5)
	ctx.Protect("x", 0x1000, 8)
	m := machine(t)
	writeN(t, ctx, m, 5)
	if got := ckptFiles(t, dir); len(got) != 5 {
		t.Errorf("retention disabled but only %v survive", got)
	}
	if ctx.Pruned() != 0 {
		t.Errorf("Pruned = %d, want 0", ctx.Pruned())
	}
}

// A reopened session (cross-process restart) prunes the previous
// session's surplus checkpoints on its first write, again respecting
// chain dependencies.
func TestRetainAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{Kind: store.KindFile, Dir: dir, Incremental: true, Keyframe: 3}
	ctx, err := NewContextStore(cfg, L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("x", 0x1000, 8)
	m := machine(t)
	writeN(t, ctx, m, 4) // keyframes 1, 4; deltas 2, 3
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}

	ctx2, err := NewContextStore(cfg, L1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx2.Close()
	ctx2.Retain(1)
	ctx2.Protect("x", 0x1000, 8)
	m2 := machine(t)
	if _, err := ctx2.Restart(m2, nil); err != nil {
		t.Fatal(err)
	}
	writeN(t, ctx2, m2, 1) // seq 5: fresh keyframe (new session, new chain)
	// Seq 5 is self-contained, so everything older is pruned.
	want := []string{"ckpt-000005"}
	if got := ckptFiles(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after cross-session prune: %v, want %v", got, want)
	}
	m3 := machine(t)
	if iter, err := ctx2.Restart(m3, nil); err != nil || iter != 1 {
		t.Fatalf("restart: iter=%d err=%v", iter, err)
	}
}

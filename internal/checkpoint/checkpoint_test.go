package checkpoint

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"testing/quick"

	"autocheck/internal/interp"
	"autocheck/internal/trace"
)

func machine(t *testing.T) *interp.Machine {
	t.Helper()
	mod, err := interp.Compile(`int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	return interp.New(mod)
}

func TestCheckpointRestartRoundtrip(t *testing.T) {
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(1), trace.IntValue(2), trace.IntValue(3)})
	m.WriteRange(0x2000, []trace.Value{trace.FloatValue(2.5)})
	ctx, err := NewContext(t.TempDir(), L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("arr", 0x1000, 24)
	ctx.Protect("x", 0x2000, 8)
	if err := ctx.Checkpoint(m, 7); err != nil {
		t.Fatal(err)
	}
	// Clobber and restore.
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 7 {
		t.Errorf("restored iter = %d, want 7", iter)
	}
	got := m2.ReadRange(0x1000, 3)
	if got[0].Int != 1 || got[1].Int != 2 || got[2].Int != 3 {
		t.Errorf("arr = %v", got)
	}
	if v := m2.ReadRange(0x2000, 1)[0]; v.Float != 2.5 {
		t.Errorf("x = %v", v)
	}
}

func TestRestartSkipsDroppedVars(t *testing.T) {
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(42)})
	m.WriteRange(0x2000, []trace.Value{trace.IntValue(99)})
	ctx, err := NewContext(t.TempDir(), L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("a", 0x1000, 8)
	ctx.Protect("b", 0x2000, 8)
	if err := ctx.Checkpoint(m, 1); err != nil {
		t.Fatal(err)
	}
	m2 := machine(t)
	if _, err := ctx.Restart(m2, map[string]bool{"b": true}); err != nil {
		t.Fatal(err)
	}
	if m2.ReadRange(0x1000, 1)[0].Int != 42 {
		t.Error("a not restored")
	}
	if m2.ReadRange(0x2000, 1)[0].Int != 0 {
		t.Error("b restored despite skip")
	}
}

func TestLatestCheckpointWins(t *testing.T) {
	m := machine(t)
	ctx, err := NewContext(t.TempDir(), L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("x", 0x1000, 8)
	for i := int64(1); i <= 5; i++ {
		m.WriteRange(0x1000, []trace.Value{trace.IntValue(i * 10)})
		if err := ctx.Checkpoint(m, i); err != nil {
			t.Fatal(err)
		}
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 5 || m2.ReadRange(0x1000, 1)[0].Int != 50 {
		t.Errorf("iter=%d x=%v, want 5/50", iter, m2.ReadRange(0x1000, 1)[0])
	}
	if ctx.Count() != 5 {
		t.Errorf("Count = %d", ctx.Count())
	}
	if ctx.TotalBytes() <= ctx.LastBytes() {
		t.Error("TotalBytes should accumulate")
	}
}

func TestCorruptedPrimaryFallsBackToPartner(t *testing.T) {
	dir := t.TempDir()
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(123)})
	ctx, err := NewContext(dir, L2)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("x", 0x1000, 8)
	if err := ctx.Checkpoint(m, 3); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary.
	primary := filepath.Join(dir, "ckpt-000001.l1")
	data, err := os.ReadFile(primary)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(primary, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatalf("Restart with partner copy: %v", err)
	}
	if iter != 3 || m2.ReadRange(0x1000, 1)[0].Int != 123 {
		t.Errorf("partner recovery failed: iter=%d", iter)
	}
}

func TestCorruptedL1WithoutPartnerSkipsToOlder(t *testing.T) {
	dir := t.TempDir()
	m := machine(t)
	ctx, err := NewContext(dir, L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("x", 0x1000, 8)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(1)})
	if err := ctx.Checkpoint(m, 1); err != nil {
		t.Fatal(err)
	}
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(2)})
	if err := ctx.Checkpoint(m, 2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest.
	newest := filepath.Join(dir, "ckpt-000002.l1")
	if err := os.WriteFile(newest, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := machine(t)
	iter, err := ctx.Restart(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 1 || m2.ReadRange(0x1000, 1)[0].Int != 1 {
		t.Errorf("fallback to older checkpoint failed: iter=%d", iter)
	}
}

func TestNoCheckpoint(t *testing.T) {
	ctx, err := NewContext(t.TempDir(), L1)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t)
	if _, err := ctx.Restart(m, nil); err != ErrNoCheckpoint {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLevels(t *testing.T) {
	for _, lvl := range []Level{L1, L2, L3, L4} {
		dir := t.TempDir()
		m := machine(t)
		m.WriteRange(0x1000, []trace.Value{trace.IntValue(5)})
		ctx, err := NewContext(dir, lvl)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Protect("x", 0x1000, 8)
		if err := ctx.Checkpoint(m, 1); err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		entries, _ := os.ReadDir(dir)
		wantFiles := map[Level]int{L1: 1, L2: 2, L3: 3, L4: 3}[lvl]
		if len(entries) != wantFiles {
			t.Errorf("%v wrote %d files, want %d", lvl, len(entries), wantFiles)
		}
		m2 := machine(t)
		if _, err := ctx.Restart(m2, nil); err != nil {
			t.Errorf("%v restart: %v", lvl, err)
		}
	}
	if _, err := NewContext(t.TempDir(), Level(9)); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestUnprotect(t *testing.T) {
	ctx, err := NewContext(t.TempDir(), L1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Protect("a", 0x1000, 8)
	ctx.Protect("b", 0x2000, 8)
	if !ctx.Unprotect("a") {
		t.Error("Unprotect(a) = false")
	}
	if ctx.Unprotect("zzz") {
		t.Error("Unprotect(zzz) = true")
	}
	if vars := ctx.ProtectedVars(); len(vars) != 1 || vars[0].Name != "b" {
		t.Errorf("ProtectedVars = %v", vars)
	}
}

func TestFullSnapshotRoundtrip(t *testing.T) {
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(1), trace.FloatValue(2.5), trace.PtrValue(0xdead)})
	snap := FullSnapshot(m, 9)
	m2 := machine(t)
	iter, err := FullRestore(m2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 9 {
		t.Errorf("iter = %d", iter)
	}
	got := m2.ReadRange(0x1000, 3)
	if got[0].Int != 1 || got[1].Float != 2.5 || got[2].Addr != 0xdead {
		t.Errorf("restored = %v", got)
	}
}

func TestFullRestoreRejectsCorruption(t *testing.T) {
	m := machine(t)
	m.WriteRange(0x1000, []trace.Value{trace.IntValue(1)})
	snap := FullSnapshot(m, 1)
	snap[10] ^= 0xFF
	if _, err := FullRestore(machine(t), snap); err == nil {
		t.Error("corrupted snapshot accepted")
	}
	if _, err := FullRestore(machine(t), []byte("xx")); err == nil {
		t.Error("short snapshot accepted")
	}
}

// Property: checkpoint/restore is the identity on arbitrary cell contents.
func TestQuickRoundtrip(t *testing.T) {
	dir := t.TempDir()
	seq := 0
	f := func(ints []int64, floats []float64) bool {
		seq++
		m := machine(t)
		var vals []trace.Value
		for _, v := range ints {
			vals = append(vals, trace.IntValue(v))
		}
		for _, v := range floats {
			if v != v { // skip NaN: Equal uses ==
				continue
			}
			vals = append(vals, trace.FloatValue(v))
		}
		if len(vals) == 0 {
			vals = []trace.Value{trace.IntValue(0)}
		}
		m.WriteRange(0x4000, vals)
		ctx, err := NewContext(filepath.Join(dir, "q", strconv.Itoa(seq)), L1)
		if err != nil {
			return false
		}
		ctx.Protect("v", 0x4000, int64(len(vals)*8))
		if err := ctx.Checkpoint(m, 1); err != nil {
			return false
		}
		m2 := machine(t)
		if _, err := ctx.Restart(m2, nil); err != nil {
			return false
		}
		got := m2.ReadRange(0x4000, int64(len(vals)))
		for i := range vals {
			if !got[i].Equal(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

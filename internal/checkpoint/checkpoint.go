// Package checkpoint is the reproduction's C/R substrate: an FTI-like
// application-level, multi-level checkpointing library over the simulated
// machine's memory, plus a BLCR-like full-process snapshot used as the
// storage-cost baseline of Table IV.
//
// Like FTI (Bautista-Gomez et al., SC'11), the application registers
// ("protects") the variables to preserve, then writes checkpoints at the
// end of main-loop iterations and recovers them before the loop on
// restart. Reliability levels mirror FTI's:
//
//	L1  local checkpoint object (the mode the paper uses for validation)
//	L2  L1 + a partner copy of the object
//	L3  L2 + XOR parity blocks for erasure recovery
//	L4  L3 + synchronous flush to "stable storage" (fsync)
//
// Persistence goes through the pluggable storage engine in
// internal/store: a checkpoint is one store object whose sections are a
// small metadata header plus one section per protected variable, framed
// with a CRC-32 that detects torn or corrupted objects. The levels above
// are a decorator over the selected backend (levels.go), and the store
// package adds asynchronous double-buffered writes and delta/incremental
// checkpoints as further decorators.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"autocheck/internal/faultinject"
	"autocheck/internal/interp"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// Failpoint sites of the checkpoint layer's commit protocol.
const (
	// SiteCheckpointPut fires inside Checkpoint before the backend sees
	// the image: a crash here is a process death with nothing of this
	// checkpoint durable.
	SiteCheckpointPut = "ckpt.put"
	// SiteCheckpointCommitted fires after the backend accepted the image
	// and before the context updates its own accounting or prunes: a
	// crash here is a process death with a durable checkpoint the dying
	// process never got to acknowledge — restart must still find it.
	SiteCheckpointCommitted = "ckpt.committed"
	// SiteCheckpointPrune fires at the head of a retention prune.
	SiteCheckpointPrune = "ckpt.prune"
)

// Level selects the reliability level.
type Level int

// Reliability levels.
const (
	L1 Level = iota + 1
	L2
	L3
	L4
)

func (l Level) String() string { return fmt.Sprintf("L%d", int(l)) }

// ParseLevel parses a -level CLI value: "1".."4" or "L1".."L4".
func ParseLevel(s string) (Level, error) {
	t := strings.TrimPrefix(strings.ToUpper(s), "L")
	for l := L1; l <= L4; l++ {
		if t == fmt.Sprintf("%d", int(l)) {
			return l, nil
		}
	}
	return 0, fmt.Errorf("checkpoint: invalid level %q (want 1-4 or L1-L4)", s)
}

const (
	magic   = uint32(0x41435031) // "ACP1"
	version = uint32(2)          // v2: sectioned objects via internal/store

	metaSection = "~ckpt"
	keyPrefix   = "ckpt-"
)

// ErrNoCheckpoint is returned by Restart when no valid checkpoint exists.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// Protected describes one registered variable.
type Protected struct {
	Name  string
	Base  uint64
	Cells int64 // number of 8-byte cells
}

// Context is an open checkpointing session over a storage backend.
type Context struct {
	backend   store.Backend
	level     Level
	faults    *faultinject.Registry
	protected []Protected
	seq       int
	lastBytes int64
	allBytes  int64
	count     int
	retain    int
	pruned    int
}

// SetFaults arms (nil: disarms) fault injection on the context's own
// commit-point sites. NewContextStore arms it from store.Config.Faults;
// NewContextBackend callers set it here.
func (c *Context) SetFaults(r *faultinject.Registry) { c.faults = r }

// NewContext creates a checkpoint context writing one file per replica
// into dir with the given reliability level — the original on-disk
// behavior, now expressed as the file backend of internal/store.
func NewContext(dir string, level Level) (*Context, error) {
	return NewContextStore(store.Config{Kind: store.KindFile, Dir: dir}, level)
}

// NewContextStore creates a checkpoint context over the backend selected
// by cfg. The reliability level is layered as a decorator over the base
// backend, below cfg's incremental/async decorators, so deltas and
// staging buffers see logical checkpoint keys while replicas and parity
// land next to the primary copy. L4 forces cfg.Sync.
func NewContextStore(cfg store.Config, level Level) (*Context, error) {
	if level < L1 || level > L4 {
		return nil, fmt.Errorf("checkpoint: invalid level %d", level)
	}
	cfg.Sync = cfg.Sync || level >= L4
	base, err := store.Open(cfg)
	if err != nil {
		return nil, err
	}
	backend := store.Decorate(store.Backend(newLevelBackend(base, level)), cfg)
	c := &Context{backend: backend, level: level, faults: cfg.Faults}
	if err := c.resumeSeq(); err != nil {
		backend.Close()
		return nil, err
	}
	return c, nil
}

// NewContextBackend creates a checkpoint context over a caller-supplied
// backend (custom or remote stores); the reliability level is layered on
// top of it.
func NewContextBackend(b store.Backend, level Level) (*Context, error) {
	if level < L1 || level > L4 {
		return nil, fmt.Errorf("checkpoint: invalid level %d", level)
	}
	c := &Context{backend: newLevelBackend(b, level), level: level}
	if err := c.resumeSeq(); err != nil {
		return nil, err
	}
	return c, nil
}

// resumeSeq advances the write sequence past any checkpoints already in
// the store, so a restarted process appends after the previous session's
// checkpoints instead of overwriting them (re-writing ckpt-000001 while
// higher-numbered keys survive would leave stale objects shadowing the
// new state on the next Restart).
func (c *Context) resumeSeq() error {
	keys, err := c.backend.List()
	if err != nil {
		return err
	}
	for _, k := range keys {
		var n int
		if _, err := fmt.Sscanf(k, keyPrefix+"%d", &n); err == nil && n > c.seq {
			c.seq = n
		}
	}
	return nil
}

// Protect registers a variable. sizeBytes is rounded up to whole cells.
func (c *Context) Protect(name string, base uint64, sizeBytes int64) {
	cells := (sizeBytes + 7) / 8
	if cells < 1 {
		cells = 1
	}
	c.protected = append(c.protected, Protected{Name: name, Base: base, Cells: cells})
}

// Unprotect removes a registered variable by name (used by the
// false-positive validation of §VI-B, which drops variables one at a time).
func (c *Context) Unprotect(name string) bool {
	for i := range c.protected {
		if c.protected[i].Name == name {
			c.protected = append(c.protected[:i], c.protected[i+1:]...)
			return true
		}
	}
	return false
}

// Protected returns the registered variables.
func (c *Context) ProtectedVars() []Protected {
	out := make([]Protected, len(c.protected))
	copy(out, c.protected)
	return out
}

// LastBytes returns the size of the most recent checkpoint's primary
// image (the paper's Table IV reports checkpoint data volume, not
// replication overhead; with the incremental decorator the bytes actually
// persisted can be smaller — see StoreStats).
func (c *Context) LastBytes() int64 { return c.lastBytes }

// TotalBytes returns cumulative primary-image bytes.
func (c *Context) TotalBytes() int64 { return c.allBytes }

// Count returns the number of checkpoints written.
func (c *Context) Count() int { return c.count }

// StoreStats reports the storage backend's accounting (actual persisted
// bytes, skipped sections, keyframe/delta counts). It flushes pending
// asynchronous writes first.
func (c *Context) StoreStats() store.Stats { return c.backend.Stats() }

// Flush blocks until queued asynchronous checkpoints are durable and
// returns the first deferred write error.
func (c *Context) Flush() error { return c.backend.Flush() }

// Close flushes and closes the storage backend.
func (c *Context) Close() error { return c.backend.Close() }

func encodeValue(buf []byte, v trace.Value) []byte {
	buf = append(buf, byte(v.Kind))
	var bits uint64
	switch v.Kind {
	case trace.KindFloat:
		bits = math.Float64bits(v.Float)
	case trace.KindPtr:
		bits = v.Addr
	default:
		bits = uint64(v.Int)
	}
	return binary.LittleEndian.AppendUint64(buf, bits)
}

func decodeValue(buf []byte) (trace.Value, []byte, error) {
	if len(buf) < 9 {
		return trace.Value{}, nil, errors.New("checkpoint: truncated value")
	}
	kind := trace.ValueKind(buf[0])
	bits := binary.LittleEndian.Uint64(buf[1:9])
	rest := buf[9:]
	switch kind {
	case trace.KindFloat:
		return trace.FloatValue(math.Float64frombits(bits)), rest, nil
	case trace.KindPtr:
		return trace.PtrValue(bits), rest, nil
	case trace.KindInt:
		return trace.IntValue(int64(bits)), rest, nil
	}
	return trace.Value{}, nil, fmt.Errorf("checkpoint: bad value kind %d", kind)
}

// encodeCheckpoint snapshots the protected cells into one section per
// variable plus a metadata section.
func encodeCheckpoint(m *interp.Machine, protected []Protected, iter int64) []store.Section {
	meta := binary.LittleEndian.AppendUint32(nil, magic)
	meta = binary.LittleEndian.AppendUint32(meta, version)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(iter))
	sections := make([]store.Section, 0, len(protected)+1)
	sections = append(sections, store.Section{Name: metaSection, Data: meta})
	for _, p := range protected {
		data := binary.LittleEndian.AppendUint64(nil, p.Base)
		data = binary.LittleEndian.AppendUint64(data, uint64(p.Cells))
		for _, v := range m.ReadRange(p.Base, p.Cells) {
			data = encodeValue(data, v)
		}
		sections = append(sections, store.Section{Name: p.Name, Data: data})
	}
	return sections
}

// decodeCheckpoint parses the sections of one checkpoint object.
func decodeCheckpoint(sections []store.Section) (iter int64, vars []Protected, cells [][]trace.Value, err error) {
	if len(sections) == 0 || sections[0].Name != metaSection {
		return 0, nil, nil, errors.New("checkpoint: missing metadata section")
	}
	meta := sections[0].Data
	if len(meta) < 16 {
		return 0, nil, nil, errors.New("checkpoint: truncated metadata")
	}
	if binary.LittleEndian.Uint32(meta[0:4]) != magic || binary.LittleEndian.Uint32(meta[4:8]) != version {
		return 0, nil, nil, errors.New("checkpoint: bad magic or version")
	}
	iter = int64(binary.LittleEndian.Uint64(meta[8:16]))
	for _, s := range sections[1:] {
		if strings.HasPrefix(s.Name, "~") {
			continue // decorator metadata
		}
		if len(s.Data) < 16 {
			return 0, nil, nil, fmt.Errorf("checkpoint: truncated record %q", s.Name)
		}
		p := Protected{
			Name:  s.Name,
			Base:  binary.LittleEndian.Uint64(s.Data[0:8]),
			Cells: int64(binary.LittleEndian.Uint64(s.Data[8:16])),
		}
		rest := s.Data[16:]
		vals := make([]trace.Value, 0, p.Cells)
		for j := int64(0); j < p.Cells; j++ {
			var v trace.Value
			v, rest, err = decodeValue(rest)
			if err != nil {
				return 0, nil, nil, err
			}
			vals = append(vals, v)
		}
		vars = append(vars, p)
		cells = append(cells, vals)
	}
	return iter, vars, cells, nil
}

// Retain sets the retention policy: after every successful Checkpoint,
// prune stored checkpoints older than the newest n. Objects a surviving
// checkpoint still needs are never deleted — with the incremental
// decorator a retained delta keeps its keyframe and every intermediate
// delta alive (store.DependencyResolver), so a prune can never orphan a
// restartable chain. n <= 0 disables pruning (the default: keep
// everything, the behavior every existing caller relies on).
//
// Pruning lists and deletes through the backend chain, which drains a
// pending asynchronous write first; callers stacking Retain on an async
// backend trade some write-latency hiding for bounded storage.
func (c *Context) Retain(n int) {
	if n < 0 {
		n = 0
	}
	c.retain = n
}

// Pruned returns the number of checkpoints deleted by the retention
// policy so far.
func (c *Context) Pruned() int { return c.pruned }

// Checkpoint writes a checkpoint of all protected variables at the given
// iteration number. With an asynchronous backend it returns as soon as
// the cells are snapshotted into a staging buffer; write errors then
// surface on a later Checkpoint, Flush, or Close. When a retention
// policy is set (Retain), older checkpoints are pruned after the write;
// a prune failure is returned even though the new checkpoint itself is
// durable.
func (c *Context) Checkpoint(m *interp.Machine, iter int64) error {
	sections := encodeCheckpoint(m, c.protected, iter)
	c.seq++
	if err := c.faults.Hit(SiteCheckpointPut); err != nil {
		return err
	}
	if err := c.backend.Put(c.key(c.seq), sections); err != nil {
		return err
	}
	// The image is with the backend (with an async decorator: snapshotted
	// and accepted). A crash injected here models dying after the commit
	// but before acknowledging it — the sequence resumption in resumeSeq
	// and Restart's newest-first scan must both cope with a checkpoint
	// the writer never accounted for.
	if err := c.faults.Hit(SiteCheckpointCommitted); err != nil {
		return err
	}
	c.lastBytes = store.EncodedSize(sections)
	c.allBytes += c.lastBytes
	c.count++
	if c.retain > 0 {
		if err := c.prune(); err != nil {
			return fmt.Errorf("checkpoint: seq %d written, but retention prune failed: %w", c.seq, err)
		}
	}
	return nil
}

// prune deletes checkpoints older than the newest c.retain, keeping any
// object a retained checkpoint's reconstruction still depends on.
func (c *Context) prune() error {
	if err := c.faults.Hit(SiteCheckpointPrune); err != nil {
		return err
	}
	keys, err := c.backend.List()
	if err != nil {
		return err
	}
	ckpts := keys[:0:0]
	for _, k := range keys {
		if strings.HasPrefix(k, keyPrefix) {
			ckpts = append(ckpts, k)
		}
	}
	if len(ckpts) <= c.retain {
		return nil
	}
	// List order is lexicographic = chronological; the tail is retained.
	retained := ckpts[len(ckpts)-c.retain:]
	required := make(map[string]bool, len(retained))
	for _, k := range retained {
		deps, err := store.DependenciesOf(c.backend, k)
		if err != nil {
			return err
		}
		for _, d := range deps {
			required[d] = true
		}
	}
	for _, k := range ckpts[:len(ckpts)-c.retain] {
		if required[k] {
			continue
		}
		if err := c.backend.Delete(k); err != nil && !errors.Is(err, store.ErrNotFound) {
			return err
		}
		c.pruned++
	}
	return nil
}

func (c *Context) key(seq int) string { return fmt.Sprintf("%s%06d", keyPrefix, seq) }

// Restart locates the latest valid checkpoint (the backend falls back to
// the partner copy when the primary is corrupted and the level wrote one)
// and restores all protected variables into the machine's memory,
// skipping any names in the skip set. It returns the checkpoint's
// iteration number.
func (c *Context) Restart(m *interp.Machine, skip map[string]bool) (int64, error) {
	keys, err := c.backend.List()
	if err != nil {
		return 0, err
	}
	var candidates []string
	for _, k := range keys {
		if strings.HasPrefix(k, keyPrefix) {
			candidates = append(candidates, k)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(candidates)))
	for _, key := range candidates {
		sections, err := c.backend.Get(key)
		if err != nil {
			continue // corrupted or torn: fall back to the previous checkpoint
		}
		iter, vars, cells, err := decodeCheckpoint(sections)
		if err != nil {
			continue
		}
		for i, p := range vars {
			if skip[p.Name] {
				continue
			}
			m.WriteRange(p.Base, cells[i])
		}
		return iter, nil
	}
	return 0, ErrNoCheckpoint
}

// Package checkpoint is the reproduction's C/R substrate: an FTI-like
// application-level, multi-level checkpointing library over the simulated
// machine's memory, plus a BLCR-like full-process snapshot used as the
// storage-cost baseline of Table IV.
//
// Like FTI (Bautista-Gomez et al., SC'11), the application registers
// ("protects") the variables to preserve, then writes checkpoints at the
// end of main-loop iterations and recovers them before the loop on
// restart. Reliability levels mirror FTI's:
//
//	L1  local checkpoint file (the mode the paper uses for validation)
//	L2  L1 + a partner copy of the file
//	L3  L2 + XOR parity blocks for erasure recovery
//	L4  L3 + synchronous flush to "stable storage" (fsync)
//
// All levels share one on-disk format: a header (magic, version, iteration
// number, variable count), per-variable records (name, base address, cell
// values), and a trailing CRC-32 that detects torn or corrupted files.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"autocheck/internal/interp"
	"autocheck/internal/trace"
)

// Level selects the reliability level.
type Level int

// Reliability levels.
const (
	L1 Level = iota + 1
	L2
	L3
	L4
)

func (l Level) String() string { return fmt.Sprintf("L%d", int(l)) }

const (
	magic   = uint32(0x41435031) // "ACP1"
	version = uint32(1)
)

// ErrNoCheckpoint is returned by Restart when no valid checkpoint exists.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// Protected describes one registered variable.
type Protected struct {
	Name  string
	Base  uint64
	Cells int64 // number of 8-byte cells
}

// Context is an open checkpointing session.
type Context struct {
	dir       string
	level     Level
	protected []Protected
	seq       int
	lastBytes int64
	allBytes  int64
	count     int
}

// NewContext creates a checkpoint context writing into dir with the given
// reliability level.
func NewContext(dir string, level Level) (*Context, error) {
	if level < L1 || level > L4 {
		return nil, fmt.Errorf("checkpoint: invalid level %d", level)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Context{dir: dir, level: level}, nil
}

// Protect registers a variable. sizeBytes is rounded up to whole cells.
func (c *Context) Protect(name string, base uint64, sizeBytes int64) {
	cells := (sizeBytes + 7) / 8
	if cells < 1 {
		cells = 1
	}
	c.protected = append(c.protected, Protected{Name: name, Base: base, Cells: cells})
}

// Unprotect removes a registered variable by name (used by the
// false-positive validation of §VI-B, which drops variables one at a time).
func (c *Context) Unprotect(name string) bool {
	for i := range c.protected {
		if c.protected[i].Name == name {
			c.protected = append(c.protected[:i], c.protected[i+1:]...)
			return true
		}
	}
	return false
}

// Protected returns the registered variables.
func (c *Context) ProtectedVars() []Protected {
	out := make([]Protected, len(c.protected))
	copy(out, c.protected)
	return out
}

// LastBytes returns the size of the most recent checkpoint (primary file
// only — the paper's Table IV reports checkpoint data volume, not
// replication overhead).
func (c *Context) LastBytes() int64 { return c.lastBytes }

// TotalBytes returns cumulative primary-file bytes written.
func (c *Context) TotalBytes() int64 { return c.allBytes }

// Count returns the number of checkpoints written.
func (c *Context) Count() int { return c.count }

func encodeValue(buf []byte, v trace.Value) []byte {
	buf = append(buf, byte(v.Kind))
	var bits uint64
	switch v.Kind {
	case trace.KindFloat:
		bits = math.Float64bits(v.Float)
	case trace.KindPtr:
		bits = v.Addr
	default:
		bits = uint64(v.Int)
	}
	return binary.LittleEndian.AppendUint64(buf, bits)
}

func decodeValue(buf []byte) (trace.Value, []byte, error) {
	if len(buf) < 9 {
		return trace.Value{}, nil, errors.New("checkpoint: truncated value")
	}
	kind := trace.ValueKind(buf[0])
	bits := binary.LittleEndian.Uint64(buf[1:9])
	rest := buf[9:]
	switch kind {
	case trace.KindFloat:
		return trace.FloatValue(math.Float64frombits(bits)), rest, nil
	case trace.KindPtr:
		return trace.PtrValue(bits), rest, nil
	case trace.KindInt:
		return trace.IntValue(int64(bits)), rest, nil
	}
	return trace.Value{}, nil, fmt.Errorf("checkpoint: bad value kind %d", kind)
}

// Checkpoint writes a checkpoint of all protected variables at the given
// iteration number.
func (c *Context) Checkpoint(m *interp.Machine, iter int64) error {
	buf := binary.LittleEndian.AppendUint32(nil, magic)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(iter))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.protected)))
	for _, p := range c.protected {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Name)))
		buf = append(buf, p.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, p.Base)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Cells))
		for _, v := range m.ReadRange(p.Base, p.Cells) {
			buf = encodeValue(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	c.seq++
	path := c.primaryPath(c.seq)
	if err := writeFile(path, buf, c.level >= L4); err != nil {
		return err
	}
	if c.level >= L2 {
		if err := writeFile(c.partnerPath(c.seq), buf, c.level >= L4); err != nil {
			return err
		}
	}
	if c.level >= L3 {
		if err := writeFile(c.parityPath(c.seq), xorParity(buf), c.level >= L4); err != nil {
			return err
		}
	}
	c.lastBytes = int64(len(buf))
	c.allBytes += int64(len(buf))
	c.count++
	return nil
}

func writeFile(path string, data []byte, sync bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// xorParity folds the checkpoint into a parity block of 1/4 the size
// (stand-in for FTI's Reed-Solomon group encoding; enough to exercise the
// L3 code path and storage accounting).
func xorParity(data []byte) []byte {
	n := (len(data) + 3) / 4
	out := make([]byte, n)
	for i, b := range data {
		out[i%n] ^= b
	}
	return out
}

func (c *Context) primaryPath(seq int) string {
	return filepath.Join(c.dir, fmt.Sprintf("ckpt-%06d.l1", seq))
}

func (c *Context) partnerPath(seq int) string {
	return filepath.Join(c.dir, fmt.Sprintf("ckpt-%06d.l2", seq))
}

func (c *Context) parityPath(seq int) string {
	return filepath.Join(c.dir, fmt.Sprintf("ckpt-%06d.l3", seq))
}

// decode parses and verifies a checkpoint image.
func decode(buf []byte) (iter int64, vars []Protected, cells [][]trace.Value, err error) {
	if len(buf) < 24 {
		return 0, nil, nil, errors.New("checkpoint: file too short")
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, nil, errors.New("checkpoint: CRC mismatch (corrupted checkpoint)")
	}
	if binary.LittleEndian.Uint32(body[0:4]) != magic || binary.LittleEndian.Uint32(body[4:8]) != version {
		return 0, nil, nil, errors.New("checkpoint: bad magic or version")
	}
	iter = int64(binary.LittleEndian.Uint64(body[8:16]))
	n := int(binary.LittleEndian.Uint32(body[16:20]))
	rest := body[20:]
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return 0, nil, nil, errors.New("checkpoint: truncated record")
		}
		nameLen := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < nameLen+16 {
			return 0, nil, nil, errors.New("checkpoint: truncated record")
		}
		p := Protected{Name: string(rest[:nameLen])}
		rest = rest[nameLen:]
		p.Base = binary.LittleEndian.Uint64(rest[:8])
		p.Cells = int64(binary.LittleEndian.Uint64(rest[8:16]))
		rest = rest[16:]
		vals := make([]trace.Value, 0, p.Cells)
		for j := int64(0); j < p.Cells; j++ {
			var v trace.Value
			v, rest, err = decodeValue(rest)
			if err != nil {
				return 0, nil, nil, err
			}
			vals = append(vals, v)
		}
		vars = append(vars, p)
		cells = append(cells, vals)
	}
	return iter, vars, cells, nil
}

// Restart locates the latest valid checkpoint (falling back to the partner
// copy if the primary is corrupted and the level wrote one) and restores
// all protected variables into the machine's memory, skipping any names in
// the skip set. It returns the checkpoint's iteration number.
func (c *Context) Restart(m *interp.Machine, skip map[string]bool) (int64, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	var primaries []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".l1" {
			primaries = append(primaries, filepath.Join(c.dir, e.Name()))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(primaries)))
	for _, path := range primaries {
		buf, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		iter, vars, cells, err := decode(buf)
		if err != nil {
			// Primary corrupted: try the partner copy.
			partner := path[:len(path)-3] + ".l2"
			if buf2, err2 := os.ReadFile(partner); err2 == nil {
				if it2, v2, c2, err3 := decode(buf2); err3 == nil {
					iter, vars, cells = it2, v2, c2
					err = nil
				}
			}
			if err != nil {
				continue
			}
		}
		for i, p := range vars {
			if skip[p.Name] {
				continue
			}
			m.WriteRange(p.Base, cells[i])
		}
		return iter, nil
	}
	return 0, ErrNoCheckpoint
}

package checkpoint

import (
	"strings"

	"autocheck/internal/store"
)

// levelBackend implements FTI's reliability levels as a decorator over a
// store.Backend. A logical checkpoint key fans out to physical objects:
//
//	key.l1  primary copy (all levels)
//	key.l2  partner copy (L2+); Get falls back to it when the primary
//	        fails verification
//	key.l3  XOR parity block (L3+), write-only in this reproduction
//
// L4's synchronous flush is a property of the underlying medium, so it is
// carried by the base backend's Sync option rather than a suffix.
type levelBackend struct {
	inner store.Backend
	level Level
}

const (
	primarySuffix = ".l1"
	partnerSuffix = ".l2"
	paritySuffix  = ".l3"
	paritySection = "~parity"
)

func newLevelBackend(inner store.Backend, level Level) *levelBackend {
	return &levelBackend{inner: inner, level: level}
}

// Put implements store.Backend.
func (l *levelBackend) Put(key string, sections []store.Section) error {
	if err := l.inner.Put(key+primarySuffix, sections); err != nil {
		return err
	}
	if l.level >= L2 {
		if err := l.inner.Put(key+partnerSuffix, sections); err != nil {
			return err
		}
	}
	if l.level >= L3 {
		parity := []store.Section{{Name: paritySection, Data: xorParity(store.EncodeSections(sections))}}
		if err := l.inner.Put(key+paritySuffix, parity); err != nil {
			return err
		}
	}
	return nil
}

// Get implements store.Backend: primary first, partner copy on any
// verification failure when the level wrote one.
func (l *levelBackend) Get(key string) ([]store.Section, error) {
	sections, err := l.inner.Get(key + primarySuffix)
	if err != nil && l.level >= L2 {
		if partner, perr := l.inner.Get(key + partnerSuffix); perr == nil {
			return partner, nil
		}
	}
	return sections, err
}

// List implements store.Backend, returning logical keys (objects with a
// primary copy).
func (l *levelBackend) List() ([]string, error) {
	keys, err := l.inner.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range keys {
		if strings.HasSuffix(k, primarySuffix) {
			out = append(out, strings.TrimSuffix(k, primarySuffix))
		}
	}
	return out, nil
}

// Delete implements store.Backend, removing every replica.
func (l *levelBackend) Delete(key string) error {
	err := l.inner.Delete(key + primarySuffix)
	for _, suffix := range []string{partnerSuffix, paritySuffix} {
		if derr := l.inner.Delete(key + suffix); derr != nil && derr != store.ErrNotFound && err == nil {
			err = derr
		}
	}
	return err
}

// Stats implements store.Backend.
func (l *levelBackend) Stats() store.Stats { return l.inner.Stats() }

// Flush implements store.Backend.
func (l *levelBackend) Flush() error { return l.inner.Flush() }

// Close implements store.Backend.
func (l *levelBackend) Close() error { return l.inner.Close() }

// xorParity folds a checkpoint image into a parity block of 1/4 the size
// (stand-in for FTI's Reed-Solomon group encoding; enough to exercise the
// L3 code path and storage accounting).
func xorParity(data []byte) []byte {
	n := (len(data) + 3) / 4
	out := make([]byte, n)
	for i, b := range data {
		out[i%n] ^= b
	}
	return out
}

// Package lower translates checked mini-C ASTs into IR modules. It mirrors
// Clang's -O0 code shape, which is what LLVM-Tracer (and therefore the
// AutoCheck analysis) observes:
//
//   - every local variable and parameter gets a named entry-block Alloca
//     (emitted with line -1, matching the paper's Fig. 6(c));
//   - parameters are spilled to their allocas on entry, so callee bodies
//     access arguments through named locals — this produces the Fig. 6(b)
//     "Call followed by its function body" trace shape where parameter
//     correlation must be recovered from the preceding Loads;
//   - every scalar use is a fresh Load and every assignment a Store (no
//     mem2reg), which is what makes the paper's on-the-fly reg-var map
//     sound under SSA re-loading;
//   - array arguments decay via BitCast, exercising the Table I BitCast
//     path, and array indexing lowers to GetElementPtr.
package lower

import (
	"fmt"

	"autocheck/internal/ir"
	"autocheck/internal/minic"
	"autocheck/internal/trace"
)

// Module lowers a checked file into an IR module.
func Module(f *minic.File) (*ir.Module, error) {
	m := ir.NewModule()
	l := &lowerer{mod: m, globals: make(map[string]*ir.Global), funcs: make(map[string]*ir.Function)}
	for _, g := range f.Globals {
		l.globals[g.Name] = m.AddGlobal(&ir.Global{Name: g.Name, Elem: minic.ResolveType(g.Type)})
	}
	// Declare all functions first so calls resolve in any order.
	for _, fn := range f.Funcs {
		params := make([]*ir.Param, len(fn.Params))
		for i, p := range fn.Params {
			params[i] = &ir.Param{Name: p.Name, Typ: minic.ResolveType(p.Type)}
		}
		l.funcs[fn.Name] = m.AddFunc(ir.NewFunction(fn.Name, minic.ResolveType(minic.TypeSpec{Base: fn.Ret}), params...))
	}
	for _, fn := range f.Funcs {
		if err := l.lowerFunc(fn); err != nil {
			return nil, err
		}
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("lower: generated invalid IR: %w", err)
	}
	return m, nil
}

type loopCtx struct {
	brk, cont *ir.Block
}

type lowerer struct {
	mod     *ir.Module
	globals map[string]*ir.Global
	funcs   map[string]*ir.Function

	b     *ir.Builder
	fn    *ir.Function
	slots map[*minic.Symbol]ir.Value // symbol -> storage (address value)
	loops []loopCtx
}

func (l *lowerer) lowerFunc(fn *minic.FuncDecl) error {
	f := l.funcs[fn.Name]
	l.fn = f
	l.b = ir.NewBuilder(f)
	l.slots = make(map[*minic.Symbol]ir.Value)
	l.loops = nil

	// Spill parameters into named allocas (line -1: synthesized).
	for i, p := range fn.Params {
		slot := l.b.Alloca(p.Name, f.Params[i].Typ, -1)
		l.b.Store(f.Params[i], slot, -1)
		l.slots[p.Sym] = slot
	}
	if err := l.lowerBlock(fn.Body); err != nil {
		return err
	}
	// Default return for any block left unterminated (fall-through off the
	// end, or unreachable joins).
	for _, blk := range f.Blocks {
		if blk.Terminator() == nil {
			l.b.SetBlock(blk)
			switch {
			case ir.IsVoid(f.Ret):
				l.b.Ret(nil, fn.Pos.Line)
			case ir.IsFloat(f.Ret):
				l.b.Ret(ir.ConstFloat(0), fn.Pos.Line)
			default:
				l.b.Ret(ir.ConstInt(0), fn.Pos.Line)
			}
		}
	}
	return nil
}

func (l *lowerer) lookupSlot(sym *minic.Symbol) (ir.Value, error) {
	if v, ok := l.slots[sym]; ok {
		return v, nil
	}
	if sym.Kind == minic.SymGlobal {
		if g, ok := l.globals[sym.Name]; ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("lower: no storage for symbol %s", sym.Name)
}

func (l *lowerer) lowerBlock(b *minic.BlockStmt) error {
	for _, s := range b.Stmts {
		if l.b.Terminated() {
			return nil // dead code after return/break/continue
		}
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) lowerStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return l.lowerBlock(st)
	case *minic.DeclStmt:
		return l.lowerDecl(st)
	case *minic.AssignStmt:
		return l.lowerAssign(st)
	case *minic.IncDecStmt:
		return l.lowerIncDec(st)
	case *minic.ExprStmt:
		_, err := l.lowerExpr(st.X)
		return err
	case *minic.IfStmt:
		return l.lowerIf(st)
	case *minic.ForStmt:
		return l.lowerFor(st)
	case *minic.WhileStmt:
		return l.lowerWhile(st)
	case *minic.ReturnStmt:
		return l.lowerReturn(st)
	case *minic.BreakStmt:
		if len(l.loops) == 0 {
			return fmt.Errorf("lower: break outside loop at %s", st.Pos)
		}
		l.b.Br(l.loops[len(l.loops)-1].brk, st.Pos.Line)
		return nil
	case *minic.ContinueStmt:
		if len(l.loops) == 0 {
			return fmt.Errorf("lower: continue outside loop at %s", st.Pos)
		}
		l.b.Br(l.loops[len(l.loops)-1].cont, st.Pos.Line)
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

// entryAlloca inserts an alloca at the top of the entry block (Clang
// hoists all allocas to the entry block; the paper relies on Alloca
// records to enumerate a call's local variables, Challenge 2).
func (l *lowerer) entryAlloca(name string, elem ir.Type) *ir.Instr {
	entry := l.fn.Entry()
	in := &ir.Instr{Op: trace.OpAlloca, Typ: ir.Ptr(elem), AllocElem: elem, Name: name, Line: -1}
	l.fn.Number(in)
	in.Parent = entry
	// Insert after any existing leading allocas to keep declaration order.
	pos := 0
	for pos < len(entry.Instrs) && entry.Instrs[pos].Op == trace.OpAlloca {
		pos++
	}
	entry.Instrs = append(entry.Instrs, nil)
	copy(entry.Instrs[pos+1:], entry.Instrs[pos:])
	entry.Instrs[pos] = in
	return in
}

func (l *lowerer) lowerDecl(st *minic.DeclStmt) error {
	for _, d := range st.Decls {
		elem := minic.ResolveType(d.Type)
		slot := l.entryAlloca(d.Name, elem)
		l.slots[d.Sym] = slot
		if d.Init != nil {
			v, err := l.lowerScalar(d.Init, elem, d.Pos.Line)
			if err != nil {
				return err
			}
			l.b.Store(v, slot, d.Pos.Line)
		}
	}
	return nil
}

func (l *lowerer) lowerAssign(st *minic.AssignStmt) error {
	addr, elem, err := l.lowerAddr(st.LHS)
	if err != nil {
		return err
	}
	line := st.Pos.Line
	rhs, err := l.lowerScalar(st.RHS, elem, line)
	if err != nil {
		return err
	}
	if st.Op != minic.Assign {
		cur := l.b.Load(addr, line)
		var op int
		isF := ir.IsFloat(elem)
		switch st.Op {
		case minic.PlusAssign:
			op = pick(isF, trace.OpFAdd, trace.OpAdd)
		case minic.MinusAssign:
			op = pick(isF, trace.OpFSub, trace.OpSub)
		case minic.StarAssign:
			op = pick(isF, trace.OpFMul, trace.OpMul)
		case minic.SlashAssign:
			op = pick(isF, trace.OpFDiv, trace.OpSDiv)
		default:
			return fmt.Errorf("lower: unknown compound assignment %v", st.Op)
		}
		rhs = l.b.Bin(op, cur, rhs, line)
	}
	l.b.Store(rhs, addr, line)
	return nil
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

func (l *lowerer) lowerIncDec(st *minic.IncDecStmt) error {
	addr, elem, err := l.lowerAddr(st.LHS)
	if err != nil {
		return err
	}
	line := st.Pos.Line
	cur := l.b.Load(addr, line)
	var one ir.Value = ir.ConstInt(1)
	op := trace.OpAdd
	if ir.IsFloat(elem) {
		one = ir.ConstFloat(1)
		op = trace.OpFAdd
	}
	if st.Op == minic.Dec {
		op = pick(ir.IsFloat(elem), trace.OpFSub, trace.OpSub)
	}
	l.b.Store(l.b.Bin(op, cur, one, line), addr, line)
	return nil
}

func (l *lowerer) lowerIf(st *minic.IfStmt) error {
	then := l.fn.NewBlock("if.then")
	end := l.fn.NewBlock("if.end")
	els := end
	if st.Else != nil {
		els = l.fn.NewBlock("if.else")
	}
	if err := l.lowerCond(st.Cond, then, els); err != nil {
		return err
	}
	l.b.SetBlock(then)
	if err := l.lowerStmt(st.Then); err != nil {
		return err
	}
	if !l.b.Terminated() {
		l.b.Br(end, st.Pos.Line)
	}
	if st.Else != nil {
		l.b.SetBlock(els)
		if err := l.lowerStmt(st.Else); err != nil {
			return err
		}
		if !l.b.Terminated() {
			l.b.Br(end, st.Pos.Line)
		}
	}
	l.b.SetBlock(end)
	return nil
}

func (l *lowerer) lowerFor(st *minic.ForStmt) error {
	if st.Init != nil {
		if err := l.lowerStmt(st.Init); err != nil {
			return err
		}
	}
	cond := l.fn.NewBlock("for.cond")
	body := l.fn.NewBlock("for.body")
	post := l.fn.NewBlock("for.inc")
	end := l.fn.NewBlock("for.end")
	line := st.Pos.Line
	l.b.Br(cond, line)
	l.b.SetBlock(cond)
	if st.Cond != nil {
		if err := l.lowerCond(st.Cond, body, end); err != nil {
			return err
		}
	} else {
		l.b.Br(body, line)
	}
	l.b.SetBlock(body)
	l.loops = append(l.loops, loopCtx{brk: end, cont: post})
	err := l.lowerStmt(st.Body)
	l.loops = l.loops[:len(l.loops)-1]
	if err != nil {
		return err
	}
	if !l.b.Terminated() {
		l.b.Br(post, line)
	}
	l.b.SetBlock(post)
	if st.Post != nil {
		if err := l.lowerStmt(st.Post); err != nil {
			return err
		}
	}
	if !l.b.Terminated() {
		l.b.Br(cond, line)
	}
	l.b.SetBlock(end)
	return nil
}

func (l *lowerer) lowerWhile(st *minic.WhileStmt) error {
	cond := l.fn.NewBlock("while.cond")
	body := l.fn.NewBlock("while.body")
	end := l.fn.NewBlock("while.end")
	line := st.Pos.Line
	l.b.Br(cond, line)
	l.b.SetBlock(cond)
	if err := l.lowerCond(st.Cond, body, end); err != nil {
		return err
	}
	l.b.SetBlock(body)
	l.loops = append(l.loops, loopCtx{brk: end, cont: cond})
	err := l.lowerStmt(st.Body)
	l.loops = l.loops[:len(l.loops)-1]
	if err != nil {
		return err
	}
	if !l.b.Terminated() {
		l.b.Br(cond, line)
	}
	l.b.SetBlock(end)
	return nil
}

func (l *lowerer) lowerReturn(st *minic.ReturnStmt) error {
	if st.X == nil {
		l.b.Ret(nil, st.Pos.Line)
		return nil
	}
	v, err := l.lowerScalar(st.X, l.fn.Ret, st.Pos.Line)
	if err != nil {
		return err
	}
	l.b.Ret(v, st.Pos.Line)
	return nil
}

// lowerCond lowers a boolean context with short-circuiting, branching to
// thenBlk / elseBlk.
func (l *lowerer) lowerCond(e minic.Expr, thenBlk, elseBlk *ir.Block) error {
	line := e.ExprPos().Line
	switch x := e.(type) {
	case *minic.BinaryExpr:
		switch x.Op {
		case minic.AndAnd:
			mid := l.fn.NewBlock("land.rhs")
			if err := l.lowerCond(x.X, mid, elseBlk); err != nil {
				return err
			}
			l.b.SetBlock(mid)
			return l.lowerCond(x.Y, thenBlk, elseBlk)
		case minic.OrOr:
			mid := l.fn.NewBlock("lor.rhs")
			if err := l.lowerCond(x.X, thenBlk, mid); err != nil {
				return err
			}
			l.b.SetBlock(mid)
			return l.lowerCond(x.Y, thenBlk, elseBlk)
		}
	case *minic.UnaryExpr:
		if x.Op == minic.Not {
			return l.lowerCond(x.X, elseBlk, thenBlk)
		}
	}
	v, err := l.lowerExpr(e)
	if err != nil {
		return err
	}
	cond := v
	if ir.IsFloat(v.Type()) {
		cond = l.b.Cmp(ir.CmpNE, v, ir.ConstFloat(0), line)
	} else if cmp, ok := v.(*ir.Instr); !ok || (cmp.Op != trace.OpICmp && cmp.Op != trace.OpFCmp) {
		cond = l.b.Cmp(ir.CmpNE, v, ir.ConstInt(0), line)
	}
	l.b.CondBr(cond, thenBlk, elseBlk, line)
	return nil
}

// lowerScalar lowers an expression and converts the result to want
// (int<->float conversions).
func (l *lowerer) lowerScalar(e minic.Expr, want ir.Type, line int) (ir.Value, error) {
	v, err := l.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	return l.convert(v, want, line), nil
}

func (l *lowerer) convert(v ir.Value, want ir.Type, line int) ir.Value {
	have := v.Type()
	switch {
	case ir.IsFloat(want) && ir.IsInt(have):
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstFloat(float64(c.I))
		}
		return l.b.SIToFP(v, line)
	case ir.IsInt(want) && ir.IsFloat(have):
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstInt(int64(c.F))
		}
		return l.b.FPToSI(v, line)
	}
	return v
}

// lowerAddr computes the address of an lvalue, returning the pointer value
// and the pointee (element) type.
func (l *lowerer) lowerAddr(e minic.Expr) (ir.Value, ir.Type, error) {
	switch x := e.(type) {
	case *minic.Ident:
		slot, err := l.resolve(x)
		if err != nil {
			return nil, nil, err
		}
		return slot, ir.Pointee(slot.Type()), nil
	case *minic.IndexExpr:
		base, indices, needZero, err := l.unwindIndex(x)
		if err != nil {
			return nil, nil, err
		}
		line := x.ExprPos().Line
		if needZero {
			// Local/global array: GEP(ptr, 0, i...) — the leading zero is
			// the LLVM pointer-arithmetic index.
			indices = append([]ir.Value{ir.ConstInt(0)}, indices...)
		}
		g := l.b.GEP(base, line, indices...)
		return g, ir.Pointee(g.Type()), nil
	}
	return nil, nil, fmt.Errorf("lower: not an lvalue: %T at %s", e, e.ExprPos())
}

// unwindIndex flattens nested IndexExprs into (base pointer, index values).
// needZero is true when the base is a variable's own array storage (a GEP
// needs the leading pointer-arithmetic 0); it is false for decayed pointer
// parameters, whose pointer value is loaded from the parameter slot first.
func (l *lowerer) unwindIndex(e *minic.IndexExpr) (base ir.Value, indices []ir.Value, needZero bool, err error) {
	var chain []minic.Expr
	cur := minic.Expr(e)
	for {
		ix, ok := cur.(*minic.IndexExpr)
		if !ok {
			break
		}
		chain = append([]minic.Expr{ix.Idx}, chain...)
		cur = ix.X
	}
	id, ok := cur.(*minic.Ident)
	if !ok {
		return nil, nil, false, fmt.Errorf("lower: unsupported index base %T", cur)
	}
	slot, err := l.resolve(id)
	if err != nil {
		return nil, nil, false, err
	}
	line := id.ExprPos().Line
	base = slot
	needZero = true
	if ir.IsPtr(ir.Pointee(slot.Type())) {
		// The slot holds a pointer (decayed param): load it.
		base = l.b.Load(slot, line)
		needZero = false
	}
	indices = make([]ir.Value, len(chain))
	for i, ixe := range chain {
		v, err := l.lowerScalar(ixe, ir.I64, ixe.ExprPos().Line)
		if err != nil {
			return nil, nil, false, err
		}
		indices[i] = v
	}
	return base, indices, needZero, nil
}

// resolve returns the storage (address value) for an identifier.
func (l *lowerer) resolve(x *minic.Ident) (ir.Value, error) {
	if x.Sym == nil {
		return nil, fmt.Errorf("lower: unresolved identifier %s at %s", x.Name, x.Pos)
	}
	return l.lookupSlot(x.Sym)
}

func (l *lowerer) lowerExpr(e minic.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return ir.ConstInt(x.Val), nil
	case *minic.FloatLit:
		return ir.ConstFloat(x.Val), nil
	case *minic.Ident:
		slot, err := l.resolve(x)
		if err != nil {
			return nil, err
		}
		pe := ir.Pointee(slot.Type())
		if ir.IsArray(pe) {
			return slot, nil // array value = its address (decays at use site)
		}
		return l.b.Load(slot, x.Pos.Line), nil
	case *minic.IndexExpr:
		addr, elem, err := l.lowerAddr(x)
		if err != nil {
			return nil, err
		}
		if ir.IsArray(elem) {
			return addr, nil // partial indexing of a multi-dim array
		}
		return l.b.Load(addr, x.ExprPos().Line), nil
	case *minic.UnaryExpr:
		v, err := l.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		line := x.Pos.Line
		switch x.Op {
		case minic.Minus:
			if ir.IsFloat(v.Type()) {
				return l.b.Bin(trace.OpFSub, ir.ConstFloat(0), v, line), nil
			}
			return l.b.Bin(trace.OpSub, ir.ConstInt(0), v, line), nil
		case minic.Not:
			if ir.IsFloat(v.Type()) {
				return l.b.Cmp(ir.CmpEQ, v, ir.ConstFloat(0), line), nil
			}
			return l.b.Cmp(ir.CmpEQ, v, ir.ConstInt(0), line), nil
		}
		return nil, fmt.Errorf("lower: unknown unary op %v", x.Op)
	case *minic.BinaryExpr:
		return l.lowerBinary(x)
	case *minic.CallExpr:
		return l.lowerCall(x)
	}
	return nil, fmt.Errorf("lower: unknown expression %T", e)
}

func (l *lowerer) lowerBinary(x *minic.BinaryExpr) (ir.Value, error) {
	line := x.Pos.Line
	switch x.Op {
	case minic.AndAnd, minic.OrOr:
		// Value context: materialize through a synthesized bool slot.
		slot := l.entryAlloca(fmt.Sprintf("land%d", len(l.fn.Blocks)), ir.I64)
		tb := l.fn.NewBlock("bool.true")
		fb := l.fn.NewBlock("bool.false")
		end := l.fn.NewBlock("bool.end")
		if err := l.lowerCond(x, tb, fb); err != nil {
			return nil, err
		}
		l.b.SetBlock(tb)
		l.b.Store(ir.ConstInt(1), slot, line)
		l.b.Br(end, line)
		l.b.SetBlock(fb)
		l.b.Store(ir.ConstInt(0), slot, line)
		l.b.Br(end, line)
		l.b.SetBlock(end)
		return l.b.Load(slot, line), nil
	}
	xv, err := l.lowerExpr(x.X)
	if err != nil {
		return nil, err
	}
	yv, err := l.lowerExpr(x.Y)
	if err != nil {
		return nil, err
	}
	isF := ir.IsFloat(xv.Type()) || ir.IsFloat(yv.Type())
	if isF {
		xv = l.convert(xv, ir.F64, line)
		yv = l.convert(yv, ir.F64, line)
	}
	switch x.Op {
	case minic.Plus:
		return l.b.Bin(pick(isF, trace.OpFAdd, trace.OpAdd), xv, yv, line), nil
	case minic.Minus:
		return l.b.Bin(pick(isF, trace.OpFSub, trace.OpSub), xv, yv, line), nil
	case minic.Star:
		return l.b.Bin(pick(isF, trace.OpFMul, trace.OpMul), xv, yv, line), nil
	case minic.Slash:
		return l.b.Bin(pick(isF, trace.OpFDiv, trace.OpSDiv), xv, yv, line), nil
	case minic.Percent:
		return l.b.Bin(trace.OpSRem, xv, yv, line), nil
	case minic.Lt:
		return l.b.Cmp(ir.CmpLT, xv, yv, line), nil
	case minic.Le:
		return l.b.Cmp(ir.CmpLE, xv, yv, line), nil
	case minic.Gt:
		return l.b.Cmp(ir.CmpGT, xv, yv, line), nil
	case minic.Ge:
		return l.b.Cmp(ir.CmpGE, xv, yv, line), nil
	case minic.EqEq:
		return l.b.Cmp(ir.CmpEQ, xv, yv, line), nil
	case minic.NotEq:
		return l.b.Cmp(ir.CmpNE, xv, yv, line), nil
	}
	return nil, fmt.Errorf("lower: unknown binary op %v", x.Op)
}

func (l *lowerer) lowerCall(x *minic.CallExpr) (ir.Value, error) {
	line := x.Pos.Line
	if x.Builtin != "" {
		sig := minic.Builtins[x.Builtin]
		args := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := l.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			if !sig.Variadic {
				v = l.convert(v, sig.Params[i], line)
			}
			args[i] = v
		}
		return l.b.CallBuiltin(x.Builtin, sig.Ret, args, line), nil
	}
	callee := l.funcs[x.Name]
	if callee == nil {
		return nil, fmt.Errorf("lower: call to unknown function %s", x.Name)
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		want := callee.Params[i].Typ
		v, err := l.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		if ir.IsPtr(want) {
			// Array-to-pointer decay via BitCast (Table I BitCast path).
			if !ir.TypeEqual(v.Type(), want) {
				v = l.b.BitCast(v, want, line)
			}
			args[i] = v
			continue
		}
		args[i] = l.convert(v, want, line)
	}
	return l.b.Call(callee, args, line), nil
}

package lower

import (
	"testing"

	"autocheck/internal/ir"
	"autocheck/internal/minic"
	"autocheck/internal/trace"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := minic.CompileSource(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	m, err := Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func TestAllocasHoistedToEntry(t *testing.T) {
	m := compile(t, `int main() {
  int a = 1;
  for (int i = 0; i < 3; i++) { int inner = 2; inner += a; }
  return 0;
}`)
	f := m.Func("main")
	entry := f.Entry()
	names := map[string]bool{}
	for _, in := range entry.Instrs {
		if in.Op == trace.OpAlloca {
			names[in.Name] = true
			if in.Line != -1 {
				t.Errorf("alloca %s has line %d, want -1", in.Name, in.Line)
			}
		}
	}
	for _, want := range []string{"a", "i", "inner"} {
		if !names[want] {
			t.Errorf("alloca for %s not in entry block; have %v", want, names)
		}
	}
	// No allocas outside the entry block.
	for _, blk := range f.Blocks[1:] {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpAlloca {
				t.Errorf("alloca %s in block %s", in.Name, blk.Name)
			}
		}
	}
}

func TestParamsSpilledToNamedAllocas(t *testing.T) {
	m := compile(t, `void f(int x, float v[]) { x = x + 1; v[0] = x; }
int main() { float d[2]; f(1, d); return 0; }`)
	f := m.Func("f")
	entry := f.Entry()
	if entry.Instrs[0].Op != trace.OpAlloca || entry.Instrs[0].Name != "x" {
		t.Errorf("first instr = %s", entry.Instrs[0])
	}
	// Each param alloca must be followed by a store of the incoming value.
	stores := 0
	for _, in := range entry.Instrs {
		if in.Op == trace.OpStore {
			if _, ok := in.Args[0].(*ir.Param); ok {
				stores++
			}
		}
	}
	if stores != 2 {
		t.Errorf("found %d param spills, want 2", stores)
	}
}

func TestArrayArgumentDecaysViaBitCast(t *testing.T) {
	m := compile(t, `void f(int *p) { p[0] = 1; }
int main() { int a[4]; f(a); return 0; }`)
	f := m.Func("main")
	saw := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpBitCast {
				saw = true
				if in.Type().String() != "i64*" {
					t.Errorf("bitcast to %s, want i64*", in.Type())
				}
			}
		}
	}
	if !saw {
		t.Error("array argument did not produce a BitCast")
	}
}

func TestGEPShapes(t *testing.T) {
	m := compile(t, `void f(float p[][4]) { p[1][2] = 5.0; }
int main() {
  float u[3][4];
  u[2][1] = 1.0;
  f(u);
  return 0;
}`)
	// Local array index: GEP(slot, 0, i, j).
	mainFn := m.Func("main")
	var localGEP *ir.Instr
	for _, blk := range mainFn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpGetElementPtr {
				localGEP = in
			}
		}
	}
	if localGEP == nil {
		t.Fatal("no GEP in main")
	}
	if len(localGEP.Args) != 4 {
		t.Errorf("local array GEP has %d args, want 4 (base, 0, i, j)", len(localGEP.Args))
	}
	if c, ok := localGEP.Args[1].(*ir.Const); !ok || c.I != 0 {
		t.Errorf("local array GEP first index = %v, want const 0", localGEP.Args[1])
	}
	// Decayed param index: GEP(loaded ptr, i, j) — no leading zero.
	fFn := m.Func("f")
	var paramGEP *ir.Instr
	for _, blk := range fFn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpGetElementPtr {
				paramGEP = in
			}
		}
	}
	if paramGEP == nil {
		t.Fatal("no GEP in f")
	}
	if len(paramGEP.Args) != 3 {
		t.Errorf("param GEP has %d args, want 3 (ptr, i, j)", len(paramGEP.Args))
	}
	if paramGEP.Type().String() != "f64*" {
		t.Errorf("param GEP type = %s, want f64*", paramGEP.Type())
	}
}

func TestDefaultReturnInserted(t *testing.T) {
	m := compile(t, `int f() { int x = 1; x = x; } int main() { f(); return 0; }`)
	f := m.Func("f")
	last := f.Blocks[len(f.Blocks)-1]
	term := last.Terminator()
	if term == nil || term.Op != trace.OpRet {
		t.Fatalf("function without explicit return must get one, got %v", term)
	}
}

func TestDeadCodeAfterReturnSkipped(t *testing.T) {
	m := compile(t, `int main() { return 0; print(1); }`)
	f := m.Func("main")
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpCall {
				t.Error("dead call after return was lowered")
			}
		}
	}
}

func TestShadowedNamesGetDistinctSlots(t *testing.T) {
	m := compile(t, `int main() {
  int x = 1;
  { int x = 2; x = x + 1; }
  x = x + 10;
  print(x);
  return 0;
}`)
	f := m.Func("main")
	count := 0
	for _, in := range f.Entry().Instrs {
		if in.Op == trace.OpAlloca && in.Name == "x" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("found %d allocas named x, want 2 (distinct storage)", count)
	}
}

func TestCompoundAssignLoadsThenStores(t *testing.T) {
	m := compile(t, `int main() { float x = 1.0; x *= 3.0; return 0; }`)
	f := m.Func("main")
	sawFMul := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpFMul {
				sawFMul = true
			}
		}
	}
	if !sawFMul {
		t.Error("x *= 3.0 did not lower to FMul")
	}
}

func TestGlobalsLowered(t *testing.T) {
	m := compile(t, `int g; float arr[5];
int main() { g = 1; arr[0] = 2.0; return 0; }`)
	if m.Global("g") == nil || m.Global("arr") == nil {
		t.Fatal("globals missing from module")
	}
	if m.Global("arr").Elem.String() != "[5 x f64]" {
		t.Errorf("arr type = %s", m.Global("arr").Elem)
	}
}

func TestModuleVerifies(t *testing.T) {
	srcs := []string{
		`int main() { int i; for (i = 0; i < 10 && i != 5; i++) {} return 0; }`,
		`int main() { int a = 1; int b = 2; int c; c = (a || b) + (a && b); print(c); return 0; }`,
		`float half(float x) { return x / 2.0; }
int main() { print(half(half(8.0))); return 0; }`,
		`int main() { if (1) { if (0) {} else { print(1); } } return 0; }`,
	}
	for _, src := range srcs {
		m := compile(t, src)
		if err := m.Verify(); err != nil {
			t.Errorf("Verify(%q): %v", src, err)
		}
	}
}

func TestLowerValueContextBooleans(t *testing.T) {
	m := compile(t, `int main() {
  int a = 1;
  int b = 0;
  int c;
  c = (a && b) + (a || b) + !(a && (b || a));
  print(c);
  return 0;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Value-context booleans synthesize entry allocas for the slots.
	f := m.Func("main")
	synth := 0
	for _, in := range f.Entry().Instrs {
		if in.Op == trace.OpAlloca && len(in.Name) > 4 && in.Name[:4] == "land" {
			synth++
		}
	}
	if synth == 0 {
		t.Error("no synthesized boolean slots found")
	}
}

func TestLowerFloatConditionAndUnary(t *testing.T) {
	m := compile(t, `int main() {
  float x = 0.5;
  if (x) { x = -x; }
  while (!x) { break; }
  for (; x < 10.0;) { x = x * 2.0; }
  print(x);
  return 0;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerReturnConversions(t *testing.T) {
	m := compile(t, `
float f() { return 3; }
int g() { return 2.5; }
int main() { print(f(), g()); return 0; }`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerIncDecVariants(t *testing.T) {
	m := compile(t, `int main() {
  int i = 0;
  float x = 1.0;
  i++; ++i; i--; --i;
  x++; x--;
  int a[3];
  a[0] = 0;
  a[0]++;
  print(i, x, a[0]);
  return 0;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBreakContinueNesting(t *testing.T) {
	m := compile(t, `int main() {
  int s = 0;
  for (int i = 0; i < 5; i++) {
    for (int j = 0; j < 5; j++) {
      if (j == 2) { continue; }
      if (j == 4) { break; }
      s += 1;
    }
    if (i == 3) { break; }
  }
  print(s);
  return 0;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerSubArrayArgument(t *testing.T) {
	// Passing a row of a 2-D array decays to a pointer to its elements.
	m := compile(t, `
float rowsum(float row[], int n) {
  float s = 0.0;
  for (int i = 0; i < n; i++) { s += row[i]; }
  return s;
}
int main() {
  float mtx[3][4];
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      mtx[i][j] = i * 4 + j;
  print(rowsum(mtx[1], 4));
  return 0;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

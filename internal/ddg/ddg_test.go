package ddg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildFig5 constructs the complete DDG of the paper's Fig. 5(c): MLI
// variables s, r, a, b, sum; local m; registers for the main-loop
// computations of the example code. Simplified to one loop iteration's
// worth of register instances, which is what Fig. 5 depicts.
func buildFig5(g *Graph) (mli map[string]*Node) {
	mli = make(map[string]*Node)
	for _, v := range []string{"s", "r", "a", "b", "sum"} {
		mli[v] = g.Node(v, KindMLI)
	}
	it := g.Node("it", KindLocal)
	m := g.Node("m", KindLocal)
	r1 := g.Node("1", KindRegister)
	r3 := g.Node("3", KindRegister)
	r4 := g.Node("4", KindRegister)
	r5 := g.Node("5", KindRegister)
	r8p := g.Node("8", KindRegister)
	r10 := g.Node("10", KindRegister)
	r11 := g.Node("11", KindRegister)
	r12 := g.Node("12", KindRegister)
	r13 := g.Node("13", KindRegister)

	// s = it + 1   (t1: s-Write)
	g.AddEdge(it, r1, 1)
	g.AddEdge(r1, mli["s"], 1)
	// a[it] = s * r  (t2: s-Read, t3: r-Read, t4: a-Write)
	g.AddEdge(mli["s"], r3, 2)
	g.AddEdge(mli["r"], r3, 3)
	g.AddEdge(r3, mli["a"], 4)
	// foo(a,b): q[i] = p[i] * 2  (t5: a-Read, t6: b-Write)
	g.AddEdge(mli["a"], r4, 5)
	g.AddEdge(r4, r5, 5)
	g.AddEdge(r5, mli["b"], 6)
	// r++  (t7: r-Read, t8: r-Write)
	g.AddEdge(mli["r"], r8p, 7)
	g.AddEdge(r8p, mli["r"], 8)
	// m = a[it] + b[it]  (t9: a-Read, t10: b-Read)
	g.AddEdge(mli["a"], r10, 9)
	g.AddEdge(mli["b"], r11, 10)
	g.AddEdge(r10, r12, 10)
	g.AddEdge(r11, r12, 10)
	g.AddEdge(r12, m, 10)
	// sum = m  (t11: sum-Write)
	g.AddEdge(m, r13, 11)
	g.AddEdge(r13, mli["sum"], 11)
	return mli
}

func isMLI(n *Node) bool { return n.Kind == KindMLI }

func TestContractFig5(t *testing.T) {
	g := New()
	buildFig5(g)
	c := g.Contract(isMLI)
	// The contracted DDG (Fig. 5(d)) has exactly the MLI variables.
	if len(c.Nodes()) != 5 {
		t.Fatalf("contracted DDG has %d nodes, want 5", len(c.Nodes()))
	}
	for _, n := range c.Nodes() {
		if n.Kind != KindMLI {
			t.Errorf("non-MLI node %s survived contraction", n.Name)
		}
	}
	// Edge structure of Fig. 5(d): s->a, r->a, a->b, r->r, a->sum, b->sum.
	wantEdges := map[string]bool{
		"s->a": true, "r->a": true, "a->b": true,
		"r->r": true, "a->sum": true, "b->sum": true,
	}
	got := make(map[string]bool)
	for _, n := range c.Nodes() {
		for _, e := range c.out[n] {
			got[e.From.Name+"->"+e.To.Name] = true
		}
	}
	for k := range wantEdges {
		if !got[k] {
			t.Errorf("contracted DDG missing edge %s; got %v", k, got)
		}
	}
	for k := range got {
		if !wantEdges[k] {
			t.Errorf("contracted DDG has unexpected edge %s", k)
		}
	}
}

func TestEventsFig5(t *testing.T) {
	g := New()
	buildFig5(g)
	c := g.Contract(isMLI)
	evs := c.Events()
	// Fig. 5(e): 1: s-Write; 2: s-Read; 3: r-Read; 4: a-Write; 5: a-Read;
	// 6: b-Write; 7: r-Read; 8: r-Write; 9: a-Read; 10: b-Read; 11: sum-Write.
	want := "1: s-Write; 2: s-Read; 3: r-Read; 4: a-Write; 5: a-Read; 6: b-Write; 7: r-Read; 8: r-Write; 9: a-Read; 10: b-Read; 11: sum-Write"
	if got := FormatEvents(evs); got != want {
		t.Errorf("events:\n got %s\nwant %s", got, want)
	}
}

func TestWriteMarksSurviveContraction(t *testing.T) {
	g := New()
	x := g.Node("x", KindMLI)
	r := g.Node("7", KindRegister)
	// x = <const> : a store with a register chain that has no variable
	// roots — only a write mark should remain.
	g.AddEdge(r, x, 3)
	c := g.Contract(isMLI)
	evs := c.Events()
	if len(evs) != 1 || evs[0].Kind != Write || evs[0].Node.Name != "x" || evs[0].Time != 3 {
		t.Errorf("events = %v, want single x-Write@3", evs)
	}
}

func TestMarkWriteDirect(t *testing.T) {
	g := New()
	x := g.Node("x", KindMLI)
	g.MarkWrite(x, 5)
	c := g.Contract(isMLI)
	evs := c.Events()
	if len(evs) != 1 || evs[0].Kind != Write || evs[0].Time != 5 {
		t.Errorf("events = %v", evs)
	}
}

func TestContractChainDepth(t *testing.T) {
	// u -> r1 -> r2 -> r3 -> v must contract to u -> v.
	g := New()
	u := g.Node("u", KindMLI)
	v := g.Node("v", KindMLI)
	prev := Node{}
	_ = prev
	cur := u
	for i := 0; i < 10; i++ {
		r := g.Node("r"+string(rune('0'+i)), KindRegister)
		g.AddEdge(cur, r, int64(i))
		cur = r
	}
	g.AddEdge(cur, v, 99)
	c := g.Contract(isMLI)
	ps := c.Parents(c.Lookup("v"))
	if len(ps) != 1 || ps[0].Name != "u" {
		t.Errorf("parents of v = %v, want [u]", ps)
	}
	// The surviving edge carries the downstream store time.
	if es := c.in[c.Lookup("v")]; len(es) != 1 || es[0].Time != 99 {
		t.Errorf("edge into v = %v, want time 99", es)
	}
}

func TestContractFanInFanOut(t *testing.T) {
	// (u, w) -> r -> (v1, v2) contracts to full bipartite.
	g := New()
	u := g.Node("u", KindMLI)
	w := g.Node("w", KindMLI)
	v1 := g.Node("v1", KindMLI)
	v2 := g.Node("v2", KindMLI)
	r := g.Node("r", KindRegister)
	g.AddEdge(u, r, 1)
	g.AddEdge(w, r, 1)
	g.AddEdge(r, v1, 2)
	g.AddEdge(r, v2, 3)
	c := g.Contract(isMLI)
	for _, v := range []*Node{v1, v2} {
		ps := c.Parents(c.Lookup(v.Name))
		if len(ps) != 2 {
			t.Errorf("parents of %s = %v, want u and w", v.Name, ps)
		}
	}
}

func TestContractCycleThroughRegisters(t *testing.T) {
	// A register cycle (can arise from accumulated maps) must not hang.
	g := New()
	x := g.Node("x", KindMLI)
	r1 := g.Node("r1", KindRegister)
	r2 := g.Node("r2", KindRegister)
	g.AddEdge(r1, r2, 1)
	g.AddEdge(r2, r1, 2)
	g.AddEdge(x, r1, 3)
	g.AddEdge(r2, x, 4)
	c := g.Contract(isMLI)
	ps := c.Parents(c.Lookup("x"))
	if len(ps) != 1 || ps[0].Name != "x" {
		t.Errorf("parents of x = %v, want [x] (self-dependency)", ps)
	}
}

func TestParentsChildrenDedup(t *testing.T) {
	g := New()
	a := g.Node("a", KindMLI)
	b := g.Node("b", KindMLI)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 2)
	g.AddEdge(a, b, 3)
	if ps := g.Parents(b); len(ps) != 1 {
		t.Errorf("Parents dedup failed: %v", ps)
	}
	if cs := g.Children(a); len(cs) != 1 {
		t.Errorf("Children dedup failed: %v", cs)
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	buildFig5(g)
	dot := g.DOT("fig5")
	for _, want := range []string{"digraph", "label=\"sum\"", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// Property: contraction preserves MLI-to-MLI reachability. For random
// DAGs, an MLI node u can reach MLI node v through non-MLI vertices in the
// complete graph iff there is a direct edge path in the contracted graph.
func TestQuickContractionPreservesReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 12 + rng.Intn(12)
		nodes := make([]*Node, n)
		for i := range nodes {
			kind := KindRegister
			if rng.Intn(3) == 0 {
				kind = KindMLI
			}
			nodes[i] = g.Node(nodeName(i), kind)
		}
		// Random DAG edges i -> j with i < j.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.AddEdge(nodes[i], nodes[j], int64(i*n+j))
				}
			}
		}
		c := g.Contract(isMLI)
		// Reachability through non-MLI vertices in g.
		reach := func(u, v *Node) bool {
			var dfs func(x *Node) bool
			seen := make(map[*Node]bool)
			dfs = func(x *Node) bool {
				for _, e := range g.out[x] {
					if e.To == v {
						return true
					}
					if e.To.Kind != KindMLI && !seen[e.To] {
						seen[e.To] = true
						if dfs(e.To) {
							return true
						}
					}
				}
				return false
			}
			return dfs(u)
		}
		for _, u := range nodes {
			if u.Kind != KindMLI {
				continue
			}
			for _, v := range nodes {
				if v.Kind != KindMLI {
					continue
				}
				want := reach(u, v)
				got := false
				cu, cv := c.Lookup(u.Name), c.Lookup(v.Name)
				for _, e := range c.out[cu] {
					if e.To == cv {
						got = true
					}
				}
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// Property: Events are sorted by time and contain one Write per store.
func TestQuickEventsOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var nodes []*Node
		for i := 0; i < 6; i++ {
			nodes = append(nodes, g.Node(nodeName(i), KindMLI))
		}
		for i := 0; i < 30; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u == v {
				continue
			}
			g.AddEdge(u, v, int64(rng.Intn(100)))
		}
		evs := g.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Time < evs[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

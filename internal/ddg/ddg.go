// Package ddg implements the data dependency graph at the heart of
// AutoCheck's analysis (paper §IV-B): a directed graph whose vertices are
// main-loop-input (MLI) variables, local variables, and temporary register
// instances, with timestamped edges "source → destination" recorded each
// time a Store terminates a computation.
//
// The package provides the paper's Algorithm 1: contracting every vertex
// that is not an MLI variable so that only MLI-to-MLI dependencies remain
// (Fig. 5(c) → Fig. 5(d)), and the conversion of the contracted DDG into an
// execution-time-ordered sequence of Read/Write dependencies (Fig. 5(e))
// that drives critical-variable identification.
package ddg

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies graph vertices (Fig. 5(c) legend).
type Kind int

// Vertex kinds.
const (
	KindMLI Kind = iota // main-loop-input variable
	KindLocal
	KindRegister
)

func (k Kind) String() string {
	switch k {
	case KindMLI:
		return "mli"
	case KindLocal:
		return "local"
	default:
		return "reg"
	}
}

// Node is one vertex.
type Node struct {
	ID   int
	Name string
	Kind Kind
}

// Edge is a timestamped dependency: at dynamic time Time, the value of From
// flowed into To.
type Edge struct {
	From, To *Node
	Time     int64
}

// writeMark records that a vertex was overwritten at a given time, even if
// the written value had no variable sources (e.g. a constant store). These
// are needed so the extracted R/W sequence contains every Write.
type writeMark struct {
	node *Node
	time int64
}

// Graph is a mutable dependency graph.
type Graph struct {
	nodes   []*Node
	out     map[*Node][]Edge
	in      map[*Node][]Edge
	writes  []writeMark
	nameIdx map[string]*Node
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out:     make(map[*Node][]Edge),
		in:      make(map[*Node][]Edge),
		nameIdx: make(map[string]*Node),
	}
}

// Node returns (creating if necessary) the vertex with the given unique
// name. The kind of an existing vertex is not changed.
func (g *Graph) Node(name string, kind Kind) *Node {
	if n, ok := g.nameIdx[name]; ok {
		return n
	}
	n := &Node{ID: len(g.nodes), Name: name, Kind: kind}
	g.nodes = append(g.nodes, n)
	g.nameIdx[name] = n
	return n
}

// Lookup returns the vertex with the given name, or nil.
func (g *Graph) Lookup(name string) *Node { return g.nameIdx[name] }

// Nodes returns all vertices in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// AddEdge records a dependency from → to at dynamic time t.
func (g *Graph) AddEdge(from, to *Node, t int64) {
	e := Edge{From: from, To: to, Time: t}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
}

// MarkWrite records that node was overwritten at time t (used for stores
// whose sources resolve to no variable, e.g. constants).
func (g *Graph) MarkWrite(node *Node, t int64) {
	g.writes = append(g.writes, writeMark{node: node, time: t})
}

// Parents returns the distinct source vertices of edges into n. A
// self-dependency (like r→r from "r++" in Fig. 5(d)) reports n itself.
func (g *Graph) Parents(n *Node) []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	for _, e := range g.in[n] {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	return out
}

// Children returns the distinct destination vertices of edges out of n.
func (g *Graph) Children(n *Node) []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	for _, e := range g.out[n] {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Contract implements the paper's Algorithm 1 generalized by a predicate:
// every vertex for which keep returns false is contracted — replaced by
// direct edges from its parents to its children — until only kept vertices
// remain. Edges inherit the timestamp of the edge into the contracted
// vertex's child (the downstream store time), which preserves the
// execution-time ordering of the extracted R/W sequence. A contracted
// vertex with no parents simply disappears, but its children's writes are
// preserved as write marks (the paper contracts such vertices "while
// retaining its dependencies").
//
// The result is a new graph containing only kept vertices.
func (g *Graph) Contract(keep func(*Node) bool) *Graph {
	res := New()
	for _, n := range g.nodes {
		if keep(n) {
			res.Node(n.Name, n.Kind)
		}
	}
	// For every kept vertex, resolve each incoming edge backwards through
	// non-kept vertices to its kept roots. Resolution is computed once for
	// all vertices by condensing the non-kept subgraph into strongly
	// connected components (accumulator variables like "rho += ..." form
	// genuine cycles) and propagating root sets in topological order —
	// linear in the graph size.
	roots := g.resolveRoots(keep)
	for _, n := range g.nodes {
		if !keep(n) {
			continue
		}
		dst := res.Node(n.Name, n.Kind)
		for _, e := range g.in[n] {
			var srcs []*Node
			if keep(e.From) {
				srcs = []*Node{e.From}
			} else {
				srcs = roots[e.From]
			}
			if len(srcs) == 0 {
				res.MarkWrite(dst, e.Time)
				continue
			}
			for _, s := range srcs {
				res.AddEdge(res.Node(s.Name, s.Kind), dst, e.Time)
			}
		}
	}
	for _, w := range g.writes {
		if keep(w.node) {
			res.MarkWrite(res.Node(w.node.Name, w.node.Kind), w.time)
		}
	}
	return res
}

// resolveRoots computes, for every non-kept vertex, the set of kept
// vertices reachable by walking parent (incoming) edges through non-kept
// vertices. It runs an iterative Tarjan SCC over the backward-walk graph
// of non-kept vertices; when a component completes, all components it can
// reach are already resolved, so its root set is the union over edges
// leaving the component.
func (g *Graph) resolveRoots(keep func(*Node) bool) map[*Node][]*Node {
	// Backward-walk neighbors: the non-kept sources of incoming edges.
	nb := func(v *Node) []*Node {
		var out []*Node
		for _, e := range g.in[v] {
			if !keep(e.From) {
				out = append(out, e.From)
			}
		}
		return out
	}
	index := make(map[*Node]int)
	low := make(map[*Node]int)
	onstack := make(map[*Node]bool)
	comp := make(map[*Node]int)
	compRoots := make(map[int][]*Node)
	var stack []*Node
	counter := 0
	nextComp := 1 // component ids start at 1 so the map zero value is "unassigned"

	type frame struct {
		v  *Node
		ns []*Node
		ni int
	}
	var frames []frame
	start := func(v *Node) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onstack[v] = true
		frames = append(frames, frame{v: v, ns: nb(v)})
	}
	for _, root := range g.nodes {
		if keep(root) {
			continue
		}
		if _, seen := index[root]; seen {
			continue
		}
		start(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ni < len(f.ns) {
				w := f.ns[f.ni]
				f.ni++
				if _, seen := index[w]; !seen {
					start(w)
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// f.v is complete.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// Pop the component and compute its root set.
			id := nextComp
			nextComp++
			var members []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[m] = false
				comp[m] = id
				members = append(members, m)
				if m == v {
					break
				}
			}
			seen := make(map[*Node]bool)
			var rs []*Node
			for _, m := range members {
				for _, e := range g.in[m] {
					src := e.From
					if keep(src) {
						if !seen[src] {
							seen[src] = true
							rs = append(rs, src)
						}
						continue
					}
					if comp[src] == id {
						continue // intra-component edge
					}
					// Tarjan guarantees src's component already popped:
					// every vertex reachable from this component is in it
					// or in an earlier-completed component.
					for _, r := range compRoots[comp[src]] {
						if !seen[r] {
							seen[r] = true
							rs = append(rs, r)
						}
					}
				}
			}
			compRoots[id] = rs
		}
	}
	out := make(map[*Node][]*Node, len(comp))
	for n, id := range comp {
		out[n] = compRoots[id]
	}
	return out
}

// AccessKind says whether an event reads or writes its variable.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "Read"
	}
	return "Write"
}

// Event is one entry of the execution-time-ordered R/W dependency sequence
// (Fig. 5(e)).
type Event struct {
	Node *Node
	Kind AccessKind
	Time int64
}

// Events converts the graph into the time-ordered Read/Write sequence: an
// edge u→v at time t contributes u-Read@t and v-Write@t; a write mark
// contributes v-Write@t. Events are sorted by time with reads before
// writes at equal times (the sources are read before the destination is
// stored).
func (g *Graph) Events() []Event {
	var evs []Event
	for _, es := range g.out {
		for _, e := range es {
			evs = append(evs, Event{Node: e.From, Kind: Read, Time: e.Time})
		}
	}
	for n := range g.in {
		for _, e := range g.in[n] {
			evs = append(evs, Event{Node: e.To, Kind: Write, Time: e.Time})
		}
	}
	for _, w := range g.writes {
		evs = append(evs, Event{Node: w.node, Kind: Write, Time: w.time})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind == Read
		}
		return evs[i].Node.ID < evs[j].Node.ID
	})
	// Deduplicate identical (node, kind, time) entries: multiple parents
	// of one store produce one Write each.
	out := evs[:0]
	for i, e := range evs {
		if i > 0 {
			p := out[len(out)-1]
			if p.Node == e.Node && p.Kind == e.Kind && p.Time == e.Time {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// String renders the sequence like the paper's Fig. 5(e).
func FormatEvents(evs []Event) string {
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = fmt.Sprintf("%d: %s-%s", i+1, e.Node.Name, e.Kind)
	}
	return strings.Join(parts, "; ")
}

// DOT renders the graph in Graphviz format (used by examples and docs).
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	for _, n := range g.nodes {
		shape := "ellipse"
		switch n.Kind {
		case KindRegister:
			shape = "circle"
		case KindLocal:
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, n.Name, shape)
	}
	var edges []Edge
	for _, es := range g.out {
		edges = append(edges, es...)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"t%d\"];\n", e.From.ID, e.To.ID, e.Time)
	}
	b.WriteString("}\n")
	return b.String()
}

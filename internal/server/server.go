// Package server is the networked checkpoint storage service: a
// stdlib-only HTTP object server over the pluggable backends of
// internal/store, so many concurrent clients (store.Remote) checkpoint
// into one shared store without sharing a filesystem — the ROADMAP's
// "heavy traffic, multi-backend" direction made concrete.
//
// The wire format is the store package's CRC-framed object encoding:
// clients PUT/GET exactly the blob a local backend would persist. The
// service verifies the CRC before committing a Put, so a client that
// dies mid-upload (or a bit flip in transit) never creates an object;
// and because the file-like backends commit with temp-file + rename (or
// a manifest), a service killed with SIGKILL mid-Put leaves either the
// previous object or none — never a readable torn one.
//
// Keys live in namespaces — /v1/{ns}/objects/{key} — each namespace
// backed by its own backend instance (for file-like kinds, its own
// subdirectory of the service root), so independent clients get
// disjoint key spaces and List order stays per-client chronological.
//
// Concurrency: backends are already safe for concurrent use; on top of
// that the service holds a per-key write lock across Put/Delete (reads
// take the shared side), serializing conflicting writes to one key
// while unrelated keys proceed in parallel. Admission is delegated to
// internal/admission: a global MaxInFlight bound by default, optionally
// per-tenant (namespace) concurrency slots, token-bucket rate limits,
// and bounded priority queues via Config.Admission — excess requests
// shed with 503 + Retry-After, which store.Remote treats as transient
// and retries with backoff. Shutdown stops accepting, drains in-flight
// requests, then flushes and closes every backend.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"autocheck/internal/admission"
	"autocheck/internal/analysis"
	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
	"autocheck/internal/store"
)

// Config parameterizes a service.
type Config struct {
	// Store is the template for per-namespace backends. Kind, Sync and
	// Workers apply as-is; for the file-like kinds each namespace is
	// rooted at Dir/<namespace>. KindRemote is rejected (the service
	// does not proxy to another service).
	Store store.Config

	// MaxInFlight bounds concurrently served requests; excess requests
	// are rejected with 503 + Retry-After (default DefaultMaxInFlight).
	MaxInFlight int

	// Admission carries the multi-tenant knobs of the unified admission
	// layer: per-tenant concurrency slots, token-bucket rate limits, and
	// bounded priority wait queues (with queue-derived Retry-After
	// hints). MaxInFlight, Prefix, Obs and Faults are filled from the
	// server's own configuration; the zero value reproduces the classic
	// global-semaphore behavior with a fixed 1s Retry-After.
	Admission admission.Config

	// MaxObjectBytes bounds one object upload (default
	// DefaultMaxObjectBytes).
	MaxObjectBytes int64

	// Faults arms deterministic fault injection on the request path (the
	// SiteRequest failpoint); backend-side faults travel in Store.Faults.
	// nil leaves the service fault-free.
	Faults *faultinject.Registry

	// Obs is the telemetry registry serving GET /v1/metrics: per-route
	// latency histograms, in-flight/shed gauges, and per-namespace
	// request/byte counters. nil makes the service create its own — a
	// service is always observable; pass a registry to share it with an
	// embedding process (the bench harness, a store stack armed with the
	// same registry).
	Obs *obs.Registry

	// Ingest, when non-nil, mounts the trace-ingest service
	// (internal/analysis) into this server: the one-shot analyze
	// endpoint and the chunked session API. Its Open/Obs/Faults fields
	// are filled from the server's own when unset, so session
	// checkpoints flow through the server's store stack and its metrics
	// land in /v1/metrics.
	Ingest *analysis.Config
}

// SiteRequest is the service's failpoint: it fires after admission, once
// per served request. An error action sheds the request with 503 +
// Retry-After (a load/unavailability storm), drop swallows the response
// after performing nothing (the client sees a dead connection), delay
// slows the service, and crash kills the handling goroutine (net/http
// recovers it per-connection, which the client also experiences as a
// connection error).
const SiteRequest = "server.request"

// Config defaults.
const (
	DefaultMaxInFlight    = 64
	DefaultMaxObjectBytes = int64(1) << 30
)

// Server is one checkpoint service instance.
type Server struct {
	cfg     Config
	factory func(ns string) (store.Backend, error)
	handler http.Handler
	adm     *admission.Controller

	// inflight drains requests that arrived through Handler() directly
	// (httptest, custom listeners) — http.Server.Shutdown only drains
	// connections it accepted itself. The drain refusal lives in the
	// admission controller.
	inflight sync.WaitGroup

	keyLocks sync.Map // "ns\x00key" -> *sync.RWMutex

	obs      *obs.Registry
	shedC    *obs.Counter // server.shed: shared with the admission layer
	nsCounts sync.Map     // ns -> *nsMetrics

	ingest *analysis.Service // nil unless Config.Ingest was set

	mu       sync.Mutex
	backends map[string]store.Backend
	httpSrv  *http.Server
	closed   bool
	final    *StatsReport // snapshot taken at shutdown, before backends close

	requests atomic.Int64
	rejected atomic.Int64
}

// nsMetrics is one namespace's request/byte breakdown, resolved once and
// then touched with atomics only.
type nsMetrics struct {
	requests, bytesIn, bytesOut *obs.Counter
}

// nsStats returns (creating on first use) the namespace's counters.
func (s *Server) nsStats(ns string) *nsMetrics {
	if m, ok := s.nsCounts.Load(ns); ok {
		return m.(*nsMetrics)
	}
	m := &nsMetrics{
		requests: s.obs.Counter("server.ns." + ns + ".requests"),
		bytesIn:  s.obs.Counter("server.ns." + ns + ".bytes_in"),
		bytesOut: s.obs.Counter("server.ns." + ns + ".bytes_out"),
	}
	actual, _ := s.nsCounts.LoadOrStore(ns, m)
	return actual.(*nsMetrics)
}

// New creates a service whose namespaces are backed by cfg.Store.
func New(cfg Config) (*Server, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	tmpl := cfg.Store
	if tmpl.Obs == nil {
		// Backend-side telemetry lands in the service registry by default,
		// so /v1/metrics covers the whole stack, routes through store ops.
		tmpl.Obs = cfg.Obs
	}
	if tmpl.Kind == store.KindRemote || tmpl.Kind == store.KindReplicated {
		return nil, errors.New("server: refusing to back the service with another remote service")
	}
	if tmpl.Kind != store.KindMemory && tmpl.Dir == "" {
		return nil, fmt.Errorf("server: %s-backed service needs a root directory", tmpl.Kind)
	}
	return NewWithFactory(cfg, func(ns string) (store.Backend, error) {
		nscfg := tmpl
		if nscfg.Dir != "" {
			nscfg.Dir = filepath.Join(tmpl.Dir, ns)
		}
		return store.Open(nscfg)
	}), nil
}

// NewWithFactory creates a service whose per-namespace backends come
// from factory (tests inject memory backends; embedders can inject
// arbitrary chains).
func NewWithFactory(cfg Config, factory func(ns string) (store.Backend, error)) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = DefaultMaxObjectBytes
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		factory:  factory,
		backends: make(map[string]store.Backend),
	}
	s.obs = cfg.Obs
	// The admission controller owns the server.shed/server.inflight
	// instruments; the server keeps its own handle on the aggregate shed
	// counter for the injected-unavailability path, which is not a shed
	// decision the controller made but is accounted with the sheds.
	s.shedC = s.obs.Counter("server.shed")
	acfg := cfg.Admission
	acfg.MaxInFlight = cfg.MaxInFlight
	acfg.Prefix = "server"
	acfg.Obs = cfg.Obs
	if acfg.Faults == nil {
		acfg.Faults = cfg.Faults
	}
	s.adm = admission.New(acfg)
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/{ns}/objects/{key}", s.route("put", s.handlePut))
	mux.HandleFunc("GET /v1/{ns}/objects/{key}", s.route("get", s.handleGet))
	mux.HandleFunc("DELETE /v1/{ns}/objects/{key}", s.route("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/{ns}/objects", s.route("list", s.handleList))
	mux.HandleFunc("POST /v1/{ns}/flush", s.route("flush", s.handleFlush))
	mux.HandleFunc("GET /v1/stats", s.route("stats", s.handleStats))
	mux.HandleFunc("GET /v1/metrics", s.route("metrics", s.handleMetrics))
	if cfg.Ingest != nil {
		icfg := *cfg.Ingest
		if icfg.Open == nil {
			// Session checkpoints flow through the server's own store
			// stack: one "sess-<id>" namespace per session, flushed and
			// closed with every other namespace at Shutdown.
			icfg.Open = s.backend
		}
		if icfg.Obs == nil {
			icfg.Obs = cfg.Obs
		}
		if icfg.Faults == nil {
			icfg.Faults = cfg.Faults
		}
		s.ingest = analysis.NewService(icfg)
		// The ingest API lives on its own mux behind a path-prefix
		// dispatch: its routes ("/v1/analyze/...", "/v1/sessions...")
		// are ambiguous against the store API's "/v1/{ns}/..." patterns
		// under ServeMux precedence, so the two APIs cannot share one.
		// Store namespaces named "analyze" or "sessions" are shadowed on
		// the wire as a consequence.
		imux := http.NewServeMux()
		s.ingest.Mount(imux, s.route)
		s.handler = s.bound(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if p := r.URL.Path; strings.HasPrefix(p, "/v1/analyze/") ||
				p == "/v1/sessions" || strings.HasPrefix(p, "/v1/sessions/") {
				imux.ServeHTTP(w, r)
				return
			}
			mux.ServeHTTP(w, r)
		}))
		return s
	}
	s.handler = s.bound(mux)
	return s
}

// Ingest returns the mounted trace-ingest service, or nil.
func (s *Server) Ingest() *analysis.Service { return s.ingest }

// Obs returns the service's telemetry registry (embedders, tests, the
// bench harness).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Admission returns the service's admission controller (tests,
// embedders inspecting queue depth or flipping drain mode).
func (s *Server) Admission() *admission.Controller { return s.adm }

// statusWriter captures the response status for route telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// classOfStatus buckets a response status for the per-route error-class
// counters; "" means success. status 0 means the handler never wrote —
// it panicked (an injected crash or drop) and the connection died.
func classOfStatus(status int) string {
	switch {
	case status == 0:
		return "aborted"
	case status == http.StatusNotFound:
		return "not_found"
	case status >= 500:
		return "server_error"
	case status >= 400:
		return "bad_request"
	}
	return ""
}

// route wraps a handler with its per-route telemetry: a latency
// histogram "server.<name>.ns" and error-class counters keyed by
// response status. The recorder is resolved once at construction; the
// deferred Done runs even when an injected crash panics the handler.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	op := s.obs.Op("server." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := op.Start()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			op.Done(start, 0, classOfStatus(sw.status))
		}()
		h(sw, r)
	}
}

// requestTenant derives the request's admission tenant: the explicit
// header set by store.Remote / analysis.Client, else the namespace
// embedded in the URL path, else "default". Pure string slicing — the
// accept path stays allocation-free.
func requestTenant(r *http.Request) string {
	if t := r.Header.Get(admission.TenantHeader); t != "" {
		return t
	}
	p := r.URL.Path
	if !strings.HasPrefix(p, "/v1/") {
		return "default"
	}
	seg, rest, more := strings.Cut(p[len("/v1/"):], "/")
	if seg == "analyze" {
		if ns, _, _ := strings.Cut(rest, "/"); ns != "" {
			return ns
		}
		return "default"
	}
	// Sessions are addressed by id, not namespace; stats/metrics (and
	// any other single-segment endpoint) are control traffic.
	if !more || seg == "" || seg == "sessions" {
		return "default"
	}
	return seg
}

// requestPriority derives the admission class: the explicit header,
// else reads (the restart path) ahead of writes.
func requestPriority(r *http.Request) admission.Priority {
	if h := r.Header.Get(admission.PriorityHeader); h != "" {
		if p, ok := admission.ParsePriority(h); ok {
			return p
		}
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return admission.Restart
	}
	return admission.Interactive
}

// shedMessage renders a refusal body per shed reason.
func shedMessage(sh *admission.Shed) string {
	switch sh.Reason {
	case admission.ReasonDrain:
		return "server: shutting down"
	case admission.ReasonTenantQuota:
		return "server: tenant over its concurrency quota"
	case admission.ReasonRate:
		return "server: tenant rate limited"
	}
	return "server: too many in-flight requests"
}

// bound is the load-shedding middleware: every request is admitted
// through the unified admission controller (global bound, per-tenant
// quotas/rates, priority queues); refusals get 503 + the controller's
// computed Retry-After, which store.Remote's retry loop absorbs.
func (s *Server) bound(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tkt, err := s.adm.Acquire(requestTenant(r), requestPriority(r))
		if err != nil {
			if sh, ok := admission.AsShed(err); ok {
				// Drain refusals are not "rejected" in the stats report:
				// the service is leaving, not overloaded — matching the
				// classic drain accounting.
				if sh.Reason != admission.ReasonDrain {
					s.rejected.Add(1)
				}
				w.Header().Set("Retry-After", admission.FormatRetryAfter(sh.RetryAfter))
				http.Error(w, shedMessage(sh), http.StatusServiceUnavailable)
				return
			}
			// An injected admission.request fault: unavailability, not a
			// shed decision — same wire shape as the SiteRequest error
			// below.
			if a, _ := faultinject.ActionOf(err); a == faultinject.ActionDrop {
				panic(http.ErrAbortHandler)
			}
			s.rejected.Add(1)
			s.shedC.Inc()
			w.Header().Set("Retry-After", "0")
			http.Error(w, "server: injected unavailability", http.StatusServiceUnavailable)
			return
		}
		s.inflight.Add(1)
		defer func() { tkt.Release(); s.inflight.Done() }()
		// Before the requests counter, mirroring real load shedding: an
		// injected 503 or dropped connection was never served, so the
		// requests/rejected accounting stays consistent across both
		// paths.
		if err := s.cfg.Faults.Hit(SiteRequest); err != nil {
			if a, _ := faultinject.ActionOf(err); a == faultinject.ActionDrop {
				// Swallow the response: abort the connection without
				// writing anything, which the client sees as a network
				// error and retries.
				panic(http.ErrAbortHandler)
			}
			s.rejected.Add(1)
			s.shedC.Inc()
			// Injected unavailability looks exactly like load shedding,
			// with an immediate-retry hint so chaos sweeps spend their
			// time on retries, not sleeps.
			w.Header().Set("Retry-After", "0")
			http.Error(w, "server: injected unavailability", http.StatusServiceUnavailable)
			return
		}
		s.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// Handler returns the service's HTTP handler (httptest servers, custom
// listeners/middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown (which makes it return
// nil) or a listener error.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	hs := &http.Server{Handler: s.handler}
	if s.cfg.Faults != nil {
		// Injected crashes panic handler goroutines on purpose; net/http
		// logging every one would bury a chaos sweep's real output.
		hs.ErrorLog = log.New(io.Discard, "", 0)
	}
	s.httpSrv = hs
	s.mu.Unlock()
	if err := hs.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and serves; ready (optional) receives
// the bound address once the listener is open — callers passing ":0"
// learn the port, and CLI/test startup can synchronize on it.
func (s *Server) ListenAndServe(addr string, ready chan<- string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr().String()
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the service: no new requests, in-flight
// requests drain (bounded by ctx), then every namespace backend is
// flushed and closed. The first error wins; shutdown proceeds past
// failures so no backend is leaked.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.httpSrv
	s.mu.Unlock()
	var first error
	if hs != nil {
		first = hs.Shutdown(ctx)
	}
	// Drain requests that came in through Handler() directly (httptest,
	// embedders' own listeners): new ones are refused with 503 (and any
	// queued waiters shed with a drain refusal), in-flight ones finish
	// before any backend closes — bounded by ctx.
	s.adm.SetDraining(true)
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if first == nil {
			first = ctx.Err()
		}
	}
	// Stop the ingest service before its session backends close: every
	// engine goroutine exits and no new session writes can start.
	if s.ingest != nil {
		if err := s.ingest.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Snapshot the aggregate accounting while the backends still exist,
	// so post-shutdown Stats() reports the service's lifetime totals.
	rep := s.Stats()
	s.mu.Lock()
	s.closed = true
	s.final = &rep
	backends := s.backends
	s.backends = make(map[string]store.Backend)
	s.mu.Unlock()
	// Deterministic close order keeps error attribution stable.
	names := make([]string, 0, len(backends))
	for ns := range backends {
		names = append(names, ns)
	}
	sort.Strings(names)
	for _, ns := range names {
		b := backends[ns]
		if err := b.Flush(); err != nil && first == nil {
			first = fmt.Errorf("server: flushing namespace %q: %w", ns, err)
		}
		if err := b.Close(); err != nil && first == nil {
			first = fmt.Errorf("server: closing namespace %q: %w", ns, err)
		}
	}
	return first
}

// backend returns (creating on first use) the namespace's backend.
func (s *Server) backend(ns string) (store.Backend, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("server: shutting down")
	}
	if b, ok := s.backends[ns]; ok {
		return b, nil
	}
	b, err := s.factory(ns)
	if err != nil {
		return nil, err
	}
	s.backends[ns] = b
	return b, nil
}

// keyLock returns the lock serializing writes to one key of one
// namespace. Entries live as long as the object: handleDelete drops
// them, so a service whose clients prune with a retention policy holds
// locks only for live keys instead of every key ever written.
func (s *Server) keyLock(ns, key string) *sync.RWMutex {
	m, _ := s.keyLocks.LoadOrStore(ns+"\x00"+key, &sync.RWMutex{})
	return m.(*sync.RWMutex)
}

// dropKeyLock forgets a deleted key's lock. A request racing the delete
// may briefly hold the retired mutex while a new request mints a fresh
// one; that only weakens write ordering on a key being deleted, and
// every backend is independently safe for concurrent use.
func (s *Server) dropKeyLock(ns, key string) {
	s.keyLocks.Delete(ns + "\x00" + key)
}

// names extracts and validates the {ns} (and optionally {key}) path
// values, answering 400 itself on failure.
func (s *Server) names(w http.ResponseWriter, r *http.Request, withKey bool) (ns, key string, ok bool) {
	ns = r.PathValue("ns")
	if !store.ValidName(ns) {
		http.Error(w, fmt.Sprintf("server: invalid namespace %q", ns), http.StatusBadRequest)
		return "", "", false
	}
	if withKey {
		key = r.PathValue("key")
		if !store.ValidName(key) {
			http.Error(w, fmt.Sprintf("server: invalid key %q", key), http.StatusBadRequest)
			return "", "", false
		}
	}
	s.nsStats(ns).requests.Inc()
	return ns, key, true
}

// nsBackend resolves the namespace backend, answering 503 itself on
// failure (backend construction errors are server-side conditions).
func (s *Server) nsBackend(w http.ResponseWriter, ns string) (store.Backend, bool) {
	b, err := s.backend(ns)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return nil, false
	}
	return b, true
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	ns, key, ok := s.names(w, r, true)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxObjectBytes))
	if err != nil {
		// Includes a client that died mid-upload (unexpected EOF against
		// the declared Content-Length): nothing is committed.
		http.Error(w, fmt.Sprintf("server: reading object: %v", err), http.StatusBadRequest)
		return
	}
	if r.ContentLength >= 0 && int64(len(body)) != r.ContentLength {
		http.Error(w, "server: truncated upload", http.StatusBadRequest)
		return
	}
	// Verify the CRC framing before the backend sees the object: a blob
	// corrupted in transit must not replace a good one.
	sections, err := store.DecodeSections(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("server: rejecting object: %v", err), http.StatusBadRequest)
		return
	}
	b, ok := s.nsBackend(w, ns)
	if !ok {
		return
	}
	lock := s.keyLock(ns, key)
	err = func() error {
		lock.Lock()
		// Deferred, not inline: a backend that panics mid-Put (an
		// injected crash, or any real bug) must not leave the key's
		// write lock held forever — net/http recovers the handler panic
		// and only kills this connection, so a leaked lock would hang
		// every later request for the key until the client times out.
		defer lock.Unlock()
		return b.Put(key, sections)
	}()
	if err != nil {
		http.Error(w, fmt.Sprintf("server: put %s/%s: %v", ns, key, err), http.StatusInternalServerError)
		return
	}
	s.nsStats(ns).bytesIn.Add(int64(len(body)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ns, key, ok := s.names(w, r, true)
	if !ok {
		return
	}
	b, ok := s.nsBackend(w, ns)
	if !ok {
		return
	}
	lock := s.keyLock(ns, key)
	sections, err := func() ([]store.Section, error) {
		lock.RLock()
		defer lock.RUnlock() // released even if the backend panics
		return b.Get(key)
	}()
	if errors.Is(err, store.ErrNotFound) {
		http.Error(w, "server: object not found", http.StatusNotFound)
		return
	}
	if err != nil {
		// Verification failures (torn/corrupt object) land here too: the
		// client sees an error, never bad bytes, and its restart logic
		// falls back to an older checkpoint.
		http.Error(w, fmt.Sprintf("server: get %s/%s: %v", ns, key, err), http.StatusInternalServerError)
		return
	}
	blob := store.EncodeSections(sections)
	s.nsStats(ns).bytesOut.Add(int64(len(blob)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(blob)))
	w.Write(blob)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ns, key, ok := s.names(w, r, true)
	if !ok {
		return
	}
	b, ok := s.nsBackend(w, ns)
	if !ok {
		return
	}
	lock := s.keyLock(ns, key)
	err := func() error {
		lock.Lock()
		defer lock.Unlock() // released even if the backend panics
		return b.Delete(key)
	}()
	if errors.Is(err, store.ErrNotFound) {
		http.Error(w, "server: object not found", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("server: delete %s/%s: %v", ns, key, err), http.StatusInternalServerError)
		return
	}
	s.dropKeyLock(ns, key)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ns, _, ok := s.names(w, r, false)
	if !ok {
		return
	}
	b, ok := s.nsBackend(w, ns)
	if !ok {
		return
	}
	keys, err := b.List()
	if err != nil {
		http.Error(w, fmt.Sprintf("server: list %s: %v", ns, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(keys) > 0 {
		io.WriteString(w, strings.Join(keys, "\n")+"\n")
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	ns, _, ok := s.names(w, r, false)
	if !ok {
		return
	}
	b, ok := s.nsBackend(w, ns)
	if !ok {
		return
	}
	if err := b.Flush(); err != nil {
		http.Error(w, fmt.Sprintf("server: flush %s: %v", ns, err), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// StatsReport is the service-wide accounting served at GET /v1/stats.
type StatsReport struct {
	Namespaces int         `json:"namespaces"`
	Requests   int64       `json:"requests"`
	Rejected   int64       `json:"rejected"` // load-shed with 503
	Store      store.Stats `json:"store"`    // summed across namespaces
}

// Stats aggregates the service's counters and every namespace backend's
// storage accounting; after Shutdown it reports the lifetime totals
// captured as the backends closed.
func (s *Server) Stats() StatsReport {
	s.mu.Lock()
	if s.final != nil {
		rep := *s.final
		s.mu.Unlock()
		return rep
	}
	backends := make([]store.Backend, 0, len(s.backends))
	for _, b := range s.backends {
		backends = append(backends, b)
	}
	n := len(s.backends)
	s.mu.Unlock()
	rep := StatsReport{
		Namespaces: n,
		Requests:   s.requests.Load(),
		Rejected:   s.rejected.Load(),
	}
	for _, b := range backends {
		st := b.Stats()
		rep.Store.Puts += st.Puts
		rep.Store.Gets += st.Gets
		rep.Store.Deletes += st.Deletes
		rep.Store.BytesWritten += st.BytesWritten
		rep.Store.BytesRead += st.BytesRead
		rep.Store.SectionsWritten += st.SectionsWritten
		rep.Store.SectionsSkipped += st.SectionsSkipped
		rep.Store.Keyframes += st.Keyframes
		rep.Store.Deltas += st.Deltas
		rep.Store.CacheHits += st.CacheHits
		rep.Store.CacheFollowerHits += st.CacheFollowerHits
		rep.Store.CacheMisses += st.CacheMisses
		rep.Store.Repairs += st.Repairs
		rep.Store.HedgesFired += st.HedgesFired
		rep.Store.HedgesWon += st.HedgesWon
	}
	return rep
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// MetricsReport is the payload of GET /v1/metrics: the full instrument
// snapshot (per-route and per-store-op histograms, gauges, per-namespace
// counters) plus the same aggregate accounting /v1/stats serves, in one
// consistent read.
type MetricsReport struct {
	Metrics obs.Snapshot `json:"metrics"`
	Stats   StatsReport  `json:"stats"`
}

// Metrics captures the service's full telemetry report.
func (s *Server) Metrics() MetricsReport {
	return MetricsReport{Metrics: s.obs.Snapshot(), Stats: s.Stats()}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Metrics())
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"autocheck/internal/obs"
	"autocheck/internal/store"
)

// TestMetricsEndpoint drives traffic through the service and checks the
// /v1/metrics payload: per-route histograms, per-namespace counters, and
// the embedded stats aggregate.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := memService(t, Config{})
	c := client(t, ts.URL, "obs-ns")
	defer c.Close()

	if err := c.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d, want 200", resp.StatusCode)
	}
	var rep MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}

	if got := rep.Metrics.Histograms["server.put.ns"].Count; got != 1 {
		t.Errorf("server.put.ns count = %d, want 1", got)
	}
	if got := rep.Metrics.Histograms["server.get.ns"].Count; got != 2 {
		t.Errorf("server.get.ns count = %d, want 2", got)
	}
	if got := rep.Metrics.Counters["server.get.err.not_found"]; got != 1 {
		t.Errorf("server.get.err.not_found = %d, want 1", got)
	}
	if got := rep.Metrics.Counters["server.ns.obs-ns.requests"]; got != 3 {
		t.Errorf("per-namespace requests = %d, want 3", got)
	}
	if rep.Metrics.Counters["server.ns.obs-ns.bytes_in"] == 0 ||
		rep.Metrics.Counters["server.ns.obs-ns.bytes_out"] == 0 {
		t.Errorf("per-namespace byte counters missing: %v", rep.Metrics.Counters)
	}
	if g, ok := rep.Metrics.Gauges["server.inflight"]; !ok {
		t.Error("server.inflight gauge absent")
	} else if g != 1 {
		// The metrics request itself is the one in flight at snapshot time.
		t.Errorf("server.inflight = %d, want 1", g)
	}
	if rep.Stats.Store.Puts != 1 || rep.Stats.Store.Gets != 1 {
		t.Errorf("embedded stats = %+v", rep.Stats.Store)
	}
}

// TestMetricsSharedRegistry checks that a registry passed via Config is
// the one the service records into, so an embedder sees server and its
// own instruments in one snapshot.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := obs.New()
	s, ts := memService(t, Config{Obs: reg})
	if s.Obs() != reg {
		t.Fatal("service did not adopt the provided registry")
	}
	c := client(t, ts.URL, "shared")
	defer c.Close()
	if err := c.Put("ckpt-000001", sampleSections(2)); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Histograms["server.put.ns"].Count != 1 {
		t.Fatal("traffic not recorded into the shared registry")
	}
}

// TestShedCounter fills the in-flight bound and checks rejected requests
// land in server.shed.
func TestShedCounter(t *testing.T) {
	block := make(chan struct{})
	release := make(chan struct{})
	s := NewWithFactory(Config{MaxInFlight: 1}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	// Occupy the single slot with a request that blocks inside the
	// handler chain: wrap the backend factory? Simpler: hold the slot by
	// sending a request to a slow endpoint is not available — instead
	// drive the bound middleware directly with a hanging inner handler.
	bound := s.bound(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(block)
		<-release
	}))
	ts := httptest.NewServer(bound)
	defer ts.Close()
	defer s.Shutdown(context.Background())

	done := make(chan struct{})
	go func() {
		defer close(done)
		http.Get(ts.URL + "/hold")
	}()
	<-block
	resp, err := http.Get(ts.URL + "/second")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", resp.StatusCode)
	}
	close(release)
	<-done
	if got := s.Obs().Snapshot().Counters["server.shed"]; got != 1 {
		t.Fatalf("server.shed = %d, want 1", got)
	}
	if got := s.Obs().Snapshot().Gauges["server.inflight"]; got != 0 {
		t.Fatalf("server.inflight after drain = %d, want 0", got)
	}
}

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"autocheck/internal/admission"
	"autocheck/internal/store"
)

// TestShedReasonAndTenantCounters pins the shed-counter split: the
// aggregate server.shed keeps counting every refusal, while
// server.shed.<reason> and server.shed.ns.<tenant> break it down.
func TestShedReasonAndTenantCounters(t *testing.T) {
	block := make(chan struct{})
	release := make(chan struct{})
	s := NewWithFactory(Config{MaxInFlight: 1}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	bound := s.bound(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(block)
		<-release
	}))
	ts := httptest.NewServer(bound)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		http.Get(ts.URL + "/hold")
	}()
	<-block
	// Tenant from the URL namespace.
	resp, err := http.Get(ts.URL + "/v1/tenant-a/objects/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound request = %d, want 503", resp.StatusCode)
	}
	// Tenant from the explicit header, overriding the path.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tenant-a/objects/k", nil)
	req.Header.Set(admission.TenantHeader, "tenant-b")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	<-done

	snap := s.Obs().Snapshot()
	if snap.Counters["server.shed"] != 2 || snap.Counters["server.shed.inflight"] != 2 {
		t.Errorf("shed counters: %v", snap.Counters)
	}
	if snap.Counters["server.shed.ns.tenant-a"] != 1 || snap.Counters["server.shed.ns.tenant-b"] != 1 {
		t.Errorf("per-tenant shed counters: %v", snap.Counters)
	}

	// A request during drain sheds with the drain reason, still under
	// the aggregate.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/tenant-a/objects/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain = %d, want 503", resp.StatusCode)
	}
	snap = s.Obs().Snapshot()
	if snap.Counters["server.shed.drain"] != 1 || snap.Counters["server.shed"] != 3 {
		t.Errorf("drain shed counters: %v", snap.Counters)
	}
}

// TestRateShedComputedRetryAfterOnWire pins satellite 1's server half:
// a rate-limited tenant's 503 carries the admission-computed Retry-After
// (the token refill horizon — 2s at 0.5 tokens/s), not the hardcoded 1.
func TestRateShedComputedRetryAfterOnWire(t *testing.T) {
	s := NewWithFactory(Config{
		Admission: admission.Config{TenantRate: 0.5, TenantBurst: 1},
	}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/v1/tenant-a/objects")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/tenant-a/objects")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rate-limited request = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want the computed refill horizon (2)", got)
	}
	// The co-tenant's bucket is untouched.
	resp, err = http.Get(ts.URL + "/v1/tenant-b/objects")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("co-tenant request = %d, want 200", resp.StatusCode)
	}
	if got := s.Obs().Snapshot().Counters["server.shed.rate"]; got != 1 {
		t.Errorf("server.shed.rate = %d, want 1", got)
	}
}

// TestTenantSlotsOnServer pins per-tenant concurrency isolation at the
// HTTP layer: one tenant saturating its slots sheds with tenant_quota
// while another tenant is admitted.
func TestTenantSlotsOnServer(t *testing.T) {
	block := make(chan struct{})
	release := make(chan struct{})
	s := NewWithFactory(Config{
		MaxInFlight: 8,
		Admission:   admission.Config{TenantSlots: 1},
	}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	bound := s.bound(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/tenant-a/objects/hold" {
			close(block)
			<-release
		}
	}))
	ts := httptest.NewServer(bound)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		http.Get(ts.URL + "/v1/tenant-a/objects/hold")
	}()
	<-block
	resp, err := http.Get(ts.URL + "/v1/tenant-a/objects/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("co-tenant-slot request = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/tenant-b/objects/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant = %d, want 200", resp.StatusCode)
	}
	close(release)
	<-done
	if got := s.Obs().Snapshot().Counters["server.shed.tenant_quota"]; got != 1 {
		t.Errorf("server.shed.tenant_quota = %d, want 1", got)
	}
	s.Shutdown(context.Background())
}

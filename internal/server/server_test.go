package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/store"
)

func sampleSections(seed byte) []store.Section {
	big := make([]byte, 1024)
	for i := range big {
		big[i] = byte(i) ^ seed
	}
	return []store.Section{
		{Name: "~ckpt", Data: []byte{seed, 1, 2, 3}},
		{Name: "x", Data: []byte{seed, 0xAA}},
		{Name: "arr", Data: big},
	}
}

// memService starts a memory-backed service on an httptest listener.
func memService(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWithFactory(cfg, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s, ts
}

func client(t testing.TB, url, ns string) *store.Remote {
	t.Helper()
	r, err := store.NewRemote(url, ns)
	if err != nil {
		t.Fatal(err)
	}
	r.Backoff = time.Millisecond
	return r
}

func TestServiceRoundtripWithRemoteClient(t *testing.T) {
	s, ts := memService(t, Config{})
	a := client(t, ts.URL, "client-a")
	b := client(t, ts.URL, "client-b")
	defer a.Close()
	defer b.Close()

	for i := 1; i <= 3; i++ {
		if err := a.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.Get("ckpt-000002")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(2)) {
		t.Error("round-tripped sections differ")
	}
	keys, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"ckpt-000001", "ckpt-000002", "ckpt-000003"}) {
		t.Errorf("List = %v", keys)
	}
	// Namespaces are disjoint.
	if other, err := b.List(); err != nil || len(other) != 0 {
		t.Errorf("namespace b sees %v (%v)", other, err)
	}
	if _, err := b.Get("ckpt-000001"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("cross-namespace Get = %v, want ErrNotFound", err)
	}
	if err := a.Delete("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("ckpt-000001"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
	if err := a.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	rep := s.Stats()
	if rep.Namespaces != 2 || rep.Store.Puts != 3 || rep.Store.Gets != 1 || rep.Store.Deletes != 1 {
		t.Errorf("server stats = %+v", rep)
	}
	if rep.Requests == 0 {
		t.Error("request counter not advancing")
	}
}

func TestServiceStatsEndpoint(t *testing.T) {
	_, ts := memService(t, Config{})
	c := client(t, ts.URL, "stats-ns")
	defer c.Close()
	if err := c.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Namespaces != 1 || rep.Store.Puts != 1 || rep.Store.BytesWritten <= 0 {
		t.Errorf("stats endpoint = %+v", rep)
	}
}

// A client that dies mid-upload, or sends garbage, must never create an
// object: the service verifies the CRC framing before the backend sees
// anything.
func TestServiceRejectsCorruptAndTruncatedUploads(t *testing.T) {
	s, ts := memService(t, Config{})
	// Garbage body: CRC verification fails.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/ns/objects/ckpt-000001",
		strings.NewReader("not a checkpoint object"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt upload = %d, want 400", resp.StatusCode)
	}
	// Truncated body against a larger declared length: the handler sees
	// an unexpected EOF and commits nothing. Driven through the handler
	// directly so the "connection" can die mid-body.
	blob := store.EncodeSections(sampleSections(1))
	hr := httptest.NewRequest(http.MethodPut, "/v1/ns/objects/ckpt-000002",
		io.MultiReader(strings.NewReader(string(blob[:len(blob)/2])), errReader{}))
	hr.ContentLength = int64(len(blob))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, hr)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("truncated upload = %d, want 400", rec.Code)
	}
	// Neither attempt committed an object.
	c := client(t, ts.URL, "ns")
	defer c.Close()
	keys, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("rejected uploads left objects behind: %v", keys)
	}
}

// errReader simulates a client connection dying mid-upload.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestServiceRejectsInvalidNames(t *testing.T) {
	_, ts := memService(t, Config{})
	for _, path := range []string{
		"/v1/../objects/k",      // traversal namespace
		"/v1/%2e%2e/objects/k",  // encoded traversal namespace
		"/v1/ns/objects/%2e%2e", // encoded traversal key
		"/v1/ns/objects/a%2Fb",  // encoded separator in key
	} {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+path,
			strings.NewReader(string(store.EncodeSections(sampleSections(1)))))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
			resp.StatusCode != http.StatusMovedPermanently {
			t.Errorf("%s accepted with %d", path, resp.StatusCode)
		}
	}
}

// gatedBackend blocks Puts until released (load-shedding and shutdown
// tests).
type gatedBackend struct {
	*store.Memory
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gatedBackend) Put(key string, sections []store.Section) error {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.Memory.Put(key, sections)
}

func TestServiceShedsLoadPastInFlightBound(t *testing.T) {
	gate := &gatedBackend{Memory: store.NewMemory(), gate: make(chan struct{}), entered: make(chan struct{})}
	s := NewWithFactory(Config{MaxInFlight: 1}, func(ns string) (store.Backend, error) {
		return gate, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	blob := store.EncodeSections(sampleSections(1))
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/ns/objects/ckpt-000001",
			strings.NewReader(string(blob)))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				err = fmt.Errorf("first put = %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-gate.entered // the single slot is now occupied
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/ns/objects/ckpt-000002",
		strings.NewReader(string(blob)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-bound request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Stats().Rejected)
	}
	// The retrying client rides through shedding once capacity frees up.
	c := client(t, ts.URL, "ns")
	defer c.Close()
	if err := c.Put("ckpt-000003", sampleSections(3)); err != nil {
		t.Fatal(err)
	}
}

func TestServiceGracefulShutdownDrainsInFlight(t *testing.T) {
	gate := &gatedBackend{Memory: store.NewMemory(), gate: make(chan struct{}), entered: make(chan struct{})}
	s := NewWithFactory(Config{}, func(ns string) (store.Backend, error) {
		return gate, nil
	})
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ListenAndServe("127.0.0.1:0", ready) }()
	addr := <-ready

	blob := store.EncodeSections(sampleSections(7))
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPut, "http://"+addr+"/v1/ns/objects/ckpt-000001",
			strings.NewReader(string(blob)))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				err = fmt.Errorf("in-flight put = %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-gate.entered
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin draining
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
	// The object committed during drain is durable in the backend.
	if _, err := gate.Memory.Get("ckpt-000001"); err != nil {
		t.Errorf("drained write lost: %v", err)
	}
}

// Shutdown must also drain requests that arrived through Handler()
// directly (httptest, embedders' own listeners) — http.Server.Shutdown
// only covers connections the service accepted itself.
func TestServiceShutdownDrainsHandlerRequests(t *testing.T) {
	gate := &gatedBackend{Memory: store.NewMemory(), gate: make(chan struct{}), entered: make(chan struct{})}
	s := NewWithFactory(Config{}, func(ns string) (store.Backend, error) {
		return gate, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blob := store.EncodeSections(sampleSections(2))
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/ns/objects/ckpt-000001",
			strings.NewReader(string(blob)))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				err = fmt.Errorf("in-flight put = %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-gate.entered
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	// New requests are refused while draining.
	resp, err := http.Get(ts.URL + "/v1/ns/objects/ckpt-000001")
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("request during drain = %d, want 503", resp.StatusCode)
		}
	}
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight handler request not drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The write committed before the backend was closed.
	if _, err := gate.Memory.Get("ckpt-000001"); err != nil {
		t.Errorf("drained write lost: %v", err)
	}
	// Lifetime totals survive shutdown.
	if rep := s.Stats(); rep.Store.Puts != 1 {
		t.Errorf("post-shutdown stats = %+v", rep)
	}
}

// A torn object on the service's disk (the observable state after a
// SIGKILL mid-write on a non-atomic filesystem, or plain corruption) is
// never served: the backend's CRC verification fails the Get and the
// client sees an error, not bytes.
func TestServiceNeverServesTornObjects(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{Store: store.Config{Kind: store.KindFile, Dir: root}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	c := client(t, ts.URL, "torn")
	c.MaxAttempts = 2
	defer c.Close()
	if err := c.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Tear the committed file in place.
	path := filepath.Join(root, "torn", "ckpt-000001")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ckpt-000001"); err == nil {
		t.Fatal("torn object served")
	}
	// And a SIGKILL mid-Put cannot even reach this state on the file
	// backend: writes land in a .tmp file and only an atomic rename
	// publishes them — the key either has the previous object or none.
	// The rejected-upload test covers the network half (partial body
	// never commits).
}

func TestServicePerNamespaceDirectories(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{Store: store.Config{Kind: store.KindSharded, Dir: root, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	for _, ns := range []string{"rank-0", "rank-1"} {
		c := client(t, ts.URL, ns)
		if err := c.Put("ckpt-000001", sampleSections(1)); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	for _, ns := range []string{"rank-0", "rank-1"} {
		if _, err := os.Stat(filepath.Join(root, ns, "ckpt-000001")); err != nil {
			t.Errorf("namespace %s not rooted in its own directory: %v", ns, err)
		}
	}
}

func TestServiceConfigValidation(t *testing.T) {
	if _, err := New(Config{Store: store.Config{Kind: store.KindRemote, Addr: "x"}}); err == nil {
		t.Error("remote-backed service accepted (proxy loop)")
	}
	if _, err := New(Config{Store: store.Config{Kind: store.KindFile}}); err == nil {
		t.Error("file-backed service without a root dir accepted")
	}
	if _, err := New(Config{Store: store.Config{Kind: store.KindMemory}}); err != nil {
		t.Errorf("memory-backed service should not need a dir: %v", err)
	}
}

// Race pin: many clients, overlapping namespaces and keys, stats reads.
func TestServiceConcurrentClientsRace(t *testing.T) {
	s, ts := memService(t, Config{MaxInFlight: 32})
	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ns := fmt.Sprintf("ns-%d", i%3) // namespaces shared across clients
			c := client(t, ts.URL, ns)
			defer c.Close()
			for j := 0; j < 15; j++ {
				key := fmt.Sprintf("ckpt-%06d", j%5)
				switch j % 4 {
				case 0, 1:
					c.Put(key, sampleSections(byte(i*16+j)))
				case 2:
					c.Get(key)
				case 3:
					c.List()
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.Stats()
				http.Get(ts.URL + "/v1/stats")
			}
		}
	}()
	wg.Wait()
	close(stop)
	if rep := s.Stats(); rep.Store.Puts == 0 {
		t.Errorf("no writes recorded: %+v", rep)
	}
}

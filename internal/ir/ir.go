package ir

import (
	"fmt"
	"strconv"

	"autocheck/internal/trace"
)

// Value is anything an instruction can take as an operand: constants,
// globals, function parameters, and the results of other instructions.
type Value interface {
	Type() Type
	// ValueName returns the symbolic name used in the dynamic trace:
	// a source variable name for named allocas/globals/params, the
	// register number for temporaries, and "" for constants.
	ValueName() string
}

// Const is an immediate integer or float constant.
type Const struct {
	Typ Type
	I   int64
	F   float64
}

// ConstInt returns an i64 constant.
func ConstInt(v int64) *Const { return &Const{Typ: I64, I: v} }

// ConstFloat returns an f64 constant.
func ConstFloat(v float64) *Const { return &Const{Typ: F64, F: v} }

func (c *Const) Type() Type        { return c.Typ }
func (c *Const) ValueName() string { return "" }

// String renders the constant for the IR printer.
func (c *Const) String() string {
	if IsFloat(c.Typ) {
		return trace.FloatValue(c.F).String()
	}
	return strconv.FormatInt(c.I, 10)
}

// Global is a module-level variable. Its value in expressions is a pointer
// to its storage (like an LLVM global).
type Global struct {
	Name string
	Elem Type // the pointee type (scalar or array)
}

func (g *Global) Type() Type        { return Ptr(g.Elem) }
func (g *Global) ValueName() string { return g.Name }

// Param is a formal parameter of a function. Lowering stores each incoming
// argument into a named alloca, so params are only referenced by the
// entry-block stores (the paper's "parameters substituted for arguments"
// model in Fig. 6(b)).
type Param struct {
	Name string
	Typ  Type
}

func (p *Param) Type() Type        { return p.Typ }
func (p *Param) ValueName() string { return p.Name }

// ICmp/FCmp predicates.
const (
	CmpEQ = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// PredName returns the mnemonic for a comparison predicate.
func PredName(p int) string {
	switch p {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return fmt.Sprintf("pred%d", p)
}

// Instr is a single IR instruction. Op uses the trace package's LLVM 3.4
// opcode numbers. The instruction layouts are:
//
//	Alloca            Name=<var>, Typ=*Elem (Args empty); AllocElem holds Elem
//	Load              Args[0]=ptr; Typ=pointee
//	Store             Args[0]=value, Args[1]=ptr; no result
//	GetElementPtr     Args[0]=base ptr, Args[1:]=indices; Typ=*elem
//	BitCast           Args[0]=ptr; Typ=target ptr type
//	Add..FRem         Args[0], Args[1]; Typ=scalar
//	SIToFP/FPToSI     Args[0]; Typ=target scalar
//	ICmp/FCmp         Args[0], Args[1], Pred; Typ=i64 (0/1)
//	Br                Succs[0]; or Args[0]=cond, Succs[0]=then, Succs[1]=else
//	Call              Args=actual arguments; Callee or Builtin set; Typ=ret
//	Ret               Args[0]=value (optional); no result
type Instr struct {
	Op        int
	Typ       Type // result type; Void/nil for non-producing instructions
	ID        int  // register number within the function (0 = unnumbered)
	Name      string
	Args      []Value
	Succs     []*Block
	Callee    *Function
	Builtin   string // non-empty for builtin calls (print, sqrt, ...)
	Pred      int    // comparison predicate for ICmp/FCmp
	Line      int    // source line; -1 for synthesized instructions
	AllocElem Type   // for Alloca: the allocated (pointee) type
	Parent    *Block
}

func (in *Instr) Type() Type {
	if in.Typ == nil {
		return Void
	}
	return in.Typ
}

// ValueName implements Value: the alloca/source name if present, else the
// register number.
func (in *Instr) ValueName() string {
	if in.Name != "" {
		return in.Name
	}
	return strconv.Itoa(in.ID)
}

// Producer reports whether the instruction produces a result register.
func (in *Instr) Producer() bool {
	switch in.Op {
	case trace.OpStore, trace.OpBr, trace.OpRet:
		return false
	case trace.OpCall:
		return !IsVoid(in.Type())
	}
	return true
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == trace.OpBr || in.Op == trace.OpRet
}

// Block is a basic block: a label plus a straight-line instruction list
// ending in a terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Parent *Function
}

// Append adds an instruction to the block and sets its parent.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	if t := b.Terminator(); t != nil {
		return t.Succs
	}
	return nil
}

// Function is an IR function.
type Function struct {
	Name    string
	Params  []*Param
	Ret     Type
	Blocks  []*Block
	nextID  int
	nextBlk int
}

// NewFunction creates an empty function.
func NewFunction(name string, ret Type, params ...*Param) *Function {
	return &Function{Name: name, Ret: ret, Params: params, nextID: 1}
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a fresh block with a unique label derived from hint.
func (f *Function) NewBlock(hint string) *Block {
	f.nextBlk++
	b := &Block{Name: fmt.Sprintf("%s.%d", hint, f.nextBlk), Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Number assigns a fresh register ID to an instruction that produces a
// value. IDs are per-function, mirroring LLVM's function-local numbering.
func (f *Function) Number(in *Instr) {
	if in.Producer() {
		in.ID = f.nextID
		f.nextID++
	}
}

// Module is a compiled program: globals plus functions.
type Module struct {
	Globals []*Global
	Funcs   []*Function
	funcIdx map[string]*Function
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{funcIdx: make(map[string]*Function)}
}

// AddGlobal registers a module-level variable.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// AddFunc registers a function.
func (m *Module) AddFunc(f *Function) *Function {
	m.Funcs = append(m.Funcs, f)
	m.funcIdx[f.Name] = f
	return f
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Function {
	if m.funcIdx == nil {
		return nil
	}
	return m.funcIdx[name]
}

// Global looks up a global by name.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"autocheck/internal/trace"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    Type
		size int64
		str  string
	}{
		{I64, 8, "i64"},
		{F64, 8, "f64"},
		{Void, 0, "void"},
		{Ptr(I64), 8, "i64*"},
		{Array(F64, 10), 80, "[10 x f64]"},
		{Array(Array(I64, 4), 3), 96, "[3 x [4 x i64]]"},
		{Ptr(Array(F64, 5)), 8, "[5 x f64]*"},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.str, got, c.size)
		}
		if got := c.t.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !IsInt(I64) || !IsFloat(F64) || !IsVoid(Void) || !IsPtr(Ptr(I64)) || !IsArray(Array(I64, 2)) {
		t.Error("basic predicates failed")
	}
	if IsInt(F64) || IsFloat(I64) || IsPtr(I64) {
		t.Error("negative predicates failed")
	}
	if Pointee(Ptr(F64)) != Type(F64) {
		t.Error("Pointee")
	}
	if Pointee(I64) != nil {
		t.Error("Pointee of scalar should be nil")
	}
	if ScalarBase(Array(Array(F64, 3), 2)) != Type(F64) {
		t.Error("ScalarBase")
	}
}

func TestTypeEqual(t *testing.T) {
	if !TypeEqual(Array(Array(I64, 4), 3), Array(Array(I64, 4), 3)) {
		t.Error("equal nested arrays reported unequal")
	}
	if TypeEqual(Array(I64, 4), Array(I64, 5)) {
		t.Error("different lengths reported equal")
	}
	if TypeEqual(Ptr(I64), Ptr(F64)) {
		t.Error("different pointees reported equal")
	}
	if !TypeEqual(Ptr(I64), Ptr(I64)) {
		t.Error("equal pointers reported unequal")
	}
}

// buildLoopFunc constructs: func f(n) { s = 0; for i = 0..n { s += i }; ret s }
func buildLoopFunc(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule()
	f := m.AddFunc(NewFunction("f", I64, &Param{Name: "n", Typ: I64}))
	b := NewBuilder(f)
	nSlot := b.Alloca("n", I64, -1)
	sSlot := b.Alloca("s", I64, 1)
	iSlot := b.Alloca("i", I64, 2)
	b.Store(&Param{Name: "n", Typ: I64}, nSlot, -1)
	b.Store(ConstInt(0), sSlot, 1)
	b.Store(ConstInt(0), iSlot, 2)
	cond := f.NewBlock("for.cond")
	body := f.NewBlock("for.body")
	exit := f.NewBlock("for.end")
	b.Br(cond, 2)
	b.SetBlock(cond)
	iv := b.Load(iSlot, 2)
	nv := b.Load(nSlot, 2)
	c := b.Cmp(CmpLT, iv, nv, 2)
	b.CondBr(c, body, exit, 2)
	b.SetBlock(body)
	sv := b.Load(sSlot, 3)
	iv2 := b.Load(iSlot, 3)
	sum := b.Bin(trace.OpAdd, sv, iv2, 3)
	b.Store(sum, sSlot, 3)
	iv3 := b.Load(iSlot, 2)
	inc := b.Bin(trace.OpAdd, iv3, ConstInt(1), 2)
	b.Store(inc, iSlot, 2)
	b.Br(cond, 2)
	b.SetBlock(exit)
	ret := b.Load(sSlot, 4)
	b.Ret(ret, 4)
	return m, f
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m, f := buildLoopFunc(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, f)
	}
}

func TestRegisterNumberingUnique(t *testing.T) {
	_, f := buildLoopFunc(t)
	seen := make(map[int]bool)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Producer() {
				if in.ID == 0 {
					t.Errorf("unnumbered producer %s", in)
				}
				if seen[in.ID] {
					t.Errorf("duplicate register %d", in.ID)
				}
				seen[in.ID] = true
			}
		}
	}
}

func TestValueNames(t *testing.T) {
	_, f := buildLoopFunc(t)
	entry := f.Entry()
	if got := entry.Instrs[0].ValueName(); got != "n" {
		t.Errorf("alloca name = %q, want n", got)
	}
	// A load is a temporary: numeric name.
	var load *Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == trace.OpLoad {
				load = in
				break
			}
		}
		if load != nil {
			break
		}
	}
	if load == nil {
		t.Fatal("no load found")
	}
	for _, r := range load.ValueName() {
		if r < '0' || r > '9' {
			t.Errorf("temporary name %q is not numeric", load.ValueName())
		}
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	// Empty function.
	f := NewFunction("g", Void)
	if err := f.Verify(); err == nil {
		t.Error("empty function verified")
	}
	// Missing terminator.
	f = NewFunction("g", Void)
	b := NewBuilder(f)
	b.Alloca("x", I64, 1)
	if err := f.Verify(); err == nil {
		t.Error("block without terminator verified")
	}
	// Terminator in the middle.
	f = NewFunction("g", Void)
	b = NewBuilder(f)
	b.Ret(nil, 1)
	b.Cur.Append(&Instr{Op: trace.OpRet, Line: 2})
	if err := f.Verify(); err == nil {
		t.Error("double terminator verified")
	}
	// Store to non-pointer.
	f = NewFunction("g", Void)
	b = NewBuilder(f)
	in := &Instr{Op: trace.OpStore, Args: []Value{ConstInt(1), ConstInt(2)}, Line: 1}
	f.Number(in)
	b.Cur.Append(in)
	b.Ret(nil, 1)
	if err := f.Verify(); err == nil {
		t.Error("store to non-pointer verified")
	}
	// Call arg count mismatch.
	callee := NewFunction("h", Void, &Param{Name: "a", Typ: I64})
	f = NewFunction("g", Void)
	b = NewBuilder(f)
	bad := &Instr{Op: trace.OpCall, Typ: Void, Callee: callee, Line: 1}
	b.Cur.Append(bad)
	b.Ret(nil, 1)
	if err := f.Verify(); err == nil {
		t.Error("bad call arity verified")
	}
}

func TestPrinterOutput(t *testing.T) {
	m, f := buildLoopFunc(t)
	s := m.String()
	for _, want := range []string{"func i64 @f(i64 %n)", "alloca i64", "icmp lt", "br label", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
	_ = f
}

func TestBlockSuccs(t *testing.T) {
	_, f := buildLoopFunc(t)
	entry := f.Entry()
	succs := entry.Succs()
	if len(succs) != 1 || succs[0].Name != f.Blocks[1].Name {
		t.Errorf("entry succs = %v", succs)
	}
	cond := f.Blocks[1]
	if got := len(cond.Succs()); got != 2 {
		t.Errorf("cond has %d succs, want 2", got)
	}
}

func TestModuleLookup(t *testing.T) {
	m, f := buildLoopFunc(t)
	if m.Func("f") != f {
		t.Error("Func lookup failed")
	}
	if m.Func("nope") != nil {
		t.Error("Func lookup of missing name should be nil")
	}
	g := m.AddGlobal(&Global{Name: "A", Elem: Array(F64, 8)})
	if m.Global("A") != g {
		t.Error("Global lookup failed")
	}
	if m.Global("B") != nil {
		t.Error("Global lookup of missing name should be nil")
	}
	if !IsPtr(g.Type()) {
		t.Error("global value type must be a pointer")
	}
}

func TestGEPTypes(t *testing.T) {
	f := NewFunction("g", Void)
	b := NewBuilder(f)
	arr := b.Alloca("u", Array(Array(F64, 4), 3), 1)
	// LLVM semantics: first index is pointer arithmetic, the rest descend.
	g0 := b.GEP(arr, 1, ConstInt(0))
	if g0.Type().String() != "[3 x [4 x f64]]*" {
		t.Errorf("gep arithmetic-only type = %s", g0.Type())
	}
	g1 := b.GEP(arr, 1, ConstInt(0), ConstInt(2))
	if g1.Type().String() != "[4 x f64]*" {
		t.Errorf("gep 1 level type = %s", g1.Type())
	}
	g2 := b.GEP(arr, 1, ConstInt(0), ConstInt(2), ConstInt(3))
	if g2.Type().String() != "f64*" {
		t.Errorf("gep 2 level type = %s", g2.Type())
	}
	b.Ret(nil, 1)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property: array sizes compose multiplicatively for arbitrary nesting.
func TestQuickArraySize(t *testing.T) {
	f := func(dims []uint8) bool {
		if len(dims) > 4 {
			dims = dims[:4]
		}
		var typ Type = F64
		want := int64(8)
		for _, d := range dims {
			n := int64(d%8) + 1
			typ = Array(typ, n)
			want *= n
		}
		return typ.Size() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredName(t *testing.T) {
	for p, want := range map[int]string{CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le", CmpGT: "gt", CmpGE: "ge", 42: "pred42"} {
		if got := PredName(p); got != want {
			t.Errorf("PredName(%d) = %q, want %q", p, got, want)
		}
	}
}

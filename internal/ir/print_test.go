package ir

import (
	"strings"
	"testing"

	"autocheck/internal/trace"
)

// TestPrinterCoversAllInstructions renders one of each instruction kind
// and checks the mnemonics appear.
func TestPrinterCoversAllInstructions(t *testing.T) {
	m := NewModule()
	g := m.AddGlobal(&Global{Name: "gv", Elem: Array(F64, 4)})
	callee := m.AddFunc(NewFunction("callee", F64, &Param{Name: "x", Typ: F64}))
	cb := NewBuilder(callee)
	cb.Ret(ConstFloat(1), 1)

	f := m.AddFunc(NewFunction("f", I64, &Param{Name: "n", Typ: I64}))
	b := NewBuilder(f)
	slot := b.Alloca("v", F64, 1)
	arr := b.Alloca("arr", Array(F64, 4), 1)
	ld := b.Load(slot, 2)
	b.Store(ConstFloat(2.5), slot, 2)
	gep := b.GEP(arr, 3, ConstInt(0), ConstInt(1))
	b.Store(ld, gep, 3)
	bc := b.BitCast(arr, Ptr(F64), 4)
	b.Store(ConstFloat(0), bc, 4)
	gv := b.GEP(g, 4, ConstInt(0), ConstInt(2))
	b.Store(ConstFloat(1), gv, 4)
	add := b.Bin(trace.OpAdd, ConstInt(1), ConstInt(2), 5)
	fmul := b.Bin(trace.OpFMul, ConstFloat(2), ConstFloat(3), 5)
	cmp := b.Cmp(CmpLE, add, ConstInt(9), 6)
	fcv := b.SIToFP(add, 6)
	icv := b.FPToSI(fmul, 6)
	call := b.Call(callee, []Value{fcv}, 7)
	bi := b.CallBuiltin("sqrt", F64, []Value{call}, 7)
	b.CallBuiltin("print", Void, []Value{bi, icv}, 8)
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	b.CondBr(cmp, then, els, 9)
	b.SetBlock(then)
	b.Ret(ConstInt(0), 10)
	b.SetBlock(els)
	b.Br(then, 11)

	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	s := m.String()
	for _, want := range []string{
		"global %gv", "alloca f64", "alloca [4 x f64]", "load f64",
		"store 2.5", "getelementptr", "bitcast", "icmp le",
		"sitofp", "fptosi", "call f64 @callee", "call f64 @sqrt",
		"call void @print", "br %", "br label", "ret 0",
		"; line 7",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q\n%s", want, s)
		}
	}
}

func TestConstPrinting(t *testing.T) {
	if got := ConstInt(-3).String(); got != "-3" {
		t.Errorf("ConstInt = %q", got)
	}
	if got := ConstFloat(2).String(); got != "2.0" {
		t.Errorf("ConstFloat = %q (needs float marker)", got)
	}
}

func TestVerifyMoreErrorCases(t *testing.T) {
	mk := func(build func(b *Builder, f *Function)) error {
		f := NewFunction("g", Void)
		b := NewBuilder(f)
		build(b, f)
		if b.Cur.Terminator() == nil {
			b.Ret(nil, 1)
		}
		return f.Verify()
	}
	// Load from non-pointer.
	if err := mk(func(b *Builder, f *Function) {
		in := &Instr{Op: trace.OpLoad, Typ: I64, Args: []Value{ConstInt(1)}, Line: 1}
		f.Number(in)
		b.Cur.Append(in)
	}); err == nil {
		t.Error("load from non-pointer verified")
	}
	// GEP with no indices.
	if err := mk(func(b *Builder, f *Function) {
		slot := b.Alloca("x", I64, 1)
		in := &Instr{Op: trace.OpGetElementPtr, Typ: Ptr(I64), Args: []Value{slot}, Line: 1}
		f.Number(in)
		b.Cur.Append(in)
	}); err == nil {
		t.Error("gep without indices verified")
	}
	// Integer arithmetic with float result type.
	if err := mk(func(b *Builder, f *Function) {
		in := &Instr{Op: trace.OpAdd, Typ: F64, Args: []Value{ConstInt(1), ConstInt(2)}, Line: 1}
		f.Number(in)
		b.Cur.Append(in)
	}); err == nil {
		t.Error("int add with f64 result verified")
	}
	// Float arithmetic with int result type.
	if err := mk(func(b *Builder, f *Function) {
		in := &Instr{Op: trace.OpFMul, Typ: I64, Args: []Value{ConstFloat(1), ConstFloat(2)}, Line: 1}
		f.Number(in)
		b.Cur.Append(in)
	}); err == nil {
		t.Error("fmul with i64 result verified")
	}
	// Conditional branch without condition.
	if err := mk(func(b *Builder, f *Function) {
		t1 := f.NewBlock("a")
		t2 := f.NewBlock("b")
		in := &Instr{Op: trace.OpBr, Succs: []*Block{t1, t2}, Line: 1}
		b.Cur.Append(in)
		b.SetBlock(t1)
		b.Ret(nil, 1)
		b.SetBlock(t2)
		b.Ret(nil, 1)
	}); err == nil {
		t.Error("condbr without condition verified")
	}
	// Unknown opcode.
	if err := mk(func(b *Builder, f *Function) {
		in := &Instr{Op: 999, Typ: I64, Line: 1}
		f.Number(in)
		b.Cur.Append(in)
	}); err == nil {
		t.Error("unknown opcode verified")
	}
}

func TestBuilderPanics(t *testing.T) {
	f := NewFunction("g", Void)
	b := NewBuilder(f)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("load from scalar", func() { b.Load(ConstInt(1), 1) })
	expectPanic("gep on scalar base", func() { b.GEP(ConstInt(1), 1, ConstInt(0)) })
	slot := b.Alloca("x", I64, 1)
	expectPanic("gep descend into scalar", func() { b.GEP(slot, 1, ConstInt(0), ConstInt(1)) })
	expectPanic("gep without indices", func() { b.GEP(slot, 1) })
}

func TestParamAndGlobalValueInterfaces(t *testing.T) {
	p := &Param{Name: "p", Typ: Ptr(F64)}
	if p.ValueName() != "p" || p.Type().String() != "f64*" {
		t.Errorf("param = %s %s", p.ValueName(), p.Type())
	}
	g := &Global{Name: "g", Elem: I64}
	if g.ValueName() != "g" || g.Type().String() != "i64*" {
		t.Errorf("global = %s %s", g.ValueName(), g.Type())
	}
	c := ConstInt(4)
	if c.ValueName() != "" {
		t.Errorf("const name = %q, want empty", c.ValueName())
	}
}

func TestProducerClassification(t *testing.T) {
	cases := []struct {
		in   *Instr
		want bool
	}{
		{&Instr{Op: trace.OpStore}, false},
		{&Instr{Op: trace.OpBr}, false},
		{&Instr{Op: trace.OpRet}, false},
		{&Instr{Op: trace.OpCall, Typ: Void}, false},
		{&Instr{Op: trace.OpCall, Typ: F64}, true},
		{&Instr{Op: trace.OpLoad, Typ: I64}, true},
		{&Instr{Op: trace.OpAlloca, Typ: Ptr(I64)}, true},
	}
	for _, c := range cases {
		if got := c.in.Producer(); got != c.want {
			t.Errorf("Producer(%s) = %v, want %v", trace.OpcodeName(c.in.Op), got, c.want)
		}
	}
}

package ir

import (
	"fmt"

	"autocheck/internal/trace"
)

// Builder incrementally constructs a function, appending instructions at a
// current insertion block and handling register numbering.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block.
func NewBuilder(f *Function) *Builder {
	b := &Builder{Fn: f}
	b.Cur = f.NewBlock("entry")
	return b
}

// SetBlock moves the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// emit numbers and appends an instruction at the insertion point.
func (b *Builder) emit(in *Instr) *Instr {
	b.Fn.Number(in)
	b.Cur.Append(in)
	return in
}

// Alloca allocates stack storage for a named source variable.
func (b *Builder) Alloca(name string, elem Type, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpAlloca, Typ: Ptr(elem), AllocElem: elem, Name: name, Line: line})
}

// Load reads through a pointer.
func (b *Builder) Load(ptr Value, line int) *Instr {
	pe := Pointee(ptr.Type())
	if pe == nil {
		panic(fmt.Sprintf("ir: load from non-pointer %s", ptr.Type()))
	}
	return b.emit(&Instr{Op: trace.OpLoad, Typ: pe, Args: []Value{ptr}, Line: line})
}

// Store writes a value through a pointer.
func (b *Builder) Store(val, ptr Value, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpStore, Args: []Value{val, ptr}, Line: line})
}

// GEP computes the address of an element with LLVM semantics: the first
// index performs pointer arithmetic over the base's pointee type, and each
// subsequent index descends one array level.
func (b *Builder) GEP(base Value, line int, indices ...Value) *Instr {
	if len(indices) == 0 {
		panic("ir: gep needs at least one index")
	}
	t := Pointee(base.Type())
	if t == nil {
		panic(fmt.Sprintf("ir: gep base must be a pointer, got %s", base.Type()))
	}
	for range indices[1:] {
		a, ok := t.(ArrayType)
		if !ok {
			panic(fmt.Sprintf("ir: gep index into non-array %s", t))
		}
		t = a.Elem
	}
	args := append([]Value{base}, indices...)
	return b.emit(&Instr{Op: trace.OpGetElementPtr, Typ: Ptr(t), Args: args, Line: line})
}

// BitCast reinterprets a pointer as another pointer type (used for
// array-to-pointer decay at call sites, which keeps the BitCast path of
// the paper's Table I exercised).
func (b *Builder) BitCast(v Value, to Type, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpBitCast, Typ: to, Args: []Value{v}, Line: line})
}

// Bin emits a binary arithmetic instruction with the given trace opcode.
func (b *Builder) Bin(op int, x, y Value, line int) *Instr {
	var t Type = I64
	switch op {
	case trace.OpFAdd, trace.OpFSub, trace.OpFMul, trace.OpFDiv, trace.OpFRem:
		t = F64
	}
	return b.emit(&Instr{Op: op, Typ: t, Args: []Value{x, y}, Line: line})
}

// Cmp emits an integer or float comparison producing i64 0/1.
func (b *Builder) Cmp(pred int, x, y Value, line int) *Instr {
	op := trace.OpICmp
	if IsFloat(x.Type()) {
		op = trace.OpFCmp
	}
	return b.emit(&Instr{Op: op, Typ: I64, Pred: pred, Args: []Value{x, y}, Line: line})
}

// SIToFP converts int to float.
func (b *Builder) SIToFP(v Value, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpSIToFP, Typ: F64, Args: []Value{v}, Line: line})
}

// FPToSI converts float to int.
func (b *Builder) FPToSI(v Value, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpFPToSI, Typ: I64, Args: []Value{v}, Line: line})
}

// Br emits an unconditional branch.
func (b *Builder) Br(dst *Block, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpBr, Succs: []*Block{dst}, Line: line})
}

// CondBr emits a conditional branch on an i64 condition (nonzero = taken).
func (b *Builder) CondBr(cond Value, then, els *Block, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpBr, Args: []Value{cond}, Succs: []*Block{then, els}, Line: line})
}

// Ret emits a return.
func (b *Builder) Ret(v Value, line int) *Instr {
	in := &Instr{Op: trace.OpRet, Line: line}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Call emits a call to a user function.
func (b *Builder) Call(f *Function, args []Value, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpCall, Typ: f.Ret, Callee: f, Args: args, Line: line})
}

// CallBuiltin emits a call to a runtime builtin (print, sqrt, ...). These
// appear in the trace as the single-'Call'-instruction form of Fig. 6(a).
func (b *Builder) CallBuiltin(name string, ret Type, args []Value, line int) *Instr {
	return b.emit(&Instr{Op: trace.OpCall, Typ: ret, Builtin: name, Args: args, Line: line})
}

// Terminated reports whether the current block already ends in a
// terminator (so no fall-through branch is needed).
func (b *Builder) Terminated() bool {
	return b.Cur.Terminator() != nil
}

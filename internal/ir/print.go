package ir

import (
	"fmt"
	"strings"

	"autocheck/internal/trace"
)

// operandString renders a value reference for the printer.
func operandString(v Value) string {
	switch x := v.(type) {
	case *Const:
		return x.String()
	case nil:
		return "<nil>"
	default:
		return "%" + v.ValueName()
	}
}

// String renders an instruction in a compact LLVM-like syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Producer() {
		fmt.Fprintf(&b, "%%%s = ", in.ValueName())
	}
	switch in.Op {
	case trace.OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.AllocElem)
	case trace.OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Type(), operandString(in.Args[0]))
	case trace.OpStore:
		fmt.Fprintf(&b, "store %s, %s", operandString(in.Args[0]), operandString(in.Args[1]))
	case trace.OpGetElementPtr:
		fmt.Fprintf(&b, "getelementptr %s", operandString(in.Args[0]))
		for _, ix := range in.Args[1:] {
			fmt.Fprintf(&b, ", %s", operandString(ix))
		}
	case trace.OpBitCast:
		fmt.Fprintf(&b, "bitcast %s to %s", operandString(in.Args[0]), in.Type())
	case trace.OpICmp, trace.OpFCmp:
		fmt.Fprintf(&b, "%s %s %s, %s", strings.ToLower(trace.OpcodeName(in.Op)),
			PredName(in.Pred), operandString(in.Args[0]), operandString(in.Args[1]))
	case trace.OpBr:
		if len(in.Args) == 1 {
			fmt.Fprintf(&b, "br %s, label %%%s, label %%%s",
				operandString(in.Args[0]), in.Succs[0].Name, in.Succs[1].Name)
		} else {
			fmt.Fprintf(&b, "br label %%%s", in.Succs[0].Name)
		}
	case trace.OpRet:
		if len(in.Args) == 1 {
			fmt.Fprintf(&b, "ret %s", operandString(in.Args[0]))
		} else {
			b.WriteString("ret void")
		}
	case trace.OpCall:
		name := in.Builtin
		if in.Callee != nil {
			name = in.Callee.Name
		}
		fmt.Fprintf(&b, "call %s @%s(", in.Type(), name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operandString(a))
		}
		b.WriteByte(')')
	case trace.OpSIToFP, trace.OpFPToSI:
		fmt.Fprintf(&b, "%s %s to %s", strings.ToLower(trace.OpcodeName(in.Op)),
			operandString(in.Args[0]), in.Type())
	default:
		fmt.Fprintf(&b, "%s", strings.ToLower(trace.OpcodeName(in.Op)))
		for i, a := range in.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %s", operandString(a))
		}
	}
	if in.Line >= 0 {
		fmt.Fprintf(&b, "  ; line %d", in.Line)
	}
	return b.String()
}

// String renders the function body.
func (f *Function) String() string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Typ, p.Name)
	}
	fmt.Fprintf(&b, "func %s @%s(%s) {\n", f.Ret, f.Name, strings.Join(params, ", "))
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole module.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %%%s : %s\n", g.Name, g.Elem)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

package ir

import (
	"fmt"

	"autocheck/internal/trace"
)

// Verify checks structural well-formedness of a module: every block ends in
// exactly one terminator, operand counts and types match instruction
// layouts, register IDs are unique per function, and calls resolve.
// The interpreter and lowering rely on these invariants.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("ir: function %s: %w", f.Name, err)
		}
	}
	return nil
}

// Verify checks one function.
func (f *Function) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	seen := make(map[int]bool)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name)
		}
		for i, in := range b.Instrs {
			if in.Parent != b {
				return fmt.Errorf("block %s instr %d has wrong parent", b.Name, i)
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %s: terminator placement at instr %d (%s)", b.Name, i, in)
			}
			if in.Producer() {
				if in.ID == 0 {
					return fmt.Errorf("block %s: unnumbered producer %s", b.Name, in)
				}
				if seen[in.ID] {
					return fmt.Errorf("block %s: duplicate register id %d", b.Name, in.ID)
				}
				seen[in.ID] = true
			}
			if err := verifyInstr(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name, in, err)
			}
		}
	}
	return nil
}

func verifyInstr(in *Instr) error {
	argn := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d args, have %d", n, len(in.Args))
		}
		return nil
	}
	switch in.Op {
	case trace.OpAlloca:
		if in.AllocElem == nil {
			return fmt.Errorf("alloca without element type")
		}
		if !IsPtr(in.Type()) {
			return fmt.Errorf("alloca result must be pointer, got %s", in.Type())
		}
	case trace.OpLoad:
		if err := argn(1); err != nil {
			return err
		}
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("load from non-pointer %s", in.Args[0].Type())
		}
	case trace.OpStore:
		if err := argn(2); err != nil {
			return err
		}
		if !IsPtr(in.Args[1].Type()) {
			return fmt.Errorf("store to non-pointer %s", in.Args[1].Type())
		}
	case trace.OpGetElementPtr:
		if len(in.Args) < 2 {
			return fmt.Errorf("gep needs base and at least one index")
		}
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("gep base must be pointer, got %s", in.Args[0].Type())
		}
		if !IsPtr(in.Type()) {
			return fmt.Errorf("gep result must be pointer")
		}
	case trace.OpBitCast:
		if err := argn(1); err != nil {
			return err
		}
	case trace.OpAdd, trace.OpSub, trace.OpMul, trace.OpSDiv, trace.OpUDiv, trace.OpSRem, trace.OpURem:
		if err := argn(2); err != nil {
			return err
		}
		if !IsInt(in.Type()) {
			return fmt.Errorf("integer arithmetic with result %s", in.Type())
		}
	case trace.OpFAdd, trace.OpFSub, trace.OpFMul, trace.OpFDiv, trace.OpFRem:
		if err := argn(2); err != nil {
			return err
		}
		if !IsFloat(in.Type()) {
			return fmt.Errorf("float arithmetic with result %s", in.Type())
		}
	case trace.OpICmp, trace.OpFCmp:
		if err := argn(2); err != nil {
			return err
		}
	case trace.OpSIToFP:
		if err := argn(1); err != nil {
			return err
		}
		if !IsFloat(in.Type()) {
			return fmt.Errorf("sitofp result %s", in.Type())
		}
	case trace.OpFPToSI:
		if err := argn(1); err != nil {
			return err
		}
		if !IsInt(in.Type()) {
			return fmt.Errorf("fptosi result %s", in.Type())
		}
	case trace.OpBr:
		switch len(in.Succs) {
		case 1:
			if len(in.Args) != 0 {
				return fmt.Errorf("unconditional br with condition")
			}
		case 2:
			if len(in.Args) != 1 {
				return fmt.Errorf("conditional br needs a condition")
			}
		default:
			return fmt.Errorf("br with %d successors", len(in.Succs))
		}
	case trace.OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret with %d values", len(in.Args))
		}
	case trace.OpCall:
		if in.Callee == nil && in.Builtin == "" {
			return fmt.Errorf("call without callee")
		}
		if in.Callee != nil && len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call to %s with %d args, want %d",
				in.Callee.Name, len(in.Args), len(in.Callee.Params))
		}
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}

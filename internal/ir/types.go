// Package ir defines the intermediate representation that the mini-C
// frontend lowers to and that the tracing interpreter executes. It is
// shaped after the slice of LLVM 3.4 IR that LLVM-Tracer observes and the
// AutoCheck paper analyzes (Table I): stack allocation with Alloca,
// memory access with Load/Store/GetElementPtr/BitCast, the Add..FDiv
// arithmetic family, comparisons, branches, and the two Call forms.
//
// Instructions use the LLVM 3.4 opcode numbering from the trace package,
// so the dynamic trace can carry them verbatim. Temporary registers are
// numbered per function; named instructions (allocas for source variables)
// carry the source name, mirroring how LLVM-Tracer prints '%p' for a
// variable and '%8' for a temporary.
package ir

import (
	"fmt"
	"strings"
)

// Type is the type of an IR value. Scalars are 8 bytes (i64 and f64),
// which matches the 64-bit operand sizes the paper's traces show.
type Type interface {
	String() string
	Size() int64 // size in bytes of one value of this type
}

// IntType is a 64-bit signed integer.
type IntType struct{}

// FloatType is a 64-bit IEEE float.
type FloatType struct{}

// VoidType is the type of functions that return nothing.
type VoidType struct{}

// PtrType is a pointer to Elem.
type PtrType struct{ Elem Type }

// ArrayType is a fixed-size array of Len elements of Elem. Multi-dimensional
// arrays nest (e.g. [10 x [10 x f64]]).
type ArrayType struct {
	Elem Type
	Len  int64
}

func (IntType) String() string   { return "i64" }
func (FloatType) String() string { return "f64" }
func (VoidType) String() string  { return "void" }
func (t PtrType) String() string { return t.Elem.String() + "*" }
func (t ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem.String())
}

func (IntType) Size() int64   { return 8 }
func (FloatType) Size() int64 { return 8 }
func (VoidType) Size() int64  { return 0 }
func (PtrType) Size() int64   { return 8 }
func (t ArrayType) Size() int64 {
	return t.Len * t.Elem.Size()
}

// Convenience singletons.
var (
	I64  = IntType{}
	F64  = FloatType{}
	Void = VoidType{}
)

// Ptr returns a pointer type to elem.
func Ptr(elem Type) Type { return PtrType{Elem: elem} }

// Array returns an n-element array of elem.
func Array(elem Type, n int64) Type { return ArrayType{Elem: elem, Len: n} }

// IsFloat reports whether t is the floating-point scalar type.
func IsFloat(t Type) bool { _, ok := t.(FloatType); return ok }

// IsInt reports whether t is the integer scalar type.
func IsInt(t Type) bool { _, ok := t.(IntType); return ok }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool { _, ok := t.(PtrType); return ok }

// IsArray reports whether t is an array type.
func IsArray(t Type) bool { _, ok := t.(ArrayType); return ok }

// IsVoid reports whether t is void.
func IsVoid(t Type) bool { _, ok := t.(VoidType); return ok }

// Pointee returns the element type of a pointer, or nil.
func Pointee(t Type) Type {
	if p, ok := t.(PtrType); ok {
		return p.Elem
	}
	return nil
}

// ElemType returns the element type of an array, or nil.
func ElemType(t Type) Type {
	if a, ok := t.(ArrayType); ok {
		return a.Elem
	}
	return nil
}

// ScalarBase returns the ultimate scalar element type of a (possibly
// nested) array or scalar type.
func ScalarBase(t Type) Type {
	for {
		a, ok := t.(ArrayType)
		if !ok {
			return t
		}
		t = a.Elem
	}
}

// TypeEqual reports structural type equality.
func TypeEqual(a, b Type) bool {
	switch at := a.(type) {
	case IntType:
		return IsInt(b)
	case FloatType:
		return IsFloat(b)
	case VoidType:
		return IsVoid(b)
	case PtrType:
		bt, ok := b.(PtrType)
		return ok && TypeEqual(at.Elem, bt.Elem)
	case ArrayType:
		bt, ok := b.(ArrayType)
		return ok && at.Len == bt.Len && TypeEqual(at.Elem, bt.Elem)
	}
	return false
}

// FormatTypeList renders a parameter type list for diagnostics.
func FormatTypeList(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

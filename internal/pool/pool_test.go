package pool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		n := 57
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(0, 4, func(i int) { ran = true })
	ForEach(-3, 4, func(i int) { ran = true })
	if ran {
		t.Error("fn ran for empty range")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	var inFlight, peak int32
	ForEach(64, 2, func(i int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > 2 {
		t.Errorf("observed %d concurrent calls, want <= 2", peak)
	}
}

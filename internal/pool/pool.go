// Package pool provides the bounded-index worker pool shared by the
// parallel analysis paths (core.AnalyzeMany, harness.RunTable2Parallel).
// Keeping the pattern in one place means panic-safety, cancellation, or
// sizing fixes land everywhere at once.
package pool

import (
	"runtime"
	"sync"
)

// Resolve returns the worker count ForEach and ForEachWorker will
// actually use for n items: workers, defaulted to GOMAXPROCS when <= 0
// and capped at n. Callers sizing per-worker state allocate exactly
// Resolve(n, workers) slots.
func Resolve(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns once every call has
// finished. Indices are handed out in order but may complete in any
// order; fn typically writes into its own slot of pre-sized result
// slices and needs no further synchronization for that.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn additionally receives
// the stable index (in [0, Resolve(n, workers))) of the goroutine running
// it. Calls with the same worker index never overlap, which is what lets
// fn reuse per-worker scratch state without synchronization.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = Resolve(n, workers)
	if workers == 0 {
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Package pool provides the bounded-index worker pool shared by the
// parallel analysis paths (core.AnalyzeMany, harness.RunTable2Parallel).
// Keeping the pattern in one place means panic-safety, cancellation, or
// sizing fixes land everywhere at once.
package pool

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns once every call has
// finished. Indices are handed out in order but may complete in any
// order; fn typically writes into its own slot of pre-sized result
// slices and needs no further synchronization for that.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

package faultinject

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Hit("store.put"); err != nil {
		t.Fatalf("nil registry Hit: %v", err)
	}
	blob := []byte{1, 2, 3}
	out, err := r.HitBlob("store.put", blob)
	if err != nil || !reflect.DeepEqual(out, blob) {
		t.Fatalf("nil registry HitBlob: %v %v", out, err)
	}
	if r.Fired() != 0 || r.Events() != nil || r.Schedule() != "" || r.Seed() != 0 {
		t.Fatal("nil registry should report empty state")
	}
	r.DisarmAll() // must not panic
}

func TestNthTrigger(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionError, Nth: 3})
	for i := 1; i <= 5; i++ {
		err := r.Hit("s")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Site != "s" || inj.Hit != 3 {
				t.Fatalf("bad injected error: %+v", err)
			}
		}
	}
	if got := r.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

func TestEveryKTrigger(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionError, EveryK: 2})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r.Hit("s") != nil {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{2, 4, 6}) {
		t.Fatalf("every=2 fired on %v", fired)
	}
}

func TestFromTrigger(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionError, From: 3})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r.Hit("s") != nil {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{3, 4, 5, 6}) {
		t.Fatalf("from=3 fired on %v", fired)
	}
}

func TestOneShotDisarmsAfterFirstFire(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionError, EveryK: 2, OneShot: true})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r.Hit("s") != nil {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{2}) {
		t.Fatalf("one-shot every=2 fired on %v", fired)
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.Arm(Failpoint{Site: "s", Action: ActionError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Hit("s") != nil
		}
		return out
	}
	if !reflect.DeepEqual(pattern(7), pattern(7)) {
		t.Fatal("same seed produced different firing patterns")
	}
	if reflect.DeepEqual(pattern(7), pattern(8)) {
		t.Fatal("different seeds produced identical firing patterns (suspicious)")
	}
	fires := 0
	for _, f := range pattern(7) {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == 64 {
		t.Fatalf("p=0.5 fired %d/64 times", fires)
	}
}

func TestProbabilityIndependentOfOtherSites(t *testing.T) {
	// The per-failpoint generator must not be perturbed by hits on other
	// sites, or a schedule would not replay when the workload changes
	// shape elsewhere.
	run := func(noise bool) []bool {
		r := NewRegistry(42)
		r.Arm(Failpoint{Site: "a", Action: ActionError, Prob: 0.4})
		r.Arm(Failpoint{Site: "b", Action: ActionError, Prob: 0.9})
		out := make([]bool, 32)
		for i := range out {
			if noise {
				r.Hit("b")
			}
			out[i] = r.Hit("a") != nil
		}
		return out
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("site a's firing pattern changed when site b was hit in between")
	}
}

func TestTornWriteTruncatesDeterministically(t *testing.T) {
	blob := make([]byte, 100)
	for i := range blob {
		blob[i] = byte(i)
	}
	torn := func(seed int64) []byte {
		r := NewRegistry(seed)
		r.Arm(Failpoint{Site: "s", Action: ActionTorn, Nth: 1})
		out, err := r.HitBlob("s", blob)
		if !IsTorn(err) {
			t.Fatalf("expected torn error, got %v", err)
		}
		return out
	}
	a, b := torn(3), torn(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different torn blobs")
	}
	if len(a) == 0 || len(a) >= len(blob) {
		t.Fatalf("torn blob has %d bytes of %d", len(a), len(blob))
	}
	if !reflect.DeepEqual(a, blob[:len(a)]) {
		t.Fatal("torn blob is not a prefix of the original")
	}
	// The original must be untouched (sites may retry with it).
	for i := range blob {
		if blob[i] != byte(i) {
			t.Fatal("HitBlob mutated the caller's blob")
		}
	}
}

func TestCrashPanicsWithTypedValue(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionCrash, Nth: 1})
	defer func() {
		c, ok := AsCrash(recover())
		if !ok {
			t.Fatalf("expected *Crash panic, got %v", c)
		}
		if c.Site != "s" || c.Hit != 1 {
			t.Fatalf("bad crash value: %+v", c)
		}
		if c.Error() == "" {
			t.Fatal("Crash must describe itself as an error")
		}
	}()
	r.Hit("s")
	t.Fatal("crash failpoint did not panic")
}

func TestDelayActionSleepsAndProceeds(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionDelay, Nth: 1, Delay: 5 * time.Millisecond})
	t0 := time.Now()
	if err := r.Hit("s"); err != nil {
		t.Fatalf("delay action returned error: %v", err)
	}
	if d := time.Since(t0); d < 5*time.Millisecond {
		t.Fatalf("delay action slept only %v", d)
	}
}

func TestDropActionIsDistinguishable(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Failpoint{Site: "s", Action: ActionDrop, Nth: 1})
	err := r.Hit("s")
	if a, ok := ActionOf(err); !ok || a != ActionDrop {
		t.Fatalf("ActionOf(%v) = %v %v", err, a, ok)
	}
	if IsTorn(err) {
		t.Fatal("drop mistaken for torn")
	}
}

func TestParseAndStringRoundTrip(t *testing.T) {
	specs := []string{
		"store.put=torn@nth=3",
		"store.get=error@every=2",
		"server.request=error@p=0.3",
		"async.writer=crash@nth=1@oneshot",
		"remote.do=drop",
		"store.put=delay@every=4@delay=2ms",
		"store.replicated.r1.put=error@from=5",
	}
	for _, spec := range specs {
		fp, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := fp.String(); got != spec {
			t.Fatalf("round trip %q -> %q", spec, got)
		}
	}
	sched := "store.put=torn@nth=3;server.request=error@p=0.25"
	fps, err := ParseSchedule(sched + ";")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if got := FormatSchedule(fps); got != sched {
		t.Fatalf("schedule round trip %q -> %q", sched, got)
	}
	for _, bad := range []string{"noaction", "s=explode", "s=error@nth=1@every=2", "s=error@p=1.5", "s=error@wat=1", "s=error@nth=1@from=2", "s=error@from=-1"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestRegistryScheduleAndReplay(t *testing.T) {
	r := NewRegistry(9)
	if err := r.ArmSchedule("a=error@nth=2;b=torn@nth=1"); err != nil {
		t.Fatal(err)
	}
	if got := r.Schedule(); got != "a=error@nth=2;b=torn@nth=1" {
		t.Fatalf("Schedule() = %q", got)
	}
	run := func() []Event {
		r2 := NewRegistry(9)
		if err := r2.ArmSchedule(r.Schedule()); err != nil {
			t.Fatal(err)
		}
		r2.Hit("a")
		r2.HitBlob("b", []byte{1, 2, 3, 4})
		r2.Hit("a")
		return r2.Events()
	}
	want := []Event{{Site: "b", Action: ActionTorn, Hit: 1}, {Site: "a", Action: ActionError, Hit: 2}}
	if got := run(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed events = %v, want %v", got, want)
	}
	r.DisarmAll()
	if r.Schedule() != "" {
		t.Fatal("DisarmAll left failpoints armed")
	}
	if err := r.Hit("a"); err != nil {
		t.Fatalf("disarmed site still fires: %v", err)
	}
}

func TestUnarmedSitesDoNotCountHits(t *testing.T) {
	// Hit counters only advance while at least one failpoint is armed at
	// the site, so "nth=3" means the 3rd hit after arming regardless of
	// earlier traffic — that is what makes a printed schedule replayable.
	r := NewRegistry(1)
	for i := 0; i < 10; i++ {
		r.Hit("s")
	}
	r.Arm(Failpoint{Site: "s", Action: ActionError, Nth: 1})
	if err := r.Hit("s"); err == nil {
		t.Fatal("nth=1 did not fire on the first post-arm hit")
	}
}

func TestEventStringMentionsSiteAndHit(t *testing.T) {
	e := Event{Site: "store.put", Action: ActionTorn, Hit: 4}
	if got, want := e.String(), "store.put=torn@hit=4"; got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
	if fmt.Sprint(ActionCrash) != "crash" {
		t.Fatal("Action.String broken")
	}
}

// Package faultinject is a deterministic, seedable failpoint framework
// for the checkpoint stack. Code that touches durability declares named
// sites ("store.put", "async.writer", "server.request", ...) and asks an
// optional *Registry whether a fault is armed there; a nil registry
// evaluates to a nil check and the site costs nothing, so production hot
// paths are unchanged when no faults are configured.
//
// A Registry is armed with Failpoints: a site name, a trigger policy
// (fire on the Nth hit, every Kth hit, with seeded probability, one-shot)
// and an action (return an injected error, persist a torn write, crash
// the goroutine with a panic, delay, or drop the response). All
// randomness — probability triggers and torn-write cut points — comes
// from per-failpoint generators derived from the registry seed, so a
// schedule replays identically from (seed, schedule spec) regardless of
// which other sites fire in between. The registry records every fired
// event; a chaos sweep failure prints its seed and schedule and is
// reproduced exactly by arming the same spec on a registry with the same
// seed.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Action is what a triggered failpoint does.
type Action int

// Actions.
const (
	// ActionError makes the site return an injected error without
	// performing its operation.
	ActionError Action = iota
	// ActionTorn makes a blob-carrying write site persist a truncated
	// copy of its payload and then fail — the torn object stays on the
	// medium for the read path's CRC framing to catch.
	ActionTorn
	// ActionCrash panics with *Crash, killing the goroutine mid-site the
	// way a fail-stop process death would. Harnesses recover the panic
	// and treat it as the process boundary.
	ActionCrash
	// ActionDelay sleeps for the failpoint's Delay and then lets the
	// operation proceed (slow media, slow networks, widened race
	// windows).
	ActionDelay
	// ActionDrop tells the site to skip its operation and swallow the
	// response entirely — a server aborts the connection without
	// answering (and without touching its backend), so the client sees
	// a network error and retries. It models a request lost on the
	// wire, not a committed-but-unacknowledged write; use ActionCrash at
	// a post-commit site (e.g. "ckpt.committed") for that window.
	ActionDrop
)

var actionNames = map[Action]string{
	ActionError: "error",
	ActionTorn:  "torn",
	ActionCrash: "crash",
	ActionDelay: "delay",
	ActionDrop:  "drop",
}

func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ParseAction parses an action name as used in failpoint specs.
func ParseAction(s string) (Action, error) {
	for a, name := range actionNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown action %q (want error, torn, crash, delay, or drop)", s)
}

// DefaultDelay is the sleep of an ActionDelay failpoint that does not
// set one explicitly.
const DefaultDelay = 2 * time.Millisecond

// ErrInjected is the sentinel every injected error wraps;
// errors.Is(err, ErrInjected) distinguishes injected failures from real
// ones.
var ErrInjected = errors.New("faultinject: injected failure")

// InjectedError is the error returned by a fired ActionError, ActionTorn
// or ActionDrop failpoint. It wraps ErrInjected.
type InjectedError struct {
	Site   string
	Action Action
	Hit    int // 1-based hit count of the site when the failpoint fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s at %s (hit %d)", e.Action, e.Site, e.Hit)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// ActionOf reports the action of an injected error, if err is one.
func ActionOf(err error) (Action, bool) {
	var inj *InjectedError
	if errors.As(err, &inj) {
		return inj.Action, true
	}
	return 0, false
}

// IsTorn reports whether err is an injected torn-write failure — the one
// action whose site must still persist (the mutated blob) before
// returning the error.
func IsTorn(err error) bool {
	a, ok := ActionOf(err)
	return ok && a == ActionTorn
}

// Crash is the panic value of a fired ActionCrash failpoint. It
// implements error so recovered crashes convert cleanly.
type Crash struct {
	Site string
	Hit  int
}

func (c *Crash) Error() string {
	return fmt.Sprintf("faultinject: crash at %s (hit %d)", c.Site, c.Hit)
}

// AsCrash reports whether a recover() value is an injected crash.
func AsCrash(v any) (*Crash, bool) {
	c, ok := v.(*Crash)
	return c, ok
}

// Failpoint is one armed fault: where, when, and what.
type Failpoint struct {
	Site   string
	Action Action

	// Trigger policy. At most one of Nth / EveryK / Prob / From is set;
	// none set means "every hit". OneShot composes with any of them: the
	// failpoint disarms after its first firing.
	Nth     int     // fire on exactly the Nth hit of the site (1-based)
	EveryK  int     // fire on every Kth hit
	Prob    float64 // fire with this probability, from the seeded generator
	From    int     // fire on every hit from the Nth onward (node dead from then on)
	OneShot bool

	Delay time.Duration // ActionDelay sleep (0 = DefaultDelay)
}

// String renders the failpoint in the spec syntax Parse accepts.
func (f Failpoint) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s", f.Site, f.Action)
	switch {
	case f.Nth > 0:
		fmt.Fprintf(&b, "@nth=%d", f.Nth)
	case f.EveryK > 0:
		fmt.Fprintf(&b, "@every=%d", f.EveryK)
	case f.Prob > 0:
		fmt.Fprintf(&b, "@p=%g", f.Prob)
	case f.From > 0:
		fmt.Fprintf(&b, "@from=%d", f.From)
	}
	if f.OneShot {
		b.WriteString("@oneshot")
	}
	if f.Action == ActionDelay && f.Delay > 0 {
		fmt.Fprintf(&b, "@delay=%s", f.Delay)
	}
	return b.String()
}

// Parse parses one failpoint spec:
//
//	<site>=<action>[@nth=N | @every=K | @p=0.25 | @from=N][@oneshot][@delay=5ms]
//
// e.g. "store.put=torn@nth=3" or "server.request=error@p=0.3".
// @from=N fires on every hit from the Nth onward — a node that dies at
// hit N and stays dead, where @nth models a single transient fault.
func Parse(spec string) (Failpoint, error) {
	spec = strings.TrimSpace(spec)
	site, rest, ok := strings.Cut(spec, "=")
	if !ok || site == "" {
		return Failpoint{}, fmt.Errorf("faultinject: spec %q: want <site>=<action>[@trigger]", spec)
	}
	parts := strings.Split(rest, "@")
	action, err := ParseAction(parts[0])
	if err != nil {
		return Failpoint{}, fmt.Errorf("faultinject: spec %q: %w", spec, err)
	}
	fp := Failpoint{Site: site, Action: action}
	triggers := 0
	for _, mod := range parts[1:] {
		key, val, _ := strings.Cut(mod, "=")
		switch key {
		case "nth":
			fp.Nth, err = strconv.Atoi(val)
			triggers++
		case "every":
			fp.EveryK, err = strconv.Atoi(val)
			triggers++
		case "p":
			fp.Prob, err = strconv.ParseFloat(val, 64)
			triggers++
		case "from":
			fp.From, err = strconv.Atoi(val)
			triggers++
		case "oneshot":
			fp.OneShot = true
		case "delay":
			fp.Delay, err = time.ParseDuration(val)
		default:
			return Failpoint{}, fmt.Errorf("faultinject: spec %q: unknown modifier %q", spec, mod)
		}
		if err != nil {
			return Failpoint{}, fmt.Errorf("faultinject: spec %q: modifier %q: %w", spec, mod, err)
		}
	}
	if triggers > 1 {
		return Failpoint{}, fmt.Errorf("faultinject: spec %q: at most one of nth/every/p/from", spec)
	}
	if fp.Nth < 0 || fp.EveryK < 0 || fp.Prob < 0 || fp.Prob > 1 || fp.From < 0 {
		return Failpoint{}, fmt.Errorf("faultinject: spec %q: trigger out of range", spec)
	}
	return fp, nil
}

// ParseSchedule parses a ';'-separated list of failpoint specs (empty
// and whitespace-only items are skipped, so trailing separators are
// harmless).
func ParseSchedule(spec string) ([]Failpoint, error) {
	var fps []Failpoint
	for _, one := range strings.Split(spec, ";") {
		if strings.TrimSpace(one) == "" {
			continue
		}
		fp, err := Parse(one)
		if err != nil {
			return nil, err
		}
		fps = append(fps, fp)
	}
	return fps, nil
}

// FormatSchedule renders failpoints as the spec ParseSchedule accepts.
func FormatSchedule(fps []Failpoint) string {
	specs := make([]string, len(fps))
	for i, fp := range fps {
		specs[i] = fp.String()
	}
	return strings.Join(specs, ";")
}

// Event is one failpoint firing.
type Event struct {
	Site   string
	Action Action
	Hit    int // the site's 1-based hit count at firing time
}

func (e Event) String() string {
	return fmt.Sprintf("%s=%s@hit=%d", e.Site, e.Action, e.Hit)
}

// armed is one failpoint plus its private deterministic generator and
// live state.
type armed struct {
	Failpoint
	rng   *rand.Rand
	fired int
	spent bool // OneShot already fired
}

// Registry is a set of armed failpoints plus the deterministic state
// behind them. All methods are safe for concurrent use and safe on a nil
// receiver (every evaluation on a nil registry is a no-op) — sites hold
// an optional *Registry and call it unconditionally.
type Registry struct {
	seed int64

	mu     sync.Mutex
	points map[string][]*armed
	hits   map[string]int
	events []Event
}

// NewRegistry creates an empty registry whose probability triggers and
// torn-write cut points derive from seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		seed:   seed,
		points: make(map[string][]*armed),
		hits:   make(map[string]int),
	}
}

// Seed returns the registry's seed.
func (r *Registry) Seed() int64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// pointSeed derives a per-failpoint generator seed from the registry
// seed, the site, and the failpoint's arm index, so each armed point's
// random stream is independent of hit interleaving at other sites.
func pointSeed(seed int64, site string, idx int) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return seed ^ int64(h.Sum64()) ^ int64(idx)<<32
}

// Arm adds a failpoint. Multiple failpoints may share a site; they are
// evaluated in arm order and the first that triggers wins the hit.
func (r *Registry) Arm(fp Failpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := &armed{Failpoint: fp}
	a.rng = rand.New(rand.NewSource(pointSeed(r.seed, fp.Site, len(r.points[fp.Site]))))
	r.points[fp.Site] = append(r.points[fp.Site], a)
}

// ArmSchedule parses and arms a ';'-separated schedule spec.
func (r *Registry) ArmSchedule(spec string) error {
	fps, err := ParseSchedule(spec)
	if err != nil {
		return err
	}
	for _, fp := range fps {
		r.Arm(fp)
	}
	return nil
}

// DisarmAll removes every failpoint, keeping hit counters and the event
// log (a recovery phase re-arms its own schedule on the same registry).
func (r *Registry) DisarmAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points = make(map[string][]*armed)
	r.mu.Unlock()
}

// Schedule renders the currently armed failpoints as a replayable spec,
// sites in sorted order, arm order within a site.
func (r *Registry) Schedule() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sites := make([]string, 0, len(r.points))
	for site := range r.points {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var fps []Failpoint
	for _, site := range sites {
		for _, a := range r.points[site] {
			fps = append(fps, a.Failpoint)
		}
	}
	return FormatSchedule(fps)
}

// Events returns a copy of the fired-event log, in firing order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Fired reports how many failpoints have fired so far.
func (r *Registry) Fired() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// evaluate is the shared trigger logic: count the hit, find the first
// armed failpoint that fires, log it. The returned action is applied by
// the caller outside the lock (sleeping or panicking under r.mu would
// serialize every site in the process with the sleeper).
func (r *Registry) evaluate(site string) (*armed, int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	points := r.points[site]
	if len(points) == 0 {
		return nil, 0, false
	}
	r.hits[site]++
	hit := r.hits[site]
	for _, a := range points {
		if a.spent {
			continue
		}
		fire := false
		switch {
		case a.Nth > 0:
			fire = hit == a.Nth
		case a.EveryK > 0:
			fire = hit%a.EveryK == 0
		case a.Prob > 0:
			fire = a.rng.Float64() < a.Prob
		case a.From > 0:
			fire = hit >= a.From
		default:
			fire = true
		}
		if !fire {
			continue
		}
		a.fired++
		if a.OneShot {
			a.spent = true
		}
		r.events = append(r.events, Event{Site: site, Action: a.Action, Hit: hit})
		return a, hit, true
	}
	return nil, 0, false
}

// tornCut draws the deterministic truncation point for a torn write of
// an n-byte blob from the fired failpoint's private generator: anywhere
// from one byte to all-but-one, so both near-empty and nearly-complete
// torn objects occur across a sweep.
func (r *Registry) tornCut(a *armed, n int) int {
	if n <= 1 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return 1 + a.rng.Intn(n-1)
}

// Hit evaluates the site. It returns nil (proceed), sleeps and returns
// nil (ActionDelay), returns an *InjectedError (ActionError, ActionTorn,
// ActionDrop — the caller interprets torn/drop), or panics with *Crash
// (ActionCrash). Safe and free on a nil registry.
func (r *Registry) Hit(site string) error {
	if r == nil {
		return nil
	}
	a, hit, fired := r.evaluate(site)
	if !fired {
		return nil
	}
	switch a.Action {
	case ActionDelay:
		d := a.Delay
		if d <= 0 {
			d = DefaultDelay
		}
		time.Sleep(d)
		return nil
	case ActionCrash:
		panic(&Crash{Site: site, Hit: hit})
	}
	return &InjectedError{Site: site, Action: a.Action, Hit: hit}
}

// HitBlob is Hit for write sites carrying an encoded object. A fired
// torn-write failpoint returns a deterministically truncated copy of
// blob together with the injected error: the site must persist the
// returned blob, then return the error — leaving the torn object on the
// medium for the read path to reject. Every other action behaves exactly
// like Hit, with blob passed through untouched.
func (r *Registry) HitBlob(site string, blob []byte) ([]byte, error) {
	if r == nil {
		return blob, nil
	}
	a, hit, fired := r.evaluate(site)
	if !fired {
		return blob, nil
	}
	switch a.Action {
	case ActionDelay:
		d := a.Delay
		if d <= 0 {
			d = DefaultDelay
		}
		time.Sleep(d)
		return blob, nil
	case ActionCrash:
		panic(&Crash{Site: site, Hit: hit})
	case ActionTorn:
		cut := r.tornCut(a, len(blob))
		return append([]byte(nil), blob[:cut]...), &InjectedError{Site: site, Action: a.Action, Hit: hit}
	}
	return blob, &InjectedError{Site: site, Action: a.Action, Hit: hit}
}

package bsp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
)

// haloSource is an SPMD diffusion kernel: each rank owns u[10] with ghost
// cells at u[0] and u[9], refreshed by barrier exchanges. Ranks initialize
// differently via myrank(). Main loop: lines 8-15.
const haloSource = `
float u[10];
float tmp[10];
int main() {
  int rank = myrank();
  for (int i = 0; i < 10; i++) {
    u[i] = rank * 10 + i;
    tmp[i] = 0.0;
  }
  for (int step = 0; step < 6; step++) {
    for (int i = 1; i < 9; i++) {
      tmp[i] = (u[i - 1] + u[i + 1]) * 0.5;
    }
    for (int i = 1; i < 9; i++) {
      u[i] = u[i] * 0.5 + tmp[i] * 0.5;
    }
  }
  print(rank, u[2], u[7]);
  return 0;
}`

var haloSpec = core.LoopSpec{Function: "main", StartLine: 10, EndLine: 17}

// haloExchanges wires two ranks: rank 0's last interior cell feeds rank
// 1's left ghost and vice versa (an MPI_Sendrecv halo swap).
var haloExchanges = []Exchange{
	{SrcRank: 0, SrcVar: "u", SrcOff: 8, DstRank: 1, DstVar: "u", DstOff: 0, Cells: 1},
	{SrcRank: 1, SrcVar: "u", SrcOff: 1, DstRank: 0, DstVar: "u", DstOff: 9, Cells: 1},
}

func haloWorld(t *testing.T) (*ir.Module, *World) {
	t.Helper()
	mod, err := interp.Compile(haloSource)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(mod, 2, haloSpec, haloExchanges)
	if err != nil {
		t.Fatal(err)
	}
	return mod, w
}

func TestWorldRunsLockstep(t *testing.T) {
	_, w := haloWorld(t)
	var barriers int64
	outs, err := w.Run(func(w *World, entry int64) error {
		barriers = entry
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 iterations: 7 header entries (the last evaluates the exit).
	if barriers != 7 {
		t.Errorf("barriers = %d, want 7", barriers)
	}
	if len(outs) != 2 || outs[0] == "" || outs[1] == "" {
		t.Fatalf("outputs = %q", outs)
	}
	if outs[0] == outs[1] {
		t.Error("ranks should produce different outputs (different init)")
	}
}

func TestExchangesActuallyCouple(t *testing.T) {
	// With exchanges removed, rank 0's evolution must differ: the ghost
	// cells keep their initial values instead of the neighbor's halo.
	mod, w := haloWorld(t)
	coupled, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lone, err := NewWorld(mod, 2, haloSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	uncoupled, err := lone.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if coupled[0] == uncoupled[0] {
		t.Error("halo exchange had no observable effect on rank 0")
	}
}

func TestPerRankAnalysisIsLocal(t *testing.T) {
	mod, _ := haloWorld(t)
	results, err := ParallelAnalyzeRanks(mod, 2, haloSpec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for r, res := range results {
		got := map[string]core.DependencyType{}
		for _, c := range res.Critical {
			got[c.Name] = c.Type
		}
		want := map[string]core.DependencyType{"u": core.WAR, "step": core.Index}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d: critical = %v, want %v", r, got, want)
		}
		// The scratch array tmp is not critical (fully overwritten before
		// its read every superstep).
		for _, c := range res.Critical {
			if c.Name == "tmp" {
				t.Errorf("rank %d: tmp flagged %v", r, c.Type)
			}
		}
	}
}

// TestBSPCheckpointRestart reproduces the §VII argument end to end:
// synchronous per-rank checkpoints of the locally detected variables at
// global barriers suffice to restart the whole world after a node loss.
func TestBSPCheckpointRestart(t *testing.T) {
	mod, _ := haloWorld(t)
	results, err := ParallelAnalyzeRanks(mod, 2, haloSpec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Reference: failure-free coupled run.
	_, ref := haloWorld(t)
	refOuts, err := ref.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed run with a node loss after 3 completed supersteps.
	ctxs := make([]*checkpoint.Context, 2)
	for r := range ctxs {
		ctx, err := checkpoint.NewContext(fmt.Sprintf("%s/rank%d", t.TempDir(), r), checkpoint.L1)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range results[r].Critical {
			ctx.Protect(c.Name, c.Base, c.SizeBytes)
		}
		ctxs[r] = ctx
	}
	_, failing := haloWorld(t)
	_, err = failing.Run(func(w *World, entry int64) error {
		if entry >= 2 {
			for r, m := range w.Ranks {
				if err := ctxs[r].Checkpoint(m, entry-1); err != nil {
					return err
				}
			}
		}
		if entry == 4 {
			return interp.ErrFailStop // node loss mid-execution
		}
		return nil
	})
	if !errors.Is(err, interp.ErrFailStop) {
		t.Fatalf("expected injected fail-stop, got %v", err)
	}

	// Global restart: every rank recovers at the first barrier.
	_, restart := haloWorld(t)
	outs, err := restart.Run(func(w *World, entry int64) error {
		if entry == 1 {
			for r, m := range w.Ranks {
				if _, err := ctxs[r].Restart(m, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, refOuts) {
		t.Errorf("restarted outputs differ:\nrestart %q\nref     %q", outs, refOuts)
	}

	// Necessity: dropping u on rank 0 must break the global restart.
	_, broken := haloWorld(t)
	outs2, err := broken.Run(func(w *World, entry int64) error {
		if entry == 1 {
			for r, m := range w.Ranks {
				skip := map[string]bool{}
				if r == 0 {
					skip["u"] = true
				}
				if _, err := ctxs[r].Restart(m, skip); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(outs2, refOuts) {
		t.Error("restart without rank 0's u should not match the reference")
	}
}

func TestWorldErrors(t *testing.T) {
	mod, err := interp.Compile(haloSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(mod, 0, haloSpec, nil); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewWorld(mod, 2, core.LoopSpec{Function: "nosuch", StartLine: 1, EndLine: 2}, nil); err == nil {
		t.Error("bad function accepted")
	}
	if _, err := NewWorld(mod, 2, haloSpec, []Exchange{{SrcRank: 5, DstRank: 0, SrcVar: "u", DstVar: "u", Cells: 1}}); err == nil {
		t.Error("out-of-range exchange accepted")
	}
	// Unknown exchange variable surfaces at run time.
	w, err := NewWorld(mod, 2, haloSpec, []Exchange{{SrcRank: 0, DstRank: 1, SrcVar: "nope", DstVar: "u", Cells: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(nil); err == nil {
		t.Error("unknown exchange variable did not fail")
	}
}

func TestMyrankBuiltin(t *testing.T) {
	mod, err := interp.Compile(`int main() { print(myrank(), nranks()); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(mod)
	m.Rank, m.Ranks = 3, 8
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "3 8\n" {
		t.Errorf("output = %q, want \"3 8\"", out)
	}
	// Defaults.
	m2 := interp.New(mod)
	out, err = m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "0 1\n" {
		t.Errorf("default output = %q, want \"0 1\"", out)
	}
}

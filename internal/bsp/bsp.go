// Package bsp executes an SPMD program on multiple simulated ranks under
// the Bulk Synchronous Parallel model the paper assumes for MPI programs
// (§VII "MPI programs"): ranks compute independently between global
// barriers at main-loop boundaries; communication is buffer copies applied
// at the barrier; checkpointing is synchronous — every rank saves its
// AutoCheck-detected variables at the same barrier, which eliminates
// inter-process dependency and the Domino effect.
//
// The package substantiates two claims of §VII:
//
//  1. "all the checkpointing variable detection is local work" — each
//     rank's trace is analyzed independently, and the per-rank critical
//     sets suffice for a correct global restart;
//  2. "our approach also considers the communication buffer" — halo cells
//     written by the barrier exchange behave exactly like any other
//     memory write in the next superstep's dependency analysis.
package bsp

import (
	"errors"
	"fmt"
	"sync"

	"autocheck/internal/cfg"
	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
)

// Exchange is one barrier-time buffer copy: Cells cells from the source
// rank's global SrcVar (starting at SrcOff cells) into the destination
// rank's global DstVar (starting at DstOff cells). It models a matched
// MPI send/receive pair completing at the collective.
type Exchange struct {
	SrcRank int
	SrcVar  string
	SrcOff  int64
	DstRank int
	DstVar  string
	DstOff  int64
	Cells   int64
}

// World is an SPMD execution: one machine per rank running the same
// module, synchronized at main-loop-header barriers.
type World struct {
	Mod       *ir.Module
	Spec      core.LoopSpec
	Ranks     []*interp.Machine
	Exchanges []Exchange
	header    *ir.Block
}

// BarrierFunc runs at every global barrier, after the exchanges are
// applied and while all ranks are stopped. entry is the 1-based barrier
// number (the first is loop entry). Returning an error aborts every rank
// with that error (interp.ErrFailStop models a node loss).
type BarrierFunc func(w *World, entry int64) error

// NewWorld prepares a world of n ranks.
func NewWorld(mod *ir.Module, n int, spec core.LoopSpec, exchanges []Exchange) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("bsp: need at least one rank")
	}
	fn := mod.Func(spec.Function)
	if fn == nil {
		return nil, fmt.Errorf("bsp: no function %q", spec.Function)
	}
	g := cfg.New(fn)
	loop := g.OutermostLoopInRange(spec.StartLine, spec.EndLine)
	if loop == nil {
		return nil, fmt.Errorf("bsp: no loop in %q lines %d-%d", spec.Function, spec.StartLine, spec.EndLine)
	}
	w := &World{Mod: mod, Spec: spec, Exchanges: exchanges, header: loop.Header}
	for r := 0; r < n; r++ {
		m := interp.New(mod)
		m.Rank = r
		m.Ranks = n
		w.Ranks = append(w.Ranks, m)
	}
	for _, ex := range exchanges {
		if ex.SrcRank < 0 || ex.SrcRank >= n || ex.DstRank < 0 || ex.DstRank >= n {
			return nil, fmt.Errorf("bsp: exchange rank out of range: %+v", ex)
		}
	}
	return w, nil
}

// applyExchanges copies every exchange buffer. All ranks are blocked at
// the barrier, so the copies are race-free.
func (w *World) applyExchanges() error {
	for _, ex := range w.Exchanges {
		src := w.Ranks[ex.SrcRank]
		dst := w.Ranks[ex.DstRank]
		sa, ok := src.GlobalAddr(ex.SrcVar)
		if !ok {
			return fmt.Errorf("bsp: rank %d has no global %q", ex.SrcRank, ex.SrcVar)
		}
		da, ok := dst.GlobalAddr(ex.DstVar)
		if !ok {
			return fmt.Errorf("bsp: rank %d has no global %q", ex.DstRank, ex.DstVar)
		}
		vals := src.ReadRange(sa+uint64(ex.SrcOff*8), ex.Cells)
		dst.WriteRange(da+uint64(ex.DstOff*8), vals)
	}
	return nil
}

// rankState coordinates one rank's goroutine with the barrier master.
type rankState struct {
	arrived chan struct{}
	resume  chan error
	done    chan error
	out     string
}

// Run executes all ranks in lockstep supersteps and returns each rank's
// printed output. A nil barrier just applies the exchanges.
func (w *World) Run(barrier BarrierFunc) ([]string, error) {
	states := make([]*rankState, len(w.Ranks))
	for r, m := range w.Ranks {
		st := &rankState{
			arrived: make(chan struct{}),
			resume:  make(chan error),
			done:    make(chan error, 1),
		}
		states[r] = st
		m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
			if blk != w.header || f.Fn.Name != w.Spec.Function {
				return nil
			}
			st.arrived <- struct{}{}
			return <-st.resume
		}
		go func(m *interp.Machine, st *rankState) {
			out, err := m.Run()
			st.out = out
			st.done <- err
		}(m, st)
	}

	active := make([]bool, len(w.Ranks))
	for i := range active {
		active[i] = true
	}
	var firstErr error
	var entry int64
	finished := 0
	for finished < len(w.Ranks) {
		// Wait for every active rank to arrive at the barrier or finish.
		arrivedRanks := make([]int, 0, len(w.Ranks))
		for r, st := range states {
			if !active[r] {
				continue
			}
			select {
			case <-st.arrived:
				arrivedRanks = append(arrivedRanks, r)
			case err := <-st.done:
				active[r] = false
				finished++
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if len(arrivedRanks) == 0 {
			continue
		}
		entry++
		// The global collective: exchanges first, then the barrier hook
		// (synchronous checkpointing happens after the collective, §VII).
		resumeErr := firstErr
		if resumeErr == nil {
			if err := w.applyExchanges(); err != nil {
				resumeErr = err
			}
		}
		if resumeErr == nil && barrier != nil {
			resumeErr = barrier(w, entry)
		}
		for _, r := range arrivedRanks {
			states[r].resume <- resumeErr
		}
		if resumeErr != nil && firstErr == nil {
			firstErr = resumeErr
		}
	}
	outs := make([]string, len(w.Ranks))
	for r, st := range states {
		outs[r] = st.out
	}
	return outs, firstErr
}

// AnalyzeRank traces one rank's execution of the program in isolation and
// runs AutoCheck on it — the paper's "checkpointing variable detection is
// local work". A fresh single-rank machine with the same rank identity is
// used so the trace is not perturbed by barrier scheduling; under BSP the
// data dependencies between MLI variables are the same in serial and
// parallel runs (§VII "Parallel and Serial").
func AnalyzeRank(mod *ir.Module, rank, ranks int, spec core.LoopSpec, opts core.Options) (*core.Result, error) {
	col, err := core.NewCollector(spec, opts)
	if err != nil {
		return nil, err
	}
	m := interp.New(mod)
	m.Rank = rank
	m.Ranks = ranks
	m.Tracer = col.Observe
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrFailStop) {
		return nil, err
	}
	return col.Finish()
}

// ParallelAnalyzeRanks analyzes every rank concurrently.
func ParallelAnalyzeRanks(mod *ir.Module, ranks int, spec core.LoopSpec, opts core.Options) ([]*core.Result, error) {
	results := make([]*core.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = AnalyzeRank(mod, r, ranks, spec, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	tkt, err := c.Acquire("t", Restart)
	if err != nil {
		t.Fatal(err)
	}
	tkt.Release()
	if err := c.AcquireSession("t", false); err != nil {
		t.Fatal(err)
	}
	c.ReleaseSession("t")
	c.SetDraining(true)
	if c.Queued() != 0 || c.InUse() != 0 || c.Draining() {
		t.Error("nil controller reported state")
	}
}

func TestGlobalBoundShedsWithFixedRetryAfter(t *testing.T) {
	reg := obs.New()
	c := New(Config{MaxInFlight: 2, Prefix: "server", Obs: reg})
	t1, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Acquire("b", Interactive)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Acquire("c", Interactive)
	sh, ok := AsShed(err)
	if !ok || sh.Reason != ReasonInflight {
		t.Fatalf("over-bound acquire = %v, want inflight shed", err)
	}
	// No queue configured: the legacy fixed second, exactly.
	if sh.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", sh.RetryAfter)
	}
	if sh.Tenant != "c" || sh.Limit != 2 {
		t.Errorf("shed detail %+v", sh)
	}
	t1.Release()
	t3, err := c.Acquire("c", Interactive)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	t3.Release()
	t2.Release()

	snap := reg.Snapshot()
	if snap.Counters["server.shed"] != 1 || snap.Counters["server.shed.inflight"] != 1 {
		t.Errorf("shed counters %v", snap.Counters)
	}
	if snap.Counters["server.shed.ns.c"] != 1 {
		t.Errorf("per-tenant shed counter %v", snap.Counters)
	}
	if snap.Gauges["server.inflight"] != 0 {
		t.Errorf("inflight gauge = %d after drain", snap.Gauges["server.inflight"])
	}
}

func TestTenantSlotsIndependentAcrossTenants(t *testing.T) {
	reg := obs.New()
	c := New(Config{TenantSlots: 1, Prefix: "analysis", Obs: reg})
	ta, err := c.Acquire("tenant-a", Ingest)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Acquire("tenant-a", Ingest)
	sh, ok := AsShed(err)
	if !ok || sh.Reason != ReasonTenantQuota {
		t.Fatalf("co-tenant acquire = %v, want tenant_quota shed", err)
	}
	// The other tenant is unaffected.
	tb, err := c.Acquire("tenant-b", Ingest)
	if err != nil {
		t.Fatalf("tenant-b shed by tenant-a's bound: %v", err)
	}
	ta.Release()
	tb.Release()
	if err := func() error { tkt, err := c.Acquire("tenant-a", Ingest); tkt.Release(); return err }(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["analysis.shed"] != 1 || snap.Counters["analysis.shed.tenant_quota"] != 1 {
		t.Errorf("shed counters %v", snap.Counters)
	}
}

func TestSessionLeases(t *testing.T) {
	c := New(Config{TenantSessions: 2})
	if err := c.AcquireSession("a", false); err != nil {
		t.Fatal(err)
	}
	if err := c.AcquireSession("a", false); err != nil {
		t.Fatal(err)
	}
	sh, ok := AsShed(c.AcquireSession("a", false))
	if !ok || sh.Reason != ReasonTenantQuota || sh.Limit != 2 {
		t.Fatalf("over-quota session = %v", sh)
	}
	// Recovery bypasses the bound but still holds a lease.
	if err := c.AcquireSession("a", true); err != nil {
		t.Fatal(err)
	}
	if got := c.Sessions("a"); got != 3 {
		t.Fatalf("Sessions = %d, want 3", got)
	}
	if err := c.AcquireSession("b", false); err != nil {
		t.Fatalf("tenant-b lease shed by tenant-a: %v", err)
	}
	c.ReleaseSession("a")
	c.ReleaseSession("a")
	if err := c.AcquireSession("a", false); err != nil {
		t.Fatalf("lease after release: %v", err)
	}
}

func TestTokenBucketRateComputedRetryAfter(t *testing.T) {
	clock := time.Unix(1000, 0)
	c := New(Config{TenantRate: 0.5, TenantBurst: 1, Now: func() time.Time { return clock }})
	tkt, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatal(err)
	}
	tkt.Release()
	_, err = c.Acquire("a", Interactive)
	sh, ok := AsShed(err)
	if !ok || sh.Reason != ReasonRate {
		t.Fatalf("rate acquire = %v, want rate shed", err)
	}
	// Empty bucket at 0.5 tokens/s: the next token is 2s out.
	if sh.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", sh.RetryAfter)
	}
	// Advance past the refill and the tenant admits again.
	clock = clock.Add(2 * time.Second)
	tkt, err = c.Acquire("a", Interactive)
	if err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
	tkt.Release()
}

// TestQueueComputedRetryAfter pins the queue-derived hint: with a known
// drain rate (1 release/second, driven through the fake clock) and 3
// parked waiters, an overflow shed advertises ceil((3+1)/1) = 4s.
func TestQueueComputedRetryAfter(t *testing.T) {
	var mu sync.Mutex
	clock := time.Unix(1000, 0)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	tick := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	c := New(Config{MaxInFlight: 1, QueueDepth: 3, Now: now})
	// Establish the EWMA: grant/release once per simulated second.
	for i := 0; i < 4; i++ {
		tkt, err := c.Acquire("a", Interactive)
		if err != nil {
			t.Fatal(err)
		}
		tick(time.Second)
		tkt.Release()
	}

	holder, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tkt, err := c.Acquire("a", Interactive)
			if err != nil {
				t.Error(err)
				return
			}
			tkt.Release()
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Queued() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = c.Acquire("a", Interactive)
	sh, ok := AsShed(err)
	if !ok || sh.Reason != ReasonInflight {
		t.Fatalf("overflow acquire = %v, want inflight shed", err)
	}
	if sh.RetryAfter != 4*time.Second {
		t.Errorf("computed RetryAfter = %v, want 4s", sh.RetryAfter)
	}
	if FormatRetryAfter(sh.RetryAfter) != "4" {
		t.Errorf("FormatRetryAfter = %q, want 4", FormatRetryAfter(sh.RetryAfter))
	}

	holder.Release()
	wg.Wait()
	if c.Queued() != 0 || c.InUse() != 0 {
		t.Errorf("queued=%d inUse=%d after drain", c.Queued(), c.InUse())
	}
}

func TestDrainShedsQueuedWaitersAndNewAcquires(t *testing.T) {
	reg := obs.New()
	c := New(Config{MaxInFlight: 1, QueueDepth: 4, Prefix: "server", Obs: reg})
	holder, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Acquire("a", Interactive)
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	c.SetDraining(true)
	for i := 0; i < 2; i++ {
		sh, ok := AsShed(<-errs)
		if !ok || sh.Reason != ReasonDrain {
			t.Fatalf("queued waiter drain = %v, want drain shed", sh)
		}
	}
	_, err = c.Acquire("b", Restart)
	if sh, ok := AsShed(err); !ok || sh.Reason != ReasonDrain {
		t.Fatalf("acquire while draining = %v, want drain shed", err)
	}
	holder.Release()
	if got := reg.Snapshot().Counters["server.shed.drain"]; got != 3 {
		t.Errorf("server.shed.drain = %d, want 3", got)
	}
	// Clearing drain restores admission and the tenant slot reservations
	// handed back by the drain are balanced.
	c.SetDraining(false)
	tkt, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatalf("acquire after drain cleared: %v", err)
	}
	tkt.Release()
	if c.InUse() != 0 {
		t.Errorf("inUse = %d after full drain", c.InUse())
	}
}

// TestAdmissionFailpointSlotHolder pins the admission.request site's
// slot-holder contract: a delay holds real capacity (a concurrent
// co-tenant acquire sheds while it sleeps), and an error action hands
// the slot back and surfaces the injected error, not a shed.
func TestAdmissionFailpointSlotHolder(t *testing.T) {
	faults := faultinject.NewRegistry(1)
	if err := faults.ArmSchedule("admission.request=delay@nth=1@delay=150ms"); err != nil {
		t.Fatal(err)
	}
	c := New(Config{MaxInFlight: 1, Faults: faults})
	done := make(chan error, 1)
	go func() {
		tkt, err := c.Acquire("a", Interactive)
		if err == nil {
			tkt.Release()
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for faults.Fired() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delay failpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// The delayed acquire holds the only slot: this one sheds.
	_, err := c.Acquire("b", Interactive)
	if sh, ok := AsShed(err); !ok || sh.Reason != ReasonInflight {
		t.Fatalf("acquire under held slot = %v, want inflight shed", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("delayed acquire: %v", err)
	}

	// Error action: the injected error comes back raw and the slot is
	// free again immediately.
	if err := faults.ArmSchedule("admission.request=error@oneshot"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Acquire("a", Interactive)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected acquire = %v, want ErrInjected", err)
	}
	if _, ok := AsShed(err); ok {
		t.Fatal("injected error reported as a shed")
	}
	tkt, err := c.Acquire("a", Interactive)
	if err != nil {
		t.Fatalf("slot not released after injected error: %v", err)
	}
	tkt.Release()
	if c.InUse() != 0 {
		t.Errorf("inUse = %d, want 0", c.InUse())
	}
}

// TestAcquireUnconfiguredZeroAllocs is the accept-path alloc pin: a
// controller with only the global bound set (the server's default
// shape) must admit without allocating.
func TestAcquireUnconfiguredZeroAllocs(t *testing.T) {
	c := New(Config{MaxInFlight: 64, Prefix: "server", Obs: obs.New()})
	var failed error
	allocs := testing.AllocsPerRun(1000, func() {
		tkt, err := c.Acquire("tenant-a", Interactive)
		if err != nil {
			failed = err
			return
		}
		tkt.Release()
	})
	if failed != nil {
		t.Fatal(failed)
	}
	if allocs != 0 {
		t.Fatalf("accept path allocates %.1f allocs/op, want 0", allocs)
	}
}

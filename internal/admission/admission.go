// Package admission is the unified multi-tenant admission-control layer
// for every shedding path in the repo. One Controller owns the decisions
// the server's bound middleware and the analysis service's quotas used to
// make separately: a global in-flight bound, per-tenant (namespace)
// concurrency slots and session leases, per-tenant token-bucket rate
// limits, bounded per-tenant wait queues drained in weighted
// priority-class order (restart-path reads first, scrub traffic last),
// and a computed Retry-After derived from the observed queue depth and
// drain rate.
//
// The package is dependency-free apart from the repo's faultinject and
// obs substrates, and follows their nil-safety discipline: a nil
// *Controller admits everything for free, and an unconfigured Controller
// (only MaxInFlight set) adds zero allocations to the accept path — one
// mutex acquire, two integer compares, one atomic gauge increment.
//
// Callers translate a returned *Shed into their wire shape (the server's
// 503, analysis's typed 429 envelope); the Shed carries the tenant, the
// reason, the bound that was hit, and the Retry-After the caller should
// put on the wire. When no wait queue is configured the Retry-After is a
// fixed one second — the legacy contract every retrying client already
// understands; with a queue it is ceil((queued+1)/drainRate) seconds,
// clamped to [1s, 30s], where drainRate is an EWMA of observed slot
// releases.
package admission

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// SiteRequest is the failpoint evaluated after a slot is granted and
// while it is held, mirroring the analysis.session.chunk slot-holder
// idiom: a delay action occupies real admission capacity for its
// duration (so co-tenant sheds under chaos schedules are deterministic),
// and an error action releases the slot and surfaces the injected error
// to the caller as-is — it is injected unavailability, not a shed, and
// is not counted in the shed metrics.
const SiteRequest = "admission.request"

// Request headers carrying a caller's identity and priority class
// end-to-end. store.Remote and analysis.Client set both; the server's
// bound middleware reads them, falling back to the URL namespace and the
// HTTP method when absent (old clients keep working).
const (
	TenantHeader   = "X-Autocheck-Tenant"
	PriorityHeader = "X-Autocheck-Priority"
)

// Priority is a request's admission class. Lower values drain first.
type Priority int

// Priority classes, in drain order.
const (
	// Restart is the restart path: Get/List of checkpoint objects a
	// recovering process blocks on.
	Restart Priority = iota
	// Interactive is foreground work: checkpoint Puts, one-shot
	// analyses, session control requests.
	Interactive
	// Ingest is background streaming: analysis session chunks.
	Ingest
	// Scrub is maintenance traffic: replica scrub reads and repair
	// writes, always first to yield.
	Scrub

	// NumPriorities bounds the class space.
	NumPriorities = 4
)

var priorityNames = [NumPriorities]string{"restart", "interactive", "ingest", "scrub"}

func (p Priority) String() string {
	if p >= 0 && int(p) < NumPriorities {
		return priorityNames[p]
	}
	return "interactive"
}

// ParsePriority parses a class name as carried in PriorityHeader. The
// zero-value fallback for unknown names is Interactive, reported with
// ok=false.
func ParsePriority(s string) (Priority, bool) {
	for i, n := range priorityNames {
		if s == n {
			return Priority(i), true
		}
	}
	return Interactive, false
}

// Reason classifies a shed for metrics and wire messages.
type Reason string

// Shed reasons; each gets its own <prefix>.shed.<reason> counter.
const (
	ReasonInflight    Reason = "inflight"     // global bound hit, queue full (or absent)
	ReasonTenantQuota Reason = "tenant_quota" // per-tenant slot or session bound hit
	ReasonRate        Reason = "rate"         // per-tenant token bucket empty
	ReasonDrain       Reason = "drain"        // controller draining for shutdown
)

// reasonIndex maps a Reason to its pre-created counter slot.
func reasonIndex(r Reason) int {
	switch r {
	case ReasonInflight:
		return 0
	case ReasonTenantQuota:
		return 1
	case ReasonRate:
		return 2
	default:
		return 3
	}
}

var reasonByIndex = [4]Reason{ReasonInflight, ReasonTenantQuota, ReasonRate, ReasonDrain}

// Shed is the typed admission refusal. Callers translate it to their
// wire shape; RetryAfter is what belongs on the Retry-After header.
type Shed struct {
	Tenant     string
	Reason     Reason
	RetryAfter time.Duration
	Limit      int // the bound that was hit
	Count      int // the observed level when it was hit
}

func (s *Shed) Error() string {
	return fmt.Sprintf("admission: tenant %q shed (%s, %d/%d), retry after %ss",
		s.Tenant, s.Reason, s.Count, s.Limit, FormatRetryAfter(s.RetryAfter))
}

// AsShed unwraps an admission refusal from err.
func AsShed(err error) (*Shed, bool) {
	var sh *Shed
	if errors.As(err, &sh) {
		return sh, true
	}
	return nil, false
}

// FormatRetryAfter renders d as the integral second count the
// Retry-After header carries: ceiling, never below 1.
func FormatRetryAfter(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// DefaultWeights is the per-class drain weighting: per full scheduler
// cycle, up to 8 restart grants, then 4 interactive, 2 ingest, 1 scrub.
var DefaultWeights = [NumPriorities]int{8, 4, 2, 1}

// Config parameterizes a Controller. Every bound is optional: a zero
// value disables that bound (and its bookkeeping) entirely.
type Config struct {
	// MaxInFlight bounds concurrent admissions across all tenants.
	MaxInFlight int
	// TenantSlots bounds concurrent admissions per tenant.
	TenantSlots int
	// TenantSessions bounds live session leases per tenant
	// (AcquireSession / ReleaseSession).
	TenantSessions int
	// TenantRate is a per-tenant sustained admission rate (per second)
	// enforced by a token bucket of TenantBurst capacity
	// (<= 0: max(1, ceil(TenantRate))).
	TenantRate  float64
	TenantBurst int
	// QueueDepth bounds the per-tenant wait queue. Zero means requests
	// past MaxInFlight shed immediately with a fixed 1s Retry-After —
	// the legacy behavior. With a queue, waiters are drained in
	// weighted priority order and the Retry-After of an overflow shed
	// is computed from queue depth and drain rate.
	QueueDepth int
	// Weights overrides DefaultWeights; entries <= 0 are lifted to 1.
	// The zero value selects DefaultWeights.
	Weights [NumPriorities]int

	// Prefix names the controller's instruments: <prefix>.shed,
	// <prefix>.shed.<reason>, <prefix>.shed.ns.<tenant>,
	// <prefix>.inflight. Empty means "admission".
	Prefix string

	Faults *faultinject.Registry
	Obs    *obs.Registry
	Now    func() time.Time // test seam; nil means time.Now
}

// tenantState is one tenant's book: concurrency, leases, tokens, and
// its per-priority wait queues. Guarded by Controller.mu.
type tenantState struct {
	name     string
	inUse    int     // granted + queued-with-reservation admissions
	live     int     // session leases
	tokens   float64 // token bucket level
	lastFill time.Time
	q        [NumPriorities][]*waiter
	qlen     int
	inRing   [NumPriorities]bool
	shedC    *obs.Counter // lazily bound <prefix>.shed.ns.<name>
}

// waiter is one queued Acquire. ready is closed exactly once — by a
// grant (shed nil) or by drain (shed set).
type waiter struct {
	ready chan struct{}
	shed  *Shed
}

// Controller is the admission authority. All methods are safe for
// concurrent use and on a nil receiver (which admits everything).
type Controller struct {
	cfg       Config
	weights   [NumPriorities]int
	perTenant bool // tenant bookkeeping needed on the Acquire path
	faults    *faultinject.Registry
	now       func() time.Time

	obsReg     *obs.Registry
	prefix     string
	shedC      *obs.Counter
	shedReason [4]*obs.Counter
	inflightG  *obs.Gauge

	mu          sync.Mutex
	draining    bool
	inUse       int
	queuedTotal int
	tenants     map[string]*tenantState
	rings       [NumPriorities][]*tenantState
	credit      [NumPriorities]int
	cur         int
	lastRelease time.Time
	drainRate   float64 // EWMA of slot releases per second
}

// New builds a Controller from cfg.
func New(cfg Config) *Controller {
	c := &Controller{
		cfg:       cfg,
		perTenant: cfg.TenantSlots > 0 || cfg.TenantRate > 0 || cfg.QueueDepth > 0,
		faults:    cfg.Faults,
		now:       cfg.Now,
		obsReg:    cfg.Obs,
		prefix:    cfg.Prefix,
		tenants:   make(map[string]*tenantState),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.prefix == "" {
		c.prefix = "admission"
	}
	c.weights = cfg.Weights
	if c.weights == ([NumPriorities]int{}) {
		c.weights = DefaultWeights
	}
	for i, w := range c.weights {
		if w <= 0 {
			c.weights[i] = 1
		}
	}
	if c.cfg.TenantRate > 0 && c.cfg.TenantBurst <= 0 {
		c.cfg.TenantBurst = int(math.Ceil(c.cfg.TenantRate))
		if c.cfg.TenantBurst < 1 {
			c.cfg.TenantBurst = 1
		}
	}
	c.shedC = cfg.Obs.Counter(c.prefix + ".shed")
	for i, r := range reasonByIndex {
		c.shedReason[i] = cfg.Obs.Counter(c.prefix + ".shed." + string(r))
	}
	c.inflightG = cfg.Obs.Gauge(c.prefix + ".inflight")
	return c
}

// tenantLocked returns (creating on first sight) the tenant's state.
func (c *Controller) tenantLocked(name string) *tenantState {
	ts := c.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name, tokens: float64(c.cfg.TenantBurst), lastFill: c.now()}
		c.tenants[name] = ts
	}
	return ts
}

// shedLocked builds the refusal and records it: the aggregate counter,
// the per-reason counter, and the tenant's own shed counter.
func (c *Controller) shedLocked(ts *tenantState, tenant string, reason Reason, limit, count int) *Shed {
	c.shedC.Inc()
	c.shedReason[reasonIndex(reason)].Inc()
	if c.obsReg != nil && tenant != "" {
		if ts != nil {
			if ts.shedC == nil {
				ts.shedC = c.obsReg.Counter(c.prefix + ".shed.ns." + tenant)
			}
			ts.shedC.Inc()
		} else {
			c.obsReg.Counter(c.prefix + ".shed.ns." + tenant).Inc()
		}
	}
	return &Shed{Tenant: tenant, Reason: reason, RetryAfter: time.Second, Limit: limit, Count: count}
}

// retryAfterLocked computes the hint for an overflow shed: with no
// queue, the fixed legacy second; with one, the time the current queue
// needs to drain at the observed rate, clamped to [1s, 30s].
func (c *Controller) retryAfterLocked() time.Duration {
	if c.cfg.QueueDepth <= 0 || c.drainRate <= 0 {
		return time.Second
	}
	secs := math.Ceil(float64(c.queuedTotal+1) / c.drainRate)
	if secs < 1 {
		secs = 1
	} else if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// Ticket is a granted admission. The zero Ticket (from a nil or
// unconfigured-path grant refusal) releases nothing.
type Ticket struct {
	c  *Controller
	ts *tenantState
}

// Release returns the slot and wakes a queued waiter if one can run.
func (t Ticket) Release() {
	if t.c == nil {
		return
	}
	t.c.release(t.ts)
}

// Acquire admits one request for tenant at the given priority, blocking
// in the tenant's bounded queue when one is configured and the global
// bound is saturated. It returns a Ticket (release it), a *Shed
// refusal, or an injected error from the admission.request failpoint.
func (c *Controller) Acquire(tenant string, pri Priority) (Ticket, error) {
	if c == nil {
		return Ticket{}, nil
	}
	if pri < 0 || pri >= NumPriorities {
		pri = Interactive
	}
	c.mu.Lock()
	if c.draining {
		sh := c.shedLocked(nil, tenant, ReasonDrain, 0, 0)
		c.mu.Unlock()
		return Ticket{}, sh
	}
	var ts *tenantState
	if c.perTenant {
		ts = c.tenantLocked(tenant)
		if c.cfg.TenantRate > 0 {
			now := c.now()
			if dt := now.Sub(ts.lastFill).Seconds(); dt > 0 {
				ts.tokens = math.Min(float64(c.cfg.TenantBurst), ts.tokens+dt*c.cfg.TenantRate)
				ts.lastFill = now
			}
			if ts.tokens < 1 {
				sh := c.shedLocked(ts, tenant, ReasonRate, c.cfg.TenantBurst, 0)
				wait := time.Duration((1 - ts.tokens) / c.cfg.TenantRate * float64(time.Second))
				if wait > sh.RetryAfter {
					sh.RetryAfter = wait
				}
				c.mu.Unlock()
				return Ticket{}, sh
			}
			ts.tokens--
		}
		if c.cfg.TenantSlots > 0 && ts.inUse >= c.cfg.TenantSlots {
			sh := c.shedLocked(ts, tenant, ReasonTenantQuota, c.cfg.TenantSlots, ts.inUse)
			c.mu.Unlock()
			return Ticket{}, sh
		}
	}
	if c.cfg.MaxInFlight > 0 && c.inUse >= c.cfg.MaxInFlight {
		if c.cfg.QueueDepth > 0 && ts.qlen < c.cfg.QueueDepth {
			// Reserve the tenant's slot before parking so the per-tenant
			// bound holds across queued grants; drain gives it back.
			ts.inUse++
			w := &waiter{ready: make(chan struct{})}
			ts.q[pri] = append(ts.q[pri], w)
			ts.qlen++
			c.queuedTotal++
			if !ts.inRing[pri] {
				c.rings[pri] = append(c.rings[pri], ts)
				ts.inRing[pri] = true
			}
			c.mu.Unlock()
			<-w.ready
			if w.shed != nil {
				return Ticket{}, w.shed
			}
			c.inflightG.Inc()
			if err := c.faults.Hit(SiteRequest); err != nil {
				c.release(ts)
				return Ticket{}, err
			}
			return Ticket{c: c, ts: ts}, nil
		}
		var sh *Shed
		if ts != nil && c.cfg.QueueDepth > 0 {
			sh = c.shedLocked(ts, tenant, ReasonInflight, c.cfg.QueueDepth, ts.qlen)
		} else {
			sh = c.shedLocked(ts, tenant, ReasonInflight, c.cfg.MaxInFlight, c.inUse)
		}
		sh.RetryAfter = c.retryAfterLocked()
		c.mu.Unlock()
		return Ticket{}, sh
	}
	c.inUse++
	if ts != nil {
		ts.inUse++
	}
	c.mu.Unlock()
	c.inflightG.Inc()
	// Slot-holder failpoint: a delay occupies the slot it was granted,
	// an error hands it back and surfaces as injected unavailability.
	if err := c.faults.Hit(SiteRequest); err != nil {
		c.release(ts)
		return Ticket{}, err
	}
	return Ticket{c: c, ts: ts}, nil
}

// release returns one slot and, when queues are configured, folds the
// release into the drain-rate EWMA and wakes the next waiter.
func (c *Controller) release(ts *tenantState) {
	c.inflightG.Dec()
	c.mu.Lock()
	c.inUse--
	if ts != nil {
		ts.inUse--
	}
	if c.cfg.QueueDepth > 0 {
		c.observeDrainLocked()
		c.grantLocked()
	}
	c.mu.Unlock()
}

// observeDrainLocked updates the EWMA (alpha 0.2) of releases/second
// that prices computed Retry-After hints. Only runs when queues are
// configured, keeping the unconfigured accept path clock-free.
func (c *Controller) observeDrainLocked() {
	now := c.now()
	if !c.lastRelease.IsZero() {
		if dt := now.Sub(c.lastRelease).Seconds(); dt > 0 {
			inst := 1.0 / dt
			if c.drainRate == 0 {
				c.drainRate = inst
			} else {
				c.drainRate = 0.8*c.drainRate + 0.2*inst
			}
		}
	}
	c.lastRelease = now
}

// grantLocked hands freed capacity to queued waiters in weighted
// priority order.
func (c *Controller) grantLocked() {
	for c.queuedTotal > 0 && (c.cfg.MaxInFlight <= 0 || c.inUse < c.cfg.MaxInFlight) {
		w, ok := c.dequeueLocked()
		if !ok {
			return
		}
		c.queuedTotal--
		c.inUse++ // the waiter's tenant slot was reserved at enqueue
		close(w.ready)
	}
}

// dequeueLocked is one deficit-round-robin step: spend the current
// class's credit on the front tenant of its ring (rotating the tenant
// to the back if it still has waiters in that class), else advance to
// the next class with a credit refill. Terminates within a bounded scan
// whenever any waiter is queued.
func (c *Controller) dequeueLocked() (*waiter, bool) {
	for spins := 0; spins <= 2*NumPriorities; spins++ {
		if c.credit[c.cur] > 0 && len(c.rings[c.cur]) > 0 {
			c.credit[c.cur]--
			ts := c.rings[c.cur][0]
			w := ts.q[c.cur][0]
			ts.q[c.cur] = ts.q[c.cur][1:]
			ts.qlen--
			if len(ts.q[c.cur]) == 0 {
				c.rings[c.cur] = c.rings[c.cur][1:]
				ts.inRing[c.cur] = false
			} else {
				c.rings[c.cur] = append(c.rings[c.cur][1:], ts)
			}
			return w, true
		}
		c.cur = (c.cur + 1) % NumPriorities
		c.credit[c.cur] = c.weights[c.cur]
	}
	return nil, false
}

// AcquireSession takes one of the tenant's session leases. A recovered
// session (state already durable, being re-materialized) bypasses the
// bound but still holds a lease so eviction accounting stays exact.
func (c *Controller) AcquireSession(tenant string, recovered bool) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ts := c.tenantLocked(tenant)
	if !recovered && c.cfg.TenantSessions > 0 && ts.live >= c.cfg.TenantSessions {
		sh := c.shedLocked(ts, tenant, ReasonTenantQuota, c.cfg.TenantSessions, ts.live)
		c.mu.Unlock()
		return sh
	}
	ts.live++
	c.mu.Unlock()
	return nil
}

// ReleaseSession returns a session lease.
func (c *Controller) ReleaseSession(tenant string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ts := c.tenants[tenant]; ts != nil && ts.live > 0 {
		ts.live--
	}
	c.mu.Unlock()
}

// Sessions reports the tenant's live lease count (test observability).
func (c *Controller) Sessions(tenant string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts := c.tenants[tenant]; ts != nil {
		return ts.live
	}
	return 0
}

// Queued reports how many acquires are parked across all tenants.
func (c *Controller) Queued() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queuedTotal
}

// InUse reports the granted admission count (test observability).
func (c *Controller) InUse() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse
}

// SetDraining flips drain mode. Entering it sheds every queued waiter
// with a drain refusal; subsequent acquires shed immediately until it
// is cleared.
func (c *Controller) SetDraining(on bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.draining = on
	if on && c.queuedTotal > 0 {
		for _, ts := range c.tenants {
			for pri := 0; pri < NumPriorities; pri++ {
				for _, w := range ts.q[pri] {
					w.shed = c.shedLocked(ts, ts.name, ReasonDrain, 0, 0)
					ts.inUse-- // give back the enqueue-time reservation
					close(w.ready)
				}
				ts.q[pri] = nil
				ts.inRing[pri] = false
			}
			ts.qlen = 0
		}
		for pri := 0; pri < NumPriorities; pri++ {
			c.rings[pri] = nil
		}
		c.queuedTotal = 0
	}
	c.mu.Unlock()
}

// Draining reports drain mode.
func (c *Controller) Draining() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

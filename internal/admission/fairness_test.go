package admission

import (
	"sync"
	"testing"
	"time"
)

// TestTwoTenantFairness is the fairness property pin: one aggressive
// tenant floods interactive Puts far past its bounded queue while the
// victim tenant submits restart-path acquires. The assertions are
// order-based, not wall-clock-based, so the test is deterministic and
// -race clean:
//
//   - the victim's acquires all succeed — per-tenant queues mean a
//     flooding co-tenant cannot exhaust the victim's queue slots;
//   - the flood's overflow sheds land on the flooder, not the victim;
//   - the weighted drain (restart 8 : interactive 4) bounds the
//     victim's worst-case (p99) grant position: all 5 restart grants
//     land within the first 9 grants even though all 8 of the
//     flooder's queued requests arrived first.
func TestTwoTenantFairness(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 8})

	// Occupy the only slot so every subsequent acquire parks (or sheds),
	// making enqueue order exact.
	holder, err := c.Acquire("holder", Scrub)
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		tenant string
		pri    Priority
	}
	var mu sync.Mutex
	var order []grant
	var wg sync.WaitGroup
	bullyShed := 0

	enqueue := func(tenant string, pri Priority, wantQueued int) {
		t.Helper()
		wg.Add(1)
		go func() {
			defer wg.Done()
			tkt, err := c.Acquire(tenant, pri)
			if err != nil {
				if sh, ok := AsShed(err); ok && sh.Tenant == "bully" && sh.Reason == ReasonInflight {
					mu.Lock()
					bullyShed++
					mu.Unlock()
					return
				}
				t.Errorf("%s acquire: %v", tenant, err)
				return
			}
			mu.Lock()
			order = append(order, grant{tenant, pri})
			mu.Unlock()
			tkt.Release()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for c.Queued() != wantQueued {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d (at %d)", wantQueued, c.Queued())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The flood: 8 fill the bully's queue; 2 more overflow and shed
	// synchronously (wantQueued stays 8).
	for i := 0; i < 8; i++ {
		enqueue("bully", Interactive, i+1)
	}
	enqueue("bully", Interactive, 8)
	enqueue("bully", Interactive, 8)
	// The victim arrives last, behind the entire flood.
	for i := 0; i < 5; i++ {
		enqueue("victim", Restart, 9+i)
	}

	holder.Release()
	wg.Wait()

	if bullyShed != 2 {
		t.Errorf("bully overflow sheds = %d, want 2", bullyShed)
	}
	if len(order) != 13 {
		t.Fatalf("grants = %d, want 13", len(order))
	}
	var victimPositions []int
	for i, g := range order {
		if g.tenant == "victim" {
			victimPositions = append(victimPositions, i+1)
		}
	}
	if len(victimPositions) != 5 {
		t.Fatalf("victim grants = %d, want all 5 (positions %v)", len(victimPositions), victimPositions)
	}
	// The victim's worst (p99) grant position is bounded by the drain
	// weights: one interactive credit burst (4) can run ahead, then all
	// restart waiters drain inside one restart burst (8).
	p99 := victimPositions[len(victimPositions)-1]
	if p99 > 9 {
		t.Errorf("victim p99 grant position = %d, want <= 9 (order %v)", p99, order)
	}
	// And the flooder's tail lands after the victim's.
	if last := order[len(order)-1]; last.tenant != "bully" {
		t.Errorf("final grant %v, want the flooder's tail", last)
	}
	if c.InUse() != 0 || c.Queued() != 0 {
		t.Errorf("inUse=%d queued=%d after drain", c.InUse(), c.Queued())
	}
}

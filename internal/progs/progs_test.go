package progs

import (
	"testing"

	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/validate"
)

func TestFourteenBenchmarks(t *testing.T) {
	if n := len(All()); n != 14 {
		t.Fatalf("registered %d benchmarks, want 14", n)
	}
	order := []string{"Himeno", "HPCCG", "CG", "MG", "FT", "SP", "EP", "IS", "BT", "LU", "CoMD", "miniAMR", "AMG", "HACC"}
	for i, b := range All() {
		if b.Name != order[i] {
			t.Errorf("benchmark %d = %s, want %s (Table II order)", i, b.Name, order[i])
		}
	}
}

func TestGetAndMetadata(t *testing.T) {
	if Get("CG") == nil || Get("nosuch") != nil {
		t.Error("Get lookup broken")
	}
	for _, b := range All() {
		if b.Description == "" {
			t.Errorf("%s: empty description", b.Name)
		}
		if b.LOC() < 10 {
			t.Errorf("%s: implausible LOC %d", b.Name, b.LOC())
		}
		if len(b.Expected) == 0 {
			t.Errorf("%s: no expected critical variables", b.Name)
		}
		if _, err := b.Spec(0); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Iterations(b.DefaultScale) < 2 {
			t.Errorf("%s: needs at least 2 main-loop iterations", b.Name)
		}
	}
}

func TestSourcesCompileAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := interp.Compile(b.Source(0))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out, err := interp.RunProgram(mod)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out == "" {
				t.Error("benchmark produced no output")
			}
		})
	}
}

// analyzeBenchmark traces and analyzes one benchmark at its default scale.
func analyzeBenchmark(t *testing.T, b *Benchmark) (*core.Result, string) {
	t.Helper()
	src := b.Source(0)
	mod, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	recs, out, err := interp.TraceProgram(mod)
	if err != nil {
		t.Fatalf("%s: trace: %v", b.Name, err)
	}
	spec, err := b.Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Module = mod
	res, err := core.Analyze(recs, spec, opts)
	if err != nil {
		t.Fatalf("%s: analyze: %v", b.Name, err)
	}
	return res, out
}

// TestTableIICriticalVariables is the Table II reproduction: for every
// benchmark, AutoCheck detects exactly the expected critical variables
// with the expected dependency types.
func TestTableIICriticalVariables(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, _ := analyzeBenchmark(t, b)
			got := make(map[string]core.DependencyType)
			for _, c := range res.Critical {
				got[c.Name] = c.Type
			}
			for name, ty := range b.Expected {
				gty, ok := got[name]
				if !ok {
					t.Errorf("missing critical variable %s (%v); got %v", name, ty, res.CriticalNames())
					continue
				}
				if gty != ty {
					t.Errorf("%s classified %v, want %v", name, gty, ty)
				}
			}
			for name, ty := range got {
				if _, ok := b.Expected[name]; !ok {
					t.Errorf("unexpected critical variable %s (%v)", name, ty)
				}
			}
		})
	}
}

// TestValidationAllBenchmarks is the §VI-B reproduction: every benchmark
// restarts successfully from a fail-stop with the detected variables
// checkpointed, and dropping any one variable breaks a restart.
func TestValidationAllBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Source(0)
			mod, err := interp.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			recs, _, err := interp.TraceProgram(mod)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := b.Spec(0)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Module = mod
			res, err := core.Analyze(recs, spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			v, err := validate.New(mod, res, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := v.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sufficient {
				t.Errorf("restart with detected variables failed: %s", rep.Mismatch)
			}
			for name, nec := range rep.Necessary {
				if !nec {
					t.Errorf("detected variable %s is a false positive (restart succeeded without it)", name)
				}
			}
			if rep.FullSnapshotBytes <= rep.CheckpointBytes {
				t.Errorf("BLCR-like snapshot (%d B) should exceed AutoCheck checkpoint (%d B)",
					rep.FullSnapshotBytes, rep.CheckpointBytes)
			}
		})
	}
}

// TestScalesProduceSameVariables reproduces the paper's "With different
// inputs" observation (§VII): the detected variables do not change when
// the problem size changes.
func TestScalesProduceSameVariables(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() {
				t.Skip("short mode")
			}
			src := b.Source(b.LargeScale)
			mod, err := interp.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			recs, _, err := interp.TraceProgram(mod)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := b.Spec(b.LargeScale)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Module = mod
			res, err := core.Analyze(recs, spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]core.DependencyType)
			for _, c := range res.Critical {
				got[c.Name] = c.Type
			}
			for name, ty := range b.Expected {
				if got[name] != ty {
					t.Errorf("at scale %d: %s = %v, want %v", b.LargeScale, name, got[name], ty)
				}
			}
			if len(got) != len(b.Expected) {
				t.Errorf("at scale %d: %d critical vars, want %d (%v)",
					b.LargeScale, len(got), len(b.Expected), got)
			}
		})
	}
}

// TestOnlineAnalysisAllBenchmarks: the single-pass instrumentation-time
// analyzer (the paper's §IX future work) must agree with the offline
// trace-file pipeline on every benchmark.
func TestOnlineAnalysisAllBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, _ := analyzeBenchmark(t, b)
			offline := make(map[string]core.DependencyType)
			for _, c := range res.Critical {
				offline[c.Name] = c.Type
			}

			mod, err := interp.Compile(b.Source(0))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := b.Spec(0)
			if err != nil {
				t.Fatal(err)
			}
			col, err := core.NewCollector(spec, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			m := interp.New(mod)
			m.Tracer = col.Observe
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			onlineRes, err := col.Finish()
			if err != nil {
				t.Fatal(err)
			}
			online := make(map[string]core.DependencyType)
			for _, c := range onlineRes.Critical {
				online[c.Name] = c.Type
			}
			if len(online) != len(offline) {
				t.Fatalf("online %v != offline %v", online, offline)
			}
			for name, ty := range offline {
				if online[name] != ty {
					t.Errorf("%s: online %v, offline %v", name, online[name], ty)
				}
			}
		})
	}
}

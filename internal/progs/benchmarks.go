package progs

import "autocheck/internal/core"

// The 14 ports, in Table II order. Each gen function documents how the
// port preserves the original benchmark's main-loop dependency structure.

func init() {
	register(himeno())
	register(hpccg())
	register(cg())
	register(mg())
	register(ft())
	register(sp())
	register(ep())
	register(is())
	register(bt())
	register(lu())
	register(comd())
	register(miniamr())
	register(amg())
	register(hacc())
}

// himeno: Poisson equation solver measuring floating-point performance.
// The pressure field p is read by the Jacobi kernel and overwritten from
// the work array each iteration (WAR); n is the outer index.
func himeno() *Benchmark {
	return &Benchmark{
		Name:        "Himeno",
		Description: "Poisson equation solver (Jacobi kernel) measuring FP performance",
		Expected: map[string]core.DependencyType{
			"p": core.WAR, "n": core.Index,
		},
		Iterations:   func(scale int) int { return 4 + scale/8 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float p[@N@];
float wrk[@N@];
float bnd[@N@];
float gosa;
void jacobi(int n) {
  gosa = 0.0;
  for (int i = 1; i < n - 1; i++) {
    float s0 = p[i - 1] * 0.5 + p[i + 1] * 0.5;
    float ss = (s0 - p[i]) * bnd[i];
    gosa += ss * ss;
    wrk[i] = p[i] + 0.6 * ss;
  }
  for (int i = 1; i < n - 1; i++) {
    p[i] = wrk[i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    p[i] = i * 0.01;
    wrk[i] = 0.0;
    bnd[i] = 1.0;
  }
  for (int n = 0; n < @NIT@; n++) { // MCLR-BEGIN
    jacobi(@N@);
  } // MCLR-END
  print(p[1], p[@N@ / 2]);
  return 0;
}`, map[string]int{"N": scale * 8, "NIT": 4 + scale/8})
		},
	}
}

// hpccg: conjugate gradient for a 3D chimney domain. The solution, search
// and residual vectors plus rtrans and three accumulated phase timers are
// all read before being overwritten each iteration (WAR); k is the index.
func hpccg() *Benchmark {
	return &Benchmark{
		Name:        "HPCCG",
		Description: "Conjugate Gradient benchmark code for a 3D chimney domain",
		Expected: map[string]core.DependencyType{
			"t1": core.WAR, "t2": core.WAR, "t3": core.WAR,
			"r": core.WAR, "x": core.WAR, "p": core.WAR,
			"rtrans": core.WAR, "k": core.Index,
		},
		Iterations:   func(scale int) int { return 5 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float x[@N@];
float b[@N@];
float r[@N@];
float p[@N@];
float Ap[@N@];
float rtrans;
float t1;
float t2;
float t3;
float ddot(float u[], float v[], int n) {
  float s = 0.0;
  for (int i = 0; i < n; i++) {
    s += u[i] * v[i];
  }
  return s;
}
void waxpby(float w[], float alpha, float u[], float beta, float v[], int n) {
  for (int i = 0; i < n; i++) {
    w[i] = alpha * u[i] + beta * v[i];
  }
}
void matvec(float w[], float v[], int n) {
  for (int i = 1; i < n - 1; i++) {
    w[i] = 2.0 * v[i] - 0.5 * (v[i - 1] + v[i + 1]);
  }
  w[0] = 2.0 * v[0];
  w[n - 1] = 2.0 * v[n - 1];
}
int main() {
  for (int i = 0; i < @N@; i++) {
    x[i] = 0.0;
    b[i] = 1.0;
    r[i] = b[i];
    p[i] = r[i];
    Ap[i] = 0.0;
  }
  rtrans = ddot(r, r, @N@);
  t1 = 0.0;
  t2 = 0.0;
  t3 = 0.0;
  for (int k = 0; k < 5; k++) { // MCLR-BEGIN
    float oldrtrans = rtrans;
    rtrans = ddot(r, r, @N@);
    float beta = rtrans / oldrtrans;
    waxpby(p, 1.0, r, beta, p, @N@);
    t1 = t1 + 0.125;
    matvec(Ap, p, @N@);
    float alpha = rtrans / ddot(p, Ap, @N@);
    t2 = t2 + 0.25;
    waxpby(x, 1.0, x, alpha, p, @N@);
    waxpby(r, 1.0, r, 0.0 - alpha, Ap, @N@);
    t3 = t3 + 0.0625;
  } // MCLR-END
  print(rtrans, x[1], t1, t2, t3);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// cg: NPB Conjugate Gradient (the paper's Algorithm 2 case study). Only x
// carries a Write-After-Read across main-loop iterations (read by
// conj_grad via r = x, written by x = z/||z||); it is the index.
func cg() *Benchmark {
	return &Benchmark{
		Name:        "CG",
		Description: "NPB Conjugate Gradient with irregular memory access",
		Expected: map[string]core.DependencyType{
			"x": core.WAR, "it": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   48,
		gen: func(scale int) string {
			return expand(`
float x[@N@];
float z[@N@];
float p[@N@];
float q[@N@];
float r[@N@];
float A[@N@][@N@];
float conj_grad() {
  float rho = 0.0;
  for (int i = 0; i < @N@; i++) {
    z[i] = 0.0;
    r[i] = x[i];
    p[i] = r[i];
    rho += r[i] * r[i];
  }
  for (int cgit = 0; cgit < 5; cgit++) {
    float dpq = 0.0;
    for (int i = 0; i < @N@; i++) {
      q[i] = 0.0;
      for (int j = 0; j < @N@; j++) {
        q[i] += A[i][j] * p[j];
      }
      dpq += p[i] * q[i];
    }
    float alpha = rho / dpq;
    float rho0 = rho;
    rho = 0.0;
    for (int i = 0; i < @N@; i++) {
      z[i] += alpha * p[i];
      r[i] -= alpha * q[i];
      rho += r[i] * r[i];
    }
    float beta = rho / rho0;
    for (int i = 0; i < @N@; i++) {
      p[i] = r[i] + beta * p[i];
    }
  }
  float sum = 0.0;
  for (int i = 0; i < @N@; i++) {
    float d = x[i] - z[i];
    sum += d * d;
  }
  return sqrt(sum);
}
int main() {
  for (int i = 0; i < @N@; i++) {
    x[i] = 1.0;
    z[i] = 0.0;
    p[i] = 0.0;
    q[i] = 0.0;
    r[i] = 0.0;
    for (int j = 0; j < @N@; j++) {
      A[i][j] = 0.0;
    }
    A[i][i] = 2.0;
    if (i > 0) { A[i][i - 1] = 0.0 - 0.5; }
    if (i < @N@ - 1) { A[i][i + 1] = 0.0 - 0.5; }
  }
  float rnorm;
  float zeta;
  for (int it = 0; it < 4; it++) { // MCLR-BEGIN
    rnorm = conj_grad();
    float norm = 0.0;
    for (int i = 0; i < @N@; i++) {
      norm += z[i] * z[i];
    }
    norm = sqrt(norm);
    for (int i = 0; i < @N@; i++) {
      x[i] = z[i] / norm;
    }
    float xz = 0.0;
    for (int i = 0; i < @N@; i++) {
      xz += x[i] * z[i];
    }
    zeta = 10.0 + 1.0 / xz;
  } // MCLR-END
  print(x[1], x[2]);
  return 0;
}`, map[string]int{"N": scale})
		},
	}
}

// mg: NPB Multi-Grid. Both the solution u and the residual r carry state
// across V-cycles: each is read before its overwrite (WAR).
func mg() *Benchmark {
	return &Benchmark{
		Name:        "MG",
		Description: "NPB Multi-Grid on a sequence of meshes",
		Expected: map[string]core.DependencyType{
			"u": core.WAR, "r": core.WAR, "it": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float u[@N@];
float r[@N@];
float v[@N@];
void psinv(int n) {
  for (int i = 1; i < n - 1; i++) {
    u[i] = u[i] + 0.5 * r[i] + 0.125 * (r[i - 1] + r[i + 1]);
  }
}
void resid(int n) {
  for (int i = 1; i < n - 1; i++) {
    r[i] = v[i] - 2.0 * u[i] + 0.5 * (u[i - 1] + u[i + 1]) + 0.25 * r[i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    u[i] = 0.0;
    v[i] = i * 0.001;
    r[i] = v[i];
  }
  for (int it = 0; it < 4; it++) { // MCLR-BEGIN
    psinv(@N@);
    resid(@N@);
  } // MCLR-END
  print(u[1], r[1]);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// ft: NPB 3D FFT. The working array y evolves in place via the twiddle
// factors (WAR, read before overwrite); the per-iteration checksum sum is
// written in the loop and consumed after it (Outcome). The globals used
// only inside evolve/checksum reproduce the paper's FT Challenge-1
// scenario, which Options.IncludeGlobals automates.
func ft() *Benchmark {
	return &Benchmark{
		Name:        "FT",
		Description: "NPB discrete 3D Fast Fourier Transform",
		Expected: map[string]core.DependencyType{
			"y": core.WAR, "sum": core.Outcome, "kt": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float y[@N@];
float twiddle[@N@];
float xnt[@N@];
float sum;
void evolve(int n) {
  for (int i = 0; i < n; i++) {
    y[i] = y[i] * twiddle[i];
    xnt[i] = y[i];
  }
}
float checksum(int n) {
  float s = 0.0;
  for (int i = 0; i < n; i++) {
    s += xnt[i];
  }
  return s;
}
int main() {
  for (int i = 0; i < @N@; i++) {
    y[i] = 1.0 + i * 0.002;
    twiddle[i] = 1.0 - i * 0.0001;
    xnt[i] = 0.0;
  }
  sum = 0.0;
  for (int kt = 0; kt < 4; kt++) { // MCLR-BEGIN
    evolve(@N@);
    sum = checksum(@N@);
  } // MCLR-END
  print(sum, y[1]);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// sp: NPB Scalar Penta-diagonal solver. The solution u is read by
// compute_rhs before add() overwrites it (WAR); step is the index.
func sp() *Benchmark {
	return &Benchmark{
		Name:        "SP",
		Description: "NPB Scalar Penta-diagonal solver",
		Expected: map[string]core.DependencyType{
			"u": core.WAR, "step": core.Index,
		},
		Iterations:   func(scale int) int { return 5 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float u[@N@];
float rhs[@N@];
float forcing[@N@];
void compute_rhs(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = forcing[i] - 0.2 * u[i] + 0.05 * (u[i - 1] + u[i + 1]);
  }
}
void x_solve(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = rhs[i] * 0.8;
  }
}
void add(int n) {
  for (int i = 1; i < n - 1; i++) {
    u[i] = u[i] + rhs[i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    u[i] = 0.1 * i;
    rhs[i] = 0.0;
    forcing[i] = 0.3;
  }
  for (int step = 0; step < 5; step++) { // MCLR-BEGIN
    compute_rhs(@N@);
    x_solve(@N@);
    add(@N@);
  } // MCLR-END
  print(u[1], u[2]);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// ep: NPB Embarrassingly Parallel. The Gaussian-pair sums sx and sy and
// the annulus-count histogram q accumulate across iterations (WAR); k is
// the index. Pseudo-random pairs are derived deterministically from k,
// like the benchmark's reproducible random stream.
func ep() *Benchmark {
	return &Benchmark{
		Name:        "EP",
		Description: "NPB Embarrassingly Parallel random-number kernel",
		Expected: map[string]core.DependencyType{
			"sx": core.WAR, "sy": core.WAR, "q": core.WAR, "k": core.Index,
		},
		Iterations:   func(scale int) int { return scale * 16 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			// xx is EP's pseudo-random table: generated before the loop and
			// only read inside it, so it is never checkpointed by AutoCheck
			// but dominates a full-process image (the Table IV gap).
			return expand(`
float xx[@NBUF@];
int main() {
  float sx = 0.0;
  float sy = 0.0;
  float q[4];
  for (int i = 0; i < 4; i++) {
    q[i] = 0.0;
  }
  for (int i = 0; i < @NBUF@; i++) {
    xx[i] = ((i * 41 + 7) % 100) * 0.02 - 1.0;
  }
  for (int k = 0; k < @NIT@; k++) { // MCLR-BEGIN
    float x1 = xx[(k * 7 + 3) % @NBUF@];
    float x2 = xx[(k * 13 + 5) % @NBUF@];
    float t = x1 * x1 + x2 * x2;
    if (t <= 1.0) {
      sx = sx + x1;
      sy = sy + x2;
      int l = t * 3.9;
      q[l] = q[l] + 1.0;
    }
  } // MCLR-END
  print(sx, sy, q[0], q[1], q[2], q[3]);
  return 0;
}`, map[string]int{"NIT": scale * 16, "NBUF": scale * 64})
		},
	}
}

// is: NPB Integer Sort. Each iteration overwrites two elements of
// key_array and one slot of bucket_ptrs before the ranking phase reads the
// whole arrays (RAPO); passed_verification accumulates (WAR); iteration is
// the index.
func is() *Benchmark {
	return &Benchmark{
		Name:        "IS",
		Description: "NPB Integer Sort with random memory access",
		Expected: map[string]core.DependencyType{
			"passed_verification": core.WAR,
			"key_array":           core.RAPO,
			"bucket_ptrs":         core.RAPO,
			"iteration":           core.Index,
		},
		Iterations:   func(scale int) int { return 6 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
int key_array[@KA@];
int bucket_size[8];
int bucket_ptrs[8];
int passed_verification;
int main() {
  for (int i = 0; i < @KA@; i++) {
    key_array[i] = (i * 17 + 3) % 31;
  }
  for (int i = 0; i < 8; i++) {
    bucket_size[i] = 0;
    bucket_ptrs[i] = 0;
  }
  passed_verification = 0;
  for (int iteration = 0; iteration < 6; iteration++) { // MCLR-BEGIN
    key_array[iteration] = iteration;
    key_array[iteration + 8] = 31 - iteration;
    for (int i = 0; i < 8; i++) {
      bucket_size[i] = 0;
    }
    for (int i = 0; i < @KA@; i++) {
      bucket_size[key_array[i] % 8] += 1;
    }
    bucket_ptrs[iteration % 8] = bucket_size[iteration % 8];
    int total = 0;
    for (int i = 0; i < 8; i++) {
      total += bucket_ptrs[i];
    }
    if (total > 0) {
      passed_verification += 1;
    }
  } // MCLR-END
  print(passed_verification, key_array[0], key_array[8]);
  return 0;
}`, map[string]int{"KA": 16 + scale*8})
		},
	}
}

// bt: NPB Block Tri-diagonal solver. Same adi() shape as SP: u is read by
// the RHS computation and updated by add() (WAR); step is the index.
func bt() *Benchmark {
	return &Benchmark{
		Name:        "BT",
		Description: "NPB Block Tri-diagonal solver",
		Expected: map[string]core.DependencyType{
			"u": core.WAR, "step": core.Index,
		},
		Iterations:   func(scale int) int { return 5 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float u[@N@];
float rhs[@N@];
void compute_rhs(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = 0.0 - 0.1 * u[i] + 0.02 * (u[i - 1] + u[i + 1]);
  }
}
void x_solve(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = rhs[i] * 0.9;
  }
}
void y_solve(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = rhs[i] * 0.95;
  }
}
void z_solve(int n) {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = rhs[i] * 0.85;
  }
}
void add(int n) {
  for (int i = 1; i < n - 1; i++) {
    u[i] = u[i] + rhs[i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    u[i] = 1.0 + 0.01 * i;
    rhs[i] = 0.0;
  }
  for (int step = 0; step < 5; step++) { // MCLR-BEGIN
    compute_rhs(@N@);
    x_solve(@N@);
    y_solve(@N@);
    z_solve(@N@);
    add(@N@);
  } // MCLR-END
  print(u[1], u[@N@ / 2]);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// lu: NPB Lower-Upper Gauss-Seidel solver. Four arrays carry state across
// SSOR iterations — the residual rsd, the solution u, and the derived
// fields rho_i and qs are each read before their overwrite (WAR); istep is
// the index.
func lu() *Benchmark {
	return &Benchmark{
		Name:        "LU",
		Description: "NPB Lower-Upper Gauss-Seidel solver (SSOR)",
		Expected: map[string]core.DependencyType{
			"u": core.WAR, "rho_i": core.WAR, "qs": core.WAR,
			"rsd": core.WAR, "istep": core.Index,
		},
		Iterations:   func(scale int) int { return 5 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float u[@N@];
float rsd[@N@];
float rho_i[@N@];
float qs[@N@];
void rhs(int n) {
  for (int i = 1; i < n - 1; i++) {
    rsd[i] = rsd[i] * 0.7 + rho_i[i] * qs[i] * 0.1 + 0.01 * (u[i - 1] + u[i + 1]);
  }
}
void ssor_sweep(int n) {
  for (int i = 1; i < n - 1; i++) {
    u[i] = u[i] + 0.9 * rsd[i];
  }
  for (int i = 1; i < n - 1; i++) {
    rho_i[i] = 1.0 / (u[i] + 2.0);
    qs[i] = u[i] * u[i] * 0.5;
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    u[i] = 1.0 + 0.05 * i;
    rsd[i] = 0.5;
    rho_i[i] = 1.0 / (u[i] + 2.0);
    qs[i] = u[i] * u[i] * 0.5;
  }
  for (int istep = 0; istep < 5; istep++) { // MCLR-BEGIN
    rhs(@N@);
    ssor_sweep(@N@);
  } // MCLR-END
  print(u[1], rsd[1], rho_i[1], qs[1]);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// comd: ECP molecular dynamics proxy. The flattened SimFlat state sim
// (positions then momenta) is advanced in place by the velocity-Verlet
// timestep (WAR), and the perfTimer accumulators are read-modify-write
// (WAR); iStep is the index. Like the original, the bulk of the trace is
// initialization and logging, not the main loop (§VI-C).
func comd() *Benchmark {
	return &Benchmark{
		Name:        "CoMD",
		Description: "ECP molecular dynamics proxy (velocity-Verlet particle motion)",
		Expected: map[string]core.DependencyType{
			"sim": core.WAR, "perfTimer": core.WAR, "iStep": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float sim[@NN@];
float perfTimer[4];
float force[@N@];
void computeForce(int n) {
  for (int i = 1; i < n - 1; i++) {
    force[i] = 0.0 - 0.3 * sim[i] + 0.05 * (sim[i - 1] + sim[i + 1]);
  }
  force[0] = 0.0 - 0.3 * sim[0];
  force[n - 1] = 0.0 - 0.3 * sim[n - 1];
}
void timestep(int n) {
  computeForce(n);
  for (int i = 0; i < n; i++) {
    sim[n + i] = sim[n + i] + 0.05 * force[i];
    sim[i] = sim[i] + 0.1 * sim[n + i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    sim[i] = 0.01 * i;
    sim[@N@ + i] = 0.0;
    force[i] = 0.0;
  }
  for (int i = 0; i < 4; i++) {
    perfTimer[i] = 0.0;
  }
  float setup = 0.0;
  for (int pass = 0; pass < 40; pass++) {
    for (int i = 0; i < @N@; i++) {
      setup = setup + sim[i] * 0.001;
    }
    print(setup);
  }
  for (int iStep = 0; iStep < 4; iStep++) { // MCLR-BEGIN
    timestep(@N@);
    perfTimer[0] = perfTimer[0] + 1.0;
    perfTimer[1] = perfTimer[1] + 0.5;
  } // MCLR-END
  print(sim[1], sim[@N@ + 1], perfTimer[0]);
  return 0;
}`, map[string]int{"N": scale * 8, "NN": scale * 16})
		},
	}
}

// miniamr: ECP adaptive-mesh-refinement stencil proxy. The paper's row is
// dominated by accumulated timers and counters — all WAR — plus the block
// store (WAR) and the loop index ts. (The original also counts the `done`
// while-flag as Index; the port folds it into the for-loop condition.)
func miniamr() *Benchmark {
	exp := map[string]core.DependencyType{
		"blocks": core.WAR, "ts": core.Index,
	}
	for _, v := range []string{
		"timer_refine", "timer_comm", "timer_calc", "timer_cb",
		"total_blocks", "total_fp_adds", "total_fp_divs", "total_red",
		"num_refined", "num_comm", "counter_bc", "global_active",
		"tmax_v", "tmin_v",
	} {
		exp[v] = core.WAR
	}
	return &Benchmark{
		Name:         "miniAMR",
		Description:  "ECP 3D stencil with adaptive mesh refinement (timer/counter state)",
		Expected:     exp,
		Iterations:   func(scale int) int { return 5 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float blocks[@N@];
float timer_refine;
float timer_comm;
float timer_calc;
float timer_cb;
float total_blocks;
float total_fp_adds;
float total_fp_divs;
float total_red;
float num_refined;
float num_comm;
float counter_bc;
float global_active;
float tmax_v;
float tmin_v;
void stencil_calc(int n) {
  for (int i = 1; i < n - 1; i++) {
    blocks[i] = blocks[i] * 0.5 + 0.25 * (blocks[i - 1] + blocks[i + 1]) + 0.1;
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    blocks[i] = 0.1 * i;
  }
  timer_refine = 0.0;
  timer_comm = 0.0;
  timer_calc = 0.0;
  timer_cb = 0.0;
  total_blocks = 0.0;
  total_fp_adds = 0.0;
  total_fp_divs = 0.0;
  total_red = 0.0;
  num_refined = 0.0;
  num_comm = 0.0;
  counter_bc = 0.0;
  global_active = 1.0;
  tmax_v = 0.0;
  tmin_v = 1000.0;
  for (int ts = 0; ts < 5; ts++) { // MCLR-BEGIN
    stencil_calc(@N@);
    timer_refine = timer_refine + 0.3;
    timer_comm = timer_comm + 0.2;
    timer_calc = timer_calc + 1.1;
    timer_cb = timer_cb + 0.05;
    total_blocks = total_blocks + @N@;
    total_fp_adds = total_fp_adds + @N@ * 3;
    total_fp_divs = total_fp_divs + 1.0;
    total_red = total_red + 2.0;
    num_refined = num_refined + 1.0;
    num_comm = num_comm + 4.0;
    counter_bc = counter_bc + 2.0;
    global_active = global_active + 1.0;
    tmax_v = tmax_v * 0.5 + blocks[1];
    tmin_v = tmin_v * 0.5 + blocks[2] * 0.1;
  } // MCLR-END
  print(blocks[1], total_blocks, timer_calc, tmax_v, tmin_v);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// amg: ECP algebraic multigrid proxy. The preconditioner diagonal is
// rescaled in place after being read (WAR), the cumulative solver counters
// accumulate (WAR), and final_res_norm is the loop's Outcome. The
// relax→smooth→lower_bound call chain mirrors the nested-call depth the
// paper highlights for AMG (§III).
func amg() *Benchmark {
	return &Benchmark{
		Name:        "AMG",
		Description: "ECP algebraic multigrid solver for unstructured mesh physics",
		Expected: map[string]core.DependencyType{
			"diagonal": core.WAR, "cum_num_its": core.WAR,
			"cum_nnz_AP": core.WAR, "hypre_global_error": core.WAR,
			"final_res_norm": core.Outcome, "j": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float diagonal[@N@];
float vecx[@N@];
float vecb[@N@];
float cum_num_its;
float cum_nnz_AP;
float hypre_global_error;
float final_res_norm;
float lower_bound(float v) {
  if (v < 0.0001) {
    return 0.0001;
  }
  return v;
}
float smooth(int n) {
  float res = 0.0;
  for (int i = 0; i < n; i++) {
    float corr = (vecb[i] - vecx[i]) / lower_bound(diagonal[i]);
    vecx[i] = vecx[i] + 0.8 * corr;
    diagonal[i] = diagonal[i] * 1.001;
    res += corr * corr;
  }
  return sqrt(res);
}
float cycle(int n) {
  float res = smooth(n);
  res = res + smooth(n) * 0.5;
  return res;
}
float solve(int n) {
  for (int i = 0; i < n; i++) {
    vecx[i] = 0.0;
  }
  float res = 0.0;
  for (int sweep = 0; sweep < 3; sweep++) {
    res = cycle(n);
    cum_num_its = cum_num_its + 1.0;
  }
  cum_nnz_AP = cum_nnz_AP + n * 3;
  return res;
}
int main() {
  for (int i = 0; i < @N@; i++) {
    diagonal[i] = 2.0 + 0.01 * i;
    vecx[i] = 0.0;
    vecb[i] = 1.0 + 0.1 * i;
  }
  cum_num_its = 0.0;
  cum_nnz_AP = 0.0;
  hypre_global_error = 0.0;
  final_res_norm = 0.0;
  for (int j = 0; j < 4; j++) { // MCLR-BEGIN
    final_res_norm = solve(@N@);
    hypre_global_error = hypre_global_error + final_res_norm * 0.001;
  } // MCLR-END
  print(final_res_norm, cum_num_its, hypre_global_error);
  return 0;
}`, map[string]int{"N": scale * 8})
		},
	}
}

// hacc: Hardware Accelerated Cosmology Code. The flattened particle state
// (positions then velocities) is advanced in place by the kick-drift-kick
// symplectic stepper (WAR); step is the index.
func hacc() *Benchmark {
	return &Benchmark{
		Name:        "HACC",
		Description: "N-body cosmology framework (kick-drift-kick leapfrog)",
		Expected: map[string]core.DependencyType{
			"particles": core.WAR, "step": core.Index,
		},
		Iterations:   func(scale int) int { return 4 },
		DefaultScale: 8,
		LargeScale:   64,
		gen: func(scale int) string {
			return expand(`
float particles[@NN@];
float grad[@N@];
void gradient(int n) {
  for (int i = 1; i < n - 1; i++) {
    grad[i] = 0.0 - 0.2 * particles[i] + 0.04 * (particles[i - 1] + particles[i + 1]);
  }
  grad[0] = 0.0 - 0.2 * particles[0];
  grad[n - 1] = 0.0 - 0.2 * particles[n - 1];
}
void kick(int n, float dt) {
  gradient(n);
  for (int i = 0; i < n; i++) {
    particles[n + i] = particles[n + i] + dt * grad[i];
  }
}
void drift(int n, float dt) {
  for (int i = 0; i < n; i++) {
    particles[i] = particles[i] + dt * particles[n + i];
  }
}
int main() {
  for (int i = 0; i < @N@; i++) {
    particles[i] = 0.02 * i;
    particles[@N@ + i] = 0.001 * i;
    grad[i] = 0.0;
  }
  for (int step = 0; step < 4; step++) { // MCLR-BEGIN
    kick(@N@, 0.05);
    drift(@N@, 0.1);
    kick(@N@, 0.05);
  } // MCLR-END
  print(particles[1], particles[@N@ + 1]);
  return 0;
}`, map[string]int{"N": scale * 8, "NN": scale * 16})
		},
	}
}

// Package progs contains mini-C ports of the 14 HPC benchmarks the paper
// evaluates (Table II): Himeno, HPCCG, the eight NAS Parallel Benchmarks
// (CG, MG, FT, SP, EP, IS, BT, LU), the ECP proxy applications (CoMD,
// miniAMR, AMG), and HACC.
//
// Each port reproduces the original benchmark's main-computation-loop
// variable structure — which variables are defined before the loop, how
// they are read and written across iterations, and through which function
// calls — so that AutoCheck detects the same critical-variable set (same
// names, same dependency types) as the paper's Table II. Numerical scale
// is a parameter: the small default matches the paper's methodology of
// analyzing traces from small inputs, and the larger Table IV scale is
// used for the storage-cost comparison.
//
// Sources embed two markers that define the MCLR (main computation loop
// range) without hand-maintained line numbers: the line containing
// "MCLR-BEGIN" starts the range and the line containing "MCLR-END" ends it.
package progs

import (
	"fmt"
	"strconv"
	"strings"

	"autocheck/internal/core"
)

// Benchmark is one ported program plus its metadata.
type Benchmark struct {
	Name        string
	Description string
	// Expected is the critical-variable set AutoCheck must detect,
	// mirroring the corresponding Table II row.
	Expected map[string]core.DependencyType
	// Iterations returns the main-loop trip count at a given scale.
	Iterations func(scale int) int
	// DefaultScale is the analysis scale (Table II/III); LargeScale is the
	// checkpoint-storage scale (Table IV).
	DefaultScale int
	LargeScale   int
	gen          func(scale int) string
}

// Source renders the program at the given scale (0 means DefaultScale).
func (b *Benchmark) Source(scale int) string {
	if scale <= 0 {
		scale = b.DefaultScale
	}
	return b.gen(scale)
}

// LOC counts non-blank source lines at the default scale.
func (b *Benchmark) LOC() int {
	n := 0
	for _, line := range strings.Split(b.Source(0), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Spec locates the main computation loop from the MCLR markers.
func (b *Benchmark) Spec(scale int) (core.LoopSpec, error) {
	src := b.Source(scale)
	start, end := 0, 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "MCLR-BEGIN") {
			start = i + 1
		}
		if strings.Contains(line, "MCLR-END") {
			end = i + 1
		}
	}
	if start == 0 || end == 0 || end < start {
		return core.LoopSpec{}, fmt.Errorf("progs: %s: bad MCLR markers (start=%d end=%d)", b.Name, start, end)
	}
	return core.LoopSpec{Function: "main", StartLine: start, EndLine: end}, nil
}

// expand substitutes @NAME@ placeholders in a source template.
func expand(src string, vars map[string]int) string {
	for k, v := range vars {
		src = strings.ReplaceAll(src, "@"+k+"@", strconv.Itoa(v))
	}
	return src
}

var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	return b
}

// All returns the 14 benchmarks in Table II order.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	return out
}

// Get returns a benchmark by name, or nil.
func Get(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

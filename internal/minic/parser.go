package minic

import "strconv"

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, describe(p.cur()))
	}
	return p.next(), nil
}

func describe(t Token) string {
	if t.Kind == EOF {
		return "end of file"
	}
	return "'" + t.Text + "'"
}

func isTypeKw(k Kind) bool { return k == KwInt || k == KwFloat || k == KwVoid }

func baseOf(k Kind) BaseType {
	switch k {
	case KwInt:
		return BaseInt
	case KwFloat:
		return BaseFloat
	default:
		return BaseVoid
	}
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		if !isTypeKw(p.cur().Kind) {
			return nil, errf(p.cur().Pos, "expected declaration, found %s", describe(p.cur()))
		}
		typTok := p.next()
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn, err := p.parseFuncRest(typTok, nameTok)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		if typTok.Kind == KwVoid {
			return nil, errf(typTok.Pos, "variable %s cannot have type void", nameTok.Text)
		}
		decls, err := p.parseVarDeclRest(typTok, nameTok)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, decls...)
	}
	return f, nil
}

// parseVarDeclRest parses "name dims (= init)? (, name dims (= init)?)* ;"
// after the base type and first name were consumed.
func (p *Parser) parseVarDeclRest(typTok, nameTok Token) ([]*VarDecl, error) {
	base := baseOf(typTok.Kind)
	var decls []*VarDecl
	for {
		dims, err := p.parseDims(false)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: nameTok.Text, Type: TypeSpec{Base: base, Dims: dims}, Pos: nameTok.Pos}
		if p.accept(Assign) {
			if d.Type.IsArray() {
				return nil, errf(nameTok.Pos, "array %s cannot have a scalar initializer", d.Name)
			}
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decls = append(decls, d)
		if !p.accept(Comma) {
			break
		}
		nameTok, err = p.expect(IDENT)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return decls, nil
}

// parseDims parses zero or more "[n]" suffixes. If param is true the first
// dimension may be empty ("[]").
func (p *Parser) parseDims(param bool) ([]int64, error) {
	var dims []int64
	first := true
	for p.accept(LBracket) {
		if param && first && p.at(RBracket) {
			p.next()
			dims = append(dims, 0)
			first = false
			continue
		}
		t, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		n, err2 := strconv.ParseInt(t.Text, 10, 64)
		if err2 != nil || n <= 0 {
			return nil, errf(t.Pos, "invalid array dimension %q", t.Text)
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		dims = append(dims, n)
		first = false
	}
	return dims, nil
}

func (p *Parser) parseFuncRest(typTok, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: nameTok.Text, Ret: baseOf(typTok.Kind), Pos: nameTok.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		for {
			if !isTypeKw(p.cur().Kind) || p.cur().Kind == KwVoid {
				// Allow C-style "f(void)".
				if p.cur().Kind == KwVoid && len(fn.Params) == 0 {
					p.next()
					break
				}
				return nil, errf(p.cur().Pos, "expected parameter type, found %s", describe(p.cur()))
			}
			pt := p.next()
			// Optional '*' for pointer parameters: "int *p" is sugar for
			// "int p[]" (both decay to a pointer).
			star := p.accept(Star)
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			dims, err := p.parseDims(true)
			if err != nil {
				return nil, err
			}
			if star {
				dims = append([]int64{0}, dims...)
			}
			fn.Params = append(fn.Params, &ParamDecl{
				Name: pn.Text,
				Type: TypeSpec{Base: baseOf(pt.Kind), Dims: dims},
				Pos:  pn.Pos,
			})
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // RBrace
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case Semi:
		p.next()
		return nil, nil
	case LBrace:
		return p.parseBlock()
	case KwInt, KwFloat:
		return p.parseDeclStmt()
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		t := p.next()
		st := &ReturnStmt{Pos: t.Pos}
		if !p.at(Semi) {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return st, nil
	case KwBreak:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	}
	st, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	typTok := p.next()
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	decls, err := p.parseVarDeclRest(typTok, nameTok)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls, Pos: typTok.Pos}, nil
}

// parseSimple parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon, so it can be used in for-headers).
func (p *Parser) parseSimple() (Stmt, error) {
	// Prefix increment/decrement: ++x and --x are statements.
	if p.at(Inc) || p.at(Dec) {
		op := p.next()
		x, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return &IncDecStmt{LHS: x, Op: op.Kind, Pos: op.Pos}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		op := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: x, Op: op.Kind, RHS: rhs, Pos: op.Pos}, nil
	case Inc, Dec:
		op := p.next()
		return &IncDecStmt{LHS: x, Op: op.Kind, Pos: op.Pos}, nil
	}
	return &ExprStmt{X: x, Pos: x.ExprPos()}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: t.Pos}
	if !p.at(Semi) {
		var err error
		if p.cur().Kind == KwInt || p.cur().Kind == KwFloat {
			st.Init, err = p.parseDeclStmt() // consumes the ';'
		} else {
			st.Init, err = p.parseSimple()
			if err == nil {
				_, err = p.expect(Semi)
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		p.next()
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	EqEq:   3, NotEq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, exprBase: exprBase{Pos: op.Pos}}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Not:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Kind, X: x, exprBase: exprBase{Pos: op.Pos}}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(LBracket) {
		t := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		x = &IndexExpr{X: x, Idx: idx, exprBase: exprBase{Pos: t.Pos}}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &IntLit{Val: v, exprBase: exprBase{Pos: t.Pos}}, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid float literal %q", t.Text)
		}
		return &FloatLit{Val: v, exprBase: exprBase{Pos: t.Pos}}, nil
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			call := &CallExpr{Name: t.Text, exprBase: exprBase{Pos: t.Pos}}
			if !p.accept(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
				if _, err := p.expect(RParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, exprBase: exprBase{Pos: t.Pos}}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}

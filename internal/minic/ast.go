package minic

import "autocheck/internal/ir"

// BaseType is a mini-C base type.
type BaseType int

// Base types.
const (
	BaseInt BaseType = iota
	BaseFloat
	BaseVoid
)

func (b BaseType) String() string {
	switch b {
	case BaseInt:
		return "int"
	case BaseFloat:
		return "float"
	default:
		return "void"
	}
}

// TypeSpec is a declared type: a base type plus array dimensions
// (outermost first). A parameter's first dimension may be 0, meaning
// "unsized" (C array-parameter decay).
type TypeSpec struct {
	Base BaseType
	Dims []int64
}

// IsArray reports whether the spec has any dimensions.
func (t TypeSpec) IsArray() bool { return len(t.Dims) > 0 }

// File is a parsed translation unit.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares one variable (global or local).
type VarDecl struct {
	Name string
	Type TypeSpec
	Init Expr    // optional; nil for arrays and uninitialized scalars
	Sym  *Symbol // resolved by the checker
	Pos  Pos
}

// ParamDecl declares one function parameter.
type ParamDecl struct {
	Name string
	Type TypeSpec // Dims[0] == 0 for unsized array params
	Sym  *Symbol  // resolved by the checker
	Pos  Pos
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    BaseType
	Params []*ParamDecl
	Body   *BlockStmt
	Pos    Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares local variables.
type DeclStmt struct {
	Decls []*VarDecl
	Pos   Pos
}

// AssignStmt is lhs op= rhs (op may be plain '=').
type AssignStmt struct {
	LHS Expr
	Op  Kind // Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign
	RHS Expr
	Pos Pos
}

// IncDecStmt is lhs++ or lhs--.
type IncDecStmt struct {
	LHS Expr
	Op  Kind // Inc or Dec
	Pos Pos
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt, AssignStmt or IncDecStmt
	Cond Expr
	Post Stmt
	Body Stmt
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X   Expr // may be nil
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node. After semantic analysis every expression
// carries its resolved IR type in Typ (set by the checker).
type Expr interface {
	exprNode()
	// ResolvedType returns the IR type assigned during checking.
	ResolvedType() ir.Type
	// ExprPos returns the source position.
	ExprPos() Pos
}

type exprBase struct {
	Typ ir.Type
	Pos Pos
}

func (e *exprBase) ResolvedType() ir.Type { return e.Typ }
func (e *exprBase) ExprPos() Pos          { return e.Pos }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Val float64
}

// Ident references a variable.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol // resolved by the checker
}

// IndexExpr is x[i] (possibly chained for multi-dim arrays).
type IndexExpr struct {
	exprBase
	X   Expr
	Idx Expr
}

// CallExpr calls a user function or builtin.
type CallExpr struct {
	exprBase
	Name    string
	Args    []Expr
	Decl    *FuncDecl // resolved user function (nil for builtins)
	Builtin string    // builtin name if this is a builtin call
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	exprBase
	Op Kind
	X  Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	exprBase
	Op   Kind
	X, Y Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// SymbolKind distinguishes storage classes.
type SymbolKind int

// Symbol kinds.
const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
)

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type ir.Type // value type: scalar, array, or pointer (decayed params)
	Decl Pos
}

// Package minic implements the mini-C frontend: a lexer, a recursive
// descent parser, and a semantic analyzer for a small C subset that is
// sufficient to port the paper's 14 HPC benchmarks (scalars, fixed-size
// multi-dimensional arrays, functions with array/pointer parameters,
// for/while/if control flow, and arithmetic). It is the reproduction's
// stand-in for the Clang frontend: AutoCheck itself never sees source
// code, only the dynamic IR trace, so any frontend that lowers to the
// LLVM-3.4-shaped IR of internal/ir exercises the same analysis.
package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwBreak
	KwContinue
	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	Inc
	Dec
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal", FLOATLIT: "float literal",
	KwInt: "'int'", KwFloat: "'float'", KwVoid: "'void'", KwIf: "'if'", KwElse: "'else'",
	KwFor: "'for'", KwWhile: "'while'", KwReturn: "'return'", KwBreak: "'break'", KwContinue: "'continue'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'", LBracket: "'['", RBracket: "']'",
	Semi: "';'", Comma: "','", Assign: "'='", PlusAssign: "'+='", MinusAssign: "'-='",
	StarAssign: "'*='", SlashAssign: "'/='", Inc: "'++'", Dec: "'--'",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Percent: "'%'",
	Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	AndAnd: "'&&'", OrOr: "'||'", Not: "'!'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "float": KwFloat, "double": KwFloat, "void": KwVoid,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Error is a frontend diagnostic with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer tokenizes mini-C source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. Lines are 1-based.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.off
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.off < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
			isFloat = true
			l.advance()
			if l.off < len(l.src) && (l.peek() == '+' || l.peek() == '-') {
				l.advance()
			}
			if !isDigit(l.peek()) {
				return Token{}, errf(pos, "malformed exponent in numeric literal")
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if isFloat {
			return Token{Kind: FLOATLIT, Text: text, Pos: pos}, nil
		}
		return Token{Kind: INTLIT, Text: text, Pos: pos}, nil
	}
	l.advance()
	two := func(second byte, withKind, withoutKind Kind) (Token, error) {
		if l.off < len(l.src) && l.peek() == second {
			l.advance()
			return Token{Kind: withKind, Text: string(c) + string(second), Pos: pos}, nil
		}
		return Token{Kind: withoutKind, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Text: ")", Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Text: "}", Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Text: "[", Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Text: "]", Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Text: ";", Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Text: ",", Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Text: "%", Pos: pos}, nil
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Not)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '+':
		if l.off < len(l.src) && l.peek() == '+' {
			l.advance()
			return Token{Kind: Inc, Text: "++", Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if l.off < len(l.src) && l.peek() == '-' {
			l.advance()
			return Token{Kind: Dec, Text: "--", Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus)
	case '*':
		return two('=', StarAssign, Star)
	case '/':
		return two('=', SlashAssign, Slash)
	case '&':
		if l.off < len(l.src) && l.peek() == '&' {
			l.advance()
			return Token{Kind: AndAnd, Text: "&&", Pos: pos}, nil
		}
	case '|':
		if l.off < len(l.src) && l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Text: "||", Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// FormatTokens renders tokens for debugging.
func FormatTokens(toks []Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.Text != "" {
			b.WriteString(t.Text)
		} else {
			b.WriteString(t.Kind.String())
		}
	}
	return b.String()
}

package minic

import (
	"strings"
	"testing"
	"testing/quick"

	"autocheck/internal/ir"
)

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("int a = 10; // comment\nfloat b; /* block\ncomment */ a += 2.5e3;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwInt, IDENT, Assign, INTLIT, Semi, KwFloat, IDENT, Semi, IDENT, PlusAssign, FLOATLIT, Semi, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %s", len(toks), len(kinds), FormatTokens(toks))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("int a;\n  b = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].Pos)
	}
	// 'b' is on line 2 col 3.
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("'b' at %v, want 2:3", toks[3].Pos)
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := Tokenize("== != <= >= < > && || ! ++ -- += -= *= /= %")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{EqEq, NotEq, Le, Ge, Lt, Gt, AndAnd, OrOr, Not, Inc, Dec, PlusAssign, MinusAssign, StarAssign, SlashAssign, Percent, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "1e", "&", "|"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestLexerDoubleKeyword(t *testing.T) {
	toks, err := Tokenize("double x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwFloat {
		t.Errorf("double lexes as %s, want 'float' keyword", toks[0].Kind)
	}
}

// The paper's Fig. 4 example code, transliterated to mini-C.
const fig4Source = `
void foo(int *p, int *q) {
  for (int i = 0; i < 10; ++i) {
    q[i] = p[i] * 2;
  }
}
int main() {
  int a[10];
  int b[10];
  int sum = 0;
  int s = 0;
  int r = 1;
  for (int i = 0; i < 10; ++i) {
    a[i] = 0;
    b[i] = 0;
  }
  for (int it = 0; it < 10; ++it) {
    int m;
    s = it + 1;
    a[it] = s * r;
    foo(a, b);
    r++;
    m = a[it] + b[it];
    sum = m;
  }
  print(sum);
  return 0;
}
`

func TestParseFig4(t *testing.T) {
	f, err := Parse(fig4Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("parsed %d functions, want 2", len(f.Funcs))
	}
	foo := f.Funcs[0]
	if foo.Name != "foo" || len(foo.Params) != 2 {
		t.Errorf("foo = %+v", foo)
	}
	if foo.Params[0].Type.Dims[0] != 0 {
		t.Errorf("pointer param should have unsized dim, got %v", foo.Params[0].Type.Dims)
	}
	main := f.Funcs[1]
	if main.Name != "main" || main.Ret != BaseInt {
		t.Errorf("main = %+v", main)
	}
}

func TestCheckFig4(t *testing.T) {
	f, err := CompileSource(fig4Source)
	if err != nil {
		t.Fatal(err)
	}
	// The a[10] declaration resolves to [10 x i64].
	main := f.Funcs[1]
	decl := main.Body.Stmts[0].(*DeclStmt)
	if decl.Decls[0].Name != "a" {
		t.Fatalf("first decl is %s", decl.Decls[0].Name)
	}
	typ := ResolveType(decl.Decls[0].Type)
	if typ.String() != "[10 x i64]" {
		t.Errorf("a resolves to %s", typ)
	}
}

func TestResolveType(t *testing.T) {
	cases := []struct {
		spec TypeSpec
		want string
	}{
		{TypeSpec{Base: BaseInt}, "i64"},
		{TypeSpec{Base: BaseFloat}, "f64"},
		{TypeSpec{Base: BaseVoid}, "void"},
		{TypeSpec{Base: BaseInt, Dims: []int64{10}}, "[10 x i64]"},
		{TypeSpec{Base: BaseFloat, Dims: []int64{3, 4}}, "[3 x [4 x f64]]"},
		{TypeSpec{Base: BaseFloat, Dims: []int64{0}}, "f64*"},
		{TypeSpec{Base: BaseFloat, Dims: []int64{0, 8}}, "[8 x f64]*"},
	}
	for _, c := range cases {
		if got := ResolveType(c.spec).String(); got != c.want {
			t.Errorf("ResolveType(%+v) = %s, want %s", c.spec, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("int main() { int x; x = 1 + 2 * 3 < 4 && 5 == 6; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	asg := f.Funcs[0].Body.Stmts[1].(*AssignStmt)
	top, ok := asg.RHS.(*BinaryExpr)
	if !ok || top.Op != AndAnd {
		t.Fatalf("top op = %v, want &&", asg.RHS)
	}
	lt, ok := top.X.(*BinaryExpr)
	if !ok || lt.Op != Lt {
		t.Fatalf("left of && = %v, want <", top.X)
	}
	add, ok := lt.X.(*BinaryExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("left of < = %v, want +", lt.X)
	}
	if mul, ok := add.Y.(*BinaryExpr); !ok || mul.Op != Star {
		t.Fatalf("right of + = %v, want *", add.Y)
	}
}

func TestParseMultiDimIndex(t *testing.T) {
	f, err := CompileSource("int main() { float u[4][5]; u[1][2] = 3.0; float x; x = u[0][0]; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	asg := f.Funcs[0].Body.Stmts[1].(*AssignStmt)
	idx, ok := asg.LHS.(*IndexExpr)
	if !ok {
		t.Fatalf("LHS = %T", asg.LHS)
	}
	if !ir.IsFloat(idx.ResolvedType()) {
		t.Errorf("u[1][2] type = %s, want f64", idx.ResolvedType())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main() { return 0 }",            // missing semi
		"int main() { if x { } return 0; }",  // missing paren
		"int main() { for (;;) }",            // missing body
		"int 3x;",                            // bad name
		"int a[0];",                          // zero dim
		"void main() { }",                    // fine parse-wise; sema checks elsewhere
		"int main() { x = ; return 0; }",     // missing expr
		"int main() { int a[2] = 5; }",       // array initializer
		"banana main() { }",                  // unknown type
		"int main() { return 0; } int main(", // truncated
	}
	for _, src := range cases[0:5] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	for _, src := range cases[6:] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"int main() { x = 1; return 0; }", "undeclared"},
		{"int main() { int x; int x; return 0; }", "redeclared"},
		{"int main() { int a[3]; a = 1; return 0; }", "cannot assign"},
		{"int main() { int x; x = 1 % 2.0; return 0; }", "integer operands"},
		{"int main() { float f; f = f[2]; return 0; }", "cannot index"},
		{"int main() { break; return 0; }", "break outside loop"},
		{"int main() { continue; return 0; }", "continue outside loop"},
		{"void f() { return 1; } int main() { return 0; }", "void function"},
		{"int f() { return; } int main() { return 0; }", "must return"},
		{"int main() { foo(); return 0; }", "undeclared function"},
		{"void foo(int x) {} int main() { foo(1, 2); return 0; }", "takes 1 arguments"},
		{"void foo(float p[]) {} int main() { int a[4]; foo(a); return 0; }", "cannot pass"},
		{"int main() { print(); sqrt(1, 2); return 0; }", "takes 1 arguments"},
		{"int main() { int a[2]; print(a); return 0; }", "must be scalar"},
		{"int x; int x; int main() { return 0; }", "redeclared"},
		{"int foo() { return 1; } int foo() { return 2; } int main() { return 0; }", "redeclared"},
		{"int print() { return 1; } int main() { return 0; }", "shadows a builtin"},
		{"int notmain() { return 0; }", "no main"},
		{"int main(int argc) { return 0; }", "no parameters"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src)
		if err == nil {
			t.Errorf("CompileSource(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("CompileSource(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestSemaPromotion(t *testing.T) {
	f, err := CompileSource("int main() { float x; int i; i = 2; x = i * 1.5; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	asg := f.Funcs[0].Body.Stmts[3].(*AssignStmt)
	if !ir.IsFloat(asg.RHS.ResolvedType()) {
		t.Errorf("i * 1.5 type = %s, want f64", asg.RHS.ResolvedType())
	}
}

func TestSemaShadowing(t *testing.T) {
	// Inner scopes may shadow outer names (Challenge 2 scenario).
	src := `int sum;
void f() { int sum; sum = 1; }
int main() { sum = 2; f(); { int sum; sum = 3; } return 0; }`
	if _, err := CompileSource(src); err != nil {
		t.Fatalf("shadowing should be legal: %v", err)
	}
}

func TestSemaBuiltins(t *testing.T) {
	src := `int main() {
  float x;
  x = sqrt(2.0) + pow(2.0, 3.0) + fabs(0.0 - 1.0) + exp(1.0);
  int r;
  r = rand();
  print(x, r);
  return 0;
}`
	if _, err := CompileSource(src); err != nil {
		t.Fatal(err)
	}
}

func TestSemaGlobalInitializerRejected(t *testing.T) {
	if _, err := CompileSource("int g = 5; int main() { return 0; }"); err == nil {
		t.Error("global initializer should be rejected")
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		"int main() { for (;;) { break; } return 0; }",
		"int main() { int i; for (i = 0; i < 3; i++) {} return 0; }",
		"int main() { for (int i = 0; i < 3; ++i) { continue; } return 0; }",
		"int main() { int i; i = 0; while (i < 3) { i += 1; } return 0; }",
	}
	for _, src := range srcs {
		if _, err := CompileSource(src); err != nil {
			t.Errorf("CompileSource(%q): %v", src, err)
		}
	}
}

func TestPointerStarParam(t *testing.T) {
	f, err := CompileSource("void foo(int *p) { p[0] = 1; } int main() { int a[4]; foo(a); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	pt := ResolveType(f.Funcs[0].Params[0].Type)
	if pt.String() != "i64*" {
		t.Errorf("int *p resolves to %s, want i64*", pt)
	}
}

// Property: the lexer never loses or merges identifier/number tokens for
// generated well-formed declarations.
func TestQuickLexerIdentifiers(t *testing.T) {
	f := func(n uint8) bool {
		names := make([]string, 0, n%16+1)
		var src strings.Builder
		for i := 0; i <= int(n%16); i++ {
			name := "v" + strings.Repeat("x", i+1)
			names = append(names, name)
			src.WriteString("int " + name + ";\n")
		}
		toks, err := Tokenize(src.String())
		if err != nil {
			return false
		}
		got := 0
		for _, tok := range toks {
			if tok.Kind == IDENT {
				if tok.Text != names[got] {
					return false
				}
				got++
			}
		}
		return got == len(names)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommaDeclarations(t *testing.T) {
	f, err := CompileSource("int main() { int a = 1, b = 2, c; c = a + b; print(c); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := f.Funcs[0].Body.Stmts[0].(*DeclStmt)
	if len(decl.Decls) != 3 {
		t.Fatalf("comma declaration produced %d decls, want 3", len(decl.Decls))
	}
	if decl.Decls[2].Init != nil {
		t.Error("c should have no initializer")
	}
}

func TestParseDanglingElse(t *testing.T) {
	f, err := CompileSource(`int main() {
  int x = 0;
  if (1) if (0) x = 1; else x = 2;
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	outer := f.Funcs[0].Body.Stmts[1].(*IfStmt)
	if outer.Else != nil {
		t.Error("else must bind to the inner if")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestErrorPositionsReported(t *testing.T) {
	_, err := CompileSource("int main() {\n  int x;\n  y = 1;\n  return 0;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "3:") {
		t.Errorf("error %q should carry line 3", err)
	}
}

func TestVoidParamSyntax(t *testing.T) {
	if _, err := CompileSource("int f(void) { return 1; } int main() { print(f()); return 0; }"); err != nil {
		t.Errorf("f(void): %v", err)
	}
}

func TestFormatTokensOutput(t *testing.T) {
	toks, err := Tokenize("int a = 1;")
	if err != nil {
		t.Fatal(err)
	}
	s := FormatTokens(toks)
	if !strings.Contains(s, "int a = 1 ;") {
		t.Errorf("FormatTokens = %q", s)
	}
}

func TestUnaryChains(t *testing.T) {
	f, err := CompileSource("int main() { int x; x = - - 5; x = !!x; print(x); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	_ = f
}

func TestTypeSpecIsArray(t *testing.T) {
	if (TypeSpec{Base: BaseInt}).IsArray() {
		t.Error("scalar spec reported as array")
	}
	if !(TypeSpec{Base: BaseInt, Dims: []int64{3}}).IsArray() {
		t.Error("array spec not reported as array")
	}
}

func TestBaseTypeString(t *testing.T) {
	for b, want := range map[BaseType]string{BaseInt: "int", BaseFloat: "float", BaseVoid: "void"} {
		if b.String() != want {
			t.Errorf("%v.String() = %q", b, b.String())
		}
	}
}

func TestKindStringFallback(t *testing.T) {
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

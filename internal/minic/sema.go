package minic

import (
	"fmt"

	"autocheck/internal/ir"
)

// BuiltinSig describes a runtime builtin function.
type BuiltinSig struct {
	Name     string
	Ret      ir.Type
	Params   []ir.Type // nil means variadic scalars (print)
	Variadic bool
}

// Builtins is the runtime library visible to mini-C programs. Builtins
// appear in traces as the paper's Fig. 6(a) single-'Call'-instruction form.
var Builtins = map[string]BuiltinSig{
	"print": {Name: "print", Ret: ir.Void, Variadic: true},
	"sqrt":  {Name: "sqrt", Ret: ir.F64, Params: []ir.Type{ir.F64}},
	"fabs":  {Name: "fabs", Ret: ir.F64, Params: []ir.Type{ir.F64}},
	"pow":   {Name: "pow", Ret: ir.F64, Params: []ir.Type{ir.F64, ir.F64}},
	"exp":   {Name: "exp", Ret: ir.F64, Params: []ir.Type{ir.F64}},
	"rand":  {Name: "rand", Ret: ir.I64, Params: []ir.Type{}},
	// SPMD identity for BSP multi-rank execution (internal/bsp): the rank
	// of the executing machine and the world size.
	"myrank": {Name: "myrank", Ret: ir.I64, Params: []ir.Type{}},
	"nranks": {Name: "nranks", Ret: ir.I64, Params: []ir.Type{}},
}

// ResolveType converts a TypeSpec to an IR value type. Unsized first
// dimensions (parameters) become pointers (C decay).
func ResolveType(t TypeSpec) ir.Type {
	var base ir.Type
	switch t.Base {
	case BaseInt:
		base = ir.I64
	case BaseFloat:
		base = ir.F64
	default:
		base = ir.Void
	}
	if len(t.Dims) == 0 {
		return base
	}
	// Fold inner dimensions right-to-left.
	inner := base
	for i := len(t.Dims) - 1; i >= 1; i-- {
		inner = ir.Array(inner, t.Dims[i])
	}
	if t.Dims[0] == 0 {
		return ir.Ptr(inner)
	}
	return ir.Array(inner, t.Dims[0])
}

// checker holds semantic-analysis state.
type checker struct {
	file   *File
	funcs  map[string]*FuncDecl
	scopes []map[string]*Symbol
	fn     *FuncDecl
	loop   int // loop nesting depth for break/continue
}

// Check performs semantic analysis: it resolves identifiers, assigns IR
// types to every expression, and validates statements. The File is
// annotated in place.
func Check(f *File) error {
	c := &checker{file: f, funcs: make(map[string]*FuncDecl)}
	c.push()
	for _, g := range f.Globals {
		g.Sym = &Symbol{Name: g.Name, Kind: SymGlobal, Type: ResolveType(g.Type), Decl: g.Pos}
		if err := c.declare(g.Sym); err != nil {
			return err
		}
		if g.Init != nil {
			return errf(g.Pos, "global %s: initializers are not supported for globals; assign in main before the loop", g.Name)
		}
	}
	for _, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return errf(fn.Pos, "function %s redeclared", fn.Name)
		}
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			return errf(fn.Pos, "function %s shadows a builtin", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	if c.funcs["main"] == nil {
		return errf(Pos{Line: 1, Col: 1}, "program has no main function")
	}
	if len(c.funcs["main"].Params) != 0 {
		return errf(c.funcs["main"].Pos, "main must take no parameters")
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(s *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if prev, ok := top[s.Name]; ok {
		return errf(s.Decl, "%s redeclared in this scope (previous at %s)", s.Name, prev.Decl)
	}
	top[s.Name] = s
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		if p.Type.Base == BaseVoid {
			return errf(p.Pos, "parameter %s cannot be void", p.Name)
		}
		p.Sym = &Symbol{Name: p.Name, Kind: SymParam, Type: ResolveType(p.Type), Decl: p.Pos}
		if err := c.declare(p.Sym); err != nil {
			return err
		}
	}
	return c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		for _, d := range st.Decls {
			typ := ResolveType(d.Type)
			d.Sym = &Symbol{Name: d.Name, Kind: SymLocal, Type: typ, Decl: d.Pos}
			if err := c.declare(d.Sym); err != nil {
				return err
			}
			if d.Init != nil {
				it, err := c.checkExpr(d.Init)
				if err != nil {
					return err
				}
				if !convertible(it, typ) {
					return errf(d.Pos, "cannot initialize %s (%s) with %s", d.Name, typ, it)
				}
			}
		}
		return nil
	case *AssignStmt:
		lt, err := c.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		rt, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if !convertible(rt, lt) {
			return errf(st.Pos, "cannot assign %s to %s", rt, lt)
		}
		if st.Op != Assign && !isScalar(lt) {
			return errf(st.Pos, "compound assignment needs a scalar left-hand side")
		}
		return nil
	case *IncDecStmt:
		lt, err := c.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		if !ir.IsInt(lt) && !ir.IsFloat(lt) {
			return errf(st.Pos, "++/-- needs a scalar operand, got %s", lt)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		want := ResolveType(TypeSpec{Base: c.fn.Ret})
		if st.X == nil {
			if !ir.IsVoid(want) {
				return errf(st.Pos, "function %s must return %s", c.fn.Name, want)
			}
			return nil
		}
		if ir.IsVoid(want) {
			return errf(st.Pos, "void function %s cannot return a value", c.fn.Name)
		}
		got, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if !convertible(got, want) {
			return errf(st.Pos, "cannot return %s from function returning %s", got, want)
		}
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if !isScalar(t) {
		return errf(e.ExprPos(), "condition must be scalar, got %s", t)
	}
	return nil
}

// checkLValue type-checks an assignable expression and returns its type.
func (c *checker) checkLValue(e Expr) (ir.Type, error) {
	switch x := e.(type) {
	case *Ident:
		t, err := c.checkExpr(e)
		if err != nil {
			return nil, err
		}
		if !isScalar(t) {
			return nil, errf(x.Pos, "cannot assign to %s of type %s", x.Name, t)
		}
		return t, nil
	case *IndexExpr:
		t, err := c.checkExpr(e)
		if err != nil {
			return nil, err
		}
		if !isScalar(t) {
			return nil, errf(x.ExprPos(), "cannot assign to array-valued expression of type %s", t)
		}
		return t, nil
	}
	return nil, errf(e.ExprPos(), "expression is not assignable")
}

func isScalar(t ir.Type) bool { return ir.IsInt(t) || ir.IsFloat(t) }

// convertible reports whether a value of type from may be assigned to to
// (identity, or implicit int<->float conversion).
func convertible(from, to ir.Type) bool {
	if ir.TypeEqual(from, to) {
		return true
	}
	return isScalar(from) && isScalar(to)
}

// decay converts an array type to the pointer type it decays to at a call
// boundary; scalar and pointer types are unchanged.
func decay(t ir.Type) ir.Type {
	if a, ok := t.(ir.ArrayType); ok {
		return ir.Ptr(a.Elem)
	}
	return t
}

func (c *checker) checkExpr(e Expr) (ir.Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.Typ = ir.I64
		return x.Typ, nil
	case *FloatLit:
		x.Typ = ir.F64
		return x.Typ, nil
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return nil, errf(x.Pos, "undeclared identifier %s", x.Name)
		}
		x.Sym = sym
		x.Typ = sym.Type
		return x.Typ, nil
	case *IndexExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !ir.IsInt(it) {
			return nil, errf(x.Idx.ExprPos(), "array index must be int, got %s", it)
		}
		switch t := xt.(type) {
		case ir.ArrayType:
			x.Typ = t.Elem
		case ir.PtrType:
			x.Typ = t.Elem
		default:
			return nil, errf(x.ExprPos(), "cannot index %s", xt)
		}
		return x.Typ, nil
	case *CallExpr:
		return c.checkCall(x)
	case *UnaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !isScalar(xt) {
			return nil, errf(x.Pos, "unary %s needs a scalar operand, got %s", x.Op, xt)
		}
		if x.Op == Not {
			x.Typ = ir.I64
		} else {
			x.Typ = xt
		}
		return x.Typ, nil
	case *BinaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(x.Y)
		if err != nil {
			return nil, err
		}
		if !isScalar(xt) || !isScalar(yt) {
			return nil, errf(x.Pos, "binary %s needs scalar operands, got %s and %s", x.Op, xt, yt)
		}
		switch x.Op {
		case Lt, Le, Gt, Ge, EqEq, NotEq, AndAnd, OrOr:
			x.Typ = ir.I64
		case Percent:
			if !ir.IsInt(xt) || !ir.IsInt(yt) {
				return nil, errf(x.Pos, "%% needs integer operands")
			}
			x.Typ = ir.I64
		default:
			if ir.IsFloat(xt) || ir.IsFloat(yt) {
				x.Typ = ir.F64
			} else {
				x.Typ = ir.I64
			}
		}
		return x.Typ, nil
	}
	return nil, fmt.Errorf("minic: unknown expression %T", e)
}

func (c *checker) checkCall(x *CallExpr) (ir.Type, error) {
	argTypes := make([]ir.Type, len(x.Args))
	for i, a := range x.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	if sig, ok := Builtins[x.Name]; ok {
		x.Builtin = x.Name
		x.Typ = sig.Ret
		if sig.Variadic {
			for i, t := range argTypes {
				if !isScalar(t) {
					return nil, errf(x.Args[i].ExprPos(), "%s argument %d must be scalar, got %s", x.Name, i+1, t)
				}
			}
			return x.Typ, nil
		}
		if len(argTypes) != len(sig.Params) {
			return nil, errf(x.Pos, "%s takes %d arguments, got %d", x.Name, len(sig.Params), len(argTypes))
		}
		for i, t := range argTypes {
			if !convertible(t, sig.Params[i]) {
				return nil, errf(x.Args[i].ExprPos(), "%s argument %d: cannot convert %s to %s", x.Name, i+1, t, sig.Params[i])
			}
		}
		return x.Typ, nil
	}
	fn, ok := c.funcs[x.Name]
	if !ok {
		return nil, errf(x.Pos, "call to undeclared function %s", x.Name)
	}
	x.Decl = fn
	x.Typ = ResolveType(TypeSpec{Base: fn.Ret})
	if len(x.Args) != len(fn.Params) {
		return nil, errf(x.Pos, "%s takes %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	for i, t := range argTypes {
		want := ResolveType(fn.Params[i].Type)
		got := decay(t)
		if ir.IsPtr(want) {
			if !ir.TypeEqual(got, want) {
				return nil, errf(x.Args[i].ExprPos(), "%s argument %d: cannot pass %s as %s", x.Name, i+1, t, want)
			}
			continue
		}
		if !isScalar(got) || !convertible(got, want) {
			return nil, errf(x.Args[i].ExprPos(), "%s argument %d: cannot convert %s to %s", x.Name, i+1, t, want)
		}
	}
	return x.Typ, nil
}

// CompileSource parses and checks a program in one step.
func CompileSource(src string) (*File, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

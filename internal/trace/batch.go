package trace

import "io"

// Batch decoding: the streaming analysis hot path. Reading a trace
// record-at-a-time through Reader.Next costs one or more heap
// allocations per record (a fresh Record, a fresh Ops slice, a fresh
// Result) — three sweeps over a 35k-record trace paid ~366k allocations
// before this file existed. A RecordBatch amortizes that to zero steady
// state: the decoder writes records into a reusable slice and their
// operands into a shared arena, both recycled on every NextBatch call.
//
// Contract: the records of a batch (including their Ops and Result
// storage) are valid only until the next NextBatch call on the same
// batch. Consumers that need a record beyond that must Clone it — the
// same rule the online engine's Observer already lives by.

// RecordBatch is reusable storage for batch decoding.
type RecordBatch struct {
	// Filter, when non-nil, selects which opcodes need their operands:
	// records whose opcode it rejects are decoded header-only (nil Ops,
	// nil Result). Sweeps that consult only header fields — the engine's
	// partition sweep — skip the dominant share of the decode work.
	Filter func(opcode int) bool

	// Recs holds the records of the current batch. Managed by NextBatch;
	// callers treat it as read-only.
	Recs []Record

	ops []Operand // arena backing Recs' Ops and Result storage
}

// reset recycles the batch storage for the next decode.
func (b *RecordBatch) reset() {
	b.Recs = b.Recs[:0]
	b.ops = b.ops[:0]
}

// wantOps reports whether a record with the given opcode needs its
// operands decoded.
func (b *RecordBatch) wantOps(opcode int) bool {
	return b.Filter == nil || b.Filter(opcode)
}

// BatchReader is a Reader that can additionally decode records in
// batches into caller-owned reusable storage. Both streaming scanners
// and the in-memory readers returned by NewBytesReader implement it.
type BatchReader interface {
	Reader
	// NextBatch decodes up to max records into b, recycling its storage,
	// and returns how many were decoded. Zero with a nil error means end
	// of stream.
	NextBatch(b *RecordBatch, max int) (int, error)
}

// DefaultBatchRecords is the batch size ForEachBatch uses: large enough
// to amortize per-batch overhead, small enough that a batch's operand
// arena stays cache-resident.
const DefaultBatchRecords = 512

// GatherBatch adapts a plain Reader to the batch shape: records are
// collected one Next at a time. It cannot recycle the reader's per-record
// allocations (and ignores b.Filter — full records are a superset), but
// lets every consumer be written against one loop. Wrappers that embed a
// Reader use it as the NextBatch fallback for non-batching streams.
func GatherBatch(rd Reader, b *RecordBatch, max int) (int, error) {
	b.reset()
	for len(b.Recs) < max {
		r, err := rd.Next()
		if err != nil {
			return 0, err
		}
		if r == nil {
			break
		}
		b.Recs = append(b.Recs, *r)
	}
	return len(b.Recs), nil
}

// ForEachBatch drives rd to the end of its stream in batches, calling fn
// with each batch of records and the stream index of its first record.
// Readers implementing BatchReader decode straight into b's recycled
// storage (honoring b.Filter); other readers are adapted record by
// record. Like ForEach, a reader that implements io.Closer is closed
// before returning, and the records passed to fn are only valid for the
// duration of the call.
func ForEachBatch(rd Reader, b *RecordBatch, fn func(base int, recs []Record) error) (err error) {
	if c, ok := rd.(io.Closer); ok {
		defer func() {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	br, native := rd.(BatchReader)
	base := 0
	for {
		var n int
		var nerr error
		if native {
			n, nerr = br.NextBatch(b, DefaultBatchRecords)
		} else {
			n, nerr = GatherBatch(rd, b, DefaultBatchRecords)
		}
		if nerr != nil {
			return nerr
		}
		if n == 0 {
			return nil
		}
		if ferr := fn(base, b.Recs[:n]); ferr != nil {
			return ferr
		}
		base += n
	}
}

// ---- In-memory batch readers ----

// NewBytesReader returns a replayable-position reader over a complete
// in-memory trace, text or binary by magic. The returned reader
// implements BatchReader, decoding with the same arena discipline as
// ParseBytes/ParseBinary but into recycled batch storage — the fast
// source for streaming analysis over bytes already in memory.
func NewBytesReader(data []byte) (Reader, Format, error) {
	if DetectFormat(data) == FormatBinary {
		d := &binDecoder{data: data, strs: append(make([]string, 0, 64), "")}
		if err := d.header(); err != nil {
			return nil, FormatBinary, err
		}
		return &binBytesReader{d: d}, FormatBinary, nil
	}
	return &textBytesReader{d: newDecoder(), data: data}, FormatText, nil
}

// textBytesReader decodes an in-memory textual trace batch by batch on
// the decoder's manual field-scanning path, sharing one interner across
// the whole stream.
type textBytesReader struct {
	d    *decoder
	data []byte
	pos  int
}

// NextBatch decodes up to max records into b, recycling its storage.
func (r *textBytesReader) NextBatch(b *RecordBatch, max int) (int, error) {
	b.reset()
	r.d.ops = b.ops
	pos, recs, err := r.d.decodeN(r.data, r.pos, b.Recs, max, b.Filter)
	b.ops = r.d.ops
	r.d.ops = nil
	if err != nil {
		return 0, err
	}
	r.pos = pos
	b.Recs = recs
	return len(recs), nil
}

// Next returns the next record in freshly allocated storage (the Reader
// contract lets callers retain it); batch decoding is the fast path.
func (r *textBytesReader) Next() (*Record, error) {
	d := decoder{in: r.d.in}
	pos, recs, err := d.decodeN(r.data, r.pos, nil, 1, nil)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	r.pos = pos
	return &recs[0], nil
}

// binBytesReader decodes an in-memory binary trace batch by batch,
// keeping the (stateful, strictly sequential) string table across
// batches.
type binBytesReader struct {
	d *binDecoder
}

// NextBatch decodes up to max records into b, recycling its storage.
func (r *binBytesReader) NextBatch(b *RecordBatch, max int) (int, error) {
	d := r.d
	b.reset()
	d.ops = b.ops
	defer func() { b.ops = d.ops; d.ops = nil }()
	for len(b.Recs) < max && d.pos < len(d.data) {
		var rec Record
		if err := d.record(&rec, b.Filter); err != nil {
			return 0, err
		}
		b.Recs = append(b.Recs, rec)
	}
	return len(b.Recs), nil
}

// Next returns the next record in freshly allocated storage.
func (r *binBytesReader) Next() (*Record, error) {
	d := r.d
	if d.pos >= len(d.data) {
		return nil, nil
	}
	saved := d.ops
	d.ops = nil
	defer func() { d.ops = saved }()
	var rec Record
	if err := d.record(&rec, nil); err != nil {
		return nil, err
	}
	return &rec, nil
}

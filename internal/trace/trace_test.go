package trace

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeNames(t *testing.T) {
	cases := map[int]string{
		OpLoad: "Load", OpStore: "Store", OpAlloca: "Alloca",
		OpCall: "Call", OpMul: "Mul", OpFDiv: "FDiv",
		OpGetElementPtr: "GetElementPtr", OpBitCast: "BitCast",
		OpICmp: "ICmp", OpBr: "Br", OpRet: "Ret", OpPHI: "PHI",
		999: "Op999",
	}
	for op, want := range cases {
		if got := OpcodeName(op); got != want {
			t.Errorf("OpcodeName(%d) = %q, want %q", op, got, want)
		}
	}
}

func TestPaperOpcodeNumbers(t *testing.T) {
	// The paper's figures pin these: Load=27 (Fig. 1), Alloca=26 (Fig. 6c),
	// Call=49 (Fig. 6a/b).
	if OpLoad != 27 {
		t.Errorf("OpLoad = %d, want 27", OpLoad)
	}
	if OpAlloca != 26 {
		t.Errorf("OpAlloca = %d, want 26", OpAlloca)
	}
	if OpCall != 49 {
		t.Errorf("OpCall = %d, want 49", OpCall)
	}
}

func TestIsArithmetic(t *testing.T) {
	for _, op := range []int{OpAdd, OpFAdd, OpSub, OpFSub, OpMul, OpFMul, OpUDiv, OpSDiv, OpFDiv, OpSRem} {
		if !IsArithmetic(op) {
			t.Errorf("IsArithmetic(%s) = false, want true", OpcodeName(op))
		}
	}
	for _, op := range []int{OpLoad, OpStore, OpAlloca, OpCall, OpBr, OpRet, OpICmp, OpGetElementPtr} {
		if IsArithmetic(op) {
			t.Errorf("IsArithmetic(%s) = true, want false", OpcodeName(op))
		}
	}
}

func TestValueStringParse(t *testing.T) {
	cases := []Value{
		IntValue(0), IntValue(42), IntValue(-7), IntValue(math.MaxInt64), IntValue(math.MinInt64),
		FloatValue(0), FloatValue(1.5), FloatValue(-2.25), FloatValue(1e300), FloatValue(3),
		PtrValue(0), PtrValue(0x7ffcf3f25a70), PtrValue(math.MaxUint64),
	}
	for _, v := range cases {
		s := v.String()
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", s, err)
		}
		if !got.Equal(v) {
			t.Errorf("roundtrip %v -> %q -> %v", v, s, got)
		}
	}
}

func TestValueKindsDistinguishable(t *testing.T) {
	// An integral float must still parse back as a float.
	v := FloatValue(3)
	s := v.String()
	if !strings.ContainsAny(s, ".eE") {
		t.Fatalf("FloatValue(3).String() = %q lacks float marker", s)
	}
	got, err := ParseValue(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindFloat {
		t.Errorf("parsed kind = %v, want KindFloat", got.Kind)
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"0xzz", "1.2.3", "abc", ""} {
		if _, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) succeeded, want error", s)
		}
	}
}

func sampleRecords() []Record {
	return []Record{
		{
			Line: 6, Func: "foo", Block: "for.body", Opcode: OpLoad, DynID: 215,
			Ops:    []Operand{{Index: 1, Size: 64, Value: PtrValue(0x7ffcf3f25a70), IsReg: true, Name: "p"}},
			Result: &Operand{Index: 0, Size: 64, Value: IntValue(8), IsReg: true, Name: "8"},
		},
		{
			Line: 6, Func: "foo", Block: "for.body", Opcode: OpMul, DynID: 216,
			Ops: []Operand{
				{Index: 1, Size: 64, Value: IntValue(4), IsReg: true, Name: "8"},
				{Index: 2, Size: 64, Value: IntValue(2), IsReg: false, Name: ""},
			},
			Result: &Operand{Index: 0, Size: 64, Value: IntValue(8), IsReg: true, Name: "9"},
		},
		{
			Line: -1, Func: "main", Block: "entry", Opcode: OpAlloca, DynID: 51,
			Result: &Operand{Index: 0, Size: 64, Value: PtrValue(0x7ffe11de09bc), IsReg: true, Name: "sum"},
		},
		{
			Line: 24, Func: "main", Block: "body", Opcode: OpCall, DynID: 7773,
			Ops: []Operand{
				{Index: 1, Size: 64, Value: FloatValue(44), IsReg: true, Name: "36"},
				{Index: 2, Size: 64, Value: FloatValue(2), IsReg: true, Name: "37"},
			},
			Result: &Operand{Index: 0, Size: 64, Value: FloatValue(1936), IsReg: true, Name: "38"},
		},
		{Line: 10, Func: "main", Block: "latch", Opcode: OpBr, DynID: 7774},
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	recs := sampleRecords()
	data := EncodeAll(recs)
	got, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Errorf("roundtrip mismatch:\nwant %+v\ngot  %+v", recs, got)
	}
}

func TestScannerStreaming(t *testing.T) {
	recs := sampleRecords()
	sc := NewScanner(bytes.NewReader(EncodeAll(recs)))
	for i := range recs {
		rec, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("premature EOF at record %d", i)
		}
		if rec.DynID != recs[i].DynID {
			t.Errorf("record %d: DynID = %d, want %d", i, rec.DynID, recs[i].DynID)
		}
	}
	rec, err := sc.Next()
	if err != nil || rec != nil {
		t.Errorf("after EOF: (%v, %v), want (nil, nil)", rec, err)
	}
	// Next after EOF must stay nil.
	rec, err = sc.Next()
	if err != nil || rec != nil {
		t.Errorf("repeated EOF: (%v, %v), want (nil, nil)", rec, err)
	}
}

func TestScannerBadInput(t *testing.T) {
	cases := []string{
		"1,1,64,5,1,x\n",                // operand before header
		"0,notanint,f,b,27,1\n",         // bad line number
		"0,1,f,b,27,1\n1,1,64,zz,1,x\n", // bad value
		"0,1,f,b,27,1\n1,1,64,5,1\n",    // short operand line
	}
	for _, in := range cases {
		if _, err := ParseBytes([]byte(in)); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestRecordOperandLookup(t *testing.T) {
	r := sampleRecords()[1]
	if op := r.Operand(2); op == nil || !op.Value.Equal(IntValue(2)) {
		t.Errorf("Operand(2) = %+v", op)
	}
	if op := r.Operand(5); op != nil {
		t.Errorf("Operand(5) = %+v, want nil", op)
	}
}

func TestEmptyTrace(t *testing.T) {
	recs, err := ParseBytes(nil)
	if err != nil || len(recs) != 0 {
		t.Errorf("ParseBytes(nil) = (%v, %v)", recs, err)
	}
	recs, err = ParseBytesParallel(nil, 4)
	if err != nil || len(recs) != 0 {
		t.Errorf("ParseBytesParallel(nil) = (%v, %v)", recs, err)
	}
}

// randomRecords builds a pseudo-random but well-formed trace.
func randomRecords(rng *rand.Rand, n int) []Record {
	funcs := []string{"main", "foo", "conj_grad", "hypre_LowerBound"}
	blocks := []string{"entry", "for.body", "for.cond", "latch"}
	recs := make([]Record, n)
	for i := range recs {
		op := []int{OpLoad, OpStore, OpAdd, OpMul, OpFMul, OpCall, OpAlloca, OpBr, OpGetElementPtr}[rng.Intn(9)]
		rec := Record{
			Line:   rng.Intn(200) - 1,
			Func:   funcs[rng.Intn(len(funcs))],
			Block:  blocks[rng.Intn(len(blocks))],
			Opcode: op,
			DynID:  int64(i),
		}
		nops := rng.Intn(3)
		for j := 0; j < nops; j++ {
			rec.Ops = append(rec.Ops, randomOperand(rng, j+1))
		}
		if rng.Intn(2) == 0 {
			res := randomOperand(rng, 0)
			rec.Result = &res
		}
		recs[i] = rec
	}
	return recs
}

func randomOperand(rng *rand.Rand, idx int) Operand {
	var v Value
	switch rng.Intn(3) {
	case 0:
		v = IntValue(rng.Int63() - rng.Int63())
	case 1:
		v = FloatValue(rng.NormFloat64() * 1e6)
	default:
		v = PtrValue(rng.Uint64())
	}
	names := []string{"p", "q", "sum", "8", "9", "36", ""}
	return Operand{Index: idx, Size: 64, Value: v, IsReg: rng.Intn(2) == 0, Name: names[rng.Intn(len(names))]}
}

// Property: encode->parse is the identity on arbitrary well-formed traces.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(size))
		got, err := ParseBytes(EncodeAll(recs))
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(recs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: parallel parse equals serial parse for any worker count.
func TestQuickParallelEqualsSerial(t *testing.T) {
	f := func(seed int64, size uint16, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(size)%2000)
		data := EncodeAll(recs)
		serial, err := ParseBytes(data)
		if err != nil {
			return false
		}
		par, err := ParseBytesParallel(data, int(workers)%17)
		if err != nil {
			return false
		}
		if len(serial) == 0 && len(par) == 0 {
			return true
		}
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitChunksBoundaries(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(7)), 500)
	data := EncodeAll(recs)
	for _, n := range []int{1, 2, 3, 7, 48, 1000} {
		chunks := splitChunks(data, n)
		total := 0
		for i, c := range chunks {
			total += len(c)
			if len(c) > 0 && !bytes.HasPrefix(c, []byte("0,")) {
				t.Errorf("n=%d chunk %d does not start at a block header", n, i)
			}
		}
		if total != len(data) {
			t.Errorf("n=%d chunks cover %d bytes, want %d", n, total, len(data))
		}
	}
}

func TestComputeStats(t *testing.T) {
	recs := sampleRecords()
	st := ComputeStats(recs)
	if st.Records != int64(len(recs)) {
		t.Errorf("Records = %d, want %d", st.Records, len(recs))
	}
	if st.ByOpcode[OpLoad] != 1 || st.ByOpcode[OpCall] != 1 {
		t.Errorf("ByOpcode = %v", st.ByOpcode)
	}
	if st.Functions["main"] != 3 {
		t.Errorf("Functions[main] = %d, want 3", st.Functions["main"])
	}
}

func TestScannerLongLines(t *testing.T) {
	// A record with a very long function name must fit the scanner buffer.
	name := strings.Repeat("f", 1<<16)
	rec := Record{Line: 1, Func: name, Block: "b", Opcode: OpBr, DynID: 1}
	got, err := ParseBytes(EncodeAll([]Record{rec}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Func != name {
		t.Error("long function name mangled")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}
	if buf.Len() == 0 {
		t.Error("writer produced no bytes")
	}
}

func TestRecordStringIsBlockEncoding(t *testing.T) {
	rec := sampleRecords()[0]
	s := rec.String()
	if !strings.HasPrefix(s, "0,6,foo,for.body,27,215\n") {
		t.Errorf("String() = %q", s)
	}
	back, err := ParseBytes([]byte(s))
	if err != nil || len(back) != 1 {
		t.Fatalf("block encoding did not reparse: %v", err)
	}
}

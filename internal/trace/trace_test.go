package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeNames(t *testing.T) {
	cases := map[int]string{
		OpLoad: "Load", OpStore: "Store", OpAlloca: "Alloca",
		OpCall: "Call", OpMul: "Mul", OpFDiv: "FDiv",
		OpGetElementPtr: "GetElementPtr", OpBitCast: "BitCast",
		OpICmp: "ICmp", OpBr: "Br", OpRet: "Ret", OpPHI: "PHI",
		999: "Op999",
	}
	for op, want := range cases {
		if got := OpcodeName(op); got != want {
			t.Errorf("OpcodeName(%d) = %q, want %q", op, got, want)
		}
	}
}

func TestPaperOpcodeNumbers(t *testing.T) {
	// The paper's figures pin these: Load=27 (Fig. 1), Alloca=26 (Fig. 6c),
	// Call=49 (Fig. 6a/b).
	if OpLoad != 27 {
		t.Errorf("OpLoad = %d, want 27", OpLoad)
	}
	if OpAlloca != 26 {
		t.Errorf("OpAlloca = %d, want 26", OpAlloca)
	}
	if OpCall != 49 {
		t.Errorf("OpCall = %d, want 49", OpCall)
	}
}

func TestIsArithmetic(t *testing.T) {
	for _, op := range []int{OpAdd, OpFAdd, OpSub, OpFSub, OpMul, OpFMul, OpUDiv, OpSDiv, OpFDiv, OpSRem} {
		if !IsArithmetic(op) {
			t.Errorf("IsArithmetic(%s) = false, want true", OpcodeName(op))
		}
	}
	for _, op := range []int{OpLoad, OpStore, OpAlloca, OpCall, OpBr, OpRet, OpICmp, OpGetElementPtr} {
		if IsArithmetic(op) {
			t.Errorf("IsArithmetic(%s) = true, want false", OpcodeName(op))
		}
	}
}

func TestValueStringParse(t *testing.T) {
	cases := []Value{
		IntValue(0), IntValue(42), IntValue(-7), IntValue(math.MaxInt64), IntValue(math.MinInt64),
		FloatValue(0), FloatValue(1.5), FloatValue(-2.25), FloatValue(1e300), FloatValue(3),
		PtrValue(0), PtrValue(0x7ffcf3f25a70), PtrValue(math.MaxUint64),
	}
	for _, v := range cases {
		s := v.String()
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", s, err)
		}
		if !got.Equal(v) {
			t.Errorf("roundtrip %v -> %q -> %v", v, s, got)
		}
	}
}

func TestValueKindsDistinguishable(t *testing.T) {
	// An integral float must still parse back as a float.
	v := FloatValue(3)
	s := v.String()
	if !strings.ContainsAny(s, ".eE") {
		t.Fatalf("FloatValue(3).String() = %q lacks float marker", s)
	}
	got, err := ParseValue(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindFloat {
		t.Errorf("parsed kind = %v, want KindFloat", got.Kind)
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"0xzz", "1.2.3", "abc", ""} {
		if _, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) succeeded, want error", s)
		}
	}
}

func sampleRecords() []Record {
	return []Record{
		{
			Line: 6, Func: "foo", Block: "for.body", Opcode: OpLoad, DynID: 215,
			Ops:    []Operand{{Index: 1, Size: 64, Value: PtrValue(0x7ffcf3f25a70), IsReg: true, Name: "p"}},
			Result: &Operand{Index: 0, Size: 64, Value: IntValue(8), IsReg: true, Name: "8"},
		},
		{
			Line: 6, Func: "foo", Block: "for.body", Opcode: OpMul, DynID: 216,
			Ops: []Operand{
				{Index: 1, Size: 64, Value: IntValue(4), IsReg: true, Name: "8"},
				{Index: 2, Size: 64, Value: IntValue(2), IsReg: false, Name: ""},
			},
			Result: &Operand{Index: 0, Size: 64, Value: IntValue(8), IsReg: true, Name: "9"},
		},
		{
			Line: -1, Func: "main", Block: "entry", Opcode: OpAlloca, DynID: 51,
			Result: &Operand{Index: 0, Size: 64, Value: PtrValue(0x7ffe11de09bc), IsReg: true, Name: "sum"},
		},
		{
			Line: 24, Func: "main", Block: "body", Opcode: OpCall, DynID: 7773,
			Ops: []Operand{
				{Index: 1, Size: 64, Value: FloatValue(44), IsReg: true, Name: "36"},
				{Index: 2, Size: 64, Value: FloatValue(2), IsReg: true, Name: "37"},
			},
			Result: &Operand{Index: 0, Size: 64, Value: FloatValue(1936), IsReg: true, Name: "38"},
		},
		{Line: 10, Func: "main", Block: "latch", Opcode: OpBr, DynID: 7774},
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	recs := sampleRecords()
	data := EncodeAll(recs)
	got, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Errorf("roundtrip mismatch:\nwant %+v\ngot  %+v", recs, got)
	}
}

func TestScannerStreaming(t *testing.T) {
	recs := sampleRecords()
	sc := NewScanner(bytes.NewReader(EncodeAll(recs)))
	for i := range recs {
		rec, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("premature EOF at record %d", i)
		}
		if rec.DynID != recs[i].DynID {
			t.Errorf("record %d: DynID = %d, want %d", i, rec.DynID, recs[i].DynID)
		}
	}
	rec, err := sc.Next()
	if err != nil || rec != nil {
		t.Errorf("after EOF: (%v, %v), want (nil, nil)", rec, err)
	}
	// Next after EOF must stay nil.
	rec, err = sc.Next()
	if err != nil || rec != nil {
		t.Errorf("repeated EOF: (%v, %v), want (nil, nil)", rec, err)
	}
}

func TestScannerBadInput(t *testing.T) {
	cases := []string{
		"1,1,64,5,1,x\n",                // operand before header
		"0,notanint,f,b,27,1\n",         // bad line number
		"0,1,f,b,27,1\n1,1,64,zz,1,x\n", // bad value
		"0,1,f,b,27,1\n1,1,64,5,1\n",    // short operand line
	}
	for _, in := range cases {
		if _, err := ParseBytes([]byte(in)); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestRecordOperandLookup(t *testing.T) {
	r := sampleRecords()[1]
	if op := r.Operand(2); op == nil || !op.Value.Equal(IntValue(2)) {
		t.Errorf("Operand(2) = %+v", op)
	}
	if op := r.Operand(5); op != nil {
		t.Errorf("Operand(5) = %+v, want nil", op)
	}
}

func TestEmptyTrace(t *testing.T) {
	recs, err := ParseBytes(nil)
	if err != nil || len(recs) != 0 {
		t.Errorf("ParseBytes(nil) = (%v, %v)", recs, err)
	}
	recs, err = ParseBytesParallel(nil, 4)
	if err != nil || len(recs) != 0 {
		t.Errorf("ParseBytesParallel(nil) = (%v, %v)", recs, err)
	}
}

// randomRecords builds a pseudo-random but well-formed trace.
func randomRecords(rng *rand.Rand, n int) []Record {
	funcs := []string{"main", "foo", "conj_grad", "hypre_LowerBound"}
	blocks := []string{"entry", "for.body", "for.cond", "latch"}
	recs := make([]Record, n)
	for i := range recs {
		op := []int{OpLoad, OpStore, OpAdd, OpMul, OpFMul, OpCall, OpAlloca, OpBr, OpGetElementPtr}[rng.Intn(9)]
		rec := Record{
			Line:   rng.Intn(200) - 1,
			Func:   funcs[rng.Intn(len(funcs))],
			Block:  blocks[rng.Intn(len(blocks))],
			Opcode: op,
			DynID:  int64(i),
		}
		nops := rng.Intn(3)
		for j := 0; j < nops; j++ {
			rec.Ops = append(rec.Ops, randomOperand(rng, j+1))
		}
		if rng.Intn(2) == 0 {
			res := randomOperand(rng, 0)
			rec.Result = &res
		}
		recs[i] = rec
	}
	return recs
}

func randomOperand(rng *rand.Rand, idx int) Operand {
	var v Value
	switch rng.Intn(3) {
	case 0:
		v = IntValue(rng.Int63() - rng.Int63())
	case 1:
		v = FloatValue(rng.NormFloat64() * 1e6)
	default:
		v = PtrValue(rng.Uint64())
	}
	names := []string{"p", "q", "sum", "8", "9", "36", ""}
	return Operand{Index: idx, Size: 64, Value: v, IsReg: rng.Intn(2) == 0, Name: names[rng.Intn(len(names))]}
}

// Property: encode->parse is the identity on arbitrary well-formed traces.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(size))
		got, err := ParseBytes(EncodeAll(recs))
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(recs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: parallel parse equals serial parse for any worker count.
func TestQuickParallelEqualsSerial(t *testing.T) {
	forceChunkedParse(t)
	f := func(seed int64, size uint16, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(size)%2000)
		data := EncodeAll(recs)
		serial, err := ParseBytes(data)
		if err != nil {
			return false
		}
		par, err := ParseBytesParallel(data, int(workers)%17)
		if err != nil {
			return false
		}
		if len(serial) == 0 && len(par) == 0 {
			return true
		}
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitChunksBoundaries(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(7)), 500)
	data := EncodeAll(recs)
	for _, n := range []int{1, 2, 3, 7, 48, 1000} {
		chunks := splitChunks(data, n)
		total := 0
		for i, c := range chunks {
			total += len(c)
			if len(c) > 0 && !bytes.HasPrefix(c, []byte("0,")) {
				t.Errorf("n=%d chunk %d does not start at a block header", n, i)
			}
		}
		if total != len(data) {
			t.Errorf("n=%d chunks cover %d bytes, want %d", n, total, len(data))
		}
	}
}

func TestComputeStats(t *testing.T) {
	recs := sampleRecords()
	st := ComputeStats(recs)
	if st.Records != int64(len(recs)) {
		t.Errorf("Records = %d, want %d", st.Records, len(recs))
	}
	if st.ByOpcode[OpLoad] != 1 || st.ByOpcode[OpCall] != 1 {
		t.Errorf("ByOpcode = %v", st.ByOpcode)
	}
	if st.Functions["main"] != 3 {
		t.Errorf("Functions[main] = %d, want 3", st.Functions["main"])
	}
}

func TestScannerLongLines(t *testing.T) {
	// A record with a very long function name must fit the scanner buffer.
	name := strings.Repeat("f", 1<<16)
	rec := Record{Line: 1, Func: name, Block: "b", Opcode: OpBr, DynID: 1}
	got, err := ParseBytes(EncodeAll([]Record{rec}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Func != name {
		t.Error("long function name mangled")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}
	if buf.Len() == 0 {
		t.Error("writer produced no bytes")
	}
}

func TestRecordStringIsBlockEncoding(t *testing.T) {
	rec := sampleRecords()[0]
	s := rec.String()
	if !strings.HasPrefix(s, "0,6,foo,for.body,27,215\n") {
		t.Errorf("String() = %q", s)
	}
	back, err := ParseBytes([]byte(s))
	if err != nil || len(back) != 1 {
		t.Fatalf("block encoding did not reparse: %v", err)
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := 0; op < 64; op++ {
		name := OpcodeName(op)
		back, ok := OpcodeByName(name)
		if !ok || back != op {
			t.Errorf("OpcodeByName(OpcodeName(%d)=%q) = (%d, %v)", op, name, back, ok)
		}
	}
	if _, ok := OpcodeByName("NotAnOpcode"); ok {
		t.Error("OpcodeByName accepted garbage")
	}
}

// The io.Reader Scanner has a line cap; overflowing it must produce an
// error with the byte offset and a hint, not a bare bufio.ErrTooLong.
func TestScannerTooLongContext(t *testing.T) {
	name := strings.Repeat("f", scannerMaxLine+16)
	rec := Record{Line: 1, Func: name, Block: "b", Opcode: OpBr, DynID: 1}
	data := EncodeAll([]Record{rec})
	sc := NewScanner(bytes.NewReader(data))
	_, err := sc.Next()
	if err == nil {
		t.Fatal("Scanner accepted a line beyond the cap")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	for _, want := range []string{"byte offset", "ParseBytes"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
	// The manual in-memory parser has no cap at all.
	got, perr := ParseBytes(data)
	if perr != nil || len(got) != 1 || got[0].Func != name {
		t.Errorf("ParseBytes rejected the long line: %v", perr)
	}
}

// The byte offset in the wrapped error must point at the offending line,
// not at zero.
func TestScannerTooLongOffset(t *testing.T) {
	good := EncodeAll(sampleRecords())
	bad := append(append([]byte{}, good...), []byte("0,1,")...)
	bad = append(bad, bytes.Repeat([]byte("x"), scannerMaxLine)...)
	sc := NewScanner(bytes.NewReader(bad))
	var err error
	for {
		var rec *Record
		rec, err = sc.Next()
		if rec == nil || err != nil {
			break
		}
	}
	if err == nil || !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("want wrapped ErrTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("byte offset %d", len(good))) {
		t.Errorf("error %q does not name offset %d", err, len(good))
	}
}

// The textual parse hot path must stay allocation-free per record: the
// seed parser cost ~7 allocations per line; the manual decoder amortizes
// to well under one per record.
func TestParseBytesAllocs(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(5)), 5000)
	data := EncodeAll(recs)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ParseBytes(data); err != nil {
			t.Fatal(err)
		}
	})
	if perRecord := allocs / float64(len(recs)); perRecord > 0.05 {
		t.Errorf("ParseBytes allocates %.3f times per record (%.0f total for %d records), want amortized ~0",
			perRecord, allocs, len(recs))
	}
}

func TestCountRecords(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(6)), 321)
	data := EncodeAll(recs)
	if n := CountRecords(data); n != len(recs) {
		t.Errorf("CountRecords = %d, want %d", n, len(recs))
	}
	if n := CountRecords(nil); n != 0 {
		t.Errorf("CountRecords(nil) = %d", n)
	}
}

// forceChunkedParse drops the parallel-parse size fallback for one test,
// so small fixture traces still exercise the chunked assembly path.
func forceChunkedParse(t *testing.T) {
	t.Helper()
	saved := parallelParseMinBytes
	parallelParseMinBytes = 0
	t.Cleanup(func() { parallelParseMinBytes = saved })
}

// Records parsed in parallel chunks land in one pre-sized slice; verify
// against the serial parse on a trace large enough for many chunks.
func TestParallelAssembly(t *testing.T) {
	forceChunkedParse(t)
	recs := randomRecords(rand.New(rand.NewSource(8)), 5000)
	data := EncodeAll(recs)
	serial, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 48} {
		par, err := ParseBytesParallel(data, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel parse differs", workers)
		}
	}
}

// Below the size threshold ParseBytesParallel must hand off to the serial
// parser — chunk scheduling costs more than it saves on small traces —
// and still return identical records.
func TestParallelParseSmallFallback(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(9)), 200)
	data := EncodeAll(recs)
	if len(data) >= parallelParseMinBytes {
		t.Fatalf("fixture unexpectedly large: %d bytes", len(data))
	}
	serial, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParseBytesParallel(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("fallback parse differs from serial")
	}
}

// Ops slices of parsed records are capacity-clamped: appending to one
// record's operands must not clobber its neighbor (they share an arena).
func TestParsedOpsAppendSafe(t *testing.T) {
	data := EncodeAll(sampleRecords())
	recs, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	want := recs[1].Ops[0]
	recs[0].Ops = append(recs[0].Ops, Operand{Index: 99, Name: "evil"})
	if !reflect.DeepEqual(recs[1].Ops[0], want) {
		t.Error("append to one record's Ops clobbered the next record")
	}
}

func TestParseCRLF(t *testing.T) {
	data := bytes.ReplaceAll(EncodeAll(sampleRecords()), []byte("\n"), []byte("\r\n"))
	recs, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, sampleRecords()) {
		t.Error("CRLF trace parsed differently")
	}
}

// ParseBytes must accept exactly what the streaming Scanner accepts:
// operand lines after a result line, and repeated result lines (the last
// wins), as LLVM-Tracer-style producers are free to order block lines.
func TestResultMidBlockParity(t *testing.T) {
	forceChunkedParse(t)
	cases := []string{
		"0,1,main,e,27,1\nr,0,64,1,1,2\n1,1,64,0x10,0,g\n",               // operand after result
		"0,1,main,e,27,1\nr,0,64,1,1,2\nr,0,64,5,1,3\n",                  // repeated result
		"0,1,main,e,27,1\n1,1,64,7,0,a\nr,0,64,1,1,2\n1,2,64,8,0,b\n",    // result mid-block
		"0,1,main,e,27,1\nr,0,64,1,1,2\n0,2,main,e,28,2\n1,1,64,9,0,c\n", // next block after result
	}
	for _, in := range cases {
		want, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Fatalf("ReadAll(%q): %v", in, err)
		}
		got, err := ParseBytes([]byte(in))
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("parsers disagree on %q:\nscanner %+v\nbytes   %+v", in, want, got)
		}
		par, err := ParseBytesParallel([]byte(in), 3)
		if err != nil || !reflect.DeepEqual(want, par) {
			t.Errorf("parallel parser disagrees on %q: %v", in, err)
		}
	}
}

func TestScannerCRLF(t *testing.T) {
	data := bytes.ReplaceAll(EncodeAll(sampleRecords()), []byte("\n"), []byte("\r\n"))
	got, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Error("CRLF trace read differently by Scanner")
	}
}

package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Compact binary trace format ("ACTB"), the on-disk fast path beside the
// LLVM-Tracer-style text format. Layout:
//
//	magic   "ACTB" (4 bytes)
//	version 1 byte (currently 1)
//	opcode table: uvarint count, then per entry
//	        uvarint opcode, uvarint len, name bytes
//	        (self-description: a reader can name opcodes without this
//	        package's opcode constants)
//	records until EOF, each:
//	        flags   1 byte (bit 0: has result)
//	        line    zigzag varint
//	        func    string ref
//	        block   string ref
//	        opcode  uvarint
//	        dynid   zigzag varint
//	        nops    uvarint, then nops operands, then the result if flagged
//	operand:
//	        meta    1 byte (bits 0-1: value kind, bit 2: is-register)
//	        index   zigzag varint
//	        size    uvarint
//	        value   int: zigzag varint | float: 8-byte LE IEEE-754 |
//	                ptr: uvarint
//	        name    string ref
//	string ref:
//	        uvarint v; v == 0 introduces a new string (uvarint len + bytes)
//	        appended to the table, v >= 1 references table[v-1]. The table
//	        is pre-seeded with "" at index 0, so every repeated identifier
//	        costs exactly one small integer.
//
// The format is written and read strictly sequentially (the string table
// is stateful), so unlike the text format it is not chunk-splittable; its
// decoder is far faster than even the parallel text path, so nothing is
// lost.

var binaryMagic = []byte("ACTB")

const binaryVersion = 1

// Format discriminates the two trace encodings.
type Format int

const (
	// FormatText is the LLVM-Tracer-style line format.
	FormatText Format = iota
	// FormatBinary is the compact varint + string-table format.
	FormatBinary
)

func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// ParseFormat parses a format name ("text" or "binary").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text", "txt":
		return FormatText, nil
	case "binary", "bin":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want text or binary)", s)
}

// DetectFormat sniffs the encoding of an in-memory trace by its magic.
func DetectFormat(data []byte) Format {
	if bytes.HasPrefix(data, binaryMagic) {
		return FormatBinary
	}
	return FormatText
}

// RecordWriter is the sink side of a trace encoding; *Writer (text) and
// *BinaryWriter both implement it, so the tracer can emit either format
// directly.
type RecordWriter interface {
	Write(*Record) error
	Flush() error
	Count() int64
}

// Reader is the streaming side of a trace encoding; *Scanner (text) and
// *BinaryScanner both implement it.
type Reader interface {
	// Next returns the next record, or (nil, nil) at end of stream.
	Next() (*Record, error)
}

// zigzag / varint helpers (protobuf-style).

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// BinaryWriter emits records in the compact binary format. Like Writer it
// is single-threaded.
type BinaryWriter struct {
	bw      *bufio.Writer
	scratch []byte
	strs    map[string]uint64 // interned string -> table index (1-based ref)
	count   int64
	started bool
	err     error
}

// NewBinaryWriter returns a buffered binary trace writer. The header is
// written lazily on the first record (or Flush), so creating a writer is
// free.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{
		bw:   bufio.NewWriterSize(w, 1<<16),
		strs: map[string]uint64{"": 1},
	}
}

func (w *BinaryWriter) start() error {
	if w.started {
		return nil
	}
	w.started = true
	b := append(w.scratch[:0], binaryMagic...)
	b = append(b, binaryVersion)
	n := 0
	for _, name := range opcodeNames {
		if name != "" {
			n++
		}
	}
	b = appendUvarint(b, uint64(n))
	for op, name := range opcodeNames {
		if name == "" {
			continue
		}
		b = appendUvarint(b, uint64(op))
		b = appendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	w.scratch = b
	_, err := w.bw.Write(b)
	return err
}

// appendString appends a string reference, introducing the string to the
// table on first use.
func (w *BinaryWriter) appendString(b []byte, s string) []byte {
	if ref, ok := w.strs[s]; ok {
		return appendUvarint(b, ref)
	}
	w.strs[s] = uint64(len(w.strs) + 1)
	b = appendUvarint(b, 0)
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func (w *BinaryWriter) appendOperand(b []byte, o *Operand) []byte {
	meta := byte(o.Value.Kind) & 3
	if o.IsReg {
		meta |= 4
	}
	b = append(b, meta)
	b = appendVarint(b, int64(o.Index))
	b = appendUvarint(b, uint64(o.Size))
	switch o.Value.Kind {
	case KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(o.Value.Float))
	case KindPtr:
		b = appendUvarint(b, o.Value.Addr)
	default:
		b = appendVarint(b, o.Value.Int)
	}
	return w.appendString(b, o.Name)
}

// Write appends one record to the trace.
func (w *BinaryWriter) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if err := w.start(); err != nil {
		w.err = err
		return err
	}
	b := w.scratch[:0]
	var flags byte
	if r.Result != nil {
		flags |= 1
	}
	b = append(b, flags)
	b = appendVarint(b, int64(r.Line))
	b = w.appendString(b, r.Func)
	b = w.appendString(b, r.Block)
	b = appendUvarint(b, uint64(r.Opcode))
	b = appendVarint(b, r.DynID)
	b = appendUvarint(b, uint64(len(r.Ops)))
	for i := range r.Ops {
		b = w.appendOperand(b, &r.Ops[i])
	}
	if r.Result != nil {
		b = w.appendOperand(b, r.Result)
	}
	w.scratch = b
	w.count++
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Count returns the number of records written so far.
func (w *BinaryWriter) Count() int64 { return w.count }

// Flush writes the header (for empty traces) and flushes buffered output.
func (w *BinaryWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.start(); err != nil {
		w.err = err
		return err
	}
	return w.bw.Flush()
}

// EncodeBinary renders records in the compact binary format.
func EncodeBinary(recs []Record) []byte {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for i := range recs {
		_ = w.Write(&recs[i]) // bytes.Buffer writes cannot fail
	}
	_ = w.Flush()
	return buf.Bytes()
}

// BinaryScanner reads records one at a time from a binary trace stream.
type BinaryScanner struct {
	br      *bufio.Reader
	strs    []string
	opNames map[int]string // the stream's self-description header
	started bool
	done    bool
	off     int64
}

// NewBinaryScanner returns a streaming binary trace reader. The header is
// validated on the first Next call.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{br: bufio.NewReaderSize(r, 1<<16), strs: []string{""}}
}

// OpcodeTable returns the opcode number -> mnemonic mapping carried by
// the stream's self-description header (nil before the first record is
// read).
func (sc *BinaryScanner) OpcodeTable() map[int]string { return sc.opNames }

func (sc *BinaryScanner) corrupt(what string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: binary stream corrupt at byte offset %d (%s): %w", sc.off, what, err)
}

func (sc *BinaryScanner) readByte() (byte, error) {
	c, err := sc.br.ReadByte()
	if err == nil {
		sc.off++
	}
	return c, err
}

func (sc *BinaryScanner) readUvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(byteCounter{sc})
	if err != nil {
		return 0, sc.corrupt(what, err)
	}
	return v, nil
}

func (sc *BinaryScanner) readVarint(what string) (int64, error) {
	v, err := sc.readUvarint(what)
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

// byteCounter adapts the scanner for binary.ReadUvarint while keeping the
// offset accurate.
type byteCounter struct{ sc *BinaryScanner }

func (bc byteCounter) ReadByte() (byte, error) { return bc.sc.readByte() }

func (sc *BinaryScanner) readFull(b []byte, what string) error {
	n, err := io.ReadFull(sc.br, b)
	sc.off += int64(n)
	if err != nil {
		return sc.corrupt(what, err)
	}
	return nil
}

const maxBinaryString = 1 << 24 // sanity cap against corrupt length fields

func (sc *BinaryScanner) readString(what string) (string, error) {
	ref, err := sc.readUvarint(what)
	if err != nil {
		return "", err
	}
	if ref != 0 {
		if ref > uint64(len(sc.strs)) {
			return "", sc.corrupt(what, fmt.Errorf("string ref %d beyond table of %d", ref, len(sc.strs)))
		}
		return sc.strs[ref-1], nil
	}
	n, err := sc.readUvarint(what)
	if err != nil {
		return "", err
	}
	if n > maxBinaryString {
		return "", sc.corrupt(what, fmt.Errorf("string length %d exceeds %d cap", n, maxBinaryString))
	}
	b := make([]byte, n)
	if err := sc.readFull(b, what); err != nil {
		return "", err
	}
	s := string(b)
	sc.strs = append(sc.strs, s)
	return s, nil
}

func (sc *BinaryScanner) readHeader() error {
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(sc.br, magic); err != nil {
		if err == io.EOF {
			// A completely empty stream is an empty trace.
			sc.done = true
			return nil
		}
		return sc.corrupt("magic", err)
	}
	sc.off += int64(len(magic))
	if !bytes.Equal(magic, binaryMagic) {
		return fmt.Errorf("trace: bad binary magic %q (want %q)", magic, binaryMagic)
	}
	ver, err := sc.readByte()
	if err != nil {
		return sc.corrupt("version", err)
	}
	if ver != binaryVersion {
		return fmt.Errorf("trace: unsupported binary trace version %d (want %d)", ver, binaryVersion)
	}
	n, err := sc.readUvarint("opcode table size")
	if err != nil {
		return err
	}
	if n > 4096 {
		return sc.corrupt("opcode table", fmt.Errorf("%d entries", n))
	}
	sc.opNames = make(map[int]string, n)
	for i := uint64(0); i < n; i++ {
		op, err := sc.readUvarint("opcode table entry")
		if err != nil {
			return err
		}
		ln, err := sc.readUvarint("opcode table entry")
		if err != nil {
			return err
		}
		if ln > maxBinaryString {
			return sc.corrupt("opcode table entry", fmt.Errorf("name length %d", ln))
		}
		name := make([]byte, ln)
		if err := sc.readFull(name, "opcode table entry"); err != nil {
			return err
		}
		sc.opNames[int(op)] = string(name)
	}
	return nil
}

func (sc *BinaryScanner) readOperand(o *Operand) error {
	meta, err := sc.readByte()
	if err != nil {
		return sc.corrupt("operand meta", err)
	}
	kind := ValueKind(meta & 3)
	if kind > KindPtr {
		return sc.corrupt("operand meta", fmt.Errorf("bad value kind %d", kind))
	}
	o.IsReg = meta&4 != 0
	idx, err := sc.readVarint("operand index")
	if err != nil {
		return err
	}
	o.Index = int(idx)
	size, err := sc.readUvarint("operand size")
	if err != nil {
		return err
	}
	o.Size = int(size)
	switch kind {
	case KindFloat:
		var raw [8]byte
		if err := sc.readFull(raw[:], "float value"); err != nil {
			return err
		}
		o.Value = FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(raw[:])))
	case KindPtr:
		a, err := sc.readUvarint("pointer value")
		if err != nil {
			return err
		}
		o.Value = PtrValue(a)
	default:
		v, err := sc.readVarint("int value")
		if err != nil {
			return err
		}
		o.Value = IntValue(v)
	}
	o.Name, err = sc.readString("operand name")
	return err
}

const maxBinaryOperands = 1 << 20 // sanity cap against corrupt counts

// Next returns the next record, or (nil, nil) at end of stream.
func (sc *BinaryScanner) Next() (*Record, error) {
	if !sc.started {
		sc.started = true
		if err := sc.readHeader(); err != nil {
			sc.done = true
			return nil, err
		}
	}
	if sc.done {
		return nil, nil
	}
	flags, err := sc.readByte()
	if err != nil {
		if err == io.EOF {
			sc.done = true
			return nil, nil
		}
		return nil, sc.corrupt("record flags", err)
	}
	if flags > 1 {
		return nil, sc.corrupt("record flags", fmt.Errorf("unknown flags %#x", flags))
	}
	var rec Record
	line, err := sc.readVarint("line")
	if err != nil {
		return nil, err
	}
	rec.Line = int(line)
	if rec.Func, err = sc.readString("function name"); err != nil {
		return nil, err
	}
	if rec.Block, err = sc.readString("block label"); err != nil {
		return nil, err
	}
	op, err := sc.readUvarint("opcode")
	if err != nil {
		return nil, err
	}
	rec.Opcode = int(op)
	if rec.DynID, err = sc.readVarint("dynamic id"); err != nil {
		return nil, err
	}
	nops, err := sc.readUvarint("operand count")
	if err != nil {
		return nil, err
	}
	if nops > maxBinaryOperands {
		return nil, sc.corrupt("operand count", fmt.Errorf("%d operands", nops))
	}
	if nops > 0 {
		rec.Ops = make([]Operand, nops)
		for i := range rec.Ops {
			if err := sc.readOperand(&rec.Ops[i]); err != nil {
				return nil, err
			}
		}
	}
	if flags&1 != 0 {
		rec.Result = new(Operand)
		if err := sc.readOperand(rec.Result); err != nil {
			return nil, err
		}
	}
	return &rec, nil
}

// NextBatch decodes up to max records into b, recycling its storage.
// Records whose opcode b.Filter rejects are decoded header-only (their
// operands are still walked to keep the stateful string table in sync,
// but not stored).
func (sc *BinaryScanner) NextBatch(b *RecordBatch, max int) (int, error) {
	b.reset()
	if !sc.started {
		sc.started = true
		if err := sc.readHeader(); err != nil {
			sc.done = true
			return 0, err
		}
	}
	for len(b.Recs) < max && !sc.done {
		flags, err := sc.readByte()
		if err == io.EOF {
			sc.done = true
			break
		}
		if err != nil {
			return 0, sc.corrupt("record flags", err)
		}
		if flags > 1 {
			return 0, sc.corrupt("record flags", fmt.Errorf("unknown flags %#x", flags))
		}
		var rec Record
		line, err := sc.readVarint("line")
		if err != nil {
			return 0, err
		}
		rec.Line = int(line)
		if rec.Func, err = sc.readString("function name"); err != nil {
			return 0, err
		}
		if rec.Block, err = sc.readString("block label"); err != nil {
			return 0, err
		}
		op, err := sc.readUvarint("opcode")
		if err != nil {
			return 0, err
		}
		rec.Opcode = int(op)
		if rec.DynID, err = sc.readVarint("dynamic id"); err != nil {
			return 0, err
		}
		nops, err := sc.readUvarint("operand count")
		if err != nil {
			return 0, err
		}
		if nops > maxBinaryOperands {
			return 0, sc.corrupt("operand count", fmt.Errorf("%d operands", nops))
		}
		store := b.wantOps(rec.Opcode)
		opStart := len(b.ops)
		for i := uint64(0); i < nops; i++ {
			var o Operand
			if err := sc.readOperand(&o); err != nil {
				return 0, err
			}
			if store {
				b.ops = append(b.ops, o)
			}
		}
		if store && nops > 0 {
			rec.Ops = b.ops[opStart:len(b.ops):len(b.ops)]
		}
		if flags&1 != 0 {
			var o Operand
			if err := sc.readOperand(&o); err != nil {
				return 0, err
			}
			if store {
				b.ops = append(b.ops, o)
				rec.Result = &b.ops[len(b.ops)-1]
			}
		}
		b.Recs = append(b.Recs, rec)
	}
	return len(b.Recs), nil
}

// binDecoder is the in-memory binary decode fast path: direct slice
// indexing instead of buffered reads, and operand storage batched in an
// arena like the text decoder's.
type binDecoder struct {
	data []byte
	pos  int
	strs []string
	ops  []Operand
}

func (d *binDecoder) corrupt(what string) error {
	return fmt.Errorf("trace: binary trace corrupt at byte offset %d (%s)", d.pos, what)
}

func (d *binDecoder) uvarint(what string) (uint64, error) {
	// Fast path: most fields (string refs, sizes, small ints) are one byte.
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, d.corrupt(what)
	}
	d.pos += n
	return v, nil
}

func (d *binDecoder) varint(what string) (int64, error) {
	v, err := d.uvarint(what)
	return int64(v>>1) ^ -int64(v&1), err
}

func (d *binDecoder) str(what string) (string, error) {
	ref, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if ref != 0 {
		if ref > uint64(len(d.strs)) {
			return "", d.corrupt(what + ": string ref beyond table")
		}
		return d.strs[ref-1], nil
	}
	n, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > maxBinaryString || uint64(len(d.data)-d.pos) < n {
		return "", d.corrupt(what + ": bad string length")
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	d.strs = append(d.strs, s)
	return s, nil
}

func (d *binDecoder) operand(o *Operand) error {
	if d.pos >= len(d.data) {
		return d.corrupt("operand meta")
	}
	meta := d.data[d.pos]
	d.pos++
	kind := ValueKind(meta & 3)
	if kind > KindPtr {
		return d.corrupt("operand meta: bad value kind")
	}
	o.IsReg = meta&4 != 0
	idx, err := d.varint("operand index")
	if err != nil {
		return err
	}
	o.Index = int(idx)
	size, err := d.uvarint("operand size")
	if err != nil {
		return err
	}
	o.Size = int(size)
	switch kind {
	case KindFloat:
		if len(d.data)-d.pos < 8 {
			return d.corrupt("float value")
		}
		o.Value = FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:])))
		d.pos += 8
	case KindPtr:
		a, err := d.uvarint("pointer value")
		if err != nil {
			return err
		}
		o.Value = PtrValue(a)
	default:
		v, err := d.varint("int value")
		if err != nil {
			return err
		}
		o.Value = IntValue(v)
	}
	o.Name, err = d.str("operand name")
	return err
}

func (d *binDecoder) header() error {
	if !bytes.HasPrefix(d.data, binaryMagic) {
		return fmt.Errorf("trace: bad binary magic (want %q)", binaryMagic)
	}
	d.pos = len(binaryMagic)
	if d.pos >= len(d.data) {
		return d.corrupt("version")
	}
	if v := d.data[d.pos]; v != binaryVersion {
		return fmt.Errorf("trace: unsupported binary trace version %d (want %d)", v, binaryVersion)
	}
	d.pos++
	n, err := d.uvarint("opcode table size")
	if err != nil {
		return err
	}
	if n > 4096 {
		return d.corrupt("opcode table size")
	}
	for i := uint64(0); i < n; i++ {
		if _, err := d.uvarint("opcode table entry"); err != nil {
			return err
		}
		ln, err := d.uvarint("opcode table entry")
		if err != nil {
			return err
		}
		if ln > maxBinaryString || uint64(len(d.data)-d.pos) < ln {
			return d.corrupt("opcode table entry")
		}
		d.pos += int(ln)
	}
	return nil
}

// record decodes one record at d.pos into rec, batching its operands in
// d.ops (callers must not hold d.ops aliases across arena growth — the
// record's own Ops/Result sub-slices are safe, matching the text
// decoder). A non-nil filter decodes rejected opcodes header-only: their
// operands are still walked — the stateful string table demands it — but
// not stored. The caller guarantees d.pos < len(d.data).
func (d *binDecoder) record(rec *Record, filter func(opcode int) bool) error {
	flags := d.data[d.pos]
	d.pos++
	if flags > 1 {
		return d.corrupt("record flags")
	}
	line, err := d.varint("line")
	if err != nil {
		return err
	}
	rec.Line = int(line)
	if rec.Func, err = d.str("function name"); err != nil {
		return err
	}
	if rec.Block, err = d.str("block label"); err != nil {
		return err
	}
	op, err := d.uvarint("opcode")
	if err != nil {
		return err
	}
	rec.Opcode = int(op)
	if rec.DynID, err = d.varint("dynamic id"); err != nil {
		return err
	}
	nops, err := d.uvarint("operand count")
	if err != nil {
		return err
	}
	if nops > maxBinaryOperands {
		return d.corrupt("operand count")
	}
	store := filter == nil || filter(rec.Opcode)
	opStart := len(d.ops)
	for i := uint64(0); i < nops; i++ {
		var o Operand
		if err := d.operand(&o); err != nil {
			return err
		}
		if store {
			d.ops = append(d.ops, o)
		}
	}
	if store && nops > 0 {
		rec.Ops = d.ops[opStart:len(d.ops):len(d.ops)]
	}
	if flags&1 != 0 {
		var o Operand
		if err := d.operand(&o); err != nil {
			return err
		}
		if store {
			d.ops = append(d.ops, o)
			rec.Result = &d.ops[len(d.ops)-1]
		}
	}
	return nil
}

// ParseBinary parses a complete in-memory binary trace.
func ParseBinary(data []byte) ([]Record, error) {
	if len(data) == 0 {
		return nil, nil
	}
	// The string table is pre-seeded with "" (ref 1), mirroring the writer.
	d := &binDecoder{data: data, strs: append(make([]string, 0, 64), "")}
	if err := d.header(); err != nil {
		return nil, err
	}
	var recs []Record
	for d.pos < len(data) {
		if len(recs) == 64 && d.pos > 0 {
			// Unlike the text format there is no cheap record count, so
			// estimate the totals from the first 64 records and grow the
			// record slice and operand arena once instead of
			// logarithmically many times (regrowth of pointer-bearing
			// slices is pure GC pressure). Already-flushed Ops/Result
			// aliases keep pointing at the old arena, whose contents never
			// change.
			frac := float64(len(data)) / float64(d.pos)
			if est := int(float64(len(recs))*frac*9/8) + 64; est > cap(recs) {
				nr := make([]Record, len(recs), est)
				copy(nr, recs)
				recs = nr
			}
			if est := int(float64(len(d.ops))*frac*9/8) + 64; est > cap(d.ops) {
				no := make([]Operand, len(d.ops), est)
				copy(no, d.ops)
				d.ops = no
			}
		}
		var rec Record
		if err := d.record(&rec, nil); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Encode renders records in the chosen format.
func Encode(recs []Record, f Format) []byte {
	if f == FormatBinary {
		return EncodeBinary(recs)
	}
	return EncodeAll(recs)
}

// NewRecordWriter returns a writer for the chosen format over w.
func NewRecordWriter(w io.Writer, f Format) RecordWriter {
	if f == FormatBinary {
		return NewBinaryWriter(w)
	}
	return NewWriter(w)
}

// NewAutoReader sniffs the stream's format and returns the matching
// streaming reader. Text is assumed when the stream is shorter than the
// binary magic.
func NewAutoReader(r io.Reader) (Reader, Format, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, 0, err
	}
	if bytes.Equal(head, binaryMagic) {
		return NewBinaryScanner(br), FormatBinary, nil
	}
	return NewScanner(br), FormatText, nil
}

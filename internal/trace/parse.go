package trace

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// This file is the allocation-free textual parse path. Instead of
// bufio.Scanner.Text() + strings.Split + strconv.Atoi — one line string,
// one field slice, and six field strings per trace line — the decoder
// walks the input byte slice directly, parses integers and pointers
// without materializing strings, interns the few distinct identifier
// strings (function names, block labels, operand names), and batches
// operand storage in a shared arena so a record block costs amortized
// zero heap allocations. There is no line-length cap on this path.

// interner deduplicates identifier strings. A trace repeats the same
// handful of function/block/operand names millions of times; interning
// makes every repeat cost one map probe and zero allocations (the
// map[string]X lookup keyed by string(b) does not allocate on hit).
type interner struct {
	tab map[string]string
}

func newInterner() *interner {
	return &interner{tab: make(map[string]string, 64)}
}

func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.tab[string(b)]; ok {
		return s
	}
	s := string(b)
	in.tab[s] = s
	return s
}

// unsafeString views b as a string without copying. Callers must not
// retain the result past the lifetime of b's contents; it exists so that
// strconv.ParseFloat can run on a field slice without a per-call string
// allocation.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseIntBytes is strconv.ParseInt(s, 10, 64) over a byte slice.
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) {
		return 0, false
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n > (math.MaxUint64-uint64(c))/10 {
			return 0, false
		}
		n = n*10 + uint64(c)
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > math.MaxInt64 {
		return 0, false
	}
	return int64(n), true
}

// parseHexBytes parses a bare (no 0x prefix) hexadecimal uint64.
func parseHexBytes(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if n > math.MaxUint64>>4 {
			return 0, false
		}
		n = n<<4 | d
	}
	return n, true
}

func hasHexPrefix(b []byte) bool {
	return len(b) >= 2 && b[0] == '0' && b[1] == 'x'
}

// parseValueBytes decodes a value from its trace encoding without
// allocating. The three kinds are distinguished exactly as the format
// defines: 0x prefix = pointer, '.'/'e'/'E'/Inf/NaN = float, else int.
func parseValueBytes(b []byte) (Value, error) {
	if hasHexPrefix(b) || (len(b) >= 3 && b[0] == '-' && b[1] == '0' && b[2] == 'x') {
		h := b
		neg := false
		if h[0] == '-' {
			neg = true
			h = h[1:]
		}
		a, ok := parseHexBytes(h[2:])
		if !ok {
			return Value{}, fmt.Errorf("trace: bad pointer value %q", b)
		}
		if neg {
			a = -a
		}
		return PtrValue(a), nil
	}
	if hasFloatMarker(b) {
		f, err := strconv.ParseFloat(unsafeString(b), 64)
		if err != nil {
			return Value{}, fmt.Errorf("trace: bad float value %q: %w", b, err)
		}
		return FloatValue(f), nil
	}
	i, ok := parseIntBytes(b)
	if !ok {
		return Value{}, fmt.Errorf("trace: bad int value %q", b)
	}
	return IntValue(i), nil
}

// splitFields6 splits a trace line into exactly 6 comma-separated fields.
// Names never contain commas (identifiers and labels only), so the plain
// split is exact.
func splitFields6(line []byte) (f [6][]byte, ok bool) {
	n := 0
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == ',' {
			if n == 5 {
				return f, false // 7+ fields
			}
			f[n] = line[start:i]
			n++
			start = i + 1
		}
	}
	if n != 5 {
		return f, false
	}
	f[5] = line[start:]
	return f, true
}

// decoder holds the reusable state of one textual decode: the name
// interner and the operand arena the records' Ops/Result slices point
// into.
type decoder struct {
	in     *interner
	ops    []Operand
	resIdx []int // arena indices of the open block's "r," lines
}

func newDecoder() *decoder {
	return &decoder{in: newInterner()}
}

func (d *decoder) parseOperand(line []byte) (Operand, error) {
	f, ok := splitFields6(line)
	if !ok {
		return Operand{}, fmt.Errorf("trace: operand line does not have 6 fields: %q", line)
	}
	idx, ok := parseIntBytes(f[1])
	if !ok {
		return Operand{}, fmt.Errorf("trace: bad operand index in %q", line)
	}
	size, ok := parseIntBytes(f[2])
	if !ok {
		return Operand{}, fmt.Errorf("trace: bad operand size in %q", line)
	}
	val, err := parseValueBytes(f[3])
	if err != nil {
		return Operand{}, err
	}
	return Operand{
		Index: int(idx),
		Size:  int(size),
		Value: val,
		IsReg: len(f[4]) == 1 && f[4][0] == '1',
		Name:  d.in.intern(f[5]),
	}, nil
}

func (d *decoder) parseHeader(line []byte) (Record, error) {
	f, ok := splitFields6(line)
	if !ok {
		return Record{}, fmt.Errorf("trace: header line does not have 6 fields: %q", line)
	}
	ln, ok := parseIntBytes(f[1])
	if !ok {
		return Record{}, fmt.Errorf("trace: bad line number in %q", line)
	}
	op, ok := parseIntBytes(f[4])
	if !ok {
		return Record{}, fmt.Errorf("trace: bad opcode in %q", line)
	}
	dyn, ok := parseIntBytes(f[5])
	if !ok {
		return Record{}, fmt.Errorf("trace: bad dynamic id in %q", line)
	}
	return Record{
		Line:   int(ln),
		Func:   d.in.intern(f[2]),
		Block:  d.in.intern(f[3]),
		Opcode: int(op),
		DynID:  dyn,
	}, nil
}

// nextLine returns the next line of data starting at pos and the new
// position, stripping the trailing '\n' and an optional '\r'.
func nextLine(data []byte, pos int) ([]byte, int) {
	nl := bytes.IndexByte(data[pos:], '\n')
	var line []byte
	if nl < 0 {
		line = data[pos:]
		pos = len(data)
	} else {
		line = data[pos : pos+nl]
		pos += nl + 1
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, pos
}

// isHeaderLine reports whether a line starts an instruction block.
func isHeaderLine(line []byte) bool {
	return len(line) >= 2 && line[0] == '0' && line[1] == ','
}

// decodeText appends every record in data to dst. When dst has exactly
// enough capacity (see CountRecords) the decode performs no slice growth,
// which is what lets ParseBytesParallel assemble chunk results in place.
func (d *decoder) decodeText(data []byte, dst []Record) ([]Record, error) {
	_, recs, err := d.decodeN(data, 0, dst, -1, nil)
	return recs, err
}

// decodeN appends up to max records (max < 0: all) from data starting at
// pos to dst, returning the position of the first unconsumed byte. A
// non-nil filter decodes rejected opcodes header-only: their operand
// lines are scanned past without parsing, which is what makes a
// header-only sweep over a trace cheap. This is the single textual decode
// loop — ParseBytes and the batch readers differ only in the arguments.
func (d *decoder) decodeN(data []byte, pos int, dst []Record, max int, filter func(opcode int) bool) (int, []Record, error) {
	start := len(dst)
	var line []byte
	cur := -1 // index in dst of the open record, -1 if none
	skip := false
	opStart := len(d.ops)
	d.resIdx = d.resIdx[:0]
	// flush attaches the open record's arena extent: its input operands as
	// a capacity-clamped sub-slice (so a caller's append cannot clobber the
	// next record) and the result — matching Scanner's semantics exactly,
	// any "r," line is the result (the last wins) and input lines may
	// follow it. Arena growth after this point copies the backing array
	// but never mutates already-written elements, so the aliases stay
	// value-correct.
	flush := func() {
		if cur < 0 {
			return
		}
		r := &dst[cur]
		end := len(d.ops)
		switch {
		case len(d.resIdx) == 0:
			// No result: the whole extent is input operands.
		case len(d.resIdx) == 1 && d.resIdx[0] == end-1:
			// Common case: a single result line closing the block.
			r.Result = &d.ops[end-1]
			end--
		default:
			// Rare shape (result mid-block or repeated): compact the input
			// operands to the front of the extent, keep the last result.
			// Only this block's slots [opStart:end) move, so earlier
			// records' aliases are untouched.
			res := d.ops[d.resIdx[len(d.resIdx)-1]]
			isRes := make(map[int]bool, len(d.resIdx))
			for _, i := range d.resIdx {
				isRes[i] = true
			}
			w := opStart
			for i := opStart; i < end; i++ {
				if !isRes[i] {
					d.ops[w] = d.ops[i]
					w++
				}
			}
			d.ops[w] = res
			d.ops = d.ops[:w+1]
			r.Result = &d.ops[w]
			end = w
		}
		if end > opStart {
			r.Ops = d.ops[opStart:end:end]
		}
		opStart = len(d.ops)
		cur = -1
		d.resIdx = d.resIdx[:0]
	}
	for pos < len(data) {
		lineStart := pos
		line, pos = nextLine(data, pos)
		if len(line) == 0 {
			continue
		}
		switch {
		case isHeaderLine(line):
			if max >= 0 && len(dst)-start == max {
				flush()
				return lineStart, dst, nil
			}
			flush()
			rec, err := d.parseHeader(line)
			if err != nil {
				return pos, nil, err
			}
			dst = append(dst, rec)
			cur = len(dst) - 1
			skip = filter != nil && !filter(rec.Opcode)
		default:
			if cur < 0 {
				return pos, nil, fmt.Errorf("trace: expected block header, got %q", line)
			}
			if skip {
				continue
			}
			op, err := d.parseOperand(line)
			if err != nil {
				return pos, nil, err
			}
			d.ops = append(d.ops, op)
			if line[0] == 'r' && line[1] == ',' {
				d.resIdx = append(d.resIdx, len(d.ops)-1)
			}
		}
	}
	flush()
	return pos, dst, nil
}

// CountRecords returns the number of instruction blocks in a textual
// trace without parsing it (one block per line starting with "0,").
func CountRecords(data []byte) int {
	n := bytes.Count(data, []byte("\n0,"))
	if isHeaderLine(data) {
		n++
	}
	return n
}

package trace

import "io"

// ForEach drives rd to the end of its stream, calling fn with each record
// and its zero-based index. Iteration stops at the first error from rd or
// fn. If rd also implements io.Closer it is closed before returning (a
// close error is reported only when iteration itself succeeded) — so
// callers can hand over file-backed scanners and forget about the
// descriptor.
func ForEach(rd Reader, fn func(i int, r *Record) error) (err error) {
	if c, ok := rd.(io.Closer); ok {
		defer func() {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	for i := 0; ; i++ {
		r, rerr := rd.Next()
		if rerr != nil {
			return rerr
		}
		if r == nil {
			return nil
		}
		if ferr := fn(i, r); ferr != nil {
			return ferr
		}
	}
}

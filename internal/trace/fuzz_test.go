package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzParseTrace exercises both parsers — the allocation-free text
// decoder and the binary decoder — plus the streaming scanners on
// arbitrary bytes. None of them may panic, and for inputs every text
// decoder accepts, the serial, parallel, and streaming paths must agree.
func FuzzParseTrace(f *testing.F) {
	recs := sampleRecords()
	f.Add(EncodeAll(recs))
	f.Add(EncodeBinary(recs))
	f.Add(EncodeAll(randomRecords(rand.New(rand.NewSource(3)), 40)))
	f.Add(EncodeBinary(randomRecords(rand.New(rand.NewSource(4)), 40)))
	f.Add([]byte("0,1,f,b,27,1\n1,1,64,0x10,1,p\nr,0,64,5,1,8\n"))
	f.Add([]byte("0,-1,main,entry,26,0\n"))
	f.Add([]byte("garbage\n"))
	f.Add(append(append([]byte{}, binaryMagic...), binaryVersion, 0))
	// Fuzz inputs sit far below the parallel-parse size threshold; drop it
	// so the chunked assembly path stays under fuzz coverage.
	saved := parallelParseMinBytes
	parallelParseMinBytes = 0
	f.Cleanup(func() { parallelParseMinBytes = saved })
	f.Fuzz(func(t *testing.T, data []byte) {
		serial, serr := ParseBytes(data)
		par, perr := ParseBytesParallel(data, 4)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("serial err %v, parallel err %v", serr, perr)
		}
		if serr == nil && len(serial) > 0 && !equalModuloNaN(serial, par) {
			t.Fatalf("serial and parallel parse disagree on %q", data)
		}
		// The binary decoder and scanner must never panic either.
		_, _ = ParseBinary(data)
		sc := NewBinaryScanner(bytes.NewReader(data))
		for {
			rec, err := sc.Next()
			if err != nil || rec == nil {
				break
			}
		}
		if serr != nil {
			return
		}
		// Successful parses re-encode to a canonical form that parses to
		// the same records on every path (text and binary alike).
		canon := EncodeAll(serial)
		again, err := ParseBytes(canon)
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		viaBinary, err := ParseBinary(EncodeBinary(serial))
		if err != nil {
			t.Fatalf("binary roundtrip failed: %v", err)
		}
		if len(serial) > 0 {
			if !equalModuloNaN(serial, again) {
				t.Fatalf("text re-encode not stable")
			}
			if !equalModuloNaN(serial, viaBinary) {
				t.Fatalf("binary roundtrip not identical")
			}
		}
	})
}

// equalModuloNaN is reflect.DeepEqual except that NaN values (which
// compare unequal to themselves) are compared by bit pattern kind.
func equalModuloNaN(a, b []Record) bool {
	if reflect.DeepEqual(a, b) {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	ta, tb := EncodeAll(a), EncodeAll(b)
	return bytes.Equal(ta, tb)
}

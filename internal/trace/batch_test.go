package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// batchReaders enumerates every BatchReader implementation over the same
// encoded trace: the two in-memory readers and the two streaming
// scanners.
func batchReaders(t *testing.T, text, bin []byte) map[string]func() BatchReader {
	t.Helper()
	return map[string]func() BatchReader{
		"textBytes": func() BatchReader {
			rd, f, err := NewBytesReader(text)
			if err != nil || f != FormatText {
				t.Fatalf("NewBytesReader(text) = %v, %v", f, err)
			}
			return rd.(BatchReader)
		},
		"binBytes": func() BatchReader {
			rd, f, err := NewBytesReader(bin)
			if err != nil || f != FormatBinary {
				t.Fatalf("NewBytesReader(bin) = %v, %v", f, err)
			}
			return rd.(BatchReader)
		},
		"textScanner": func() BatchReader { return NewScanner(bytes.NewReader(text)) },
		"binScanner":  func() BatchReader { return NewBinaryScanner(bytes.NewReader(bin)) },
	}
}

// drainBatches reads rd to the end through NextBatch, cloning each
// batch's records (batch storage is recycled between calls).
func drainBatches(t *testing.T, rd BatchReader, b *RecordBatch, max int) []Record {
	t.Helper()
	var out []Record
	for {
		n, err := rd.NextBatch(b, max)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		for i := range b.Recs[:n] {
			out = append(out, b.Recs[i].Clone())
		}
	}
}

// TestNextBatchParity pins that every batch reader yields the same
// records as the serial parser, across batch sizes that do and do not
// divide the trace evenly — and that one RecordBatch can be reused
// across readers and formats without cross-contamination.
func TestNextBatchParity(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(11)), 700)
	text, bin := EncodeAll(recs), EncodeBinary(recs)
	want, err := ParseBytes(text)
	if err != nil {
		t.Fatal(err)
	}
	var b RecordBatch // shared across every subtest on purpose
	for name, open := range batchReaders(t, text, bin) {
		for _, max := range []int{1, 7, 256, 100000} {
			got := drainBatches(t, open(), &b, max)
			if !equalModuloNaN(want, got) {
				t.Errorf("%s max=%d: batch records differ from serial parse", name, max)
			}
		}
	}
}

// TestNextBatchVsNext pins that interleaving Next and NextBatch on the
// same reader walks the same stream: batch decoding is a protocol
// extension, not a separate cursor.
func TestNextBatchVsNext(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(12)), 120)
	text, bin := EncodeAll(recs), EncodeBinary(recs)
	want, err := ParseBytes(text)
	if err != nil {
		t.Fatal(err)
	}
	for name, open := range batchReaders(t, text, bin) {
		rd := open()
		var got []Record
		var b RecordBatch
		for i := 0; len(got) < len(want); i++ {
			if i%2 == 0 {
				r, err := rd.Next()
				if err != nil {
					t.Fatalf("%s: Next: %v", name, err)
				}
				if r == nil {
					break
				}
				got = append(got, r.Clone())
			} else {
				n, err := rd.NextBatch(&b, 5)
				if err != nil {
					t.Fatalf("%s: NextBatch: %v", name, err)
				}
				if n == 0 {
					break
				}
				for k := range b.Recs[:n] {
					got = append(got, b.Recs[k].Clone())
				}
			}
		}
		if !equalModuloNaN(want, got) {
			t.Errorf("%s: interleaved Next/NextBatch differs from serial parse", name)
		}
	}
}

// TestBatchFilter pins the header-only decode: records whose opcode the
// filter rejects keep exact header fields but carry no operands, while
// admitted records are complete — and stateful decoding (the binary
// string table) survives the skipped records.
func TestBatchFilter(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(13)), 400)
	text, bin := EncodeAll(recs), EncodeBinary(recs)
	want, err := ParseBytes(text)
	if err != nil {
		t.Fatal(err)
	}
	keep := func(op int) bool { return op == OpLoad || op == OpStore }
	for name, open := range batchReaders(t, text, bin) {
		rd := open()
		b := RecordBatch{Filter: keep}
		var got []Record
		for {
			n, err := rd.NextBatch(&b, 64)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			for i := range b.Recs[:n] {
				got = append(got, b.Recs[i].Clone())
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: filtered decode dropped records: %d vs %d", name, len(got), len(want))
		}
		for i := range got {
			w := want[i]
			if got[i].Opcode != w.Opcode || got[i].Func != w.Func ||
				got[i].Line != w.Line || got[i].DynID != w.DynID {
				t.Fatalf("%s: record %d header differs: %+v vs %+v", name, i, got[i], w)
			}
			if keep(w.Opcode) {
				w2 := got[i]
				if !equalModuloNaN([]Record{w}, []Record{w2}) {
					t.Fatalf("%s: admitted record %d not fully decoded", name, i)
				}
			} else if got[i].Ops != nil || got[i].Result != nil {
				t.Fatalf("%s: rejected record %d still carries operands", name, i)
			}
		}
	}
}

// plainReader hides the NextBatch method of a reader, modeling a
// third-party Reader implementation.
type plainReader struct{ rd Reader }

func (p plainReader) Next() (*Record, error) { return p.rd.Next() }

// TestForEachBatchFallback pins that ForEachBatch adapts plain Readers
// through GatherBatch and visits every record with correct bases.
func TestForEachBatchFallback(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(14)), DefaultBatchRecords+37)
	data := EncodeAll(recs)
	want, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for name, rd := range map[string]Reader{
		"native":   NewScanner(bytes.NewReader(data)),
		"fallback": plainReader{NewScanner(bytes.NewReader(data))},
	} {
		var got []Record
		next := 0
		var b RecordBatch
		err := ForEachBatch(rd, &b, func(base int, batch []Record) error {
			if base != next {
				t.Fatalf("%s: base = %d, want %d", name, base, next)
			}
			next = base + len(batch)
			for i := range batch {
				got = append(got, batch[i].Clone())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !equalModuloNaN(want, got) {
			t.Errorf("%s: ForEachBatch records differ from serial parse", name)
		}
	}
}

// closeCounter counts Close calls through a batch-capable reader.
type closeCounter struct {
	BatchReader
	n *int
}

func (c closeCounter) Close() error { *c.n++; return nil }

// TestForEachBatchCloses pins the Closer contract and error propagation:
// the reader is closed exactly once, including when fn aborts the sweep.
func TestForEachBatchCloses(t *testing.T) {
	data := EncodeAll(sampleRecords())
	var b RecordBatch

	closes := 0
	rd := closeCounter{NewScanner(bytes.NewReader(data)), &closes}
	if err := ForEachBatch(rd, &b, func(int, []Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if closes != 1 {
		t.Errorf("clean sweep: %d Close calls, want 1", closes)
	}

	closes = 0
	rd = closeCounter{NewScanner(bytes.NewReader(data)), &closes}
	boom := errors.New("boom")
	if err := ForEachBatch(rd, &b, func(int, []Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("aborted sweep error = %v, want boom", err)
	}
	if closes != 1 {
		t.Errorf("aborted sweep: %d Close calls, want 1", closes)
	}
}

// TestBatchOpsAppendSafe mirrors TestParsedOpsAppendSafe for the arena
// behind a batch: appending to one record's Ops must not clobber its
// neighbor.
func TestBatchOpsAppendSafe(t *testing.T) {
	data := EncodeAll(sampleRecords())
	rd, _, err := NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var b RecordBatch
	if _, err := rd.(BatchReader).NextBatch(&b, 100); err != nil {
		t.Fatal(err)
	}
	if len(b.Recs) < 2 || len(b.Recs[1].Ops) == 0 {
		t.Fatal("fixture needs two records with operands")
	}
	want := b.Recs[1].Ops[0]
	b.Recs[0].Ops = append(b.Recs[0].Ops, Operand{Index: 99, Name: "evil"})
	if !reflect.DeepEqual(b.Recs[1].Ops[0], want) {
		t.Error("append to one batch record's Ops clobbered the next record")
	}
}

// TestBatchDecodeAllocs pins that steady-state batch decoding of an
// in-memory text trace is allocation-free once the batch storage has
// grown to size — the property the streaming analysis path is built on.
func TestBatchDecodeAllocs(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(15)), 2000)
	data := EncodeAll(recs)
	rd, _, err := NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	br := rd.(*textBytesReader)
	var b RecordBatch
	// Warm up: one full pass sizes Recs and the operand arena.
	for {
		n, err := br.NextBatch(&b, DefaultBatchRecords)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		br.pos = 0
		for {
			n, err := br.NextBatch(&b, DefaultBatchRecords)
			if err != nil || n == 0 {
				return
			}
		}
	})
	// The interner may still intern a handful of previously unseen
	// value strings; allow a small slack, not per-record growth.
	if allocs > 10 {
		t.Errorf("steady-state batch decode = %.1f allocs per full pass, want <= 10", allocs)
	}
}

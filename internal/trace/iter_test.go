package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// iterCloser wraps a Reader and records whether Close ran.
type iterCloser struct {
	Reader
	closed   bool
	closeErr error
}

func (c *iterCloser) Close() error {
	c.closed = true
	return c.closeErr
}

func iterTrace(t *testing.T) ([]Record, []byte) {
	t.Helper()
	recs := []Record{
		{Line: 1, Func: "f", Block: "b", Opcode: OpAlloca, DynID: 1},
		{Line: 2, Func: "f", Block: "b", Opcode: OpLoad, DynID: 2},
		{Line: 3, Func: "g", Block: "b", Opcode: OpStore, DynID: 3},
	}
	return recs, EncodeAll(recs)
}

func TestForEachIndicesAndOrder(t *testing.T) {
	recs, data := iterTrace(t)
	var got []int
	err := ForEach(NewScanner(bytes.NewReader(data)), func(i int, r *Record) error {
		got = append(got, i)
		if r.DynID != recs[i].DynID {
			t.Errorf("record %d: DynID %d, want %d", i, r.DynID, recs[i].DynID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || got[0] != 0 || got[len(got)-1] != len(recs)-1 {
		t.Errorf("indices %v, want 0..%d", got, len(recs)-1)
	}
}

func TestForEachStopsOnCallbackError(t *testing.T) {
	_, data := iterTrace(t)
	boom := errors.New("boom")
	n := 0
	err := ForEach(NewScanner(bytes.NewReader(data)), func(i int, r *Record) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Errorf("err=%v after %d records, want boom after 1", err, n)
	}
}

func TestForEachPropagatesReaderError(t *testing.T) {
	err := ForEach(NewScanner(strings.NewReader("0,notanint,f,b,27,1\n")), func(i int, r *Record) error {
		return nil
	})
	if err == nil {
		t.Fatal("corrupt stream did not error")
	}
}

func TestForEachClosesCloser(t *testing.T) {
	_, data := iterTrace(t)
	c := &iterCloser{Reader: NewScanner(bytes.NewReader(data))}
	if err := ForEach(c, func(i int, r *Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !c.closed {
		t.Error("reader not closed")
	}

	// A close failure after a clean iteration surfaces...
	c = &iterCloser{Reader: NewScanner(bytes.NewReader(data)), closeErr: errors.New("close failed")}
	if err := ForEach(c, func(i int, r *Record) error { return nil }); err == nil || !strings.Contains(err.Error(), "close failed") {
		t.Errorf("close error lost: %v", err)
	}

	// ...but never masks the iteration's own error.
	boom := errors.New("boom")
	c = &iterCloser{Reader: NewScanner(bytes.NewReader(data)), closeErr: errors.New("close failed")}
	if err := ForEach(c, func(i int, r *Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("iteration error masked by close: %v", err)
	}
}

// Package trace defines the dynamic instruction execution trace format used
// by AutoCheck, modeled on the block format printed by LLVM-Tracer 1.2
// (paper Fig. 1 and Fig. 6).
//
// A trace is a sequence of instruction blocks. Each block describes one
// dynamically executed IR instruction:
//
//	0,<line>,<func>,<block>,<opcode>,<dynid>
//	1,<idx>,<size>,<value>,<isreg>,<name>     (one line per input operand)
//	r,0,<size>,<value>,<isreg>,<name>         (result line, if any)
//
// The first line of every block starts with "0" (as in LLVM-Tracer), which
// is what makes the stream splittable at block boundaries for parallel
// processing. <line> is the source line (-1 for synthesized instructions
// such as entry-block allocas, matching Fig. 6(c)); <opcode> uses the
// LLVM 3.4 opcode numbering that the paper's trace excerpts show
// (Load=27, Alloca=26, Call=49, ...). Values are printed as decimal
// integers, decimal floats (always containing '.' or 'e'), or 0x-prefixed
// pointers, which is also how a parser tells the three kinds apart.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// LLVM 3.4 instruction opcode numbers, as used by LLVM-Tracer and shown in
// the paper's figures (Load=27 in Fig. 1, Alloca=26 in Fig. 6(c), Call=49
// in Fig. 6(a)).
const (
	OpRet           = 1
	OpBr            = 2
	OpSwitch        = 3
	OpAdd           = 8
	OpFAdd          = 9
	OpSub           = 10
	OpFSub          = 11
	OpMul           = 12
	OpFMul          = 13
	OpUDiv          = 14
	OpSDiv          = 15
	OpFDiv          = 16
	OpURem          = 17
	OpSRem          = 18
	OpFRem          = 19
	OpAlloca        = 26
	OpLoad          = 27
	OpStore         = 28
	OpGetElementPtr = 29
	OpTrunc         = 33
	OpZExt          = 34
	OpSExt          = 35
	OpFPToSI        = 37
	OpSIToFP        = 39
	OpBitCast       = 44
	OpICmp          = 46
	OpFCmp          = 47
	OpPHI           = 48
	OpCall          = 49
	OpSelect        = 50
)

// OpcodeName returns a human-readable mnemonic for an opcode number.
func OpcodeName(op int) string {
	switch op {
	case OpRet:
		return "Ret"
	case OpBr:
		return "Br"
	case OpSwitch:
		return "Switch"
	case OpAdd:
		return "Add"
	case OpFAdd:
		return "FAdd"
	case OpSub:
		return "Sub"
	case OpFSub:
		return "FSub"
	case OpMul:
		return "Mul"
	case OpFMul:
		return "FMul"
	case OpUDiv:
		return "UDiv"
	case OpSDiv:
		return "SDiv"
	case OpFDiv:
		return "FDiv"
	case OpURem:
		return "URem"
	case OpSRem:
		return "SRem"
	case OpFRem:
		return "FRem"
	case OpAlloca:
		return "Alloca"
	case OpLoad:
		return "Load"
	case OpStore:
		return "Store"
	case OpGetElementPtr:
		return "GetElementPtr"
	case OpTrunc:
		return "Trunc"
	case OpZExt:
		return "ZExt"
	case OpSExt:
		return "SExt"
	case OpFPToSI:
		return "FPToSI"
	case OpSIToFP:
		return "SIToFP"
	case OpBitCast:
		return "BitCast"
	case OpICmp:
		return "ICmp"
	case OpFCmp:
		return "FCmp"
	case OpPHI:
		return "PHI"
	case OpCall:
		return "Call"
	case OpSelect:
		return "Select"
	}
	return fmt.Sprintf("Op%d", op)
}

// IsArithmetic reports whether op is one of the arithmetic instructions
// AutoCheck analyzes (paper Table I: Add..FDiv; we include the Rem family,
// which LLVM groups with division).
func IsArithmetic(op int) bool {
	return op >= OpAdd && op <= OpFRem
}

// ValueKind discriminates the three value encodings in a trace.
type ValueKind uint8

const (
	KindInt ValueKind = iota
	KindFloat
	KindPtr
)

// Value is a dynamic operand value carried by a trace record.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Addr  uint64
}

// IntValue returns an integer trace value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatValue returns a floating-point trace value.
func FloatValue(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// PtrValue returns a pointer (address) trace value.
func PtrValue(a uint64) Value { return Value{Kind: KindPtr, Addr: a} }

// String formats the value using the trace encoding.
func (v Value) String() string {
	switch v.Kind {
	case KindPtr:
		return "0x" + strconv.FormatUint(v.Addr, 16)
	case KindFloat:
		s := strconv.FormatFloat(v.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	default:
		return strconv.FormatInt(v.Int, 10)
	}
}

// Equal reports whether two values are identical (exact comparison; trace
// values are never the result of lossy formatting because the writer emits
// full precision).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindPtr:
		return v.Addr == o.Addr
	case KindFloat:
		return v.Float == o.Float
	default:
		return v.Int == o.Int
	}
}

// ParseValue decodes a value from its trace encoding.
func ParseValue(s string) (Value, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		neg := false
		h := s
		if strings.HasPrefix(h, "-") {
			neg = true
			h = h[1:]
		}
		a, err := strconv.ParseUint(h[2:], 16, 64)
		if err != nil {
			return Value{}, fmt.Errorf("trace: bad pointer value %q: %w", s, err)
		}
		if neg {
			a = -a
		}
		return PtrValue(a), nil
	}
	if strings.ContainsAny(s, ".eE") || strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("trace: bad float value %q: %w", s, err)
		}
		return FloatValue(f), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("trace: bad int value %q: %w", s, err)
	}
	return IntValue(i), nil
}

// Operand is one input operand or the result of a dynamic instruction.
type Operand struct {
	Index int   // 1-based operand position; 0 for the result
	Size  int   // size in bits (64 for scalars, pointer-sized for addresses)
	Value Value // dynamic value at execution time
	IsReg bool  // true if the operand is a register (temporary or named)
	Name  string
}

// Record is one dynamic instruction block.
type Record struct {
	Line   int    // source line; -1 for synthesized instructions
	Func   string // enclosing function name
	Block  string // basic block label (the paper prints "line:col"; we print the label)
	Opcode int
	DynID  int64 // dynamic instruction ID, strictly increasing
	Ops    []Operand
	Result *Operand
}

// Opcode helpers on Record.

// IsArith reports whether the record is an arithmetic instruction.
func (r *Record) IsArith() bool { return IsArithmetic(r.Opcode) }

// Operand returns the input operand with 1-based position idx, or nil.
func (r *Record) Operand(idx int) *Operand {
	for i := range r.Ops {
		if r.Ops[i].Index == idx {
			return &r.Ops[i]
		}
	}
	return nil
}

// String renders the record in its trace block encoding (without trailing
// newline separation between blocks; blocks are newline-terminated lines).
func (r *Record) String() string {
	var b strings.Builder
	writeRecord(&b, r)
	return b.String()
}

func writeRecord(b *strings.Builder, r *Record) {
	b.WriteString("0,")
	b.WriteString(strconv.Itoa(r.Line))
	b.WriteByte(',')
	b.WriteString(r.Func)
	b.WriteByte(',')
	b.WriteString(r.Block)
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(r.Opcode))
	b.WriteByte(',')
	b.WriteString(strconv.FormatInt(r.DynID, 10))
	b.WriteByte('\n')
	for i := range r.Ops {
		writeOperand(b, "1", &r.Ops[i])
	}
	if r.Result != nil {
		writeOperand(b, "r", r.Result)
	}
}

func writeOperand(b *strings.Builder, tag string, o *Operand) {
	b.WriteString(tag)
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(o.Index))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(o.Size))
	b.WriteByte(',')
	b.WriteString(o.Value.String())
	b.WriteByte(',')
	if o.IsReg {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	b.WriteByte(',')
	b.WriteString(o.Name)
	b.WriteByte('\n')
}

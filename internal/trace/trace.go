// Package trace defines the dynamic instruction execution trace format used
// by AutoCheck, modeled on the block format printed by LLVM-Tracer 1.2
// (paper Fig. 1 and Fig. 6).
//
// A trace is a sequence of instruction blocks. Each block describes one
// dynamically executed IR instruction:
//
//	0,<line>,<func>,<block>,<opcode>,<dynid>
//	1,<idx>,<size>,<value>,<isreg>,<name>     (one line per input operand)
//	r,0,<size>,<value>,<isreg>,<name>         (result line, if any)
//
// The first line of every block starts with "0" (as in LLVM-Tracer), which
// is what makes the stream splittable at block boundaries for parallel
// processing. <line> is the source line (-1 for synthesized instructions
// such as entry-block allocas, matching Fig. 6(c)); <opcode> uses the
// LLVM 3.4 opcode numbering that the paper's trace excerpts show
// (Load=27, Alloca=26, Call=49, ...). Values are printed as decimal
// integers, decimal floats (always containing '.' or 'e'), or 0x-prefixed
// pointers, which is also how a parser tells the three kinds apart.
package trace

import (
	"strconv"
	"strings"
)

// LLVM 3.4 instruction opcode numbers, as used by LLVM-Tracer and shown in
// the paper's figures (Load=27 in Fig. 1, Alloca=26 in Fig. 6(c), Call=49
// in Fig. 6(a)).
const (
	OpRet           = 1
	OpBr            = 2
	OpSwitch        = 3
	OpAdd           = 8
	OpFAdd          = 9
	OpSub           = 10
	OpFSub          = 11
	OpMul           = 12
	OpFMul          = 13
	OpUDiv          = 14
	OpSDiv          = 15
	OpFDiv          = 16
	OpURem          = 17
	OpSRem          = 18
	OpFRem          = 19
	OpAlloca        = 26
	OpLoad          = 27
	OpStore         = 28
	OpGetElementPtr = 29
	OpTrunc         = 33
	OpZExt          = 34
	OpSExt          = 35
	OpFPToSI        = 37
	OpSIToFP        = 39
	OpBitCast       = 44
	OpICmp          = 46
	OpFCmp          = 47
	OpPHI           = 48
	OpCall          = 49
	OpSelect        = 50
)

// opcodeNames is the dense opcode-number -> mnemonic lookup table. It is
// also serialized into the binary format's self-description header, so a
// reader can name opcodes without compiling against this package version.
var opcodeNames = [...]string{
	OpRet:           "Ret",
	OpBr:            "Br",
	OpSwitch:        "Switch",
	OpAdd:           "Add",
	OpFAdd:          "FAdd",
	OpSub:           "Sub",
	OpFSub:          "FSub",
	OpMul:           "Mul",
	OpFMul:          "FMul",
	OpUDiv:          "UDiv",
	OpSDiv:          "SDiv",
	OpFDiv:          "FDiv",
	OpURem:          "URem",
	OpSRem:          "SRem",
	OpFRem:          "FRem",
	OpAlloca:        "Alloca",
	OpLoad:          "Load",
	OpStore:         "Store",
	OpGetElementPtr: "GetElementPtr",
	OpTrunc:         "Trunc",
	OpZExt:          "ZExt",
	OpSExt:          "SExt",
	OpFPToSI:        "FPToSI",
	OpSIToFP:        "SIToFP",
	OpBitCast:       "BitCast",
	OpICmp:          "ICmp",
	OpFCmp:          "FCmp",
	OpPHI:           "PHI",
	OpCall:          "Call",
	OpSelect:        "Select",
}

// opcodeByName is the reverse mapping, used when decoding a binary trace's
// self-description header.
var opcodeByName = func() map[string]int {
	m := make(map[string]int, len(opcodeNames))
	for op, name := range opcodeNames {
		if name != "" {
			m[name] = op
		}
	}
	return m
}()

// OpcodeName returns a human-readable mnemonic for an opcode number.
func OpcodeName(op int) string {
	if op >= 0 && op < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return "Op" + strconv.Itoa(op)
}

// OpcodeByName returns the opcode number for a mnemonic, reversing
// OpcodeName. Mnemonics of the form "OpN" resolve to N.
func OpcodeByName(name string) (int, bool) {
	if op, ok := opcodeByName[name]; ok {
		return op, true
	}
	if strings.HasPrefix(name, "Op") {
		if op, err := strconv.Atoi(name[2:]); err == nil {
			return op, true
		}
	}
	return 0, false
}

// IsArithmetic reports whether op is one of the arithmetic instructions
// AutoCheck analyzes (paper Table I: Add..FDiv; we include the Rem family,
// which LLVM groups with division).
func IsArithmetic(op int) bool {
	return op >= OpAdd && op <= OpFRem
}

// ValueKind discriminates the three value encodings in a trace.
type ValueKind uint8

const (
	KindInt ValueKind = iota
	KindFloat
	KindPtr
)

// Value is a dynamic operand value carried by a trace record.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Addr  uint64
}

// IntValue returns an integer trace value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatValue returns a floating-point trace value.
func FloatValue(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// PtrValue returns a pointer (address) trace value.
func PtrValue(a uint64) Value { return Value{Kind: KindPtr, Addr: a} }

// String formats the value using the trace encoding.
func (v Value) String() string {
	return string(v.appendTo(nil))
}

// appendTo appends the value's trace encoding to b without intermediate
// allocation (the writer hot path).
func (v Value) appendTo(b []byte) []byte {
	switch v.Kind {
	case KindPtr:
		b = append(b, '0', 'x')
		return strconv.AppendUint(b, v.Addr, 16)
	case KindFloat:
		start := len(b)
		b = strconv.AppendFloat(b, v.Float, 'g', -1, 64)
		if !hasFloatMarker(b[start:]) {
			b = append(b, '.', '0')
		}
		return b
	default:
		return strconv.AppendInt(b, v.Int, 10)
	}
}

// hasFloatMarker reports whether a formatted float already carries a byte
// that distinguishes it from an integer ('.', 'e', 'E') or is a special
// value (Inf/NaN, which contain 'I'/'N').
func hasFloatMarker(s []byte) bool {
	for _, c := range s {
		switch c {
		case '.', 'e', 'E', 'I', 'N':
			return true
		}
	}
	return false
}

// Equal reports whether two values are identical (exact comparison; trace
// values are never the result of lossy formatting because the writer emits
// full precision).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindPtr:
		return v.Addr == o.Addr
	case KindFloat:
		return v.Float == o.Float
	default:
		return v.Int == o.Int
	}
}

// ParseValue decodes a value from its trace encoding.
func ParseValue(s string) (Value, error) {
	return parseValueBytes([]byte(s))
}

// Operand is one input operand or the result of a dynamic instruction.
type Operand struct {
	Index int   // 1-based operand position; 0 for the result
	Size  int   // size in bits (64 for scalars, pointer-sized for addresses)
	Value Value // dynamic value at execution time
	IsReg bool  // true if the operand is a register (temporary or named)
	Name  string
}

// Record is one dynamic instruction block.
type Record struct {
	Line   int    // source line; -1 for synthesized instructions
	Func   string // enclosing function name
	Block  string // basic block label (the paper prints "line:col"; we print the label)
	Opcode int
	DynID  int64 // dynamic instruction ID, strictly increasing
	Ops    []Operand
	Result *Operand
}

// Clone returns a copy of the record that shares no mutable storage with
// the original: the operand slice and the result operand are duplicated
// (strings and values are immutable). Use it to retain a record beyond
// the callback that delivered it — emitters are free to reuse their
// record and operand buffers between emissions.
func (r *Record) Clone() Record {
	c := *r
	if len(r.Ops) > 0 {
		c.Ops = append([]Operand(nil), r.Ops...)
	}
	if r.Result != nil {
		res := *r.Result
		c.Result = &res
	}
	return c
}

// Opcode helpers on Record.

// IsArith reports whether the record is an arithmetic instruction.
func (r *Record) IsArith() bool { return IsArithmetic(r.Opcode) }

// Operand returns the input operand with 1-based position idx, or nil.
func (r *Record) Operand(idx int) *Operand {
	for i := range r.Ops {
		if r.Ops[i].Index == idx {
			return &r.Ops[i]
		}
	}
	return nil
}

// String renders the record in its trace block encoding (without trailing
// newline separation between blocks; blocks are newline-terminated lines).
func (r *Record) String() string {
	return string(appendRecord(nil, r))
}

// appendRecord appends the record's textual block encoding to b. It is the
// single encoding path: Writer.Write, EncodeAll, and Record.String all
// build bytes directly instead of detouring through a strings.Builder.
func appendRecord(b []byte, r *Record) []byte {
	b = append(b, '0', ',')
	b = strconv.AppendInt(b, int64(r.Line), 10)
	b = append(b, ',')
	b = append(b, r.Func...)
	b = append(b, ',')
	b = append(b, r.Block...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.Opcode), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.DynID, 10)
	b = append(b, '\n')
	for i := range r.Ops {
		b = appendOperand(b, '1', &r.Ops[i])
	}
	if r.Result != nil {
		b = appendOperand(b, 'r', r.Result)
	}
	return b
}

func appendOperand(b []byte, tag byte, o *Operand) []byte {
	b = append(b, tag, ',')
	b = strconv.AppendInt(b, int64(o.Index), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(o.Size), 10)
	b = append(b, ',')
	b = o.Value.appendTo(b)
	b = append(b, ',')
	if o.IsReg {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	b = append(b, ',')
	b = append(b, o.Name...)
	b = append(b, '\n')
	return b
}

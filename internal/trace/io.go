package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Writer emits instruction blocks to an underlying io.Writer.
// It is not safe for concurrent use; the tracer is single-threaded
// (LLVM-Tracer traces one-rank / one-thread executions, §II-C).
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
	count   int64
}

// NewWriter returns a buffered trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record to the trace. The record is encoded into a
// reused scratch buffer and copied straight into the buffered writer.
func (w *Writer) Write(r *Record) error {
	w.scratch = appendRecord(w.scratch[:0], r)
	w.count++
	_, err := w.bw.Write(w.scratch)
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// scannerMaxLine caps the per-line token size of the io.Reader-based
// Scanner (the in-memory ParseBytes path has no such cap).
const scannerMaxLine = 1 << 22

// Scanner reads records one block at a time from a stream.
type Scanner struct {
	s           *bufio.Scanner
	d           *decoder
	pending     Record // header of the next block, already consumed and parsed
	havePending bool
	done        bool
	off         int64 // byte offset of the next unread line
}

// NewScanner returns a streaming trace reader.
func NewScanner(r io.Reader) *Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), scannerMaxLine)
	s.Split(scanLinesKeepCR)
	return &Scanner{s: s, d: newDecoder()}
}

// scanLinesKeepCR is bufio.ScanLines without the \r stripping, so the
// scanner's byte-offset accounting stays exact on CRLF input (the \r is
// stripped after counting).
func scanLinesKeepCR(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return i + 1, data[:i], nil
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// err wraps the underlying scanner error, adding the byte offset and a
// hint when a pathological line overflows the token cap.
func (sc *Scanner) err() error {
	err := sc.s.Err()
	if err == bufio.ErrTooLong {
		return fmt.Errorf("trace: line at byte offset %d exceeds the %d-byte streaming line cap (parse in memory with ParseBytes, which has no cap): %w",
			sc.off, scannerMaxLine, err)
	}
	return err
}

// scan advances to the next line, tracking the byte offset for error
// context; the returned line has its trailing \r (if any) stripped.
func (sc *Scanner) scan() ([]byte, bool) {
	if !sc.s.Scan() {
		return nil, false
	}
	line := sc.s.Bytes()
	sc.off += int64(len(line)) + 1
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, true
}

// Next returns the next record, or (nil, nil) at end of stream. Lines are
// parsed straight from the scan buffer — everything a Record retains
// (interned names, values) is copied by the field parsers, so no per-line
// string materializes.
func (sc *Scanner) Next() (*Record, error) {
	var rec Record
	switch {
	case sc.havePending:
		rec = sc.pending
		sc.havePending = false
	case sc.done:
		return nil, nil
	default:
		var header []byte
		for {
			line, ok := sc.scan()
			if !ok {
				sc.done = true
				return nil, sc.err()
			}
			if len(line) != 0 {
				header = line
				break
			}
		}
		if !isHeaderLine(header) {
			return nil, fmt.Errorf("trace: expected block header, got %q", header)
		}
		var err error
		if rec, err = sc.d.parseHeader(header); err != nil {
			return nil, err
		}
	}
	for {
		line, ok := sc.scan()
		if !ok {
			break
		}
		if len(line) == 0 {
			continue
		}
		if isHeaderLine(line) {
			next, err := sc.d.parseHeader(line)
			if err != nil {
				return nil, err
			}
			sc.pending = next
			sc.havePending = true
			return &rec, nil
		}
		op, err := sc.d.parseOperand(line)
		if err != nil {
			return nil, err
		}
		if line[0] == 'r' && line[1] == ',' {
			res := op
			rec.Result = &res
		} else {
			rec.Ops = append(rec.Ops, op)
		}
	}
	sc.done = true
	if err := sc.err(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// NextBatch decodes up to max records into b, recycling its storage.
// Records whose opcode b.Filter rejects are decoded header-only: their
// operand lines are scanned past without parsing.
func (sc *Scanner) NextBatch(b *RecordBatch, max int) (int, error) {
	b.reset()
	for len(b.Recs) < max {
		var rec Record
		switch {
		case sc.havePending:
			rec = sc.pending
			sc.havePending = false
		case sc.done:
			return len(b.Recs), nil
		default:
			var header []byte
			for {
				line, ok := sc.scan()
				if !ok {
					sc.done = true
					if err := sc.err(); err != nil {
						return 0, err
					}
					return len(b.Recs), nil
				}
				if len(line) != 0 {
					header = line
					break
				}
			}
			if !isHeaderLine(header) {
				return 0, fmt.Errorf("trace: expected block header, got %q", header)
			}
			var err error
			if rec, err = sc.d.parseHeader(header); err != nil {
				return 0, err
			}
		}
		store := b.wantOps(rec.Opcode)
		opStart := len(b.ops)
		var res Operand
		hasRes := false
		for {
			line, ok := sc.scan()
			if !ok {
				sc.done = true
				if err := sc.err(); err != nil {
					return 0, err
				}
				break
			}
			if len(line) == 0 {
				continue
			}
			if isHeaderLine(line) {
				next, err := sc.d.parseHeader(line)
				if err != nil {
					return 0, err
				}
				sc.pending = next
				sc.havePending = true
				break
			}
			if !store {
				continue
			}
			op, err := sc.d.parseOperand(line)
			if err != nil {
				return 0, err
			}
			if line[0] == 'r' && line[1] == ',' {
				// Any "r," line is the result, the last wins — matching Next.
				res = op
				hasRes = true
			} else {
				b.ops = append(b.ops, op)
			}
		}
		if end := len(b.ops); end > opStart {
			// Capacity-clamped so a caller's append cannot clobber the result
			// slot that follows.
			rec.Ops = b.ops[opStart:end:end]
		}
		if hasRes {
			b.ops = append(b.ops, res)
			rec.Result = &b.ops[len(b.ops)-1]
		}
		b.Recs = append(b.Recs, rec)
	}
	return len(b.Recs), nil
}

// ReadAll parses an entire trace stream serially.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := NewScanner(r)
	var recs []Record
	for {
		rec, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return recs, nil
		}
		recs = append(recs, *rec)
	}
}

// ParseBytes parses a complete in-memory trace serially on the
// allocation-free manual path: no line-length cap, field scanning without
// intermediate strings, interned identifiers, and arena-backed operands.
func ParseBytes(data []byte) ([]Record, error) {
	if DetectFormat(data) == FormatBinary {
		return ParseBinary(data)
	}
	n := CountRecords(data)
	if n == 0 {
		// Preserve the old behavior for garbage without any header line:
		// non-empty non-block input is an error, empty input is an empty
		// trace.
		d := newDecoder()
		return d.decodeText(data, nil)
	}
	d := newDecoder()
	d.ops = make([]Operand, 0, 2*n)
	return d.decodeText(data, make([]Record, 0, n))
}

// splitChunks partitions data into at most n chunks whose boundaries fall on
// block-header lines (lines beginning with "0,"), so no instruction block is
// split across chunks. This is the same strategy as the paper's §V-A
// OpenMP optimization: the master partitions the input file stream into
// sub-file-streams without breaking instruction blocks.
func splitChunks(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	var chunks [][]byte
	start := 0
	approx := len(data)/n + 1
	for start < len(data) {
		end := start + approx
		if end >= len(data) {
			chunks = append(chunks, data[start:])
			break
		}
		// Advance end to the next block boundary: a newline followed by "0,".
		for {
			i := bytes.IndexByte(data[end:], '\n')
			if i < 0 {
				end = len(data)
				break
			}
			end += i + 1
			if end >= len(data) || bytes.HasPrefix(data[end:], []byte("0,")) {
				break
			}
		}
		chunks = append(chunks, data[start:end])
		start = end
	}
	return chunks
}

// parallelParseMinBytes is the input size below which ParseBytesParallel
// falls back to the serial decoder: goroutine startup, per-chunk decoder
// state (interner, arena), and the per-chunk pre-count cost more than
// they save on small traces, where serial parse already runs in
// single-digit milliseconds. A variable rather than a constant so tests
// can force the chunked path on small inputs.
var parallelParseMinBytes = 4 << 20

// ParseBytesParallel parses a complete in-memory trace using the given
// number of worker goroutines (0 means GOMAXPROCS). Chunk boundaries are
// aligned to instruction blocks; the result preserves trace order. Each
// chunk's record count is pre-counted so workers decode directly into
// their slice of one pre-sized result — there is no final gather copy.
// Binary traces (which are not line-splittable) fall back to the serial
// binary decoder, which is faster than parallel text parsing anyway;
// traces below parallelParseMinBytes fall back to the serial text
// decoder, which beats the fan-out overhead at that size.
func ParseBytesParallel(data []byte, workers int) ([]Record, error) {
	if DetectFormat(data) == FormatBinary {
		return ParseBinary(data)
	}
	if len(data) < parallelParseMinBytes {
		return ParseBytes(data)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := splitChunks(data, workers)
	if len(chunks) <= 1 {
		return ParseBytes(data)
	}
	offs := make([]int, len(chunks)+1)
	for i, c := range chunks {
		offs[i+1] = offs[i] + CountRecords(c)
	}
	out := make([]Record, offs[len(chunks)])
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c []byte) {
			defer wg.Done()
			d := newDecoder()
			lo, hi := offs[i], offs[i+1]
			d.ops = make([]Operand, 0, 2*(hi-lo))
			got, err := d.decodeText(c, out[lo:lo:hi])
			if err == nil && len(got) != hi-lo {
				err = fmt.Errorf("trace: chunk %d decoded %d records, expected %d", i, len(got), hi-lo)
			}
			errs[i] = err
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Records   int64
	Bytes     int64
	ByOpcode  map[int]int64
	Functions map[string]int64
}

// ComputeStats gathers record counts by opcode and function.
func ComputeStats(recs []Record) Stats {
	st := Stats{ByOpcode: make(map[int]int64), Functions: make(map[string]int64), Records: int64(len(recs))}
	for i := range recs {
		st.ByOpcode[recs[i].Opcode]++
		st.Functions[recs[i].Func]++
	}
	return st
}

// EncodeAll renders records into the textual trace encoding, sizing the
// buffer from a sample so large traces do not re-grow repeatedly.
func EncodeAll(recs []Record) []byte {
	var b []byte
	for i := range recs {
		if i == 64 {
			// Estimate the final size from the first 64 records.
			est := len(b) / 64 * len(recs)
			if est > cap(b) {
				nb := make([]byte, len(b), est+est/8)
				copy(nb, b)
				b = nb
			}
		}
		b = appendRecord(b, &recs[i])
	}
	return b
}

package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Writer emits instruction blocks to an underlying io.Writer.
// It is not safe for concurrent use; the tracer is single-threaded
// (LLVM-Tracer traces one-rank / one-thread executions, §II-C).
type Writer struct {
	bw    *bufio.Writer
	buf   strings.Builder
	count int64
}

// NewWriter returns a buffered trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record to the trace.
func (w *Writer) Write(r *Record) error {
	w.buf.Reset()
	writeRecord(&w.buf, r)
	w.count++
	_, err := w.bw.WriteString(w.buf.String())
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// parseLine splits a trace line into its comma-separated fields.
// Names never contain commas (identifiers and labels only), so a plain
// split is exact.
func parseOperandLine(line string) (Operand, error) {
	f := strings.Split(line, ",")
	if len(f) != 6 {
		return Operand{}, fmt.Errorf("trace: operand line has %d fields, want 6: %q", len(f), line)
	}
	idx, err := strconv.Atoi(f[1])
	if err != nil {
		return Operand{}, fmt.Errorf("trace: bad operand index in %q: %w", line, err)
	}
	size, err := strconv.Atoi(f[2])
	if err != nil {
		return Operand{}, fmt.Errorf("trace: bad operand size in %q: %w", line, err)
	}
	val, err := ParseValue(f[3])
	if err != nil {
		return Operand{}, err
	}
	return Operand{Index: idx, Size: size, Value: val, IsReg: f[4] == "1", Name: f[5]}, nil
}

func parseHeaderLine(line string) (Record, error) {
	f := strings.Split(line, ",")
	if len(f) != 6 {
		return Record{}, fmt.Errorf("trace: header line has %d fields, want 6: %q", len(f), line)
	}
	ln, err := strconv.Atoi(f[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad line number in %q: %w", line, err)
	}
	op, err := strconv.Atoi(f[4])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad opcode in %q: %w", line, err)
	}
	dyn, err := strconv.ParseInt(f[5], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad dynamic id in %q: %w", line, err)
	}
	return Record{Line: ln, Func: f[2], Block: f[3], Opcode: op, DynID: dyn}, nil
}

// Scanner reads records one block at a time from a stream.
type Scanner struct {
	s       *bufio.Scanner
	pending string // header line of the next block, already consumed
	done    bool
}

// NewScanner returns a streaming trace reader.
func NewScanner(r io.Reader) *Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Scanner{s: s}
}

// Next returns the next record, or (nil, nil) at end of stream.
func (sc *Scanner) Next() (*Record, error) {
	var header string
	switch {
	case sc.pending != "":
		header = sc.pending
		sc.pending = ""
	case sc.done:
		return nil, nil
	default:
		for {
			if !sc.s.Scan() {
				sc.done = true
				return nil, sc.s.Err()
			}
			if line := sc.s.Text(); line != "" {
				header = line
				break
			}
		}
	}
	if !strings.HasPrefix(header, "0,") {
		return nil, fmt.Errorf("trace: expected block header, got %q", header)
	}
	rec, err := parseHeaderLine(header)
	if err != nil {
		return nil, err
	}
	for sc.s.Scan() {
		line := sc.s.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "0,") {
			sc.pending = line
			return &rec, nil
		}
		op, err := parseOperandLine(line)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(line, "r,") {
			rec.Result = &op
		} else {
			rec.Ops = append(rec.Ops, op)
		}
	}
	sc.done = true
	if err := sc.s.Err(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// ReadAll parses an entire trace stream serially.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := NewScanner(r)
	var recs []Record
	for {
		rec, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return recs, nil
		}
		recs = append(recs, *rec)
	}
}

// ParseBytes parses a complete in-memory trace serially.
func ParseBytes(data []byte) ([]Record, error) {
	return ReadAll(bytes.NewReader(data))
}

// splitChunks partitions data into at most n chunks whose boundaries fall on
// block-header lines (lines beginning with "0,"), so no instruction block is
// split across chunks. This is the same strategy as the paper's §V-A
// OpenMP optimization: the master partitions the input file stream into
// sub-file-streams without breaking instruction blocks.
func splitChunks(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	var chunks [][]byte
	start := 0
	approx := len(data)/n + 1
	for start < len(data) {
		end := start + approx
		if end >= len(data) {
			chunks = append(chunks, data[start:])
			break
		}
		// Advance end to the next block boundary: a newline followed by "0,".
		for {
			i := bytes.IndexByte(data[end:], '\n')
			if i < 0 {
				end = len(data)
				break
			}
			end += i + 1
			if end >= len(data) || bytes.HasPrefix(data[end:], []byte("0,")) {
				break
			}
		}
		chunks = append(chunks, data[start:end])
		start = end
	}
	return chunks
}

// ParseBytesParallel parses a complete in-memory trace using the given
// number of worker goroutines (0 means GOMAXPROCS). Chunk boundaries are
// aligned to instruction blocks; the result preserves trace order.
func ParseBytesParallel(data []byte, workers int) ([]Record, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := splitChunks(data, workers)
	results := make([][]Record, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c []byte) {
			defer wg.Done()
			results[i], errs[i] = ParseBytes(c)
		}(i, c)
	}
	wg.Wait()
	total := 0
	for i := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(results[i])
	}
	out := make([]Record, 0, total)
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Records   int64
	Bytes     int64
	ByOpcode  map[int]int64
	Functions map[string]int64
}

// ComputeStats gathers record counts by opcode and function.
func ComputeStats(recs []Record) Stats {
	st := Stats{ByOpcode: make(map[int]int64), Functions: make(map[string]int64), Records: int64(len(recs))}
	for i := range recs {
		st.ByOpcode[recs[i].Opcode]++
		st.Functions[recs[i].Func]++
	}
	return st
}

// EncodeAll renders records into the textual trace encoding.
func EncodeAll(recs []Record) []byte {
	var b bytes.Buffer
	w := NewWriter(&b)
	for i := range recs {
		_ = w.Write(&recs[i]) // bytes.Buffer writes cannot fail
	}
	_ = w.Flush()
	return b.Bytes()
}

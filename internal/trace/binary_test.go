package trace

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundtrip(t *testing.T) {
	recs := sampleRecords()
	data := EncodeBinary(recs)
	got, err := ParseBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Errorf("roundtrip mismatch:\nwant %+v\ngot  %+v", recs, got)
	}
}

func TestBinaryScannerStreaming(t *testing.T) {
	recs := sampleRecords()
	sc := NewBinaryScanner(bytes.NewReader(EncodeBinary(recs)))
	for i := range recs {
		rec, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("premature EOF at record %d", i)
		}
		if !reflect.DeepEqual(*rec, recs[i]) {
			t.Errorf("record %d mismatch:\nwant %+v\ngot  %+v", i, recs[i], *rec)
		}
	}
	for range 2 {
		rec, err := sc.Next()
		if err != nil || rec != nil {
			t.Errorf("after EOF: (%v, %v), want (nil, nil)", rec, err)
		}
	}
	if name := sc.OpcodeTable()[OpLoad]; name != "Load" {
		t.Errorf("self-description header: OpcodeTable()[OpLoad] = %q, want Load", name)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(11)), 2000)
	text := EncodeAll(recs)
	bin := EncodeBinary(recs)
	if ratio := float64(len(bin)) / float64(len(text)); ratio > 0.7 {
		t.Errorf("binary/text size ratio = %.2f (binary %d B, text %d B), want <= 0.7",
			ratio, len(bin), len(text))
	}
}

// Property: text -> records -> binary -> records -> text is the identity.
func TestQuickTextBinaryText(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(size))
		text := EncodeAll(recs)
		viaText, err := ParseBytes(text)
		if err != nil {
			return false
		}
		viaBinary, err := ParseBinary(EncodeBinary(viaText))
		if err != nil {
			return false
		}
		return bytes.Equal(EncodeAll(viaBinary), text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: binary -> records -> binary is the identity (the string table
// is assigned in first-use order, so re-encoding reproduces the bytes).
func TestQuickBinaryRecordsBinary(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bin := EncodeBinary(randomRecords(rng, int(size)))
		recs, err := ParseBinary(bin)
		if err != nil {
			return false
		}
		return bytes.Equal(EncodeBinary(recs), bin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the streaming BinaryScanner and the in-memory ParseBinary
// agree.
func TestQuickBinaryScannerEqualsParse(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bin := EncodeBinary(randomRecords(rng, int(size)))
		fast, err := ParseBinary(bin)
		if err != nil {
			return false
		}
		sc := NewBinaryScanner(bytes.NewReader(bin))
		var slow []Record
		for {
			rec, err := sc.Next()
			if err != nil {
				return false
			}
			if rec == nil {
				break
			}
			slow = append(slow, *rec)
		}
		if len(fast) == 0 && len(slow) == 0 {
			return true
		}
		return reflect.DeepEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	recs := sampleRecords()
	data := EncodeBinary(recs)
	// Every proper prefix must error or yield fewer records — never panic.
	for cut := 1; cut < len(data); cut++ {
		got, err := ParseBinary(data[:cut])
		if err == nil && len(got) >= len(recs) {
			t.Fatalf("truncated at %d/%d bytes: parsed %d records without error",
				cut, len(data), len(got))
		}
		sc := NewBinaryScanner(bytes.NewReader(data[:cut]))
		for {
			rec, serr := sc.Next()
			if serr != nil || rec == nil {
				break
			}
		}
	}
}

func TestBinaryCorruptHeader(t *testing.T) {
	valid := EncodeBinary(sampleRecords())
	cases := map[string][]byte{
		"bad magic":        []byte("ACTX\x01rest"),
		"bad version":      append(append([]byte{}, binaryMagic...), 99),
		"header only cut":  valid[:4],
		"no version":       binaryMagic,
		"huge table count": append(append(append([]byte{}, binaryMagic...), binaryVersion), 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		if _, err := ParseBinary(data); err == nil {
			t.Errorf("%s: ParseBinary succeeded, want error", name)
		}
		sc := NewBinaryScanner(bytes.NewReader(data))
		if _, err := sc.Next(); err == nil {
			t.Errorf("%s: BinaryScanner.Next succeeded, want error", name)
		}
	}
	// An empty stream is an empty trace, not an error.
	if recs, err := ParseBinary(nil); err != nil || len(recs) != 0 {
		t.Errorf("ParseBinary(nil) = (%v, %v), want empty", recs, err)
	}
	sc := NewBinaryScanner(bytes.NewReader(nil))
	if rec, err := sc.Next(); err != nil || rec != nil {
		t.Errorf("BinaryScanner over empty stream = (%v, %v), want (nil, nil)", rec, err)
	}
}

func TestBinaryCorruptBody(t *testing.T) {
	data := EncodeBinary(sampleRecords())
	// Flip every byte after the header region; the decoder must never
	// panic, and the common corruptions must be detected.
	for i := 5; i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0xff
		_, _ = ParseBinary(mut) // must not panic
	}
}

func TestDetectFormat(t *testing.T) {
	recs := sampleRecords()
	if f := DetectFormat(EncodeAll(recs)); f != FormatText {
		t.Errorf("text detected as %v", f)
	}
	if f := DetectFormat(EncodeBinary(recs)); f != FormatBinary {
		t.Errorf("binary detected as %v", f)
	}
	if f := DetectFormat(nil); f != FormatText {
		t.Errorf("empty detected as %v", f)
	}
	// ParseBytes dispatches on the magic.
	got, err := ParseBytes(EncodeBinary(recs))
	if err != nil || !reflect.DeepEqual(got, recs) {
		t.Errorf("ParseBytes on binary data: %v", err)
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"text": FormatText, "binary": FormatBinary, "bin": FormatBinary, "txt": FormatText} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("protobuf"); err == nil {
		t.Error("ParseFormat(protobuf) succeeded")
	}
}

func TestNewAutoReader(t *testing.T) {
	recs := sampleRecords()
	for _, format := range []Format{FormatText, FormatBinary} {
		rd, got, err := NewAutoReader(bytes.NewReader(Encode(recs, format)))
		if err != nil || got != format {
			t.Fatalf("NewAutoReader(%v) = format %v, err %v", format, got, err)
		}
		n := 0
		for {
			rec, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil {
				break
			}
			n++
		}
		if n != len(recs) {
			t.Errorf("%v: read %d records, want %d", format, n, len(recs))
		}
	}
}

func TestBinaryWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}
}

func TestBinaryEmptyWriterProducesHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseBinary(buf.Bytes())
	if err != nil || len(recs) != 0 {
		t.Errorf("empty binary trace: (%v, %v)", recs, err)
	}
}

func TestBinaryExtremeValues(t *testing.T) {
	recs := []Record{{
		Line: -1, Func: "f", Block: "b", Opcode: OpStore, DynID: math.MaxInt64,
		Ops: []Operand{
			{Index: -3, Size: 64, Value: IntValue(math.MinInt64), IsReg: true, Name: "x"},
			{Index: 1, Size: 64, Value: FloatValue(math.Inf(-1)), Name: ""},
			{Index: 2, Size: 64, Value: FloatValue(math.Copysign(0, -1)), Name: strings.Repeat("n", 300)},
			{Index: 3, Size: 64, Value: PtrValue(math.MaxUint64), Name: "x"},
		},
	}}
	got, err := ParseBinary(EncodeBinary(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Errorf("extreme values mangled:\nwant %+v\ngot  %+v", recs, got)
	}
	// NaN needs a bit-level check (NaN != NaN defeats DeepEqual).
	nan := []Record{{Func: "f", Block: "b", Opcode: OpFAdd, DynID: 1,
		Result: &Operand{Size: 64, Value: FloatValue(math.NaN()), IsReg: true, Name: "r"}}}
	back, err := ParseBinary(EncodeBinary(nan))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Result == nil || !math.IsNaN(back[0].Result.Value.Float) {
		t.Errorf("NaN not preserved: %+v", back)
	}
}

package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestStatsRaceUnderConcurrentOps pins the Stats() audit: every backend
// and decorator must keep its counters (and everything else) race-free
// under concurrent Put/Get/List/Delete/Stats — the Sharded worker pool
// and the Async drain path included. The test asserts nothing about
// exact counts (interleavings vary); it exists to fail under -race (the
// CI race step runs this package) and to catch panics from torn
// internal state. Operation errors are expected by design — e.g. a Get
// racing a Delete, or an incremental delta whose chain a concurrent
// Delete broke — and are ignored; only the counters' integrity is under
// test.
func TestStatsRaceUnderConcurrentOps(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			defer b.Close()
			const (
				workers = 4
				iters   = 40
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						key := fmt.Sprintf("ckpt-%06d", (w*iters+i)%7)
						switch i % 5 {
						case 0, 1:
							b.Put(key, sampleSections(byte(w*iters+i)))
						case 2:
							b.Get(key)
						case 3:
							b.List()
							b.Stats()
						case 4:
							if w == 0 {
								b.Delete(key)
							} else {
								b.Stats()
							}
						}
					}
				}(w)
			}
			wg.Wait()
			st := b.Stats()
			if st.Puts == 0 || st.BytesWritten <= 0 {
				t.Errorf("no writes recorded under concurrency: %+v", st)
			}
		})
	}
}

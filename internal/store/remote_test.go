package store

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/faultinject"
)

// fakeService is a minimal scripted stand-in for internal/server (which
// cannot be imported here without a cycle): namespaced Memory backends
// behind the same /v1/{ns}/objects wire protocol, plus failure
// injection for the retry tests. The real client↔service integration is
// tested in internal/server.
type fakeService struct {
	mu       sync.Mutex
	stores   map[string]*Memory
	failNext int // respond 503 to this many requests before serving
	requests int
	srv      *httptest.Server
}

func newFakeService(t testing.TB) *fakeService {
	t.Helper()
	f := &fakeService{stores: make(map[string]*Memory)}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/{ns}/objects/{key}", f.wrap(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sections, err := DecodeSections(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.backend(r.PathValue("ns")).Put(r.PathValue("key"), sections)
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /v1/{ns}/objects/{key}", f.wrap(func(w http.ResponseWriter, r *http.Request) {
		sections, err := f.backend(r.PathValue("ns")).Get(r.PathValue("key"))
		if errors.Is(err, ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(EncodeSections(sections))
	}))
	mux.HandleFunc("GET /v1/{ns}/objects", f.wrap(func(w http.ResponseWriter, r *http.Request) {
		keys, _ := f.backend(r.PathValue("ns")).List()
		io.WriteString(w, strings.Join(keys, "\n"))
	}))
	mux.HandleFunc("DELETE /v1/{ns}/objects/{key}", f.wrap(func(w http.ResponseWriter, r *http.Request) {
		err := f.backend(r.PathValue("ns")).Delete(r.PathValue("key"))
		if errors.Is(err, ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("POST /v1/{ns}/flush", f.wrap(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeService) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.requests++
		shed := f.failNext > 0
		if shed {
			f.failNext--
		}
		f.mu.Unlock()
		if shed {
			http.Error(w, "injected transient failure", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

func (f *fakeService) backend(ns string) *Memory {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.stores[ns]
	if b == nil {
		b = NewMemory()
		f.stores[ns] = b
	}
	return b
}

func (f *fakeService) requestCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

func (f *fakeService) setFailNext(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// fastRemote returns a client with millisecond backoff for tests.
func fastRemote(t *testing.T, addr, ns string) *Remote {
	t.Helper()
	r, err := NewRemote(addr, ns)
	if err != nil {
		t.Fatal(err)
	}
	r.Backoff = time.Millisecond
	return r
}

func TestRemoteRoundtripAndNamespaceIsolation(t *testing.T) {
	f := newFakeService(t)
	a := fastRemote(t, f.srv.URL, "ns-a")
	b := fastRemote(t, f.srv.URL, "ns-b")
	defer a.Close()
	defer b.Close()

	want := sampleSections(4)
	if err := a.Put("ckpt-000001", want); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get("ckpt-000001")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("round-tripped sections differ")
	}
	// Namespaces are disjoint key spaces.
	if _, err := b.Get("ckpt-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-namespace read = %v, want ErrNotFound", err)
	}
	keysB, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keysB) != 0 {
		t.Errorf("namespace b lists %v, want empty", keysB)
	}
	keysA, err := a.List()
	if err != nil || len(keysA) != 1 || keysA[0] != "ckpt-000001" {
		t.Errorf("namespace a lists %v (%v)", keysA, err)
	}
	if err := a.Delete("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("ckpt-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
	st := a.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 || st.BytesWritten <= 0 || st.BytesRead <= 0 {
		t.Errorf("client stats = %+v", st)
	}
}

func TestRemoteRetriesTransientFailures(t *testing.T) {
	f := newFakeService(t)
	r := fastRemote(t, f.srv.URL, "retry")
	defer r.Close()
	f.setFailNext(2) // two 503s, then success — within the default 4 attempts
	if err := r.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("Put should have retried through transient failures: %v", err)
	}
	if got := f.requestCount(); got != 3 {
		t.Errorf("requests = %d, want 3 (two shed + one served)", got)
	}
}

func TestRemoteRetriesExhausted(t *testing.T) {
	f := newFakeService(t)
	r := fastRemote(t, f.srv.URL, "exhaust")
	r.MaxAttempts = 3
	defer r.Close()
	f.setFailNext(100)
	err := r.Put("ckpt-000001", sampleSections(1))
	if err == nil {
		t.Fatal("Put succeeded against a dead service")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Errorf("error should carry the last status: %v", err)
	}
	if got := f.requestCount(); got != 3 {
		t.Errorf("requests = %d, want exactly MaxAttempts=3", got)
	}
}

func TestRemotePermanentErrorsAreNotRetried(t *testing.T) {
	f := newFakeService(t)
	r := fastRemote(t, f.srv.URL, "perm")
	defer r.Close()
	// The fake decodes uploads like the real service: hand-roll a Put of
	// a corrupt blob by bypassing Put's own encoding via a raw request.
	req, _ := http.NewRequest(http.MethodPut, f.srv.URL+"/v1/perm/objects/ckpt-000001",
		strings.NewReader("garbage"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload = %d, want 400", resp.StatusCode)
	}
	// A 4xx through the client must not burn retry attempts.
	before := f.requestCount()
	if _, err := r.Get("no-such-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key = %v, want ErrNotFound", err)
	}
	if got := f.requestCount() - before; got != 1 {
		t.Errorf("404 took %d requests, want 1 (no retry)", got)
	}
}

func TestRemoteRejectsCorruptResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "not an object")
	}))
	defer srv.Close()
	r := fastRemote(t, srv.URL, "x")
	defer r.Close()
	if _, err := r.Get("ckpt-000001"); err == nil {
		t.Error("corrupt payload accepted — the CRC framing must hold end to end")
	}
}

func TestRemoteConnectionErrorIsTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := srv.URL
	srv.Close() // nothing listens anymore
	r := fastRemote(t, addr, "gone")
	r.MaxAttempts = 2
	start := time.Now()
	if err := r.Put("ckpt-000001", sampleSections(1)); err == nil {
		t.Fatal("Put succeeded with nothing listening")
	}
	if time.Since(start) < time.Millisecond {
		t.Error("no backoff observed before the retry")
	}
}

func TestRemoteValidation(t *testing.T) {
	if _, err := NewRemote("://bad url", ""); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := NewRemote("ftp://host", ""); err == nil {
		t.Error("non-HTTP scheme accepted")
	}
	if _, err := NewRemote("localhost:1", "../escape"); err == nil {
		t.Error("traversal namespace accepted")
	}
	r, err := NewRemote("localhost:1", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Namespace() != "default" {
		t.Errorf("default namespace = %q", r.Namespace())
	}
	if err := r.Put("bad/key", sampleSections(1)); err == nil {
		t.Error("key with separator accepted")
	}
	if _, err := r.Get(".."); err == nil {
		t.Error("traversal key accepted")
	}
}

func TestNamespaceForDir(t *testing.T) {
	a := NamespaceForDir("/tmp/scratch/fail0")
	b := NamespaceForDir("/tmp/scratch/fail1")
	if a == b {
		t.Errorf("distinct dirs map to one namespace %q", a)
	}
	if a != NamespaceForDir("/tmp/scratch/fail0") {
		t.Error("namespace derivation is not stable")
	}
	if !ValidName(a) {
		t.Errorf("derived namespace %q is not path-safe", a)
	}
	if NamespaceForDir("") != "default" {
		t.Errorf(`empty dir should map to "default"`)
	}
	long := NamespaceForDir(strings.Repeat("/very/long/path", 20))
	if !ValidName(long) {
		t.Errorf("long-path namespace %q invalid", long)
	}
}

// fakeClock is the retry loop's test clock: sleeps advance it instantly
// and are recorded, so Retry-After and budget behavior are asserted
// without real waiting.
type fakeClock struct {
	mu    sync.Mutex
	t     time.Time
	waits []time.Duration
}

func (c *fakeClock) install(r *Remote) {
	c.t = time.Unix(1000, 0)
	r.sleep = func(d time.Duration) {
		c.mu.Lock()
		c.waits = append(c.waits, d)
		c.t = c.t.Add(d)
		c.mu.Unlock()
	}
	r.now = func() time.Time {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.t
	}
}

func (c *fakeClock) slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

func TestRemoteHonorsRetryAfterHint(t *testing.T) {
	var mu sync.Mutex
	shed := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		s := shed > 0
		if s {
			shed--
		}
		mu.Unlock()
		if s {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	r := fastRemote(t, srv.URL, "hint")
	defer r.Close()
	clock := &fakeClock{}
	clock.install(r)
	if err := r.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put through the shed window: %v", err)
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if got := clock.slept(); !reflect.DeepEqual(got, want) {
		t.Fatalf("waits = %v, want the server's Retry-After hint %v (not the local backoff)", got, want)
	}
}

func TestRemoteRetryAfterParsing(t *testing.T) {
	now := time.Unix(1000, 0)
	if d, ok := parseRetryAfter(now.Add(3*time.Second).UTC().Format(http.TimeFormat), now); !ok || d <= 0 || d > 3*time.Second {
		t.Errorf("HTTP-date Retry-After parsed to (%v, %v)", d, ok)
	}
	if d, ok := parseRetryAfter("garbage", now); ok || d != 0 {
		t.Errorf("unparseable Retry-After = (%v, %v), want (0, false)", d, ok)
	}
	if d, ok := parseRetryAfter("-5", now); ok || d != 0 {
		t.Errorf("negative Retry-After = (%v, %v), want (0, false)", d, ok)
	}
	// An explicit 0 is a real hint ("retry now"), not an absent header.
	if d, ok := parseRetryAfter("0", now); !ok || d != 0 {
		t.Errorf("Retry-After: 0 = (%v, %v), want (0, true)", d, ok)
	}
}

// TestRemoteImmediateRetryHint: a 503 carrying "Retry-After: 0" means
// retry now — the client must not substitute its own backoff sleep.
func TestRemoteImmediateRetryHint(t *testing.T) {
	var mu sync.Mutex
	shed := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		s := shed > 0
		if s {
			shed--
		}
		mu.Unlock()
		if s {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "retry immediately", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	r := fastRemote(t, srv.URL, "now")
	defer r.Close()
	clock := &fakeClock{}
	clock.install(r)
	if err := r.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if waits := clock.slept(); len(waits) != 0 {
		t.Fatalf("client slept %v despite an immediate-retry hint", waits)
	}
}

func TestRemoteRetryBudgetCapsWallClock(t *testing.T) {
	requests := 0
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		w.Header().Set("Retry-After", "30")
		http.Error(w, "down for a while", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	r := fastRemote(t, srv.URL, "budget")
	defer r.Close()
	r.MaxAttempts = 10
	r.MaxElapsed = 10 * time.Second
	clock := &fakeClock{}
	clock.install(r)
	err := r.Put("ckpt-000001", sampleSections(1))
	if err == nil {
		t.Fatal("put succeeded against a shedding service")
	}
	if !strings.Contains(err.Error(), "retry budget") || !strings.Contains(err.Error(), "503") {
		t.Fatalf("error = %v, want budget exhaustion wrapping the last 503", err)
	}
	// The 30s hint overruns the 10s budget: no wait is taken, exactly one
	// request is made, and the op fails fast instead of sleeping blindly.
	mu.Lock()
	got := requests
	mu.Unlock()
	if got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if len(clock.slept()) != 0 {
		t.Errorf("client slept %v past its budget", clock.slept())
	}
}

func TestRemoteRebuildsBodyOnRetry(t *testing.T) {
	blob := EncodeSections(sampleSections(6))
	var mu sync.Mutex
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, body)
		first := len(bodies) == 1
		mu.Unlock()
		if first {
			// Consume the whole upload, then fail: a client reusing the
			// spent reader would send an empty body on the retry.
			http.Error(w, "try again", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	r := fastRemote(t, srv.URL, "rebuild")
	defer r.Close()
	if err := r.Put("ckpt-000001", sampleSections(6)); err != nil {
		t.Fatalf("put: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 {
		t.Fatalf("requests = %d, want 2", len(bodies))
	}
	for i, b := range bodies {
		if !reflect.DeepEqual(b, blob) {
			t.Errorf("attempt %d body has %d bytes, want the full %d-byte object", i+1, len(b), len(blob))
		}
	}
}

func TestRemoteInjectedNetworkFaultIsTransient(t *testing.T) {
	f := newFakeService(t)
	r := fastRemote(t, f.srv.URL, "inject")
	defer r.Close()
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteRemoteDo, Action: faultinject.ActionError, Nth: 1})
	r.SetFaults(reg)
	if err := r.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put should ride out the injected network fault: %v", err)
	}
	// The injected failure happened before the wire: the service saw only
	// the successful second attempt.
	if got := f.requestCount(); got != 1 {
		t.Errorf("service requests = %d, want 1", got)
	}
}

// deadListenerAddr returns an address nothing listens on: a listener is
// bound to grab a free port and closed again, so a dial is refused
// immediately rather than timing out.
func deadListenerAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRemoteFailFastDial is the dead-replica regression test: by
// default a connection-refused Get burns the whole retry budget against
// the same endpoint; with FailFastDial the first refused dial is final
// and wraps ErrUnavailable, so a replicated tier moves on to the next
// replica promptly.
func TestRemoteFailFastDial(t *testing.T) {
	addr := deadListenerAddr(t)

	slow := fastRemote(t, addr, "dead")
	defer slow.Close()
	var waits int
	slow.sleep = func(time.Duration) { waits++ }
	_, err := slow.Get("ckpt-000001")
	if err == nil {
		t.Fatal("Get against a dead listener succeeded")
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("default client classified a dial error as final: %v", err)
	}
	if want := DefaultRemoteAttempts - 1; waits != want {
		t.Errorf("default client retried %d times, want %d", waits, want)
	}

	fast := fastRemote(t, addr, "dead")
	defer fast.Close()
	fast.FailFastDial = true
	waits = 0
	fast.sleep = func(time.Duration) { waits++ }
	_, err = fast.Get("ckpt-000001")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("fail-fast Get = %v, want ErrUnavailable", err)
	}
	if waits != 0 {
		t.Errorf("fail-fast client slept %d times, want 0", waits)
	}
}

// TestRemoteFailFastDialStillRetriesServerErrors: fail-fast applies to
// the dial only — a connected service answering 5xx is still transient
// and retried (the CI serve smoke and load shedding depend on it).
func TestRemoteFailFastDialStillRetriesServerErrors(t *testing.T) {
	f := newFakeService(t)
	r := fastRemote(t, f.srv.URL, "ff-5xx")
	defer r.Close()
	r.FailFastDial = true
	f.setFailNext(2)
	if err := r.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put should ride out 503s even with FailFastDial: %v", err)
	}
}

package store

import (
	"sort"
	"sync"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Memory is the in-memory backend: objects live in a map as encoded
// blobs. It exists for tests, benchmarks that must not measure the
// filesystem, and as the innermost tier of future caching stacks. Objects
// keep the same CRC framing as the file backend so integrity checking and
// byte accounting are identical across backends.
type Memory struct {
	faults *faultinject.Registry
	ops    opSet

	mu      sync.Mutex
	objects map[string][]byte
	stats   Stats
}

// SetFaults implements FaultInjectable.
func (m *Memory) SetFaults(r *faultinject.Registry) { m.faults = r }

// SetObs implements Observable.
func (m *Memory) SetObs(r *obs.Registry) { m.ops = newOpSet(r, "store.memory") }

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{objects: make(map[string][]byte)}
}

// Put implements Backend.
func (m *Memory) Put(key string, sections []Section) error {
	start := m.ops.put.Start()
	n, err := m.put(key, sections)
	m.ops.put.Done(start, n, errClass(err))
	return err
}

// put is the uninstrumented Put; it reports the bytes committed to the
// medium (a torn injection still commits its truncated blob).
func (m *Memory) put(key string, sections []Section) (int64, error) {
	blob := EncodeSections(sections)
	blob, ferr := m.faults.HitBlob(SitePut, blob)
	if ferr != nil && !faultinject.IsTorn(ferr) {
		return 0, ferr
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// A torn injection still commits its truncated blob — the write
	// "reached the medium" half-done and the CRC framing must catch it
	// on Get — but fails the Put and is not counted as a good write.
	m.objects[key] = blob
	if ferr != nil {
		return int64(len(blob)), ferr
	}
	m.stats.Puts++
	m.stats.BytesWritten += int64(len(blob))
	m.stats.SectionsWritten += int64(len(sections))
	return int64(len(blob)), nil
}

// Get implements Backend.
func (m *Memory) Get(key string) ([]Section, error) {
	start := m.ops.get.Start()
	sections, n, err := m.get(key)
	m.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (m *Memory) get(key string) ([]Section, int64, error) {
	if err := m.faults.Hit(SiteGet); err != nil {
		return nil, 0, err
	}
	m.mu.Lock()
	blob, ok := m.objects[key]
	if ok {
		m.stats.Gets++
		m.stats.BytesRead += int64(len(blob))
	}
	m.mu.Unlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	sections, err := DecodeSections(blob)
	return sections, int64(len(blob)), err
}

// List implements Backend.
func (m *Memory) List() ([]string, error) {
	start := m.ops.list.Start()
	keys, err := m.list()
	m.ops.list.Done(start, 0, errClass(err))
	return keys, err
}

func (m *Memory) list() ([]string, error) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.objects))
	for k := range m.objects {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Backend.
func (m *Memory) Delete(key string) error {
	start := m.ops.del.Start()
	err := m.del(key)
	m.ops.del.Done(start, 0, errClass(err))
	return err
}

func (m *Memory) del(key string) error {
	if err := m.faults.Hit(SiteDelete); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[key]; !ok {
		return ErrNotFound
	}
	delete(m.objects, key)
	m.stats.Deletes++
	return nil
}

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Flush implements Backend (writes are immediately durable).
func (m *Memory) Flush() error { return nil }

// Close implements Backend.
func (m *Memory) Close() error { return nil }

// Corrupt flips one byte of the stored object, mirroring the paper's
// fault-injection experiments; it reports whether the key existed. Tests
// use it to prove the CRC framing rejects in-memory corruption too.
func (m *Memory) Corrupt(key string, offset int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.objects[key]
	if !ok || len(blob) == 0 {
		return false
	}
	blob[((offset%len(blob))+len(blob))%len(blob)] ^= 0xFF
	return true
}

package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Incremental decorates a backend with delta checkpoints: every Keyframe
// puts it writes the full object (a keyframe); in between it writes only
// the sections whose content hash changed since the previous put, and a
// changed section larger than one chunk is stored as chunk-level patches
// against its previous content. Restart therefore reads at most one
// keyframe plus the deltas up to the requested key, and a checkpoint of a
// mostly-unchanged protected set costs only the changed bytes — the
// differential counterpart to the paper's "checkpoint only the critical
// variables" storage argument.
//
// The section name "~incr" is reserved for this decorator's metadata;
// the checkpoint layer's own names (variable names plus its "~ckpt"
// metadata section) cannot collide with it.
//
// Each delta records the digest of the object it was diffed against, and
// Get re-derives that digest while walking the chain, so a delta is bound
// to the exact predecessor content it patched. A delta left over from an
// earlier session whose keyframe has since been overwritten (or any other
// base/delta mismatch) fails reconstruction with an error instead of
// silently patching stale chunks onto new content.
// ChainBrokenError is returned by Incremental.Get when the delta chain
// beneath a key can no longer reconstruct it: its keyframe is gone, an
// intermediate delta was deleted, or a link's recorded predecessor
// digest does not match the object actually stored beneath it. It is a
// typed refusal to fabricate state — callers (checkpoint.Restart, the
// chaos harness) treat it like any other verification failure and fall
// back to an older checkpoint. The retention path never provokes it:
// checkpoint.Context.Retain resolves Dependencies before deleting, so
// only out-of-band deletes (or lost objects) break a chain.
type ChainBrokenError struct {
	Key    string // the key whose reconstruction failed
	Link   string // the chain link that is missing or mismatched ("" if unknown)
	Reason string
	Err    error // underlying cause when a link read failed (nil for structural breaks)
}

func (e *ChainBrokenError) Error() string {
	reason := e.Reason
	if e.Err != nil {
		reason = e.Err.Error()
	}
	if e.Link != "" {
		return fmt.Sprintf("store: delta chain for %q broken at %q: %s", e.Key, e.Link, reason)
	}
	return fmt.Sprintf("store: delta chain for %q broken: %s", e.Key, reason)
}

// Unwrap exposes the cause of a failed link read, so callers can still
// tell "the chain is structurally broken" from "one read failed"
// (errors.Is(err, ErrNotFound), an injected fault, a remote 5xx).
func (e *ChainBrokenError) Unwrap() error { return e.Err }

type Incremental struct {
	inner    Backend
	keyframe int
	chunk    int
	faults   *faultinject.Registry
	ops      opSet
	// obsKeyframes/obsDeltas mirror the object-kind counters into obs
	// (nil when disabled) so /v1/metrics shows the keyframe/delta mix.
	obsKeyframes, obsDeltas *obs.Counter

	mu         sync.Mutex
	puts       int
	baseKey    string            // key of the current keyframe
	prevKey    string            // key of the last stored object
	prevDigest uint64            // digest of the last stored object, the next delta's predecessor
	hash       map[string]uint64 // FNV-64a of each section's last content
	last       map[string][]byte // last content, the diff basis for patches
	stats      Stats             // local counters folded into inner's
}

// Defaults for NewIncremental's parameters.
const (
	DefaultKeyframe   = 8
	DefaultChunkBytes = 256
)

const (
	incrMetaSection = "~incr"
	kindKeyframe    = byte(0)
	// kindDeltaV1 was the pre-digest delta format, whose metadata held
	// only the base key. It is retired, not reused: parseObject rejects
	// it explicitly rather than misreading key bytes as a digest.
	kindDeltaV1 = byte(1)
	kindDelta   = byte(2)
	encFull     = byte(0)
	encPatch    = byte(1)
)

// NewIncremental wraps inner with the delta write path. keyframe is the
// full-checkpoint period and chunkBytes the intra-section diff
// granularity (<= 0 selects the defaults).
func NewIncremental(inner Backend, keyframe, chunkBytes int) *Incremental {
	if keyframe <= 0 {
		keyframe = DefaultKeyframe
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &Incremental{
		inner:    inner,
		keyframe: keyframe,
		chunk:    chunkBytes,
		hash:     make(map[string]uint64),
		last:     make(map[string][]byte),
	}
}

func contentHash(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// objectDigest fingerprints a stored object (all sections, names and
// data, length-framed) so a delta can be bound to the exact predecessor
// content it was diffed against.
func objectDigest(sections []Section) uint64 {
	h := fnv.New64a()
	var lenBuf [8]byte
	for _, s := range sections {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s.Name)))
		h.Write(lenBuf[:])
		h.Write([]byte(s.Name))
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s.Data)))
		h.Write(lenBuf[:])
		h.Write(s.Data)
	}
	return h.Sum64()
}

// SetFaults implements FaultInjectable.
func (inc *Incremental) SetFaults(r *faultinject.Registry) { inc.faults = r }

// SetObs implements Observable.
func (inc *Incremental) SetObs(r *obs.Registry) {
	inc.ops = newOpSet(r, "store.incr")
	inc.obsKeyframes = r.Counter("store.incr.keyframes")
	inc.obsDeltas = r.Counter("store.incr.deltas")
}

// Put implements Backend. The recorded latency covers the diff/encode
// work plus the inner write; get latency covers chain reconstruction.
func (inc *Incremental) Put(key string, sections []Section) error {
	start := inc.ops.put.Start()
	err := inc.put(key, sections)
	inc.ops.put.Done(start, 0, errClass(err))
	return err
}

func (inc *Incremental) put(key string, sections []Section) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if err := inc.faults.Hit(SiteIncrementalPut); err != nil {
		return err
	}
	// A key that does not sort after the last stored object (e.g. an
	// overwrite of an existing object) cannot be expressed as a delta:
	// reconstruction walks keys in (baseKey, key] order, and a delta over
	// an overwritten predecessor would fail the digest-chain check.
	isKeyframe := inc.baseKey == "" || inc.puts%inc.keyframe == 0 || key <= inc.prevKey
	inc.puts++

	var out []Section
	if isKeyframe {
		out = make([]Section, 0, len(sections)+1)
		out = append(out, Section{Name: incrMetaSection, Data: []byte{kindKeyframe}})
		for _, s := range sections {
			out = append(out, Section{Name: s.Name, Data: append([]byte{encFull}, s.Data...)})
		}
		if err := inc.inner.Put(key, out); err != nil {
			return err
		}
		for _, s := range sections {
			inc.hash[s.Name] = contentHash(s.Data)
			inc.last[s.Name] = append([]byte(nil), s.Data...)
		}
		inc.baseKey = key
		inc.prevKey = key
		inc.prevDigest = objectDigest(out)
		inc.stats.Keyframes++
		inc.obsKeyframes.Inc()
		return nil
	}

	meta := []byte{kindDelta}
	meta = binary.LittleEndian.AppendUint64(meta, inc.prevDigest)
	meta = append(meta, inc.baseKey...)
	out = append(out, Section{Name: incrMetaSection, Data: meta})
	// Stage the diff-basis updates and apply them only after the write
	// lands: a failed Put must not advance the basis, or the next delta
	// would skip sections whose changes were never persisted.
	type staged struct {
		name string
		hash uint64
		data []byte
	}
	changed := make([]staged, 0, len(sections))
	for _, s := range sections {
		h := contentHash(s.Data)
		prev, known := inc.last[s.Name]
		if known && h == inc.hash[s.Name] && bytes.Equal(prev, s.Data) {
			inc.stats.SectionsSkipped++
			continue
		}
		payload := []byte{encFull}
		if known && len(prev) == len(s.Data) {
			if patch, ok := diffChunks(prev, s.Data, inc.chunk); ok {
				payload = append([]byte{encPatch}, patch...)
			}
		}
		if payload[0] == encFull {
			payload = append(payload, s.Data...)
		}
		out = append(out, Section{Name: s.Name, Data: payload})
		changed = append(changed, staged{name: s.Name, hash: h, data: s.Data})
	}
	if err := inc.inner.Put(key, out); err != nil {
		return err
	}
	for _, s := range changed {
		inc.hash[s.name] = s.hash
		inc.last[s.name] = append([]byte(nil), s.data...)
	}
	inc.prevKey = key
	inc.prevDigest = objectDigest(out)
	inc.stats.Deltas++
	inc.obsDeltas.Inc()
	return nil
}

// diffChunks encodes the chunks of cur that differ from prev as
// (offset, length, bytes) patches. It reports false when patching would
// not be smaller than re-writing cur outright.
func diffChunks(prev, cur []byte, chunk int) ([]byte, bool) {
	var patches []byte
	n := 0
	for off := 0; off < len(cur); off += chunk {
		end := off + chunk
		if end > len(cur) {
			end = len(cur)
		}
		if bytes.Equal(prev[off:end], cur[off:end]) {
			continue
		}
		patches = binary.LittleEndian.AppendUint32(patches, uint32(off))
		patches = binary.LittleEndian.AppendUint32(patches, uint32(end-off))
		patches = append(patches, cur[off:end]...)
		n++
	}
	blob := binary.LittleEndian.AppendUint32(nil, uint32(chunk))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(n))
	blob = append(blob, patches...)
	return blob, len(blob) < len(cur)
}

func applyPatch(base, patch []byte) ([]byte, error) {
	if len(patch) < 8 {
		return nil, errors.New("store: truncated patch header")
	}
	n := int(binary.LittleEndian.Uint32(patch[4:8]))
	rest := patch[8:]
	out := append([]byte(nil), base...)
	for i := 0; i < n; i++ {
		if len(rest) < 8 {
			return nil, errors.New("store: truncated patch entry")
		}
		off := int(binary.LittleEndian.Uint32(rest[:4]))
		length := int(binary.LittleEndian.Uint32(rest[4:8]))
		rest = rest[8:]
		if length < 0 || len(rest) < length || off < 0 || off+length > len(out) {
			return nil, errors.New("store: patch out of bounds")
		}
		copy(out[off:off+length], rest[:length])
		rest = rest[length:]
	}
	return out, nil
}

// parseObject splits a stored object into its kind, base key, predecessor
// digest (deltas only), and payload sections.
func parseObject(sections []Section) (kind byte, baseKey string, predDigest uint64, payload []Section, err error) {
	if len(sections) == 0 || sections[0].Name != incrMetaSection || len(sections[0].Data) < 1 {
		return 0, "", 0, nil, errors.New("store: object missing incremental metadata")
	}
	meta := sections[0].Data
	kind, payload = meta[0], sections[1:]
	switch kind {
	case kindKeyframe:
		return kind, "", 0, payload, nil
	case kindDeltaV1:
		return 0, "", 0, nil, errors.New("store: delta written by the obsolete pre-digest format")
	case kindDelta:
		if len(meta) < 9 {
			return 0, "", 0, nil, errors.New("store: truncated delta metadata")
		}
		return kind, string(meta[9:]), binary.LittleEndian.Uint64(meta[1:9]), payload, nil
	}
	return 0, "", 0, nil, fmt.Errorf("store: unknown incremental object kind %d", kind)
}

// Get implements Backend: reconstruct the object at key from its keyframe
// plus every delta up to key, in List order. Each delta's recorded
// predecessor digest is checked against the digest of the object actually
// beneath it in the chain, so a delta diffed against content that has
// since been replaced (e.g. a keyframe overwritten by a later session)
// fails with an error instead of reconstructing fabricated state.
func (inc *Incremental) Get(key string) ([]Section, error) {
	start := inc.ops.get.Start()
	sections, err := inc.get(key)
	inc.ops.get.Done(start, 0, errClass(err))
	return sections, err
}

func (inc *Incremental) get(key string) ([]Section, error) {
	obj, err := inc.inner.Get(key)
	if err != nil {
		return nil, err
	}
	kind, baseKey, predDigest, payload, err := parseObject(obj)
	if err != nil {
		return nil, err
	}
	if kind == kindKeyframe {
		return decodeFull(payload)
	}
	keys, err := inc.inner.List()
	if err != nil {
		return nil, err
	}
	var chain []string
	for _, k := range keys {
		if k >= baseKey && k < key {
			chain = append(chain, k)
		}
	}
	if len(chain) == 0 || chain[0] != baseKey {
		return nil, &ChainBrokenError{Key: key, Link: baseKey, Reason: "keyframe is gone"}
	}
	var order []string
	var running uint64
	state := make(map[string][]byte)
	for i, k := range chain {
		prior, err := inc.inner.Get(k)
		if err != nil {
			return nil, &ChainBrokenError{Key: key, Link: k, Reason: "reading chain link", Err: err}
		}
		priorKind, _, priorPred, sections, err := parseObject(prior)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if priorKind != kindKeyframe {
				return nil, &ChainBrokenError{Key: key, Link: k, Reason: "base of the chain is not a keyframe"}
			}
		} else if priorKind != kindDelta || priorPred != running {
			return nil, &ChainBrokenError{Key: key, Link: k,
				Reason: fmt.Sprintf("delta does not descend from the stored %q (deleted intermediate, or stale delta from an earlier chain)", chain[i-1])}
		}
		running = objectDigest(prior)
		if order, err = overlay(state, order, sections); err != nil {
			return nil, err
		}
	}
	if predDigest != running {
		return nil, &ChainBrokenError{Key: key, Link: chain[len(chain)-1],
			Reason: "delta does not descend from the stored predecessor (deleted intermediate, or stale delta from an earlier chain)"}
	}
	if order, err = overlay(state, order, payload); err != nil {
		return nil, err
	}
	out := make([]Section, len(order))
	for i, name := range order {
		out[i] = Section{Name: name, Data: state[name]}
	}
	return out, nil
}

func decodeFull(payload []Section) ([]Section, error) {
	out := make([]Section, len(payload))
	for i, s := range payload {
		if len(s.Data) < 1 || s.Data[0] != encFull {
			return nil, fmt.Errorf("store: keyframe section %q not full-encoded", s.Name)
		}
		out[i] = Section{Name: s.Name, Data: s.Data[1:]}
	}
	return out, nil
}

// overlay applies one stored object's sections onto the reconstruction
// state, returning the updated section order.
func overlay(state map[string][]byte, order []string, sections []Section) ([]string, error) {
	for _, s := range sections {
		if len(s.Data) < 1 {
			return nil, fmt.Errorf("store: empty payload for section %q", s.Name)
		}
		enc, data := s.Data[0], s.Data[1:]
		switch enc {
		case encFull:
			if _, ok := state[s.Name]; !ok {
				order = append(order, s.Name)
			}
			state[s.Name] = data
		case encPatch:
			base, ok := state[s.Name]
			if !ok {
				return nil, fmt.Errorf("store: patch for unknown section %q", s.Name)
			}
			patched, err := applyPatch(base, data)
			if err != nil {
				return nil, fmt.Errorf("store: section %q: %w", s.Name, err)
			}
			state[s.Name] = patched
		default:
			return nil, fmt.Errorf("store: section %q: bad encoding %d", s.Name, enc)
		}
	}
	return order, nil
}

// Dependencies implements DependencyResolver: a keyframe depends only on
// itself; a delta depends on every key from its keyframe up to itself —
// exactly the chain Get walks to reconstruct it. The retention policy
// uses this to never delete a keyframe (or intermediate delta) still
// referenced by a retained chain.
//
// Keys inside the current session's chain (the overwhelmingly common
// case: retention always retains the newest keys) are answered from the
// decorator's in-memory chain bounds without reading the object — with
// a remote base, fetching each retained object in full on every
// post-checkpoint prune would multiply steady-state network traffic by
// the retained-set size. Keys from earlier sessions fall back to
// reading the stored metadata.
func (inc *Incremental) Dependencies(key string) ([]string, error) {
	inc.mu.Lock()
	base, prev := inc.baseKey, inc.prevKey
	inc.mu.Unlock()
	baseKey := ""
	switch {
	case base != "" && key == base:
		return []string{key}, nil // the current chain's keyframe
	case base != "" && key > base && key <= prev:
		baseKey = base // a delta of the current chain
	default:
		obj, err := inc.inner.Get(key)
		if err != nil {
			return nil, err
		}
		kind, b, _, _, err := parseObject(obj)
		if err != nil {
			return nil, err
		}
		if kind == kindKeyframe {
			return []string{key}, nil
		}
		baseKey = b
	}
	keys, err := inc.inner.List()
	if err != nil {
		return nil, err
	}
	var deps []string
	for _, k := range keys {
		if k >= baseKey && k <= key {
			deps = append(deps, k)
		}
	}
	return deps, nil
}

// List implements Backend.
func (inc *Incremental) List() ([]string, error) { return inc.inner.List() }

// Delete implements Backend. Deleting a keyframe orphans its deltas (Get
// on them fails cleanly); the checkpoint layer only deletes whole
// sessions.
func (inc *Incremental) Delete(key string) error { return inc.inner.Delete(key) }

// Stats implements Backend: the inner backend's persisted numbers plus
// this decorator's delta accounting.
func (inc *Incremental) Stats() Stats {
	s := inc.inner.Stats()
	inc.mu.Lock()
	s.SectionsSkipped += inc.stats.SectionsSkipped
	s.Keyframes += inc.stats.Keyframes
	s.Deltas += inc.stats.Deltas
	inc.mu.Unlock()
	return s
}

// Flush implements Backend.
func (inc *Incremental) Flush() error { return inc.inner.Flush() }

// Close implements Backend.
func (inc *Incremental) Close() error { return inc.inner.Close() }

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Sharded is the sharded-file backend: each object is a directory holding
// one shard file per section (for the checkpoint layer, one shard per
// protected variable), written concurrently by a bounded worker pool, plus
// a manifest that records each shard's length and CRC-32. The manifest is
// written last, so its presence is the commit point: a crash mid-Put
// leaves either the previous manifest or none, never a readable torn
// object. Get re-reads shards from the same pool and verifies each CRC.
type Sharded struct {
	dir     string
	workers int
	sync    bool

	mu    sync.Mutex
	stats Stats
}

const manifestName = "manifest"

// DefaultShardWorkers is the write/read pool size when none is given.
const DefaultShardWorkers = 4

// NewSharded creates (if needed) dir and returns a sharded backend
// writing with a pool of the given size (<= 0 means
// DefaultShardWorkers).
func NewSharded(dir string, workers int, sync bool) (*Sharded, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = DefaultShardWorkers
	}
	return &Sharded{dir: dir, workers: workers, sync: sync}, nil
}

func (s *Sharded) objDir(key string) string { return filepath.Join(s.dir, key) }

func shardFile(i int) string { return fmt.Sprintf("%04d.shard", i) }

// pool runs fn(i) for i in [0, n) on min(workers, n) goroutines and
// returns the first error.
func (s *Sharded) pool(n int, fn func(i int) error) error {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Put implements Backend.
func (s *Sharded) Put(key string, sections []Section) error {
	dir := s.objDir(key)
	// Drop any previous version of the object before the shards land.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := s.pool(len(sections), func(i int) error {
		return writeFileAtomic(filepath.Join(dir, shardFile(i)), sections[i].Data, s.sync)
	})
	if err != nil {
		return err
	}
	// Manifest: one entry per shard (length + CRC), itself CRC-framed by
	// the shared object encoding. Written last as the commit point.
	entries := make([]Section, len(sections))
	var bytes int64
	for i, sec := range sections {
		meta := binary.LittleEndian.AppendUint64(nil, uint64(len(sec.Data)))
		meta = binary.LittleEndian.AppendUint32(meta, crc32.ChecksumIEEE(sec.Data))
		entries[i] = Section{Name: sec.Name, Data: meta}
		bytes += int64(len(sec.Data))
	}
	manifest := EncodeSections(entries)
	if err := writeFileAtomic(filepath.Join(dir, manifestName), manifest, s.sync); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Puts++
	s.stats.BytesWritten += bytes + int64(len(manifest))
	s.stats.SectionsWritten += int64(len(sections))
	s.mu.Unlock()
	return nil
}

// Get implements Backend.
func (s *Sharded) Get(key string) ([]Section, error) {
	dir := s.objDir(key)
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	entries, err := DecodeSections(manifest)
	if err != nil {
		return nil, fmt.Errorf("store: sharded manifest for %q: %w", key, err)
	}
	sections := make([]Section, len(entries))
	var bytes int64
	err = s.pool(len(entries), func(i int) error {
		wantLen := binary.LittleEndian.Uint64(entries[i].Data[:8])
		wantCRC := binary.LittleEndian.Uint32(entries[i].Data[8:12])
		data, err := os.ReadFile(filepath.Join(dir, shardFile(i)))
		if err != nil {
			return fmt.Errorf("store: shard %d of %q: %w", i, key, err)
		}
		if uint64(len(data)) != wantLen {
			return fmt.Errorf("store: shard %d of %q: torn write (%d bytes, manifest says %d)",
				i, key, len(data), wantLen)
		}
		if crc32.ChecksumIEEE(data) != wantCRC {
			return fmt.Errorf("store: shard %d of %q: CRC mismatch (corrupted)", i, key)
		}
		sections[i] = Section{Name: entries[i].Name, Data: data}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sec := range sections {
		bytes += int64(len(sec.Data))
	}
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += bytes + int64(len(manifest))
	s.mu.Unlock()
	return sections, nil
}

// List implements Backend. Only committed objects (manifest present) are
// listed.
func (s *Sharded) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), manifestName)); err == nil {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Backend.
func (s *Sharded) Delete(key string) error {
	dir := s.objDir(key)
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return ErrNotFound
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Stats implements Backend.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush implements Backend (Put is synchronous).
func (s *Sharded) Flush() error { return nil }

// Close implements Backend.
func (s *Sharded) Close() error { return nil }

// CorruptShard flips one byte in the i'th shard of key's object (fault
// injection for tests); it reports whether the shard existed.
func (s *Sharded) CorruptShard(key string, i, offset int) bool {
	path := filepath.Join(s.objDir(key), shardFile(i))
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return false
	}
	data[((offset%len(data))+len(data))%len(data)] ^= 0xFF
	return os.WriteFile(path, data, 0o644) == nil
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Sharded is the sharded-file backend: each object is a directory holding
// one shard file per section (for the checkpoint layer, one shard per
// protected variable), written concurrently by a bounded worker pool, plus
// a manifest that records each shard's length and CRC-32. The manifest is
// written last, so its presence is the commit point: a crash mid-Put
// leaves either the previous manifest or none, never a readable torn
// object. Shard files carry a per-Put generation number and the manifest
// names its generation, so overwriting a key writes the new shards next
// to the old ones and the previous committed object stays readable until
// the new manifest atomically replaces the old; stale generations are
// swept only after the commit. Get re-reads shards from the same pool and
// verifies each CRC.
type Sharded struct {
	dir     string
	workers int
	sync    bool
	faults  *faultinject.Registry
	ops     opSet

	// keyMu holds one mutex per key serializing Put/Delete on that key: a
	// Put is a multi-file read-modify-write (generation pick, shard
	// writes, manifest commit, sweep), and two interleaved Puts to one
	// key would share a generation and leave a manifest whose CRCs
	// describe the other Put's shards. Puts to different keys still run
	// in parallel, as does the worker pool within a Put.
	keyMu sync.Map // map[string]*sync.Mutex

	// sweepMu guards the only destructive steps (the post-commit sweep
	// of superseded generations, and Delete's RemoveAll) against
	// in-flight readers: a Get holds the read side across its manifest
	// and shard reads, so the generation its manifest references cannot
	// be deleted from under it. Everything else in Put is additive or an
	// atomic rename, so readers run concurrently with writers.
	sweepMu sync.RWMutex

	mu    sync.Mutex
	gens  map[string]uint64 // last committed generation per key
	stats Stats
}

const manifestName = "manifest"

// DefaultShardWorkers is the write/read pool size when none is given.
const DefaultShardWorkers = 4

// NewSharded creates (if needed) dir and returns a sharded backend
// writing with a pool of the given size (<= 0 means
// DefaultShardWorkers).
func NewSharded(dir string, workers int, sync bool) (*Sharded, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = DefaultShardWorkers
	}
	return &Sharded{dir: dir, workers: workers, sync: sync, gens: make(map[string]uint64)}, nil
}

func (s *Sharded) objDir(key string) string { return filepath.Join(s.dir, key) }

// SetFaults implements FaultInjectable.
func (s *Sharded) SetFaults(r *faultinject.Registry) { s.faults = r }

// SetObs implements Observable.
func (s *Sharded) SetObs(r *obs.Registry) { s.ops = newOpSet(r, "store.sharded") }

// keyLock returns the mutex serializing writes to key (entries persist
// for the backend's lifetime; one pointer per key ever written).
func (s *Sharded) keyLock(key string) *sync.Mutex {
	m, _ := s.keyMu.LoadOrStore(key, &sync.Mutex{})
	return m.(*sync.Mutex)
}

// genSection is the reserved first manifest section naming the shard
// generation the manifest commits.
const genSection = "~gen"

func shardFile(gen uint64, i int) string { return fmt.Sprintf("g%08d-%04d.shard", gen, i) }

// nextGen scans dir for a generation number above every shard file
// already there, committed or orphaned by a crashed Put. Errors
// propagate: defaulting to a low generation could clobber a committed
// object's live shard files in place.
func nextGen(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	max := uint64(0)
	for _, e := range entries {
		var g uint64
		var i int
		if n, _ := fmt.Sscanf(e.Name(), "g%d-%d.shard", &g, &i); n >= 1 && g > max {
			max = g
		}
	}
	return max + 1, nil
}

// pool runs fn(i) for i in [0, n) on min(workers, n) goroutines and
// returns the first error.
func (s *Sharded) pool(n int, fn func(i int) error) error {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Put implements Backend. Overwrites write the new generation's shards
// beside the old object's; the previous committed object stays intact
// (and Get-able) until the new manifest atomically replaces the old one,
// after which the stale generation is swept.
func (s *Sharded) Put(key string, sections []Section) error {
	start := s.ops.put.Start()
	err := s.put(key, sections)
	var n int64
	if err == nil {
		for _, sec := range sections {
			n += int64(len(sec.Data))
		}
	}
	s.ops.put.Done(start, n, errClass(err))
	return err
}

func (s *Sharded) put(key string, sections []Section) error {
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	dir := s.objDir(key)
	_, statErr := os.Stat(dir)
	existed := statErr == nil
	if statErr != nil && !errors.Is(statErr, fs.ErrNotExist) {
		// Any other stat failure must not be read as "fresh key": the
		// gen=1 branch would rewrite a committed object's shards in
		// place.
		return statErr
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	gen, cached := s.gens[key]
	s.mu.Unlock()
	switch {
	case cached:
		// A crashed earlier attempt may have left orphans at gen+1; they
		// are junk and each shard write replaces its file atomically.
		gen++
	case !existed:
		gen = 1
	default:
		var err error
		if gen, err = nextGen(dir); err != nil {
			return err
		}
	}
	err := s.pool(len(sections), func(i int) error {
		// Shard renames skip the per-file parent fsync; the directory is
		// synced once below, before the manifest can commit.
		return writeFileAtomicOpts(filepath.Join(dir, shardFile(gen, i)), sections[i].Data, s.sync, false)
	})
	if err != nil {
		return err
	}
	if s.sync {
		// All shard entries must be on stable storage before the manifest
		// commit can be, or a power failure could leave a durable
		// manifest referencing vanished shards.
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	// Manifest: the generation plus one entry per shard (length + CRC),
	// itself CRC-framed by the shared object encoding. Written last as
	// the commit point.
	entries := make([]Section, 0, len(sections)+1)
	entries = append(entries, Section{Name: genSection, Data: binary.LittleEndian.AppendUint64(nil, gen)})
	var bytes int64
	for _, sec := range sections {
		meta := binary.LittleEndian.AppendUint64(nil, uint64(len(sec.Data)))
		meta = binary.LittleEndian.AppendUint32(meta, crc32.ChecksumIEEE(sec.Data))
		entries = append(entries, Section{Name: sec.Name, Data: meta})
		bytes += int64(len(sec.Data))
	}
	manifest := EncodeSections(entries)
	// The put failpoint guards the manifest because the manifest IS the
	// commit point: an error here leaves the previous committed object
	// intact (crash-before-commit), a torn manifest commits an object
	// whose Get fails manifest verification.
	manifest, ferr := s.faults.HitBlob(SitePut, manifest)
	if ferr != nil && !faultinject.IsTorn(ferr) {
		return ferr
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), manifest, s.sync); err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}
	if s.sync && !cached {
		// First commit of this key by this instance: the store root's
		// entry for the object directory may not be durable yet — the
		// directory could have been created by this Put, or by an
		// earlier Put (ours or a crashed predecessor's) that never
		// reached a durable commit.
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	if existed {
		s.sweepMu.Lock()
		s.sweepStaleShards(dir, gen)
		s.sweepMu.Unlock()
	}
	s.mu.Lock()
	s.gens[key] = gen
	s.stats.Puts++
	s.stats.BytesWritten += bytes + int64(len(manifest))
	s.stats.SectionsWritten += int64(len(sections))
	s.mu.Unlock()
	return nil
}

// sweepStaleShards removes shard files of generations other than the one
// just committed (best effort; leftovers are re-swept by the next Put and
// never read, since Get resolves filenames through the manifest).
func (s *Sharded) sweepStaleShards(dir string, gen uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := fmt.Sprintf("g%08d-", gen)
	for _, e := range entries {
		name := e.Name()
		if name == manifestName || strings.HasPrefix(name, keep) {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// manifestEntries decodes and validates a manifest blob, returning the
// committed generation and the per-shard entries.
func manifestEntries(manifest []byte, key string) (uint64, []Section, error) {
	entries, err := DecodeSections(manifest)
	if err != nil {
		return 0, nil, fmt.Errorf("store: sharded manifest for %q: %w", key, err)
	}
	if len(entries) == 0 || entries[0].Name != genSection || len(entries[0].Data) < 8 {
		return 0, nil, fmt.Errorf("store: sharded manifest for %q: missing generation", key)
	}
	gen := binary.LittleEndian.Uint64(entries[0].Data)
	entries = entries[1:]
	for i := range entries {
		if len(entries[i].Data) < 12 {
			return 0, nil, fmt.Errorf("store: sharded manifest for %q: entry %d truncated", key, i)
		}
	}
	return gen, entries, nil
}

// Get implements Backend. The read lock on sweepMu keeps a concurrent
// overwrite's post-commit sweep from deleting the generation this
// reader's manifest references mid-read.
func (s *Sharded) Get(key string) ([]Section, error) {
	start := s.ops.get.Start()
	sections, n, err := s.get(key)
	s.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (s *Sharded) get(key string) ([]Section, int64, error) {
	if err := s.faults.Hit(SiteGet); err != nil {
		return nil, 0, err
	}
	s.sweepMu.RLock()
	sections, read, err := s.getOnce(key)
	s.sweepMu.RUnlock()
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += read
	s.mu.Unlock()
	return sections, read, nil
}

func (s *Sharded) getOnce(key string) ([]Section, int64, error) {
	dir := s.objDir(key)
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, ErrNotFound
	}
	if err != nil {
		return nil, 0, err
	}
	gen, entries, err := manifestEntries(manifest, key)
	if err != nil {
		return nil, 0, err
	}
	sections := make([]Section, len(entries))
	err = s.pool(len(entries), func(i int) error {
		wantLen := binary.LittleEndian.Uint64(entries[i].Data[:8])
		wantCRC := binary.LittleEndian.Uint32(entries[i].Data[8:12])
		data, err := os.ReadFile(filepath.Join(dir, shardFile(gen, i)))
		if err != nil {
			return fmt.Errorf("store: shard %d of %q: %w", i, key, err)
		}
		if uint64(len(data)) != wantLen {
			return fmt.Errorf("store: shard %d of %q: torn write (%d bytes, manifest says %d)",
				i, key, len(data), wantLen)
		}
		if crc32.ChecksumIEEE(data) != wantCRC {
			return fmt.Errorf("store: shard %d of %q: CRC mismatch (corrupted)", i, key)
		}
		sections[i] = Section{Name: entries[i].Name, Data: data}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var bytes int64
	for _, sec := range sections {
		bytes += int64(len(sec.Data))
	}
	return sections, bytes + int64(len(manifest)), nil
}

// List implements Backend. Only committed objects (manifest present) are
// listed.
func (s *Sharded) List() ([]string, error) {
	start := s.ops.list.Start()
	keys, err := s.list()
	s.ops.list.Done(start, 0, errClass(err))
	return keys, err
}

func (s *Sharded) list() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), manifestName)); err == nil {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Backend.
func (s *Sharded) Delete(key string) error {
	start := s.ops.del.Start()
	err := s.del(key)
	s.ops.del.Done(start, 0, errClass(err))
	return err
}

func (s *Sharded) del(key string) error {
	if err := s.faults.Hit(SiteDelete); err != nil {
		return err
	}
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	dir := s.objDir(key)
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return ErrNotFound
	}
	s.sweepMu.Lock()
	err := os.RemoveAll(dir)
	s.sweepMu.Unlock()
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.gens, key)
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Stats implements Backend.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush implements Backend (Put is synchronous).
func (s *Sharded) Flush() error { return nil }

// Close implements Backend.
func (s *Sharded) Close() error { return nil }

// CorruptShard flips one byte in the i'th shard of key's committed object
// (fault injection for tests); it reports whether the shard existed.
func (s *Sharded) CorruptShard(key string, i, offset int) bool {
	path, ok := s.ShardPath(key, i)
	if !ok {
		return false
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return false
	}
	data[((offset%len(data))+len(data))%len(data)] ^= 0xFF
	return os.WriteFile(path, data, 0o644) == nil
}

// ShardPath resolves the on-disk file of the i'th shard of key's
// committed object through its manifest (tests use it for fault
// injection).
func (s *Sharded) ShardPath(key string, i int) (string, bool) {
	dir := s.objDir(key)
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return "", false
	}
	gen, entries, err := manifestEntries(manifest, key)
	if err != nil || i < 0 || i >= len(entries) {
		return "", false
	}
	return filepath.Join(dir, shardFile(gen, i)), true
}

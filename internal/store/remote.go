package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"autocheck/internal/admission"
	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Remote is the client backend for the networked checkpoint service of
// internal/server: objects are PUT/GET as the same CRC-framed blobs the
// file-like backends persist, under one namespace of a shared service,
// so many concurrent clients checkpoint into a single store without
// sharing a filesystem.
//
// The HTTP client keeps connections alive and reuses them across
// requests (every response body is fully drained so the transport can
// recycle the connection). Transient failures — network errors and 5xx
// responses, including the service's 503 load-shedding when its
// in-flight bound is hit — are retried with exponential backoff, at
// most MaxAttempts times and within a MaxElapsed wall-clock budget;
// when a 503 carries a Retry-After hint the next wait follows the hint
// instead of the local schedule (the service knows how long its drain
// or shed condition lasts better than a blind doubling does). 4xx
// responses are permanent and returned immediately. Get re-verifies the
// CRC framing end to end, so a torn or bit-flipped payload fails the
// same way it would on disk and checkpoint.Restart falls back to an
// older checkpoint.
type Remote struct {
	// MaxAttempts and Backoff tune the retry loop (total tries and the
	// first retry's delay, doubling per attempt). MaxElapsed caps one
	// operation's total wall-clock across all attempts and waits, so a
	// Retry-After storm cannot pin a checkpointing client indefinitely.
	// They may be adjusted before the first request; the defaults suit a
	// LAN service.
	MaxAttempts int
	Backoff     time.Duration
	MaxElapsed  time.Duration

	// FailFastDial makes a dial-level failure (connection refused, no
	// route) final instead of retried: the endpoint is down, not busy,
	// and the caller has other replicas to try. Off by default — a
	// single-endpoint client relies on dial retries to ride out service
	// startup. The resulting error wraps ErrUnavailable.
	FailFastDial bool

	base   string // http://host:port/v1/<ns>, no trailing slash
	ns     string
	client *http.Client
	faults *faultinject.Registry

	obsReg     *obs.Registry
	ops        opSet
	attemptLat *obs.Histogram // one HTTP exchange, waits excluded
	obsRetries *obs.Counter   // attempts beyond each operation's first

	// Test seams for the retry loop's clock; nil means the real one.
	sleep func(time.Duration)
	now   func() time.Time

	mu    sync.Mutex
	stats Stats
}

// Remote retry defaults: 4 attempts, 25ms first backoff (25+50+100 ms of
// waiting before the last try), 15s total wall-clock per operation.
const (
	DefaultRemoteAttempts   = 4
	DefaultRemoteBackoff    = 25 * time.Millisecond
	DefaultRemoteMaxElapsed = 15 * time.Second
)

// NewRemote returns a client backend for the checkpoint service at addr
// (host:port or full URL), storing under the given namespace ("" means
// "default"). It does not contact the service: a service that is still
// starting up is absorbed by the first request's retry loop.
func NewRemote(addr, namespace string) (*Remote, error) {
	if namespace == "" {
		namespace = "default"
	}
	if !ValidName(namespace) {
		return nil, fmt.Errorf("store: invalid remote namespace %q", namespace)
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("store: remote address: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: remote address %q: unsupported scheme %q", addr, u.Scheme)
	}
	return &Remote{
		MaxAttempts: DefaultRemoteAttempts,
		Backoff:     DefaultRemoteBackoff,
		MaxElapsed:  DefaultRemoteMaxElapsed,
		base:        strings.TrimSuffix(u.String(), "/") + "/v1/" + url.PathEscape(namespace),
		ns:          namespace,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
			Timeout: 2 * time.Minute,
		},
	}, nil
}

// Namespace returns the service-side key namespace this client writes to.
func (r *Remote) Namespace() string { return r.ns }

// ValidName reports whether s is safe as a service namespace or key
// path segment (no traversal, no separators). The client and the
// service (internal/server) share this single definition so their
// accepted alphabets cannot drift apart.
func ValidName(s string) bool {
	if s == "" || len(s) > 128 || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

// errRemoteStatus is a non-2xx response; transient reports whether the
// retry loop may try again.
type errRemoteStatus struct {
	status int
	msg    string
}

func (e *errRemoteStatus) Error() string {
	return fmt.Sprintf("store: remote service: %d %s: %s",
		e.status, http.StatusText(e.status), strings.TrimSpace(e.msg))
}

func transientStatus(status int) bool { return status >= 500 }

// ErrUnavailable marks an endpoint-down failure: the TCP dial itself was
// refused or unroutable, as opposed to a connected service misbehaving.
// Only surfaced when FailFastDial is set; the replicated tier uses it to
// move to the next replica without burning the whole retry budget.
var ErrUnavailable = errors.New("store: endpoint unavailable")

// isDialError reports whether err is a network-level failure in the dial
// itself (connection refused, host unreachable) rather than on an
// established connection.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// SetFaults implements FaultInjectable.
func (r *Remote) SetFaults(reg *faultinject.Registry) { r.faults = reg }

// SetObs implements Observable. Besides the standard per-op recorders
// (whose latency spans the whole retry loop, waits included), the remote
// client records each HTTP exchange as a "remote.attempt" span — visible
// once a span sink is installed — plus an attempt-latency histogram and
// a retry counter, so backoff behavior is observable per attempt.
func (r *Remote) SetObs(reg *obs.Registry) {
	r.obsReg = reg
	r.ops = newOpSet(reg, "store.remote")
	r.attemptLat = reg.Histogram("store.remote.attempt.ns")
	r.obsRetries = reg.Counter("store.remote.retries")
}

func (r *Remote) clock() (func(time.Duration), func() time.Time) {
	sleep, now := r.sleep, r.now
	if sleep == nil {
		sleep = time.Sleep
	}
	if now == nil {
		now = time.Now
	}
	return sleep, now
}

// parseRetryAfter interprets a Retry-After header value — delay-seconds
// or an HTTP-date — as a wait duration. ok distinguishes an explicit
// "retry immediately" hint (0, true) from an absent or unparseable
// header (0, false).
func parseRetryAfter(v string, now time.Time) (_ time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// do performs one HTTP exchange with bounded retry/backoff, returning
// the response body. body may be nil; the request is rebuilt from it on
// every attempt (a reader consumed by a failed send is never reused),
// and GetBody is set so the transport can replay it inside one attempt
// too. A transient response carrying Retry-After overrides the next
// backoff wait with the server's hint. Total retry wall-clock — waits
// included — is capped by MaxElapsed: a wait that would overrun the
// budget is not taken and the operation fails with the last error.
func (r *Remote) do(method, path string, body []byte, pri admission.Priority) ([]byte, error) {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	maxElapsed := r.MaxElapsed
	if maxElapsed <= 0 {
		maxElapsed = DefaultRemoteMaxElapsed
	}
	sleep, now := r.clock()
	start := now()
	backoff := r.Backoff
	var lastErr error
	var hint time.Duration // Retry-After from the previous attempt
	var hinted bool        // set even for an explicit "retry now" (0s) hint
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wait := backoff
			backoff *= 2
			if hinted {
				wait, hint, hinted = hint, 0, false
			}
			if elapsed := now().Sub(start); elapsed+wait > maxElapsed {
				return nil, fmt.Errorf("store: remote service: retry budget %v exhausted after %v (%d attempts): %w",
					maxElapsed, elapsed, attempt, lastErr)
			}
			if wait > 0 {
				sleep(wait)
			}
		}
		if attempt > 0 {
			r.obsRetries.Inc()
		}
		var t0 time.Time
		if r.attemptLat != nil {
			t0 = time.Now()
		}
		sp := r.obsReg.StartSpan("remote.attempt")
		var data []byte
		var done bool
		var err error
		data, done, hint, hinted, err = r.attempt(method, path, body, pri, now)
		if r.attemptLat != nil {
			r.attemptLat.ObserveSince(t0)
		}
		if sp.Active() {
			errText := ""
			if err != nil {
				errText = err.Error()
			}
			sp.End(fmt.Sprintf("%s %s attempt=%d/%d", method, path, attempt+1, attempts), errText)
		}
		if done {
			return data, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attempt performs one HTTP exchange. done reports that the retry loop
// must stop and return (data, err) as the operation's final answer; a
// transient failure returns done=false with the error to remember and
// any Retry-After hint for the next wait.
func (r *Remote) attempt(method, path string, body []byte, pri admission.Priority, now func() time.Time) (data []byte, done bool, hint time.Duration, hinted bool, _ error) {
	if ferr := r.faults.Hit(SiteRemoteDo); ferr != nil {
		// Injected network failure: transient, costs an attempt.
		return nil, false, 0, false, fmt.Errorf("store: remote service: %w", ferr)
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.base+path, reader)
	if err != nil {
		return nil, true, 0, false, err
	}
	// Identity and class for the service's admission controller; old
	// servers ignore the headers.
	req.Header.Set(admission.TenantHeader, r.ns)
	req.Header.Set(admission.PriorityHeader, pri.String())
	if body != nil {
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", "application/octet-stream")
		req.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if r.FailFastDial && isDialError(err) {
			return nil, true, 0, false, fmt.Errorf("store: remote service %s: %w (%v)", r.base, ErrUnavailable, err)
		}
		return nil, false, 0, false, fmt.Errorf("store: remote service: %w", err) // network-level failure: transient
	}
	// Read the body in full either way so the connection is reusable.
	data, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, true, 0, false, ErrNotFound
	case resp.StatusCode >= 300:
		statusErr := &errRemoteStatus{status: resp.StatusCode, msg: string(data)}
		if !transientStatus(resp.StatusCode) {
			return nil, true, 0, false, statusErr
		}
		hint, hinted = parseRetryAfter(resp.Header.Get("Retry-After"), now())
		return nil, false, hint, hinted, statusErr
	case readErr != nil:
		return nil, false, 0, false, fmt.Errorf("store: remote service: reading response: %w", readErr) // truncated response: transient
	}
	return data, true, 0, false, nil
}

// Put implements Backend. Checkpoint writes are foreground work.
func (r *Remote) Put(key string, sections []Section) error {
	return r.putPri(key, sections, admission.Interactive)
}

// PutScrub is Put announced as maintenance traffic: replica repair
// writes admit at scrub priority so a loaded service drains them last
// and they never displace a tenant's foreground checkpoints.
func (r *Remote) PutScrub(key string, sections []Section) error {
	return r.putPri(key, sections, admission.Scrub)
}

func (r *Remote) putPri(key string, sections []Section, pri admission.Priority) error {
	start := r.ops.put.Start()
	n, err := r.put(key, sections, pri)
	r.ops.put.Done(start, n, errClass(err))
	return err
}

func (r *Remote) put(key string, sections []Section, pri admission.Priority) (int64, error) {
	if !ValidName(key) {
		return 0, fmt.Errorf("store: invalid remote key %q", key)
	}
	blob := EncodeSections(sections)
	if _, err := r.do(http.MethodPut, "/objects/"+url.PathEscape(key), blob, pri); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.stats.Puts++
	r.stats.BytesWritten += int64(len(blob))
	r.stats.SectionsWritten += int64(len(sections))
	r.mu.Unlock()
	return int64(len(blob)), nil
}

// Get implements Backend. Reads ride the restart path: a recovering
// process blocks on them, so they admit at the highest class.
func (r *Remote) Get(key string) ([]Section, error) {
	return r.getPri(key, admission.Restart)
}

// GetScrub is Get announced as maintenance traffic (replica scrub
// reads), admitting at the lowest class.
func (r *Remote) GetScrub(key string) ([]Section, error) {
	return r.getPri(key, admission.Scrub)
}

func (r *Remote) getPri(key string, pri admission.Priority) ([]Section, error) {
	start := r.ops.get.Start()
	sections, n, err := r.get(key, pri)
	r.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (r *Remote) get(key string, pri admission.Priority) ([]Section, int64, error) {
	if !ValidName(key) {
		return nil, 0, fmt.Errorf("store: invalid remote key %q", key)
	}
	blob, err := r.do(http.MethodGet, "/objects/"+url.PathEscape(key), nil, pri)
	if err != nil {
		return nil, 0, err
	}
	sections, err := DecodeSections(blob)
	if err != nil {
		return nil, 0, fmt.Errorf("store: remote object %q: %w", key, err)
	}
	r.mu.Lock()
	r.stats.Gets++
	r.stats.BytesRead += int64(len(blob))
	r.mu.Unlock()
	return sections, int64(len(blob)), nil
}

// List implements Backend.
func (r *Remote) List() ([]string, error) {
	start := r.ops.list.Start()
	keys, err := r.list()
	r.ops.list.Done(start, 0, errClass(err))
	return keys, err
}

func (r *Remote) list() ([]string, error) {
	data, err := r.do(http.MethodGet, "/objects", nil, admission.Restart)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			// A namespace nothing was written to yet is an empty store,
			// not an error.
			return nil, nil
		}
		return nil, err
	}
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			keys = append(keys, line)
		}
	}
	return keys, nil
}

// Delete implements Backend.
func (r *Remote) Delete(key string) error {
	start := r.ops.del.Start()
	err := r.del(key)
	r.ops.del.Done(start, 0, errClass(err))
	return err
}

func (r *Remote) del(key string) error {
	if !ValidName(key) {
		return fmt.Errorf("store: invalid remote key %q", key)
	}
	if _, err := r.do(http.MethodDelete, "/objects/"+url.PathEscape(key), nil, admission.Interactive); err != nil {
		return err
	}
	r.mu.Lock()
	r.stats.Deletes++
	r.mu.Unlock()
	return nil
}

// Stats implements Backend, reporting this client's view of the traffic
// it generated (the service aggregates all clients at GET /v1/stats).
func (r *Remote) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Flush implements Backend: ask the service to flush the namespace's
// backend (a no-op unless the service itself runs an async store).
func (r *Remote) Flush() error {
	_, err := r.do(http.MethodPost, "/flush", nil, admission.Interactive)
	return err
}

// Close implements Backend: release pooled connections. The service's
// objects are unaffected — closing a client never discards checkpoints.
func (r *Remote) Close() error {
	r.client.CloseIdleConnections()
	return nil
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Replicated is the cluster tier of the store stack: a Backend that fans
// every Put out to N replica backends (in production, store.Remote
// clients of N checkpoint services) and succeeds once a write quorum W
// of them acked. Get collects a read quorum R of definitive answers —
// a CRC-verified blob or a definite NotFound — picks the majority copy
// (valid data beats absence, ties break toward the lowest replica
// index), and read-repairs every responder that disagreed. A background
// scrubber sweeps the key space on a cadence doing the same comparison
// without waiting for a read to stumble over the divergence, and hedged
// reads bound tail latency when a replica is slow rather than dead: if
// no definitive answer arrived within a p95-derived delay, one extra
// replica is asked and the first good answer wins.
//
// With the default majority quorums (W = R = N/2+1), W+R > N guarantees
// every read quorum overlaps every acked write, so a Get after a
// successful Put always sees at least one replica with the object —
// the valid-beats-NotFound rule then returns it even when the other
// answers predate the write. Configuring W+R <= N trades that guarantee
// for latency and is allowed but stale reads become possible. Keys in
// the checkpoint protocol are written once (zero-padded sequence
// numbers never repeat), which is what makes the versionless majority
// comparison sound; overwriting a key concurrently with a replica
// failure can converge on either copy.
//
// Each replica has its own ordered write queue (a one-goroutine
// replication log), so the operations one replica applies are exactly
// the submission sequence regardless of how slow or dead the other
// replicas are — and so the per-replica failpoint sites fire at
// deterministic hit counts, which is what lets a chaos schedule kill
// exactly one node at exactly one write. A crash action fired at a
// replica's site marks that replica down for the rest of the process:
// the node died, the client tier survives.
type Replicated struct {
	replicas []*replica
	w, r     int

	hedgeAfter time.Duration  // initial hedge delay; < 0 disables hedging
	firstLat   *obs.Histogram // first definitive answer's own service time per Get, feeds the hedge delay

	// faults is read by the queue and scrub goroutines while tests and
	// the chaos harness re-arm mid-stream, so the pointer swap must be
	// atomic. Hit is nil-safe, so an unarmed tier costs one load.
	faults atomic.Pointer[faultinject.Registry]

	obsReg        *obs.Registry
	ops           opSet
	cQuorumOK     *obs.Counter
	cQuorumFailed *obs.Counter
	cRepairs      *obs.Counter
	cHedgeFired   *obs.Counter
	cHedgeWon     *obs.Counter
	cScrubKeys    *obs.Counter

	scrubStop chan struct{}
	scrubWG   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	mu    sync.Mutex
	stats Stats
}

// ReplicatedOptions parameterizes NewReplicated.
type ReplicatedOptions struct {
	// WriteQuorum is how many replica acks complete a Put; ReadQuorum is
	// how many definitive answers decide a Get. 0 selects a majority
	// (N/2+1). W+R > N is required for read-your-writes.
	WriteQuorum int
	ReadQuorum  int
	// HedgeAfter is the hedge delay used until enough reads have been
	// observed to derive one (after that the p95 of time-to-first-answer
	// is used). 0 selects DefaultHedgeAfter; < 0 disables hedging.
	HedgeAfter time.Duration
	// ScrubEvery starts a background scrubber on this cadence; 0 leaves
	// scrubbing to explicit ScrubOnce calls.
	ScrubEvery time.Duration
}

// DefaultHedgeAfter is the hedge delay before the tier has observed
// enough reads to derive one from its own latency distribution.
const DefaultHedgeAfter = 20 * time.Millisecond

// hedgeMinSamples is how many Gets must complete before the hedge delay
// switches from the configured value to the observed p95.
const hedgeMinSamples = 16

// replicaQueueDepth bounds each replica's write queue. A dead replica
// fails its queued operations fast (FailFastDial), so the queue drains;
// a merely slow replica exerts backpressure once the buffer fills.
const replicaQueueDepth = 64

// replica is one node of the cluster: its backend, its ordered write
// queue, and whether an injected crash has "killed" it.
type replica struct {
	idx     int
	backend Backend
	queue   chan *repOp
	done    chan struct{} // closed when the queue goroutine exits
	down    atomic.Bool
}

type opKind int

const (
	opPut opKind = iota
	opDelete
	opFlush
	// opRepair is a Put that skips the replica's failpoint site: repairs
	// happen at timing-dependent moments (whenever a read catches a
	// divergence), and letting them advance the put site's hit counter
	// would make chaos schedules unreplayable.
	opRepair
)

// repOp is one entry of a replica's write queue. onDone runs on the
// queue goroutine; keep it light.
type repOp struct {
	kind     opKind
	key      string
	sections []Section
	onDone   func(idx int, err error)
}

// NewReplicated builds the cluster tier over the given replica backends
// (replica index = slice index, the identity the per-replica failpoint
// sites and doctor output use). It takes ownership of the replicas:
// Close closes them.
func NewReplicated(replicas []Backend, opts ReplicatedOptions) (*Replicated, error) {
	n := len(replicas)
	if n == 0 {
		return nil, errors.New("store: replicated: need at least one replica")
	}
	w, r := opts.WriteQuorum, opts.ReadQuorum
	if w == 0 {
		w = n/2 + 1
	}
	if r == 0 {
		r = n/2 + 1
	}
	if w < 1 || w > n {
		return nil, fmt.Errorf("store: replicated: write quorum %d out of range [1,%d]", w, n)
	}
	if r < 1 || r > n {
		return nil, fmt.Errorf("store: replicated: read quorum %d out of range [1,%d]", r, n)
	}
	hedge := opts.HedgeAfter
	if hedge == 0 {
		hedge = DefaultHedgeAfter
	}
	s := &Replicated{
		w:          w,
		r:          r,
		hedgeAfter: hedge,
		firstLat:   new(obs.Histogram),
	}
	for i, b := range replicas {
		rep := &replica{
			idx:     i,
			backend: b,
			queue:   make(chan *repOp, replicaQueueDepth),
			done:    make(chan struct{}),
		}
		s.replicas = append(s.replicas, rep)
		go s.runQueue(rep)
	}
	if opts.ScrubEvery > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubWG.Add(1)
		go s.scrubLoop(opts.ScrubEvery)
	}
	return s, nil
}

// Replicas reports the cluster size.
func (s *Replicated) Replicas() int { return len(s.replicas) }

// Quorums reports the effective write and read quorums.
func (s *Replicated) Quorums() (w, r int) { return s.w, s.r }

// SetFaults implements FaultInjectable. The sites are the tier's own
// client-side per-replica sites (SiteReplicaPut/Get/Delete and
// SiteReplicatedScrub); the inner replica backends are deliberately
// left unarmed — a remote client's retry loop would make hit ordering
// timing-dependent, and a chaos schedule must replay from its seed.
func (s *Replicated) SetFaults(reg *faultinject.Registry) { s.faults.Store(reg) }

// SetObs implements Observable. Telemetry is forwarded to the replica
// backends too (unlike faults): they are constructed inside Open and
// invisible to it, so this is their only arming point, and the remote
// clients' per-attempt instruments usefully aggregate across replicas.
func (s *Replicated) SetObs(reg *obs.Registry) {
	s.obsReg = reg
	s.ops = newOpSet(reg, "store.replicated")
	s.cQuorumOK = reg.Counter("store.replicated.quorum.ok")
	s.cQuorumFailed = reg.Counter("store.replicated.quorum.failed")
	s.cRepairs = reg.Counter("store.replicated.repairs")
	s.cHedgeFired = reg.Counter("store.replicated.hedge.fired")
	s.cHedgeWon = reg.Counter("store.replicated.hedge.won")
	s.cScrubKeys = reg.Counter("store.replicated.scrub.keys")
	for _, rep := range s.replicas {
		InjectObs(rep.backend, reg)
	}
}

// runQueue is one replica's replication log: it applies queued
// operations strictly in submission order.
func (s *Replicated) runQueue(rep *replica) {
	defer close(rep.done)
	for op := range rep.queue {
		op.onDone(rep.idx, s.applyOp(rep, op))
	}
}

// applyOp applies one queued operation to a replica, converting an
// injected crash into "this node is dead from now on".
func (s *Replicated) applyOp(rep *replica, op *repOp) (err error) {
	if rep.down.Load() {
		return fmt.Errorf("store: replica %d: %w (node crashed)", rep.idx, ErrUnavailable)
	}
	defer func() {
		if v := recover(); v != nil {
			c, ok := faultinject.AsCrash(v)
			if !ok {
				panic(v)
			}
			rep.down.Store(true)
			err = fmt.Errorf("store: replica %d: %w (%v)", rep.idx, ErrUnavailable, c)
		}
	}()
	switch op.kind {
	case opPut:
		if ferr := s.faults.Load().Hit(SiteReplicaPut(rep.idx)); ferr != nil {
			return fmt.Errorf("store: replica %d: %w", rep.idx, ferr)
		}
		return rep.backend.Put(op.key, op.sections)
	case opDelete:
		if ferr := s.faults.Load().Hit(SiteReplicaDelete(rep.idx)); ferr != nil {
			return fmt.Errorf("store: replica %d: %w", rep.idx, ferr)
		}
		return rep.backend.Delete(op.key)
	case opFlush:
		return rep.backend.Flush()
	case opRepair:
		if sp, ok := rep.backend.(scrubPrioritized); ok {
			return sp.PutScrub(op.key, op.sections)
		}
		return rep.backend.Put(op.key, op.sections)
	}
	return fmt.Errorf("store: replicated: unknown op kind %d", op.kind)
}

// quorumWaiter decides a Put: success at W acks, failure as soon as too
// many replicas failed for W acks to remain possible. The submitter
// blocks only until the decision; straggler replicas keep applying the
// write in the background (that is what makes W<N writes fast and what
// read-repair mops up after).
type quorumWaiter struct {
	mu          sync.Mutex
	need, total int
	acks, fails int
	firstErr    error
	decided     chan struct{}
	done        bool
}

func newQuorumWaiter(need, total int) *quorumWaiter {
	return &quorumWaiter{need: need, total: total, decided: make(chan struct{})}
}

func (w *quorumWaiter) onResult(idx int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.fails++
		if w.firstErr == nil {
			w.firstErr = fmt.Errorf("replica %d: %w", idx, err)
		}
	} else {
		w.acks++
	}
	if w.done {
		return
	}
	if w.acks >= w.need || w.fails > w.total-w.need {
		w.done = true
		close(w.decided)
	}
}

func (w *quorumWaiter) result() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.acks >= w.need {
		return nil
	}
	return fmt.Errorf("store: replicated: write quorum %d/%d not reached: %w (first failure: %w)",
		w.acks, w.need, ErrUnavailable, w.firstErr)
}

// Put implements Backend.
func (s *Replicated) Put(key string, sections []Section) error {
	start := s.ops.put.Start()
	n, err := s.put(key, sections)
	s.ops.put.Done(start, n, errClass(err))
	return err
}

func (s *Replicated) put(key string, sections []Section) (int64, error) {
	staged := copySections(sections) // replicas only read it, one copy is shared
	w := newQuorumWaiter(s.w, len(s.replicas))
	op := &repOp{kind: opPut, key: key, sections: staged, onDone: w.onResult}
	for _, rep := range s.replicas {
		rep.queue <- op
	}
	<-w.decided
	if err := w.result(); err != nil {
		s.cQuorumFailed.Inc()
		return 0, err
	}
	s.cQuorumOK.Inc()
	size := EncodedSize(sections)
	s.mu.Lock()
	s.stats.Puts++
	s.stats.BytesWritten += size
	s.stats.SectionsWritten += int64(len(sections))
	s.mu.Unlock()
	return size, nil
}

// readResult is one replica's answer to a Get or scrub probe.
type readResult struct {
	idx      int
	sections []Section
	blob     []byte // canonical encoding, nil unless err == nil
	err      error
}

// definitive reports whether the answer settles the key's state on that
// replica: a verified object or a definite absence. Corrupt, injected,
// and network errors are not definitive — another replica must answer.
func (r readResult) definitive() bool {
	return r.err == nil || errors.Is(r.err, ErrNotFound)
}

// readReplica performs one direct replica read (queues are a write-path
// concept), converting an injected crash into node death like the write
// path does. withSite=false is the scrubber's path: its probes fire the
// scrub site instead, so read-site hit counts stay schedule-exact.
func (s *Replicated) readReplica(rep *replica, key string, withSite bool) (_ []Section, err error) {
	if rep.down.Load() {
		return nil, fmt.Errorf("store: replica %d: %w (node crashed)", rep.idx, ErrUnavailable)
	}
	defer func() {
		if v := recover(); v != nil {
			c, ok := faultinject.AsCrash(v)
			if !ok {
				panic(v)
			}
			rep.down.Store(true)
			err = fmt.Errorf("store: replica %d: %w (%v)", rep.idx, ErrUnavailable, c)
		}
	}()
	if withSite {
		if ferr := s.faults.Load().Hit(SiteReplicaGet(rep.idx)); ferr != nil {
			return nil, fmt.Errorf("store: replica %d: %w", rep.idx, ferr)
		}
	} else if sp, ok := rep.backend.(scrubPrioritized); ok {
		// The scrubber's probes announce themselves as maintenance
		// traffic to a remote replica's admission controller.
		return sp.GetScrub(key)
	}
	return rep.backend.Get(key)
}

// scrubPrioritized is implemented by backends that can tag maintenance
// traffic (scrub reads, repair writes) with the scrub admission class —
// store.Remote forwards the class to the service so background repair
// never displaces a tenant's foreground checkpoints.
type scrubPrioritized interface {
	PutScrub(key string, sections []Section) error
	GetScrub(key string) ([]Section, error)
}

// hedgeDelay picks how long Get waits for a first definitive answer
// before asking an extra replica: the observed p95 once the tier has
// seen enough reads, the configured delay until then.
func (s *Replicated) hedgeDelay() time.Duration {
	if snap := s.firstLat.Snapshot(); snap.Count >= hedgeMinSamples {
		d := time.Duration(snap.P95Ns)
		if d < 100*time.Microsecond {
			d = 100 * time.Microsecond
		}
		return d
	}
	return s.hedgeAfter
}

// Get implements Backend.
func (s *Replicated) Get(key string) ([]Section, error) {
	start := s.ops.get.Start()
	sections, n, err := s.get(key)
	s.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (s *Replicated) get(key string) ([]Section, int64, error) {
	n := len(s.replicas)
	results := make(chan readResult, n) // buffered: abandoned stragglers must not leak their goroutine
	started := make([]time.Time, n)
	launch := func(i int) {
		rep := s.replicas[i]
		started[i] = time.Now()
		go func() {
			secs, err := s.readReplica(rep, key, true)
			res := readResult{idx: rep.idx, sections: secs, err: err}
			if err == nil {
				res.blob = EncodeSections(secs)
			}
			results <- res
		}()
	}

	// Replicas 0..R-1 are asked immediately — a fixed launch order keeps
	// the set of read sites a schedule can target deterministic. Further
	// replicas join on a non-definitive answer, or when the hedge timer
	// fires first.
	launched := s.r
	for i := 0; i < launched; i++ {
		launch(i)
	}
	var hedgeC <-chan time.Time
	if s.hedgeAfter >= 0 && launched < n {
		t := time.NewTimer(s.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	sawFirst := false
	hedgeIdx := -1
	var definitive, failures []readResult
	outstanding := launched
	for outstanding > 0 && len(definitive) < s.r {
		select {
		case res := <-results:
			outstanding--
			if res.definitive() {
				if !sawFirst {
					sawFirst = true
					// Measured from the answering replica's own launch, not
					// the Get's start: a sample that included the hedge wait
					// would feed the wait back into the p95 and ratchet the
					// delay up until it matched the slowest replica.
					s.firstLat.ObserveSince(started[res.idx])
				}
				definitive = append(definitive, res)
			} else {
				failures = append(failures, res)
				if launched < n {
					launch(launched)
					launched++
					outstanding++
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < n {
				hedgeIdx = launched
				launch(launched)
				launched++
				outstanding++
				s.cHedgeFired.Inc()
				s.mu.Lock()
				s.stats.HedgesFired++
				s.mu.Unlock()
			}
		}
	}
	if len(definitive) < s.r {
		s.cQuorumFailed.Inc()
		return nil, 0, fmt.Errorf("store: replicated: read quorum %d/%d not reached for %q: %w (first failure: %w)",
			len(definitive), s.r, key, ErrUnavailable, failures[0].err)
	}
	if hedgeIdx >= 0 {
		for _, res := range definitive {
			if res.idx == hedgeIdx {
				s.cHedgeWon.Inc()
				s.mu.Lock()
				s.stats.HedgesWon++
				s.mu.Unlock()
				break
			}
		}
	}

	winner, ok := pickWinner(definitive)
	if !ok {
		// Every definitive answer was NotFound; no repair to run from —
		// a straggling write will land via its own queue.
		return nil, 0, ErrNotFound
	}
	var targets []int
	for _, res := range definitive {
		if res.err != nil || !bytes.Equal(res.blob, winner.blob) {
			targets = append(targets, res.idx)
		}
	}
	for _, res := range failures {
		if errors.Is(res.err, ErrCorrupt) {
			targets = append(targets, res.idx)
		}
	}
	s.repair(key, winner.sections, targets)
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += int64(len(winner.blob))
	s.mu.Unlock()
	return winner.sections, int64(len(winner.blob)), nil
}

// pickWinner chooses the authoritative copy among definitive answers:
// the valid blob held by the most responders, ties toward the lowest
// replica index. ok is false when every answer was NotFound.
func pickWinner(definitive []readResult) (readResult, bool) {
	type group struct {
		res    readResult
		count  int
		minIdx int
	}
	var groups []*group
	for _, res := range definitive {
		if res.err != nil {
			continue
		}
		matched := false
		for _, g := range groups {
			if bytes.Equal(g.res.blob, res.blob) {
				g.count++
				if res.idx < g.minIdx {
					g.minIdx = res.idx
				}
				matched = true
				break
			}
		}
		if !matched {
			groups = append(groups, &group{res: res, count: 1, minIdx: res.idx})
		}
	}
	if len(groups) == 0 {
		return readResult{}, false
	}
	best := groups[0]
	for _, g := range groups[1:] {
		if g.count > best.count || (g.count == best.count && g.minIdx < best.minIdx) {
			best = g
		}
	}
	return best.res, true
}

// repair rewrites the winning copy onto the given replicas, through
// their queues so repairs serialize with in-flight writes, and waits for
// them (a read returns only after its repairs landed — that is what the
// divergence tests assert on). Returns how many replicas were repaired.
func (s *Replicated) repair(key string, sections []Section, targets []int) int {
	if len(targets) == 0 {
		return 0
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	repaired := 0
	staged := copySections(sections)
	wg.Add(len(targets))
	op := &repOp{kind: opRepair, key: key, sections: staged, onDone: func(idx int, err error) {
		if err == nil {
			mu.Lock()
			repaired++
			mu.Unlock()
		}
		wg.Done()
	}}
	for _, idx := range targets {
		s.replicas[idx].queue <- op
	}
	wg.Wait()
	if repaired > 0 {
		s.cRepairs.Add(int64(repaired))
		s.mu.Lock()
		s.stats.Repairs += int64(repaired)
		s.mu.Unlock()
	}
	return repaired
}

// List implements Backend: the union of every reachable replica's keys,
// sorted. At least ReadQuorum replicas must answer — with W+R > N the
// union over any R replicas contains every acked write.
func (s *Replicated) List() ([]string, error) {
	start := s.ops.list.Start()
	keys, err := s.listUnion(s.r)
	s.ops.list.Done(start, 0, errClass(err))
	return keys, err
}

func (s *Replicated) listUnion(minAnswers int) ([]string, error) {
	type listResult struct {
		keys []string
		err  error
	}
	results := make(chan listResult, len(s.replicas))
	for _, rep := range s.replicas {
		rep := rep
		go func() {
			if rep.down.Load() {
				results <- listResult{err: fmt.Errorf("store: replica %d: %w (node crashed)", rep.idx, ErrUnavailable)}
				return
			}
			keys, err := rep.backend.List()
			results <- listResult{keys: keys, err: err}
		}()
	}
	seen := make(map[string]bool)
	answers := 0
	var firstErr error
	for range s.replicas {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		answers++
		for _, k := range res.keys {
			seen[k] = true
		}
	}
	if answers < minAnswers {
		return nil, fmt.Errorf("store: replicated: list quorum %d/%d not reached: %w (first failure: %w)",
			answers, minAnswers, ErrUnavailable, firstErr)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Backend. Deletes ride the write queues (ordering
// against puts matters) and wait for every replica's answer: a quorum
// of the cluster must confirm the removal or the absence. When every
// answering replica reported the key absent, that is ErrNotFound, same
// as a single-node store.
func (s *Replicated) Delete(key string) error {
	start := s.ops.del.Start()
	err := s.del(key)
	s.ops.del.Done(start, 0, errClass(err))
	return err
}

func (s *Replicated) del(key string) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	deleted, notFound := 0, 0
	var firstErr error
	wg.Add(len(s.replicas))
	op := &repOp{kind: opDelete, key: key, onDone: func(idx int, err error) {
		mu.Lock()
		switch {
		case err == nil:
			deleted++
		case errors.Is(err, ErrNotFound):
			notFound++
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %d: %w", idx, err)
			}
		}
		mu.Unlock()
		wg.Done()
	}}
	for _, rep := range s.replicas {
		rep.queue <- op
	}
	wg.Wait()
	if deleted+notFound < s.w {
		return fmt.Errorf("store: replicated: delete quorum %d/%d not reached for %q: %w (first failure: %w)",
			deleted+notFound, s.w, key, ErrUnavailable, firstErr)
	}
	if deleted == 0 {
		return ErrNotFound
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// ScrubOnce sweeps the whole key space once, synchronously: for every
// key any reachable replica holds, read every replica's copy and repair
// the ones that are missing, corrupt, or divergent toward the majority
// copy. The sweep visits keys in sorted order and fires
// SiteReplicatedScrub once per key, so a chaos schedule can kill the
// scrubber at an exact point; an injected crash propagates to the
// caller (the background loop recovers it as "the scrubber died").
// Returns keys examined and replicas repaired.
func (s *Replicated) ScrubOnce() (scanned, repaired int, err error) {
	keys, err := s.listUnion(1)
	if err != nil {
		return 0, 0, fmt.Errorf("store: replicated: scrub: %w", err)
	}
	for _, key := range keys {
		if ferr := s.faults.Load().Hit(SiteReplicatedScrub); ferr != nil {
			return scanned, repaired, fmt.Errorf("store: replicated: scrub: %w", ferr)
		}
		scanned++
		s.cScrubKeys.Inc()
		var definitive []readResult
		var targets []int
		for _, rep := range s.replicas {
			secs, gerr := s.readReplica(rep, key, false)
			res := readResult{idx: rep.idx, sections: secs, err: gerr}
			if gerr == nil {
				res.blob = EncodeSections(secs)
			}
			if res.definitive() {
				definitive = append(definitive, res)
			} else if errors.Is(gerr, ErrCorrupt) {
				targets = append(targets, rep.idx)
			}
			// Unreachable replicas are skipped: scrub repairs state, it
			// does not resurrect nodes.
		}
		winner, ok := pickWinner(definitive)
		if !ok {
			continue // key exists nowhere in valid form; nothing to repair from
		}
		for _, res := range definitive {
			if res.err != nil || !bytes.Equal(res.blob, winner.blob) {
				targets = append(targets, res.idx)
			}
		}
		repaired += s.repair(key, winner.sections, targets)
	}
	return scanned, repaired, nil
}

// scrubLoop is the background scrubber: ScrubOnce on a ticker until
// Close or an injected crash kills it.
func (s *Replicated) scrubLoop(every time.Duration) {
	defer s.scrubWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-t.C:
			if !s.scrubTick() {
				return
			}
		}
	}
}

func (s *Replicated) scrubTick() (alive bool) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := faultinject.AsCrash(v); ok {
				alive = false // the scrubber died; the store lives on
				return
			}
			panic(v)
		}
	}()
	s.ScrubOnce()
	return true
}

// Stats implements Backend, reporting the tier's logical accounting:
// one Put is one put and one object's bytes no matter how many replicas
// it fanned out to, so the numbers stay comparable with a single-node
// store's. Replication-specific activity shows up in Repairs,
// HedgesFired, and HedgesWon.
func (s *Replicated) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush implements Backend: a barrier through every replica's queue
// (all previously submitted writes applied) plus the replica's own
// Flush. A write quorum of replicas must settle for Flush to succeed.
func (s *Replicated) Flush() error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	acks := 0
	var firstErr error
	wg.Add(len(s.replicas))
	op := &repOp{kind: opFlush, onDone: func(idx int, err error) {
		mu.Lock()
		if err == nil {
			acks++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", idx, err)
		}
		mu.Unlock()
		wg.Done()
	}}
	for _, rep := range s.replicas {
		rep.queue <- op
	}
	wg.Wait()
	if acks < s.w {
		return fmt.Errorf("store: replicated: flush quorum %d/%d not reached: %w (first failure: %w)",
			acks, s.w, ErrUnavailable, firstErr)
	}
	return nil
}

// Close implements Backend: stop the scrubber, drain and stop every
// replica queue, close the replicas.
func (s *Replicated) Close() error {
	s.closeOnce.Do(func() {
		if s.scrubStop != nil {
			close(s.scrubStop)
			s.scrubWG.Wait()
		}
		for _, rep := range s.replicas {
			close(rep.queue)
		}
		for _, rep := range s.replicas {
			<-rep.done
		}
		for _, rep := range s.replicas {
			if err := rep.backend.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

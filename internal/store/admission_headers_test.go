package store

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"autocheck/internal/admission"
)

// TestRemotePriorityHeaders pins the end-to-end priority propagation:
// every Remote request carries the tenant namespace and its admission
// class — restart for reads, interactive for writes, scrub for the
// replicated tier's maintenance traffic.
func TestRemotePriorityHeaders(t *testing.T) {
	type seen struct{ method, tenant, pri string }
	var mu sync.Mutex
	var got []seen
	blob := EncodeSections([]Section{{Name: "data", Data: []byte("x")}})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, seen{r.Method,
			r.Header.Get(admission.TenantHeader), r.Header.Get(admission.PriorityHeader)})
		mu.Unlock()
		if r.Method == http.MethodGet {
			w.Write(blob)
		}
	}))
	defer ts.Close()

	r, err := NewRemote(ts.URL, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	secs := []Section{{Name: "data", Data: []byte("x")}}
	if err := r.Put("k", secs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("k"); err != nil {
		t.Fatal(err)
	}
	if err := r.PutScrub("k", secs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetScrub("k"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("k"); err != nil {
		t.Fatal(err)
	}

	want := []seen{
		{http.MethodPut, "tenant-a", "interactive"},
		{http.MethodGet, "tenant-a", "restart"},
		{http.MethodPut, "tenant-a", "scrub"},
		{http.MethodGet, "tenant-a", "scrub"},
		{http.MethodDelete, "tenant-a", "interactive"},
	}
	if len(got) != len(want) {
		t.Fatalf("requests = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d = %v, want %v", i, got[i], want[i])
		}
	}
}
